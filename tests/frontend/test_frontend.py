"""Unit tests for the DSL lexer, parser, lowering, and passes."""

import pytest

from repro.frontend import (
    LexError,
    LowerError,
    ParseError,
    SCALAR_OUT,
    compile_dsl,
    eliminate_dead,
    fold_constants,
    optimize_body,
    parse,
    propagate_copies,
    tokenize,
)
from repro.frontend.ast import Bin, ForLoop, IfStmt
from repro.frontend.lexer import TokKind
from repro.ir import Imm, Reg, add, copy, mul, store
from repro.simulator import MachineState, run


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("for k = 0 to n { x[k] = 1.5; }")
        kinds = [t.kind for t in toks]
        assert kinds[0] is TokKind.KEYWORD
        assert TokKind.NUMBER in kinds
        assert toks[-1].kind is TokKind.EOF

    def test_comments_skipped(self):
        toks = tokenize("# hello\nfor")
        assert toks[0].text == "for" and toks[0].line == 2

    def test_two_char_ops(self):
        toks = tokenize("a <= b != c")
        ops = [t.text for t in toks if t.kind is TokKind.OP]
        assert ops == ["<=", "!="]

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestParser:
    def test_program_shape(self):
        prog = parse("param q, n; array x; for k = 0 to n { x[k] = q; }")
        assert prog.params == ["q", "n"]
        assert prog.arrays == ["x"]
        assert isinstance(prog.loops[0], ForLoop)
        assert prog.loops[0].counter == "k"

    def test_precedence(self):
        prog = parse("array x; for k = 0 to 4 { x[k] = 1 + 2 * 3; }")
        stmt = prog.loops[0].body[0]
        assert isinstance(stmt.value, Bin) and stmt.value.op == "+"
        assert isinstance(stmt.value.right, Bin)
        assert stmt.value.right.op == "*"

    def test_parentheses(self):
        prog = parse("array x; for k = 0 to 4 { x[k] = (1 + 2) * 3; }")
        assert prog.loops[0].body[0].value.op == "*"

    def test_min_max_abs(self):
        prog = parse("array x; for k = 0 to 4 "
                     "{ x[k] = min(1, max(2, 3)) + abs(-4); }")
        assert prog.loops[0].body[0].value.op == "+"

    def test_if_else(self):
        prog = parse("param a; array x; for k = 0 to 4 "
                     "{ if (a < 1) { x[k] = 1; } else { x[k] = 2; } }")
        assert isinstance(prog.loops[0].body[0], IfStmt)

    def test_step(self):
        prog = parse("array x; for k = 0 to 8 step 2 { x[k] = 1; }")
        assert prog.loops[0].step == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("array x; for k = 0 to 4 { x[k] = 1 }")

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse("array x; for k = 0 to 4 { x[k] = 1; } zzz")


class TestLowering:
    def test_affine_annotations(self):
        loop = compile_dsl("array x, z; for k = 0 to 4 "
                           "{ x[k] = z[k+10]; }", 4)
        load_ops = [op for op in loop.body_ops if op.reads_memory]
        assert load_ops[0].mem.affine == 10

    def test_load_cse(self):
        loop = compile_dsl("array x, z; for k = 0 to 4 "
                           "{ x[k] = z[k] + z[k]; }", 4)
        loads = [op for op in loop.body_ops if op.reads_memory]
        assert len(loads) == 1

    def test_store_invalidates_cse(self):
        loop = compile_dsl(
            "array x; for k = 0 to 4 { x[k] = x[k] + 1; x[k] = x[k] + 2; }",
            4)
        loads = [op for op in loop.body_ops if op.reads_memory]
        assert len(loads) == 2

    def test_reduction_carried_and_stored(self):
        loop = compile_dsl("param q, n; array z; "
                           "for k = 0 to n { q = q + z[k]; }", 8)
        assert Reg("q") in loop.carried_regs
        assert loop.epilogue_ops and loop.epilogue_ops[0].mem.array == SCALAR_OUT

    def test_indirection_non_affine(self):
        loop = compile_dsl("array x, b, p; for k = 0 to 4 "
                           "{ x[k] = b[p[k]]; }", 4)
        gathers = [op for op in loop.body_ops
                   if op.reads_memory and op.mem.array == "b"]
        assert gathers and gathers[0].mem.affine is None

    def test_undeclared_array_rejected(self):
        with pytest.raises(LowerError):
            compile_dsl("for k = 0 to 4 { x[k] = 1; }", 4)

    def test_symbolic_bound_substituted(self):
        loop = compile_dsl("param n; array x; for k = 0 to n { x[k] = 1; }",
                           7)
        assert loop.bound == Imm(7)

    def test_executes_correctly(self):
        loop = compile_dsl("param n; array x, y; "
                           "for k = 0 to n { x[k] = y[k] * 2 + 1; }", 3)
        st = MachineState()
        r = run(loop.graph, st)
        assert r.exited
        for k in range(3):
            y = st.read_mem("y", k)
            assert st.mem[("x", k)] == pytest.approx(y * 2 + 1)

    def test_if_conversion_executes(self):
        src = """
        param n; array x, y;
        for k = 0 to n {
            if (y[k] < 5.0) { x[k] = 1; } else { x[k] = 2; }
        }
        """
        loop = compile_dsl(src, 4)
        st = MachineState()
        run(loop.graph, st)
        for k in range(4):
            expect = 1 if st.read_mem("y", k) < 5.0 else 2
            assert st.mem[("x", k)] == pytest.approx(expect)

    def test_step_semantics(self):
        loop = compile_dsl("param n; array x; "
                           "for k = 0 to n step 2 { x[k] = 7; }", 6)
        st = MachineState()
        run(loop.graph, st)
        assert ("x", 0) in st.mem and ("x", 2) in st.mem
        assert ("x", 1) not in st.mem


class TestPasses:
    def test_fold_constants(self):
        ops = [Imm, ]  # placeholder to keep naming tidy
        body = [add("t1", 2, 3, name="f"), mul("t2", "t1", "x", name="m"),
                store("o", "t2", name="s")]
        out = fold_constants(body)
        assert len(out) == 2
        assert out[0].srcs[0] == Imm(5)

    def test_propagate_copies(self):
        body = [copy("t1", "x"), mul("t2", "t1", 2), store("o", "t2")]
        out = propagate_copies(body)
        assert all(not op.is_copy for op in out)
        assert out[0].srcs[0] == Reg("x")

    def test_eliminate_dead(self):
        body = [add("t1", "x", 1), add("t2", "x", 2), store("o", "t2")]
        out = eliminate_dead(body)
        assert len(out) == 2

    def test_user_scalars_survive_dce(self):
        body = [add("q", "x", 1)]
        out = eliminate_dead(body)
        assert len(out) == 1

    def test_optimize_body_pipeline(self):
        body = [add("t1", 1, 1, name="c"), copy("t2", "t1"),
                mul("t3", "t2", "x"), store("o", "t3")]
        out = optimize_body(body)
        assert len(out) == 2  # mul with folded imm + store
