"""Frontend coverage for the non-counted / multi-loop grammar.

``while (cond) { ... }`` loops and top-level loop sequences are the
scenario axes PR 5 opens; these tests pin the lexer (keyword, exponent
literals), the parser (grammar, error paths) and the lowering (loop
descriptors, program epilogue, live-out wiring, legacy stability).
"""

import pytest

from repro.frontend import (
    LowerError,
    ParseError,
    Program,
    WhileStmt,
    compile_dsl,
    parse,
    tokenize,
)
from repro.frontend.lexer import TokKind
from repro.frontend.lower import lower
from repro.ir.loops import CountedLoop, LoopProgram, WhileLoop
from repro.ir.registers import Reg
from repro.simulator.check import initial_state, input_registers
from repro.simulator.interp import run

WHILE_SRC = """
param w0, lim, acc, n; array x, d;
while (w0 < lim + 8) {
    acc = acc + x[w0];
    d[w0] = acc * 2;
    w0 = w0 + 1;
}
"""

MULTI_SRC = """
param q, acc, n; array x, y, d;
for k = 0 to n { d[k] = x[k] * q; }
for k = 0 to n { acc = acc + d[k]; y[k] = acc; }
"""


class TestLexer:
    def test_while_is_a_keyword(self):
        toks = tokenize("while (a < b) { }")
        assert toks[0].kind is TokKind.KEYWORD
        assert toks[0].text == "while"

    @pytest.mark.parametrize("text,value", [
        ("1e308", 1e308), ("2.5e-3", 2.5e-3), ("1E2", 100.0),
    ])
    def test_exponent_numbers_lex_and_parse(self, text, value):
        toks = tokenize(text)
        assert toks[0].kind is TokKind.NUMBER
        assert toks[0].text == text
        prog = parse(f"array a;\nfor k = 0 to 4 {{ a[k] = {text}; }}")
        stmt = prog.loops[0].body[0]
        assert stmt.value.value == value

    def test_number_followed_by_identifier_e(self):
        """``2 e`` must not fuse into an exponent (no digits follow)."""
        toks = tokenize("2e")
        assert toks[0].kind is TokKind.NUMBER and toks[0].text == "2"
        assert toks[1].kind is TokKind.IDENT and toks[1].text == "e"


class TestParser:
    def test_while_loop_parses(self):
        prog = parse(WHILE_SRC)
        assert len(prog.loops) == 1
        assert isinstance(prog.loops[0], WhileStmt)
        assert len(prog.loops[0].body) == 3

    def test_loop_sequence_parses(self):
        prog = parse(MULTI_SRC)
        assert len(prog.loops) == 2

    def test_while_requires_parenthesized_cond(self):
        with pytest.raises(ParseError):
            parse("param a; array x;\nwhile a < 1 { x[a] = 1; }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("array x;\nfor k = 0 to n { x[k] = 1; } stray")


class TestLowering:
    def test_single_for_still_counted_loop(self):
        loop = compile_dsl(
            "param q, n; array x;\nfor k = 0 to n { x[k] = q; }", 4)
        assert isinstance(loop, CountedLoop)

    def test_while_lowers_to_program_with_while_descriptor(self):
        prog = compile_dsl(WHILE_SRC, 6, name="w")
        assert isinstance(prog, LoopProgram)
        (wl,) = prog.loops
        assert isinstance(wl, WhileLoop)
        assert wl.trip_count is None
        assert wl.cond_ops and wl.cj_op is not None and wl.body_ops
        # the exit register is defined by the condition region
        exit_reg = wl.cj_op.srcs[0]
        assert any(op.dest == exit_reg for op in wl.cond_ops)

    def test_while_graph_executes_data_dependent_backedge(self):
        prog = compile_dsl(WHILE_SRC, 6, name="w")
        st = initial_state(1, input_registers(prog.graph))
        res = run(prog.graph, st, max_cycles=100_000)
        assert res.exited
        # scalar results observable through the program epilogue
        assert any(c[0] == "_scalars" for c in st.mem)

    def test_multi_loop_program_shares_scalar_state(self):
        prog = compile_dsl(MULTI_SRC, 5, name="m")
        assert isinstance(prog, LoopProgram)
        assert [type(lp) for lp in prog.loops] == [CountedLoop, CountedLoop]
        # loop 0 must keep alive what loop 1 and the epilogue read
        assert Reg("acc") in prog.loops[0].live_out
        # the epilogue stores every written param exactly once
        assert [op.mem.array for op in prog.epilogue_ops] == ["_scalars"]

    def test_multi_loop_program_runs_equivalently_per_seed(self):
        prog = compile_dsl(MULTI_SRC, 5, name="m")
        st = initial_state(0, input_registers(prog.graph))
        res = run(prog.graph, st, max_cycles=100_000)
        assert res.exited
        # acc = its seeded initial value (a carried reduction) plus the
        # sum of d[k] = x[k] * q over 5 iterations
        q = st.regs["q"]
        default = st.mem_default
        init = initial_state(0, input_registers(prog.graph)).regs["acc"]
        expect = init + sum(default("x", k) * q for k in range(5))
        got = st.regs["acc"]
        assert abs(got - expect) < 1e-9 * max(1.0, abs(expect))

    def test_empty_while_body_rejected(self):
        with pytest.raises(LowerError, match="empty body"):
            compile_dsl("param a; array x;\nwhile (a < 1) { }", 4)

    def test_counter_assignment_still_rejected_in_for(self):
        with pytest.raises(LowerError, match="cannot assign"):
            compile_dsl(
                "array x;\nfor k = 0 to n { k = k + 1; }", 4)

    def test_while_loop_counter_is_assignable(self):
        # the whole point of a while: body updates what the cond reads
        prog = compile_dsl(
            "param a; array x;\nwhile (a < 3) { x[a] = a; a = a + 1; }", 4)
        assert isinstance(prog, LoopProgram)

    def test_no_loop_rejected(self):
        with pytest.raises(LowerError, match="no loop"):
            lower(Program(), 4)
