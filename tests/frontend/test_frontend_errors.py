"""Frontend error paths: lexer/parser/lower rejection of malformed
synth-adjacent input.

The happy path is pinned by ``test_frontend.py`` and (heavily) by the
fuzz lane; this suite pins the *rejections* -- every malformed program
must fail with the right exception class and a message that names the
problem, never be silently mis-lowered.
"""

import pytest

from repro.frontend import (
    LexError,
    LowerError,
    ParseError,
    compile_dsl,
    parse,
    tokenize,
)


class TestLexerRejections:
    @pytest.mark.parametrize("src", ["a % b", "x @ y", "p ~ q", "a & b"])
    def test_unknown_operator_characters(self, src):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize(src)

    def test_error_carries_position(self):
        with pytest.raises(LexError, match="2:1"):
            tokenize("for\n$")


class TestParserRejections:
    def test_unterminated_loop_block(self):
        with pytest.raises(ParseError, match="unterminated block"):
            parse("array x; for k = 0 to n { x[k] = 1;")

    def test_unterminated_nested_block(self):
        with pytest.raises(ParseError, match="unterminated block"):
            parse("array x; for k = 0 to n { if (x[k] < 1) { x[k] = 1;")

    def test_unterminated_block_reports_opening_brace(self):
        with pytest.raises(ParseError, match="never closed"):
            parse("array x;\nfor k = 0 to n { x[k] = 1;")

    def test_missing_expression(self):
        with pytest.raises(ParseError, match="unexpected token"):
            parse("array x; for k = 0 to n { x[k] = ; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("array x; for k = 0 to n { x[k] = 1 }")

    def test_trailing_junk_after_loop(self):
        with pytest.raises(ParseError, match="expected"):
            parse("array x; for k = 0 to n { x[k] = 1; } zap")

    def test_nonpositive_step(self):
        with pytest.raises(ParseError, match="step must be positive"):
            parse("array x; for k = 0 to n step 0 { x[k] = 1; }")

    def test_if_without_parens(self):
        with pytest.raises(ParseError):
            parse("array x; for k = 0 to n { if x[k] < 1 { x[k] = 1; } }")

    def test_program_without_loop(self):
        with pytest.raises(ParseError):
            parse("param q; array x;")


class TestLowerRejections:
    def test_undeclared_array(self):
        with pytest.raises(LowerError, match="not declared"):
            compile_dsl("param q; for k = 0 to 4 { ghost[k] = q; }", 4)

    def test_shadowed_declaration_param_and_array(self):
        with pytest.raises(LowerError, match="both param and array"):
            compile_dsl("param x; array x; for k = 0 to 4 { x[k] = 1; }", 4)

    def test_counter_shadows_declaration(self):
        with pytest.raises(LowerError, match="shadows a declaration"):
            compile_dsl("param k; array x; for k = 0 to 4 { x[k] = k; }", 4)

    def test_array_read_as_scalar(self):
        with pytest.raises(LowerError, match="read as a scalar"):
            compile_dsl("array x, y; for k = 0 to 4 { x[k] = y; }", 4)

    def test_array_assigned_as_scalar(self):
        with pytest.raises(LowerError, match="assigned as a scalar"):
            compile_dsl("array x; for k = 0 to 4 { x = 1; }", 4)

    def test_assigning_the_loop_counter(self):
        with pytest.raises(LowerError, match="loop counter"):
            compile_dsl("array x; for k = 0 to 4 { k = k; x[k] = 1; }", 4)

    def test_nested_if_not_supported(self):
        src = ("array x, c;\nfor k = 0 to 4 {\n"
               "if (c[k] < 1) { if (c[k] < 0) { x[k] = 1; } }\n}")
        with pytest.raises(LowerError, match="nested if"):
            compile_dsl(src, 4)

    def test_non_constant_lower_bound(self):
        with pytest.raises(LowerError, match="lower bound"):
            compile_dsl("param a; array x; for k = a to 4 { x[k] = 1; }", 4)

    def test_non_scalar_upper_bound(self):
        with pytest.raises(LowerError, match="bound"):
            compile_dsl(
                "array x; for k = 0 to x[0] { x[k] = 1; }", 4)


class TestHappyPathStillWorks:
    """The new rejections must not catch legal kernels."""

    def test_implicit_scalars_are_not_shadowing(self):
        # d1/d2 are undeclared temporaries (LL8 style): legal.
        loop = compile_dsl(
            "array x, y;\nfor k = 0 to 4 { d1 = x[k]; y[k] = d1; }", 4)
        assert loop.ops_per_iteration > 0

    def test_param_scalar_writes_are_legal(self):
        loop = compile_dsl(
            "param q; array z;\nfor k = 0 to 4 { q = q + z[k]; }", 4)
        assert loop.epilogue_ops
