"""Unit tests for the machine model."""

from repro.ir import OpKind, ProgramGraph, add, cjump, load, nop, store
from repro.machine import FUClass, INFINITE_RESOURCES, MachineConfig


def node_with(*ops):
    g = ProgramGraph()
    n = g.new_node()
    for op in ops:
        n.add_op(op)
    return n


class TestBudgets:
    def test_total_budget(self):
        m = MachineConfig(fus=2)
        n = node_with(add("a", "x", 1))
        assert m.can_accept(n, add("b", "x", 2))
        n.add_op(add("b", "x", 2))
        assert not m.can_accept(n, add("c", "x", 3))

    def test_room(self):
        m = MachineConfig(fus=4)
        n = node_with(add("a", "x", 1))
        assert m.room(n) == 3

    def test_infinite(self):
        n = node_with(*[add(f"a{i}", "x", i) for i in range(50)])
        assert INFINITE_RESOURCES.fits(n)
        assert INFINITE_RESOURCES.can_accept(n, add("z", "x", 0))

    def test_nops_free_by_default(self):
        m = MachineConfig(fus=1)
        n = node_with(add("a", "x", 1))
        assert m.can_accept(n, nop())

    def test_cjs_consume_slots(self):
        m = MachineConfig(fus=1)
        g = ProgramGraph()
        n = g.new_node()
        from repro.ir.cjtree import Branch, make_leaf

        cj = cjump("c")
        n.tree = Branch(cj.uid, make_leaf(-1), make_leaf(-1))
        n.cjs[cj.uid] = cj
        assert m.slots_used(n) == 1
        assert not m.can_accept(n, add("a", "x", 1))

    def test_typed_budgets(self):
        m = MachineConfig(fus=4, typed={FUClass.MEM: 1})
        n = node_with(load("a", "arr", index="k"))
        assert not m.can_accept(n, load("b", "arr", index="k", offset=1))
        assert m.can_accept(n, add("c", "a", 1))

    def test_typed_row_check(self):
        m = MachineConfig(fus=4, typed={FUClass.MEM: 1})
        row = [load("a", "arr", index="k")]
        assert not m.can_accept_ops(row, store("arr", "a", offset=9))
        assert m.can_accept_ops(row, add("c", "a", 1))

    def test_latencies(self):
        m = MachineConfig(fus=4, latencies={OpKind.MUL: 3})
        assert m.latency(add("a", "x", 1)) == 1
        from repro.ir import mul

        assert m.latency(mul("a", "x", 2)) == 3
