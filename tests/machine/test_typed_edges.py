"""Edge cases of the typed-unit MachineConfig extension."""

from repro.ir import OpKind, ProgramGraph, add, cjump, load, nop, store
from repro.ir.operations import mul
from repro.machine import FUClass, MachineConfig


def node_with(*ops):
    g = ProgramGraph()
    n = g.new_node()
    for op in ops:
        n.add_op(op)
    return n


class TestClassBudgetVsTotalBudget:
    def test_class_exhausted_while_total_free(self):
        # 4 total slots, but only 1 MEM slot: a second load must be
        # rejected even though 3 total slots remain.
        m = MachineConfig(fus=4, typed={FUClass.ALU: 3, FUClass.MEM: 1})
        n = node_with(load("a", "x", "k"))
        assert m.slots_used(n) == 1
        assert not m.can_accept(n, load("b", "y", "k"))
        assert m.can_accept(n, add("c", "a", 1))
        # room() reports the *tightest* headroom: MEM is full.
        assert m.room(n) == 0

    def test_unlisted_class_bounded_by_total_only(self):
        # BRANCH has no per-class budget here: only fus constrains it.
        m = MachineConfig(fus=2, typed={FUClass.ALU: 1})
        n = node_with(add("a", "x", 1))
        assert m.can_accept(n, cjump("a"))
        assert not m.can_accept(n, add("b", "x", 2))

    def test_class_budget_helper(self):
        m = MachineConfig(fus=4, typed={FUClass.MEM: 2})
        assert m.class_budget(FUClass.MEM) == 2
        assert m.class_budget(FUClass.ALU) == 4  # capped by total
        wide = MachineConfig(fus=2, typed={FUClass.MEM: 8})
        assert wide.class_budget(FUClass.MEM) == 2  # total wins
        assert MachineConfig(fus=None).class_budget(FUClass.ALU) is None


class TestCountNops:
    def test_nops_consume_slots_when_counted(self):
        m = MachineConfig(fus=2, count_nops=True)
        n = node_with(add("a", "x", 1), nop())
        assert m.slots_used(n) == 2
        assert not m.can_accept(n, add("b", "x", 2))
        assert not m.fits(node_with(add("a", "x", 1), nop(), nop()))

    def test_nops_count_against_class_budgets(self):
        # A NOP is classed ALU; with count_nops it eats the ALU budget.
        m = MachineConfig(fus=4, typed={FUClass.ALU: 1}, count_nops=True)
        n = node_with(nop())
        assert not m.can_accept(n, add("a", "x", 1))
        assert m.can_accept(n, load("b", "y", "k"))

    def test_nops_free_by_default_even_with_typed(self):
        m = MachineConfig(fus=1, typed={FUClass.ALU: 1})
        n = node_with(add("a", "x", 1))
        assert m.can_accept(n, nop())
        assert m.room(n) == 0


class TestHasHeadroom:
    def test_tight_class_does_not_hide_other_slack(self):
        # ALU full but MEM free: room() is 0, yet headroom remains.
        m = MachineConfig(fus=4, typed={FUClass.ALU: 1, FUClass.MEM: 2,
                                        FUClass.BRANCH: 1})
        n = node_with(add("a", "x", 1))
        assert m.room(n) == 0
        assert m.has_headroom(n)
        assert m.can_accept(n, load("b", "y", "k"))

    def test_all_classes_exhausted(self):
        m = MachineConfig(fus=4, typed={FUClass.ALU: 1, FUClass.MEM: 1,
                                        FUClass.BRANCH: 1})
        n = node_with(add("a", "x", 1), load("b", "y", "k"))
        n.add_root_cj(cjump("a"), 0, 0)
        assert not m.has_headroom(n)

    def test_total_budget_exhausted(self):
        m = MachineConfig(fus=2, typed={FUClass.MEM: 4})
        n = node_with(add("a", "x", 1), add("b", "y", 2))
        assert not m.has_headroom(n)

    def test_unlisted_class_keeps_headroom_open(self):
        # BRANCH has no per-class budget: total slack alone suffices.
        m = MachineConfig(fus=4, typed={FUClass.ALU: 1, FUClass.MEM: 1})
        n = node_with(add("a", "x", 1), load("b", "y", "k"))
        assert m.has_headroom(n)
        assert m.can_accept(n, cjump("a"))

    def test_untyped_matches_room(self):
        m = MachineConfig(fus=2)
        n1 = node_with(add("a", "x", 1))
        n2 = node_with(add("a", "x", 1), add("b", "y", 2))
        assert m.has_headroom(n1) == (m.room(n1) > 0)
        assert m.has_headroom(n2) == (m.room(n2) > 0)

    def test_infinite_machine_always_has_headroom(self):
        m = MachineConfig(fus=None)
        assert m.has_headroom(node_with(*[add(f"r{i}", "x", i)
                                          for i in range(64)]))


class TestLatencyDefaults:
    def test_missing_kinds_default_to_one(self):
        m = MachineConfig(fus=4, latencies={OpKind.MUL: 3})
        assert m.latency(mul("m", "x", "x")) == 3
        assert m.latency(add("a", "x", 1)) == 1
        assert m.latency(load("l", "x", "k")) == 1
        assert m.latency(store("x", "a", "k")) == 1

    def test_no_latency_map_means_single_cycle(self):
        m = MachineConfig(fus=4)
        assert m.latency(mul("m", "x", "x")) == 1
