"""Differential checking: bundle VM vs tree-walker, whole-workload sweep.

This is the backend's acceptance gate: for every built-in Livermore
kernel and the paper's worked examples, the compiled bundle program's
final memory/register state must match the tree-walking simulator's,
across machine widths and a typed-unit configuration.
"""

import pytest

from repro.backend import DifferentialError, differential_check, encode
from repro.backend.vm import BundleVM
from repro.ir import OpKind
from repro.machine import FUClass, MachineConfig
from repro.pipelining import pipeline_loop, unwind_implicit
from repro.scheduling.grip import GRiPScheduler
from repro.workloads import livermore, paper_examples

ALL_KERNELS = livermore.kernel_names()
TYPED = MachineConfig(fus=4, typed={FUClass.ALU: 2, FUClass.MEM: 2,
                                    FUClass.BRANCH: 1})


class TestSequentialKernels:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    @pytest.mark.parametrize("fus", [2, 4, 8])
    def test_sequential_graph_matches(self, name, fus):
        loop = livermore.kernel(name, 6)
        differential_check(loop.graph, MachineConfig(fus=fus), seeds=(0,))

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_typed_machine_matches(self, name):
        loop = livermore.kernel(name, 6)
        differential_check(loop.graph, TYPED, seeds=(0,))


class TestScheduledKernels:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    @pytest.mark.parametrize("fus", [2, 4, 8])
    def test_pipelined_schedule_matches(self, name, fus):
        loop = livermore.kernel(name, 5)
        res = pipeline_loop(loop, MachineConfig(fus=fus), unroll=5,
                            measure=False)
        rep = differential_check(res.unwound.graph, MachineConfig(fus=fus),
                                 seeds=(0, 1))
        # lowering must not change the schedule
        assert rep.vm_steps == rep.interp_cycles

    @pytest.mark.parametrize("name", ["LL1", "LL5", "LL13"])
    def test_pipelined_typed_machine_matches(self, name):
        loop = livermore.kernel(name, 5)
        res = pipeline_loop(loop, TYPED, unroll=5, measure=False)
        differential_check(res.unwound.graph, TYPED, seeds=(0,))


class TestPaperExamples:
    @pytest.mark.parametrize("body_fn", [paper_examples.abc_body,
                                         paper_examples.ag_body])
    @pytest.mark.parametrize("fus", [2, 4, 8])
    def test_scheduled_example_chain_matches(self, body_fn, fus):
        unwound = unwind_implicit(body_fn(), 6)
        g = unwound.graph
        machine = MachineConfig(fus=fus)
        GRiPScheduler(machine).schedule(g, ranking_ops=unwound.ops)
        out_regs = {op.dest.name for _, op in g.all_operations()
                    if op.dest is not None}
        differential_check(g, machine, seeds=(0, 1), out_regs=out_regs)


class TestSpilledPrograms:
    @pytest.mark.parametrize("phys", [8, 6, 5])
    def test_spilled_sequential_kernel_matches(self, phys):
        loop = livermore.kernel("LL7", 6)
        machine = MachineConfig(fus=4, phys_regs=phys)
        prog = encode(loop.graph, machine)
        assert prog.spill_bundles > 0
        differential_check(loop.graph, machine, seeds=(0, 1), program=prog)

    def test_spilled_scheduled_kernel_matches(self):
        loop = livermore.kernel("LL7", 6)
        res = pipeline_loop(loop, MachineConfig(fus=4), unroll=6,
                            measure=False)
        machine = MachineConfig(fus=4, phys_regs=48)
        prog = encode(res.unwound.graph, machine)
        assert prog.spill_bundles > 0
        differential_check(res.unwound.graph, machine, seeds=(0,),
                           program=prog)


class TestLatencyModel:
    def test_realized_cycles_exceed_steps_under_latencies(self):
        loop = livermore.kernel("LL1", 6)
        machine = MachineConfig(fus=4, latencies={OpKind.MUL: 3,
                                                  OpKind.LOAD: 2})
        rep = differential_check(loop.graph, machine, seeds=(0,))
        assert rep.vm_cycles[-1] > rep.vm_steps[-1]

    def test_single_cycle_machine_realized_equals_steps(self):
        loop = livermore.kernel("LL1", 6)
        rep = differential_check(loop.graph, MachineConfig(fus=4), seeds=(0,))
        assert rep.vm_cycles == rep.vm_steps


class TestDivergenceDetection:
    def test_corrupted_program_is_caught(self):
        # Encode LL12, then break one bundle's immediate pool value: the
        # checker must notice the memory divergence.
        loop = livermore.kernel("LL12", 4)
        machine = MachineConfig(fus=4)
        vm = BundleVM(encode(loop.graph, machine))
        for i, v in enumerate(vm._pool_values):
            vm._pool_values[i] = v + 1  # pool is injected per run
        with pytest.raises(DifferentialError):
            differential_check(loop.graph, machine, vm=vm)
