"""Differential checking: bundle VM vs tree-walker, whole-workload sweep.

This is the backend's acceptance gate: for every built-in Livermore
kernel and the paper's worked examples, the compiled bundle program's
final memory/register state must match the tree-walking simulator's,
across machine widths and a typed-unit configuration.
"""

import pytest

from repro.backend import DifferentialError, differential_check, encode
from repro.backend.vm import BundleVM
from repro.ir import OpKind
from repro.machine import FUClass, MachineConfig
from repro.pipelining import schedule_loop, unwind_implicit
from repro.scheduling.grip import GRiPScheduler
from repro.workloads import livermore, paper_examples

ALL_KERNELS = livermore.kernel_names()
TYPED = MachineConfig(fus=4, typed={FUClass.ALU: 2, FUClass.MEM: 2,
                                    FUClass.BRANCH: 1})


class TestSequentialKernels:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    @pytest.mark.parametrize("fus", [2, 4, 8])
    def test_sequential_graph_matches(self, name, fus):
        loop = livermore.kernel(name, 6)
        differential_check(loop.graph, MachineConfig(fus=fus), seeds=(0,))

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_typed_machine_matches(self, name):
        loop = livermore.kernel(name, 6)
        differential_check(loop.graph, TYPED, seeds=(0,))


class TestScheduledKernels:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    @pytest.mark.parametrize("fus", [2, 4, 8])
    def test_pipelined_schedule_matches(self, name, fus):
        loop = livermore.kernel(name, 5)
        res = schedule_loop(loop, MachineConfig(fus=fus), unroll=5,
                            measure=False)
        rep = differential_check(res.unwound.graph, MachineConfig(fus=fus),
                                 seeds=(0, 1))
        # lowering must not change the schedule
        assert rep.vm_steps == rep.interp_cycles

    @pytest.mark.parametrize("name", ["LL1", "LL5", "LL13"])
    def test_pipelined_typed_machine_matches(self, name):
        loop = livermore.kernel(name, 5)
        res = schedule_loop(loop, TYPED, unroll=5, measure=False)
        differential_check(res.unwound.graph, TYPED, seeds=(0,))


class TestPaperExamples:
    @pytest.mark.parametrize("body_fn", [paper_examples.abc_body,
                                         paper_examples.ag_body])
    @pytest.mark.parametrize("fus", [2, 4, 8])
    def test_scheduled_example_chain_matches(self, body_fn, fus):
        unwound = unwind_implicit(body_fn(), 6)
        g = unwound.graph
        machine = MachineConfig(fus=fus)
        GRiPScheduler(machine).schedule(g, ranking_ops=unwound.ops)
        out_regs = {op.dest.name for _, op in g.all_operations()
                    if op.dest is not None}
        differential_check(g, machine, seeds=(0, 1), out_regs=out_regs)


class TestSpilledPrograms:
    @pytest.mark.parametrize("phys", [8, 6, 5])
    def test_spilled_sequential_kernel_matches(self, phys):
        loop = livermore.kernel("LL7", 6)
        machine = MachineConfig(fus=4, phys_regs=phys)
        prog = encode(loop.graph, machine)
        assert prog.spill_bundles > 0
        differential_check(loop.graph, machine, seeds=(0, 1), program=prog)

    def test_spilled_scheduled_kernel_matches(self):
        loop = livermore.kernel("LL7", 6)
        res = schedule_loop(loop, MachineConfig(fus=4), unroll=6,
                            measure=False)
        machine = MachineConfig(fus=4, phys_regs=48)
        prog = encode(res.unwound.graph, machine)
        assert prog.spill_bundles > 0
        differential_check(res.unwound.graph, machine, seeds=(0,),
                           program=prog)


class TestLatencyModel:
    def test_realized_cycles_exceed_steps_under_latencies(self):
        loop = livermore.kernel("LL1", 6)
        machine = MachineConfig(fus=4, latencies={OpKind.MUL: 3,
                                                  OpKind.LOAD: 2})
        rep = differential_check(loop.graph, machine, seeds=(0,))
        assert rep.vm_cycles[-1] > rep.vm_steps[-1]

    def test_single_cycle_machine_realized_equals_steps(self):
        loop = livermore.kernel("LL1", 6)
        rep = differential_check(loop.graph, MachineConfig(fus=4), seeds=(0,))
        assert rep.vm_cycles == rep.vm_steps

    def test_scoreboard_stall_accounting_exact(self):
        """Hand-computed realized cycles for a dependent chain: LOAD
        (lat 2) -> MUL (lat 4) -> STORE (lat 2) issues at 0/2/6, the
        store's write drains at 8."""
        from repro.ir import load, mul, store, straightline_graph
        from repro.backend.vm import BundleVM

        g = straightline_graph([
            load("r1", "x", offset=0, name="L"),
            mul("r2", "r1", "r1", name="M"),
            store("y", "r2", offset=0, name="S"),
        ])
        machine = MachineConfig(fus=4, latencies={OpKind.LOAD: 2,
                                                  OpKind.MUL: 4,
                                                  OpKind.STORE: 2})
        res = BundleVM(encode(g, machine)).run()
        assert res.steps == 3
        assert res.cycles == 8

    def test_independent_ops_do_not_stall(self):
        """Ops with no register overlap issue back to back: realized
        cycles stay steps + final drain only."""
        from repro.ir import load, straightline_graph
        from repro.backend.vm import BundleVM

        g = straightline_graph([
            load("r1", "x", offset=0, name="L1"),
            load("r2", "x", offset=1, name="L2"),
            load("r3", "x", offset=2, name="L3"),
        ])
        machine = MachineConfig(fus=4, latencies={OpKind.LOAD: 3})
        res = BundleVM(encode(g, machine)).run()
        assert res.steps == 3
        # issues at 0,1,2; last load ready at 2+3=5
        assert res.cycles == 5

    def test_latency_scoreboard_on_scheduled_kernels(self):
        """Latency-mapped machines in the differential (the fuzz
        lane's new axis): the one-bundle-per-tree-cycle contract must
        hold and realized cycles must never undercut steps."""
        machine = MachineConfig(fus=4, latencies={OpKind.MUL: 3,
                                                  OpKind.LOAD: 2,
                                                  OpKind.DIV: 6})
        for name in ("LL1", "LL5"):
            loop = livermore.kernel(name, 5)
            res = schedule_loop(loop, MachineConfig(fus=4), unroll=5,
                                measure=False)
            rep = differential_check(res.unwound.graph, machine, seeds=(0,))
            assert rep.vm_steps == rep.interp_cycles
            assert all(c >= s for c, s in zip(rep.vm_cycles, rep.vm_steps))


class TestFloatSpecials:
    """Regression: the checkers' value comparison is total over IEEE
    specials.  ``math.isclose(nan, nan)`` is False, so before the fix
    two executors *agreeing* on NaN were reported divergent -- every
    kernel whose data hit the specials was un-auditable."""

    def test_values_close_on_specials(self):
        from repro.simulator.check import values_close

        nan, inf = float("nan"), float("inf")
        assert values_close(nan, nan)
        assert values_close(inf, inf)
        assert values_close(-inf, -inf)
        assert not values_close(nan, 1.0)
        assert not values_close(1.0, nan)
        assert not values_close(inf, -inf)
        assert not values_close(inf, 1.0)

    def _special_loop(self):
        from repro.frontend import compile_dsl

        # d overflows to +inf; e = inf - inf = NaN; both stored.
        src = """
        param p, n; array x, d, e;
        for k = 0 to n {
            d[k] = (x[k] * 1e308) * 1e308;
            e[k] = ((x[k] * 1e308) * 1e308) - ((x[k+1] * 1e308) * 1e308);
        }
        """
        return compile_dsl(src, 5, name="specials")

    def test_nan_inf_programs_pass_differential(self):
        import math

        loop = self._special_loop()
        machine = MachineConfig(fus=4)
        rep = differential_check(loop.graph, machine, seeds=(0, 1))
        assert rep.interp_cycles == rep.vm_steps
        # and the run genuinely produced specials (not a vacuous pass)
        from repro.simulator.check import initial_state, input_registers
        from repro.simulator.interp import run

        st = initial_state(0, input_registers(loop.graph))
        run(loop.graph, st, max_cycles=100_000)
        vals = [v for v in st.mem.values() if isinstance(v, float)]
        assert any(math.isinf(v) for v in vals)
        assert any(math.isnan(v) for v in vals)

    def test_scheduled_special_program_stays_equivalent(self):
        from repro.pipelining import schedule_loop as pl
        from repro.simulator.check import check_equivalent

        loop = self._special_loop()
        res = pl(loop, MachineConfig(fus=4), unroll=5, measure=False)
        check_equivalent(loop.graph, res.unwound.graph, seeds=(0, 1))
        differential_check(res.unwound.graph, MachineConfig(fus=4),
                           seeds=(0, 1))

    def test_old_comparison_was_the_bug(self):
        """The pre-fix comparison (plain isclose) must reject an
        agreeing NaN pair -- pinning that the fix is load-bearing."""
        import math

        assert not math.isclose(float("nan"), float("nan"),
                                rel_tol=1e-6, abs_tol=1e-6)


class TestDivergenceDetection:
    def test_corrupted_program_is_caught(self):
        # Encode LL12, then break one bundle's immediate pool value: the
        # checker must notice the memory divergence.
        loop = livermore.kernel("LL12", 4)
        machine = MachineConfig(fus=4)
        vm = BundleVM(encode(loop.graph, machine))
        for i, v in enumerate(vm._pool_values):
            vm._pool_values[i] = v + 1  # pool is injected per run
        with pytest.raises(DifferentialError):
            differential_check(loop.graph, machine, vm=vm)
