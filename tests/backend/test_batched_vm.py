"""Batched-vs-scalar VM equivalence: the bit-identity contract.

The batched VM (`repro.backend.batched`) re-executes the scalar
``BundleVM``'s predecoded form over lane vectors; its whole value rests
on every lane being *bit-identical* to a scalar run from the same
initial state -- verdicts, final memory/registers, per-lane steps,
committed-op counts and realized scoreboard cycles.  This suite pins
that over all LL kernels x fus {2,4,8}, latency maps, spilled
programs, float specials, hand-built divergent-trip-count while
programs, and the exact-integer (object-dtype) fallback mode.
"""

import math

import pytest

from repro.backend import encode
from repro.backend.batched import BatchedVM, checked_lane_mask, loop_headers
from repro.backend.check import (batched_pair_check,
                                 differential_check_batched)
from repro.backend.vm import BundleVM
from repro.frontend import compile_dsl
from repro.ir import OpKind, straightline_graph
from repro.ir.operations import const, make_binary, store
from repro.machine import FUClass, MachineConfig
from repro.pipelining import schedule_loop
from repro.simulator.check import initial_state, input_registers
from repro.workloads import livermore

ALL_KERNELS = livermore.kernel_names()
LAT = {OpKind.LOAD: 3, OpKind.MUL: 2, OpKind.DIV: 8, OpKind.STORE: 2}

DIVERGENT_WHILE = """
param n; array out;
while (n > 0.5) {
    out[0] = out[0] + n;
    n = n - 1.0;
}
"""

NESTED_DIVERGENT = """
param n, m, acc; array d;
while (n > 0.5) {
    acc = acc + d[n];
    d[n] = acc * 0.5;
    n = n - 1.0;
}
for k = 0 to 4 { d[k] = d[k] + acc; }
"""


def assert_lanes_match_scalar(graph, machine, *, n_lanes=6,
                              init_override=None, program=None):
    """Every batched lane must equal a scalar run of the same state."""
    prog = program if program is not None else encode(graph, machine)
    vm = BundleVM(prog)
    regs_in = input_registers(graph)
    inits, defaults = [], []
    for lane in range(n_lanes):
        st = initial_state(lane, regs_in)
        if init_override:
            init_override(lane, st)
        inits.append(dict(st.regs))
        defaults.append(st.mem_default)
    bres = BatchedVM(vm).run_many(inits, defaults, track_visits=True)
    for lane in range(n_lanes):
        sres = vm.run(init_regs=dict(inits[lane]),
                      mem_default=defaults[lane])
        assert sres.steps == bres.steps[lane]
        assert sres.cycles == bres.cycles[lane]
        assert sres.ops_committed == bres.ops_committed[lane]
        sm = sres.memory(include_internal=True)
        bm = bres.memory(lane, include_internal=True)
        assert set(sm) == set(bm)
        for cell in sm:
            a, b = sm[cell], bm[cell]
            if isinstance(a, float) and math.isnan(a):
                assert isinstance(b, float) and math.isnan(b), (cell, a, b)
            else:
                # bit-identical up to int/float typing of comparison
                # results (scalar CMP_* yields int 0/1, lanes 0.0/1.0)
                assert a == b, (lane, cell, a, b)
    return bres


class TestKernelSweep:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    @pytest.mark.parametrize("fus", [2, 4, 8])
    def test_sequential_kernel_lanes_match(self, name, fus):
        loop = livermore.kernel(name, 6)
        assert_lanes_match_scalar(loop.graph, MachineConfig(fus=fus),
                                  n_lanes=4)

    @pytest.mark.parametrize("name", ["LL1", "LL5", "LL13"])
    def test_scheduled_kernel_lanes_match(self, name):
        loop = livermore.kernel(name, 5)
        machine = MachineConfig(fus=4)
        res = schedule_loop(loop, machine, unroll=5, measure=False)
        assert_lanes_match_scalar(res.unwound.graph, machine)

    def test_typed_machine_lanes_match(self):
        typed = MachineConfig(fus=4, typed={FUClass.ALU: 2, FUClass.MEM: 2,
                                            FUClass.BRANCH: 1})
        loop = livermore.kernel("LL7", 6)
        assert_lanes_match_scalar(loop.graph, typed)


class TestScoreboard:
    """Realized cycles are exact integer scoreboard math: the batched
    `[n_regs, N]` ready-time array must reproduce the scalar
    scoreboard cycle-for-cycle."""

    @pytest.mark.parametrize("name", ["LL1", "LL5", "LL7", "LL12"])
    def test_latency_mapped_kernels(self, name):
        loop = livermore.kernel(name, 6)
        machine = MachineConfig(fus=4, latencies=LAT)
        assert_lanes_match_scalar(loop.graph, machine)

    def test_scheduled_with_latencies(self):
        loop = livermore.kernel("LL5", 5)
        machine = MachineConfig(fus=4, latencies=LAT)
        res = schedule_loop(loop, machine, unroll=5, measure=False)
        bres = assert_lanes_match_scalar(res.unwound.graph, machine)
        # realized cycles must never undercut bundle count
        assert all(c >= s for c, s in zip(bres.cycles, bres.steps))


class TestSpills:
    def test_spilled_program_lanes_match(self):
        loop = livermore.kernel("LL7", 6)
        machine = MachineConfig(fus=4, phys_regs=6)
        prog = encode(loop.graph, machine)
        assert prog.spill_bundles > 0
        assert_lanes_match_scalar(loop.graph, machine, program=prog)


class TestDivergentControlFlow:
    """Data-dependent back edges: lanes take different trip counts,
    diverge across bundles, and must still retire bit-identical."""

    def _run_divergent(self, src, trips, machine=None):
        pl = compile_dsl(src, 4, name="div")
        machine = machine or MachineConfig(fus=4)

        def override(lane, st):
            st.regs["n"] = float(trips[lane % len(trips)])

        return pl, assert_lanes_match_scalar(
            pl.graph, machine, n_lanes=len(trips), init_override=override)

    def test_divergent_trip_counts(self):
        _, bres = self._run_divergent(DIVERGENT_WHILE, [0, 3, 7, 1, 12, 5])
        # steps must genuinely differ across lanes (the cohort
        # scheduler really diverged and regrouped)
        assert len(set(bres.steps.tolist())) > 2

    def test_divergent_with_latency_map(self):
        self._run_divergent(DIVERGENT_WHILE, [0, 2, 9, 4],
                            MachineConfig(fus=4, latencies=LAT))

    def test_nested_program_divergence(self):
        self._run_divergent(NESTED_DIVERGENT, [0, 1, 6, 3])

    def test_large_divergent_cohorts_use_masked_path(self):
        """Two trip-count populations over 20 lanes: after the split
        both cohorts stay >= the vectorization threshold, so this
        pins the masked (active-lane) vector path, not the scalar
        tail that small cohorts take."""
        from repro.backend.batched import _VEC_COHORT

        trips = [3, 9] * 10  # cohorts of 10 >= _VEC_COHORT
        assert len(trips) // 2 >= _VEC_COHORT
        _, bres = self._run_divergent(DIVERGENT_WHILE, trips)
        assert len(set(bres.steps.tolist())) == 2

    def test_mixed_cohort_sizes_regroup(self):
        # 9 lanes at one trip count (vector cohort), 3 stragglers
        # (scalar tail), all regrouping at loop exit
        trips = [6] * 9 + [1, 14, 0]
        self._run_divergent(DIVERGENT_WHILE, trips)

    def test_vacuity_mask_flags_zero_trip_lanes(self):
        pl, bres = self._run_divergent(DIVERGENT_WHILE, [0, 3, 0, 5])
        prog = bres.program
        assert loop_headers(prog), "while program must have a back edge"
        mask = checked_lane_mask(bres)
        assert mask.tolist() == [False, True, False, True]

    def test_vacuity_trivially_true_without_back_edges(self):
        loop = livermore.kernel("LL1", 4)
        bres = assert_lanes_match_scalar(loop.graph, MachineConfig(fus=4),
                                         n_lanes=3)
        assert checked_lane_mask(bres).tolist() == [True, True, True]


class TestFloatSpecials:
    def test_inf_nan_lanes_match(self):
        src = """
        param p, n; array x, d, e;
        for k = 0 to n {
            d[k] = (x[k] * 1e308) * 1e308;
            e[k] = ((x[k] * 1e308) * 1e308) - ((x[k+1] * 1e308) * 1e308);
        }
        """
        pl = compile_dsl(src, 5, name="specials")
        bres = assert_lanes_match_scalar(pl.graph, MachineConfig(fus=4))
        # the run genuinely produced specials on every lane
        import numpy as np

        vals = np.concatenate([row[0] for row in
                               bres.memory_rows().values()])
        assert np.isinf(vals).any()
        assert np.isnan(vals).any()


class TestExactIntegerMode:
    """Bit operations produce arbitrary-precision Python ints; their
    presence must flip the lanes to the exact object-dtype fallback."""

    def _bit_graph(self):
        return straightline_graph([
            const("a", 3, name="A"),
            const("b", 60, name="B"),
            make_binary(OpKind.SHL, "c", "b", "a", name="SHL"),
            make_binary(OpKind.XOR, "d", "c", "b", name="XOR"),
            make_binary(OpKind.AND, "e", "d", "c", name="AND"),
            store("out", "c", offset=0, name="S0"),
            store("out", "d", offset=1, name="S1"),
            store("out", "e", offset=2, name="S2"),
        ])

    def test_object_mode_is_detected(self):
        g = self._bit_graph()
        bvm = BatchedVM(BundleVM(encode(g, MachineConfig(fus=2))))
        assert bvm._object_mode

    def test_float_mode_for_plain_arithmetic(self):
        loop = livermore.kernel("LL1", 4)
        bvm = BatchedVM(BundleVM(encode(loop.graph, MachineConfig(fus=4))))
        assert not bvm._object_mode

    def test_bit_ops_exact_across_lanes(self):
        # 60 << 3 = 480; beyond-float53 exactness pinned via the
        # scalar comparison in assert_lanes_match_scalar
        g = self._bit_graph()
        bres = assert_lanes_match_scalar(g, MachineConfig(fus=2),
                                         n_lanes=3)
        out = bres.memory(0)
        assert out[("out", 0)] == 60 << 3
        assert out[("out", 1)] == (60 << 3) ^ 60
        assert isinstance(out[("out", 0)], int)


class TestBatchedCheckEntryPoints:
    def test_differential_check_batched_kernel(self):
        loop = livermore.kernel("LL3", 6)
        rep = differential_check_batched(loop.graph, MachineConfig(fus=4),
                                         lanes=8)
        assert rep.n_lanes == 8
        assert rep.ref_seeds == [0, 1, 2]
        assert len(rep.interp_cycles) == 3
        assert rep.checked_lanes == 8  # no back edges -> all checked
        assert len(rep.vm_cycles) == 8

    def test_batched_pair_check_scheduled(self):
        loop = livermore.kernel("LL5", 5)
        machine = MachineConfig(fus=4)
        res = schedule_loop(loop, machine, unroll=5, measure=False)
        rep = batched_pair_check(loop.graph, res.unwound.graph, machine,
                                 lanes=8)
        assert rep.n_lanes == 8
        assert rep.checked_lanes == 8
        # the scheduled chain is the faster executor
        assert rep.interp_cycles_sched[0] < rep.interp_cycles_seq[0]

    def test_pair_check_catches_semantic_break(self):
        from repro.bench.fuzz import TAMPERS
        from repro.simulator.check import EquivalenceError

        loop = livermore.kernel("LL5", 5)
        machine = MachineConfig(fus=4)
        res = schedule_loop(loop, machine, unroll=5, measure=False)
        TAMPERS["drop-store"](res.unwound.graph)
        with pytest.raises(EquivalenceError):
            batched_pair_check(loop.graph, res.unwound.graph, machine,
                               lanes=8)

    def test_lane_divergence_beyond_ref_seeds_is_caught(self):
        """A bug visible only on a non-reference lane must still fail:
        the all-lane VM-vs-VM sweep is load-bearing, not decorative."""
        import numpy as np

        from repro.backend.check import compare_batched_memory
        from repro.simulator.check import EquivalenceError

        loop = livermore.kernel("LL1", 4)
        machine = MachineConfig(fus=4)
        prog = encode(loop.graph, machine)
        regs_in = input_registers(loop.graph)
        states = [initial_state(s, regs_in) for s in range(8)]
        inits = [dict(st.regs) for st in states]
        defaults = [st.mem_default for st in states]
        run = lambda: BatchedVM(BundleVM(prog)).run_many(inits, defaults)
        a, b = run(), run()
        compare_batched_memory(a, b, lane_seeds=list(range(8)))  # clean
        cell = next(iter(b.memory_rows()))
        # corrupt lane 5 only (a non-reference lane)
        (name, addr) = cell
        aid = b.program.arrays.index(name)
        b.mem[aid][addr][0][5] = np.float64(1e9)
        with pytest.raises(EquivalenceError, match="lane 5"):
            compare_batched_memory(a, b, lane_seeds=list(range(8)))
