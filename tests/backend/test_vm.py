"""Unit tests for the flat bundle VM's execution semantics."""

import pytest

from repro.backend import BundleVM, BundleVMError, encode
from repro.ir import OpKind, ProgramGraph, add, cjump, copy, load, store
from repro.ir.builder import SequentialBuilder
from repro.machine import MachineConfig
from repro.simulator.state import seeded_cell_default


def run_graph(g, machine=None, init=None, out=()):
    from repro.ir.registers import Reg

    machine = machine or MachineConfig(fus=8)
    prog = encode(g, machine, exit_live=frozenset(Reg(n) for n in out))
    res = BundleVM(prog).run(init_regs=init or {})
    return res


class TestEntryStateSemantics:
    def test_parallel_swap_reads_entry_values(self):
        # One bundle holding x<-y and y<-x must swap, not duplicate.
        g = ProgramGraph()
        n = g.new_node()
        n.add_op(copy("x", "y"))
        n.add_op(copy("y", "x"))
        g.set_entry(n.nid)
        res = run_graph(g, init={"x": 1.0, "y": 2.0}, out=("x", "y"))
        assert res.register("x") == 2.0
        assert res.register("y") == 1.0

    def test_load_sees_entry_memory_despite_store_in_same_bundle(self):
        g = ProgramGraph()
        n = g.new_node()
        n.add_op(store("m", "v", offset=0))
        n.add_op(load("r", "m", offset=0))
        g.set_entry(n.nid)
        res = run_graph(g, init={"v": 42.0}, out=("r",))
        # the load observes the pre-store (default) value
        assert res.register("r") == seeded_cell_default(0)("m", 0)
        assert res.memory()[("m", 0)] == 42.0


class TestPathSensitiveCommit:
    def _branchy(self):
        # One node: CJ on c; op "t" commits only on the taken side.
        g = ProgramGraph()
        n = g.new_node()
        t_leaf, f_leaf = n.add_root_cj(cjump("c"), -1, -1)
        n.add_op(add("t", "x", 10), paths=frozenset({t_leaf.leaf_id}))
        n.add_op(add("u", "x", 20), paths=frozenset({f_leaf.leaf_id}))
        g.set_entry(n.nid)
        return g

    def test_only_selected_path_commits(self):
        g = self._branchy()
        res = run_graph(g, init={"c": 1, "x": 1.0}, out=("t", "u"))
        assert res.register("t") == 11.0
        assert res.register("u") == 0.0  # never committed
        res2 = run_graph(g, init={"c": 0, "x": 1.0}, out=("t", "u"))
        assert res2.register("t") == 0.0
        assert res2.register("u") == 21.0

    def test_committed_op_count_tracks_path(self):
        g = self._branchy()
        res = run_graph(g, init={"c": 1, "x": 1.0}, out=("t", "u"))
        # one ALU op + the conditional jump
        assert res.ops_committed == 2


class TestTiming:
    def test_steps_equal_cycles_for_single_cycle_machine(self):
        b = SequentialBuilder()
        for i in range(5):
            b.append(add(f"a{i}", "x", i))
        res = run_graph(b.graph)
        assert res.steps == 5
        assert res.cycles == 5

    def test_latency_stalls_accumulate(self):
        # mul (3 cycles) feeds the next bundle -> 2 stall cycles.
        b = SequentialBuilder()
        b.append(add("a", "x", "x"))
        from repro.ir.operations import mul

        b.append(mul("m", "a", "a"))
        b.append(add("r", "m", 1))
        m = MachineConfig(fus=4, latencies={OpKind.MUL: 3})
        res = run_graph(b.graph, machine=m, init={"x": 2.0}, out=("r",))
        assert res.register("r") == 17.0
        assert res.steps == 3
        # issue: add@0, mul@1 (a ready at 1), add@4 (m ready at 4) -> 5
        assert res.cycles == 5

    def test_final_drain_counts(self):
        b = SequentialBuilder()
        from repro.ir.operations import mul

        b.append(mul("m", "x", "x"))
        m = MachineConfig(fus=4, latencies={OpKind.MUL: 4})
        res = run_graph(b.graph, machine=m, init={"x": 2.0}, out=("m",))
        assert res.steps == 1
        assert res.cycles == 4  # result lands 4 cycles after issue

    def test_step_budget_raises(self):
        # a self-loop never exits
        b = SequentialBuilder()
        n = b.append(add("a", "a", 1))
        b.graph.retarget_leaf(n.nid, n.leaves()[0].leaf_id, n.nid)
        prog = encode(b.graph, MachineConfig(fus=4))
        with pytest.raises(BundleVMError):
            BundleVM(prog).run(max_steps=100)


class TestOperandInterning:
    def test_immediates_share_pool_slots(self):
        b = SequentialBuilder()
        b.append(add("a", "x", 7))
        b.append(add("c", "x", 7))
        b.append(add("d", "x", 9))
        prog = encode(b.graph, MachineConfig(fus=4))
        vm = BundleVM(prog)
        assert len(vm._pool_values) == 2  # 7 interned once, 9 once

    def test_int_and_float_immediates_stay_distinct(self):
        b = SequentialBuilder()
        b.append(add("a", "x", 1))
        b.append(add("c", "x", 1.0))
        vm = BundleVM(encode(b.graph, MachineConfig(fus=4)))
        assert len(vm._pool_values) == 2


class TestStateAccessors:
    def test_memory_excludes_internal_arrays(self):
        from repro.workloads import livermore

        loop = livermore.kernel("LL7", 4)
        prog = encode(loop.graph, MachineConfig(fus=4, phys_regs=6))
        assert prog.spill_bundles > 0
        res = BundleVM(prog).run()
        assert all(not a.startswith("__") for a, _ in res.memory())
        assert any(a.startswith("__")
                   for a, _ in res.memory(include_internal=True))
