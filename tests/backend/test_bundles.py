"""Unit tests for the bundle IR and the encoder."""

import pytest

from repro.backend import EXIT_BUNDLE, EncodeError, encode
from repro.backend.regalloc import SPILL_ARRAY
from repro.ir import ProgramGraph, add, cjump, load, store
from repro.ir.builder import SequentialBuilder
from repro.machine import FUClass, MachineConfig
from repro.workloads import livermore


def seq_graph(*ops):
    b = SequentialBuilder()
    for op in ops:
        b.append(op)
    return b.graph


class TestEncoding:
    def test_one_bundle_per_reachable_node(self):
        loop = livermore.kernel("LL1", 6)
        prog = encode(loop.graph, MachineConfig(fus=4))
        assert prog.schedule_length == len(loop.graph.rpo())
        assert prog.spill_bundles == 0

    def test_slot_classes(self):
        g = seq_graph(load("a", "x", "k"), add("b", "a", 1),
                      store("y", "b", "k"))
        prog = encode(g, MachineConfig(fus=4))
        kinds = [(b.slots[FUClass.MEM], b.slots[FUClass.ALU])
                 for b in prog.bundles]
        assert len(kinds[0][0]) == 1 and not kinds[0][1]   # load -> MEM
        assert len(kinds[1][1]) == 1 and not kinds[1][0]   # add  -> ALU
        assert len(kinds[2][0]) == 1                       # store -> MEM

    def test_budget_violation_raises(self):
        g = ProgramGraph()
        n = g.new_node()
        for i in range(5):
            n.add_op(add(f"a{i}", "x", i))
        g.set_entry(n.nid)
        with pytest.raises(EncodeError):
            encode(g, MachineConfig(fus=4))
        encode(g, MachineConfig(fus=8))  # fits a wider machine

    def test_branch_targets_and_exit(self):
        b = SequentialBuilder()
        b.append(add("c", "x", 1))
        b.append_cjump(cjump("c"))
        b.append(add("d", "x", 2))
        prog = encode(b.graph, MachineConfig(fus=4))
        branch = prog.bundles[1]
        assert branch.n_leaves == 2
        assert EXIT_BUNDLE in branch.leaf_targets  # taken side exits
        assert 2 in branch.leaf_targets            # fall-through side

    def test_unreachable_nodes_not_emitted(self):
        g = seq_graph(add("a", "x", 1))
        orphan = g.new_node()
        orphan.add_op(add("dead", "x", 9))
        prog = encode(g, MachineConfig(fus=4))
        assert prog.schedule_length == 1

    def test_render_lists_every_bundle(self):
        loop = livermore.kernel("LL12", 4)
        prog = encode(loop.graph, MachineConfig(fus=4))
        listing = prog.render()
        for b in prog.bundles:
            assert f"b{b.index} " in listing

    def test_paths_become_local_leaf_indices(self):
        loop = livermore.kernel("LL1", 4)
        prog = encode(loop.graph, MachineConfig(fus=4))
        for b in prog.bundles:
            for slot in b.all_slots():
                assert slot.paths
                assert all(0 <= p < b.n_leaves for p in slot.paths)


class TestSpillLowering:
    def test_spill_traffic_emitted_and_chunked(self):
        loop = livermore.kernel("LL7", 6)
        machine = MachineConfig(fus=4, phys_regs=6)
        prog = encode(loop.graph, machine)
        assert prog.spill_bundles > 0
        assert SPILL_ARRAY in prog.arrays
        mem_budget = machine.class_budget(FUClass.MEM)
        for b in prog.bundles:
            if b.kind in ("reload", "spill"):
                assert len(b.slots[FUClass.MEM]) <= mem_budget

    def test_spill_bundles_respect_typed_mem_budget(self):
        loop = livermore.kernel("LL7", 6)
        machine = MachineConfig(
            fus=4, typed={FUClass.ALU: 4, FUClass.MEM: 1, FUClass.BRANCH: 1},
            phys_regs=6)
        prog = encode(loop.graph, machine)
        for b in prog.bundles:
            if b.kind in ("reload", "spill"):
                assert len(b.slots[FUClass.MEM]) <= 1

    def test_summary_reports_layout(self):
        loop = livermore.kernel("LL3", 4)
        prog = encode(loop.graph, MachineConfig(fus=4))
        s = prog.summary()
        assert "bundles" in s and "slots" in s
