"""Unit tests for the linear-scan register allocator."""

import pytest

from repro.backend.regalloc import allocate, build_intervals
from repro.ir import Reg, add
from repro.ir.builder import SequentialBuilder
from repro.ir.registers import RegisterPressureError


def chain(*ops):
    b = SequentialBuilder()
    for op in ops:
        b.append(op)
    return b.graph


class TestIntervals:
    def test_simple_spans(self):
        # a live [0,1]; b live [1,2]; x is an input read at 0 and 1.
        g = chain(add("a", "x", 1),
                  add("b", "a", "x"),
                  add("c", "b", 2))
        ivs = {iv.name: iv for iv in build_intervals(g, g.rpo())}
        assert ivs["a"].start == 0 and ivs["a"].end == 1
        assert ivs["b"].start == 1 and ivs["b"].end == 2
        assert ivs["x"].start == 0 and ivs["x"].end == 1

    def test_exit_live_pins_to_end(self):
        g = chain(add("a", "x", 1), add("b", "a", 1), add("c", "b", 1))
        ivs = {iv.name: iv
               for iv in build_intervals(g, g.rpo(),
                                         exit_live=frozenset({Reg("a")}))}
        assert ivs["a"].end == 2
        assert not ivs["a"].spillable

    def test_loop_carried_spans_whole_loop(self):
        # s is carried around the back edge: live across the full span.
        b = SequentialBuilder()
        n1 = b.append(add("s", "s", 1))
        b.append(add("t", "s", 2))
        g = b.graph
        g.retarget_leaf(b.tail.nid, b.tail.leaves()[0].leaf_id, n1.nid)
        ivs = {iv.name: iv for iv in build_intervals(g, g.rpo())}
        assert (ivs["s"].start, ivs["s"].end) == (0, 1)


class TestAllocate:
    def test_unbounded_gives_unique_homes(self):
        g = chain(add("a", "x", 1), add("b", "a", 1), add("c", "b", 1))
        asg = allocate(g)
        names = {"a", "b", "c", "x"}
        assert set(asg.index) == names
        assert len(set(asg.index.values())) == len(names)
        assert not asg.spilled

    def test_overlapping_lifetimes_get_distinct_registers(self):
        g = chain(add("a", "x", 1),
                  add("b", "x", 2),
                  add("c", "a", "b"))
        asg = allocate(g, phys_regs=8)
        assert asg.index["a"] != asg.index["b"]
        assert asg.index["a"] != asg.index["x"]

    def test_dead_register_home_is_reused(self):
        # a dies at op 1; c's lifetime starts at op 2 -> can share.
        g = chain(add("a", "x", 1),
                  add("b", "a", 1),
                  add("c", "b", 1),
                  add("d", "c", 1))
        asg = allocate(g, phys_regs=3)
        assert not asg.spilled
        used = {asg.index[n] for n in ("a", "b", "c", "d", "x")}
        assert len(used) <= 3

    def test_spills_when_file_too_small(self):
        ops = [add(f"v{i}", "x", i) for i in range(6)]
        ops.append(add("sum", "v0", "v1"))
        ops.append(add("sum", "sum", "v2"))
        ops.append(add("sum", "sum", "v3"))
        ops.append(add("sum", "sum", "v4"))
        ops.append(add("sum", "sum", "v5"))
        g = chain(*ops)
        asg = allocate(g, phys_regs=4)
        assert asg.spilled  # pressure is 7 live values at the peak
        assert asg.scratch
        # every name has a home: physical or a spill slot
        for name in ("x", "sum", *(f"v{i}" for i in range(6))):
            assert name in asg.index or name in asg.spilled
        # spill slots are distinct
        assert len(set(asg.spilled.values())) == len(asg.spilled)

    def test_impossible_pressure_raises(self):
        g = chain(add("a", "x", 1), add("b", "a", "x"))
        with pytest.raises(RegisterPressureError):
            allocate(g, phys_regs=0)

    def test_assignment_summary_mentions_spills(self):
        g = chain(*[add(f"v{i}", "x", i) for i in range(6)],
                  add("s", "v0", "v5"), add("s2", "v1", "v4"),
                  add("s3", "v2", "v3"), add("t", "s", "s2"),
                  add("u", "t", "s3"))
        asg = allocate(g, phys_regs=4)
        assert "spilled" in asg.summary()
