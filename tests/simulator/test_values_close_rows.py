"""Vectorized NaN-aware closeness: `values_close_rows` per-lane rules.

The batched checkers compare whole lane rows at once; every verdict
must agree elementwise with the scalar ``values_close`` the walker
checks have always used -- especially on the float specials, where a
naive ``|a - b| <= tol`` silently passes ``inf`` against ``-inf``.
"""

import math

import numpy as np
import pytest

from repro.simulator.check import values_close, values_close_rows

NAN = float("nan")
INF = float("inf")


def assert_matches_scalar(a, b):
    got = values_close_rows(a, b)
    want = [values_close(x, y) for x, y in zip(a, b)]
    assert got.tolist() == want, (a, b, got.tolist(), want)
    return got


class TestFloatRows:
    def test_plain_floats(self):
        a = [1.0, 2.0, -3.5, 0.0, 1e-12]
        b = [1.0, 2.0000001, -3.5, 1e-9, 0.0]
        res = assert_matches_scalar(a, b)
        assert res.all()

    def test_disagreement_is_per_lane(self):
        res = assert_matches_scalar([1.0, 2.0, 3.0], [1.0, 9.0, 3.0])
        assert res.tolist() == [True, False, True]

    def test_relative_tolerance_scales(self):
        big = 1e12
        assert_matches_scalar([big, big], [big * (1 + 1e-9), big * 1.01])

    def test_nan_matches_nan_only(self):
        res = assert_matches_scalar([NAN, NAN, 1.0, NAN],
                                    [NAN, 1.0, NAN, -NAN])
        assert res.tolist() == [True, False, False, True]

    def test_inf_sign_and_magnitude(self):
        # the inf-vs--inf lane is the historical blind spot: their
        # difference is inf, so a bare `diff <= thresh` check with
        # inf-scaled thresh would pass it
        res = assert_matches_scalar([INF, INF, -INF, INF],
                                    [INF, -INF, -INF, 1e308])
        assert res.tolist() == [True, False, True, False]

    def test_nan_vs_inf(self):
        res = assert_matches_scalar([NAN, INF], [INF, NAN])
        assert not res.any()


class TestMixedDtypes:
    def test_both_int_rows_are_exact(self):
        a = np.array([2**60 + 1, 5, -7], dtype=np.int64)
        b = np.array([2**60 + 1, 5, -8], dtype=np.int64)
        assert values_close_rows(a, b).tolist() == [True, True, False]

    def test_object_rows_use_scalar_rule(self):
        # arbitrary-precision ints from the bit-op lanes
        a = np.array([1 << 100, NAN, 3.0], dtype=object)
        b = np.array([1 << 100, NAN, 3.0000001], dtype=object)
        res = values_close_rows(a, b)
        assert res.tolist() == [True, True, True]
        c = np.array([(1 << 100) + 1, 1.0, 4.0], dtype=object)
        assert not values_close_rows(a, c).any()

    def test_int_vs_float_rows(self):
        got = values_close_rows(np.array([1, 2, 3]),
                                np.array([1.0, 2.0, 3.5]))
        assert got.tolist() == [True, True, False]

    def test_lists_accepted(self):
        assert values_close_rows([1.0], [1.0]).tolist() == [True]


class TestScalarAgreementSweep:
    SPECIALS = [0.0, -0.0, 1.0, -1.0, 1e-9, 1e308, -1e308, INF, -INF, NAN,
                2.0**53, 2.0**53 + 2]

    @pytest.mark.parametrize("x", SPECIALS)
    def test_cross_product_matches_scalar(self, x):
        row_a = [x] * len(self.SPECIALS)
        assert_matches_scalar(row_a, self.SPECIALS)

    def test_scalar_close_still_isclose(self):
        # guard: the scalar rule itself stays math.isclose-shaped
        assert values_close(1.0, 1.0 + 1e-9)
        assert not values_close(1.0, 1.1)
        assert values_close(NAN, NAN)
        assert not math.isclose(NAN, NAN)  # our NaN rule is deliberate
