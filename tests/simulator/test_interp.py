"""Unit tests for the VLIW interpreter's execution semantics."""

import pytest

from repro.ir import (
    EXIT,
    ProgramGraph,
    add,
    cjump,
    cmp_ge,
    copy,
    div,
    load,
    mul,
    store,
    straightline_graph,
)
from repro.ir.cjtree import Branch, make_leaf
from repro.simulator import MachineState, check_equivalent, run
from repro.simulator.check import EquivalenceError


def state(**regs):
    st = MachineState()
    st.regs.update(regs)
    return st


class TestPhases:
    def test_all_operands_fetched_before_store(self):
        """Anti-dependence inside one instruction: reads see entry values."""
        g = ProgramGraph()
        n = g.new_node()
        n.add_op(mul("y", "x", 2, name="reader"))
        n.add_op(add("x", "x", 100, name="writer"))
        g.set_entry(n.nid)
        st = state(x=3)
        run(g, st)
        assert st.regs["y"] == 6       # read old x
        assert st.regs["x"] == 103     # write committed after

    def test_swap_in_one_instruction(self):
        g = ProgramGraph()
        n = g.new_node()
        n.add_op(copy("a", "b"))
        n.add_op(copy("b", "a"))
        g.set_entry(n.nid)
        st = state(a=1, b=2)
        run(g, st)
        assert (st.regs["a"], st.regs["b"]) == (2, 1)

    def test_ibm_path_commit(self):
        """Only ops on the selected path commit (IBM VLIW)."""
        g = ProgramGraph()
        n = g.new_node()
        cj = cjump("c")
        tl, fl = make_leaf(EXIT), make_leaf(EXIT)
        n.tree = Branch(cj.uid, tl, fl)
        n.cjs[cj.uid] = cj
        g.note_tree_change(n.nid)
        n.add_op(add("t", "x", 1), frozenset({tl.leaf_id}))
        n.add_op(add("f", "x", 2), frozenset({fl.leaf_id}))
        g.set_entry(n.nid)

        st = state(c=1, x=10)
        run(g, st)
        assert st.regs.get("t") == 11 and "f" not in st.regs

        st = state(c=0, x=10)
        run(g, st)
        assert st.regs.get("f") == 12 and "t" not in st.regs

    def test_condition_reads_entry_value(self):
        """A cj reads its condition from instruction entry state."""
        g = ProgramGraph()
        n = g.new_node()
        cj = cjump("c")
        tl, fl = make_leaf(EXIT), make_leaf(EXIT)
        n.tree = Branch(cj.uid, tl, fl)
        n.cjs[cj.uid] = cj
        g.note_tree_change(n.nid)
        n.add_op(add("c", "c", 1))  # co-resident write must not be seen
        g.set_entry(n.nid)
        st = state(c=0)
        r = run(g, st, keep_trace=True)
        assert r.trace[0].leaf_id == fl.leaf_id

    def test_store_value_from_entry(self):
        g = ProgramGraph()
        n = g.new_node()
        n.add_op(store("out", "v", offset=0))
        n.add_op(add("v", "v", 5))
        g.set_entry(n.nid)
        st = state(v=7)
        run(g, st)
        assert st.mem[("out", 0)] == 7


class TestArithmetic:
    def test_div_by_zero_total(self):
        g = straightline_graph([div("d", "a", "b"), store("out", "d")])
        st = state(a=1, b=0)
        run(g, st)
        assert st.mem[("out", 0)] == 0.0

    def test_loads_deterministic_default(self):
        g = straightline_graph([load("d", "arr", index="k"),
                                store("out", "d")])
        st1, st2 = state(k=3), state(k=3)
        run(g, st1)
        run(g, st2)
        assert st1.mem[("out", 0)] == st2.mem[("out", 0)]

    def test_memory_index_truncation(self):
        g = straightline_graph([store("out", "v", index="k")])
        st = state(v=1, k=2.9)
        run(g, st)
        assert ("out", 2) in st.mem


class TestRun:
    def test_counted_loop_cycles(self):
        from repro.ir import SequentialBuilder

        b = SequentialBuilder()
        n1 = b.append(store("out", "k", index="k"))
        b.append(add("k", "k", 1))
        b.append(cmp_ge("c", "k", 5))
        b.append_cjump(cjump("c"), true_target=EXIT)
        b.close_loop(n1.nid)
        st = state(k=0)
        r = run(b.graph, st)
        assert r.exited
        assert r.cycles == 4 * 5
        assert st.mem[("out", 4)] == 4

    def test_template_commit_counts(self):
        op = add("a", "a", 1, name="x")
        g = straightline_graph([op])
        r = run(g, state(a=0))
        assert r.commits_of(op.tid) == 1

    def test_cycle_budget(self):
        from repro.ir.builder import simple_loop
        from repro.simulator import SimulationError

        loop = simple_loop([add("a", "a", 1)])
        with pytest.raises(SimulationError):
            run(loop.graph, state(a=0), max_cycles=10)


class TestEquivalence:
    def test_identical_graphs_equivalent(self):
        g = straightline_graph([add("a", "x", 1), store("out", "a")])
        rep = check_equivalent(g, g.clone())
        assert rep.mean_speedup == 1.0

    def test_detects_memory_divergence(self):
        g1 = straightline_graph([add("a", "x", 1), store("out", "a")])
        g2 = straightline_graph([add("a", "x", 2), store("out", "a")])
        with pytest.raises(EquivalenceError):
            check_equivalent(g1, g2)

    def test_detects_register_divergence(self):
        g1 = straightline_graph([add("a", "x", 1), store("out", "x")])
        g2 = straightline_graph([add("a", "x", 2), store("out", "x")])
        with pytest.raises(EquivalenceError):
            check_equivalent(g1, g2, out_regs={"a"})
        # memory-only comparison passes: stores agree
        check_equivalent(g1, g2)
