"""Inefficiency-report and EXPLAIN-artifact tests.

``build_report`` already *self-checks* (ReconcileError on any
accounting mismatch against the VM scoreboard), so these tests focus
on the derived quantities -- bounds, totals, metrics groups -- and on
the artifact schema validator actually rejecting corrupted data.
"""

import json

import pytest

from repro.machine import MachineConfig
from repro.obs import (
    build_report,
    to_artifact,
    validate_explain,
    validate_explain_file,
    write_explain,
)
from repro.obs.explain import EXPLAIN_KIND, EXPLAIN_SCHEMA_VERSION
from repro.workloads import build_kernel, livermore


@pytest.fixture(scope="module")
def ll1_report():
    return build_report(livermore.kernel("LL1", 6), MachineConfig(fus=4),
                        unroll=6, family="ll")


@pytest.fixture(scope="module")
def synwhl_report():
    return build_report(build_kernel("SYNWHL", 6), MachineConfig(fus=4),
                        unroll=6, family="synth")


class TestLoopReport:
    def test_reconciles(self, ll1_report):
        assert ll1_report.reconciled
        assert all(ll1_report.reconcile.values())

    def test_bound_below_achieved(self, ll1_report):
        r = ll1_report
        assert 0 < r.lower_bound <= r.achieved_cycles
        assert r.lower_bound == max(r.dependence_bound, r.resource_bound)
        # 73 committed ops on a 4-wide machine need >= ceil(73/4) bundles
        assert r.resource_bound == -(-r.ops_committed // 4)

    def test_totals_identity(self, ll1_report):
        tot = ll1_report.totals
        assert tot["issue_slots"] == 4 * ll1_report.vm_steps
        assert tot["issue_slots"] == (tot["committed"] + tot["uncommitted"]
                                      + tot["idle_slots"])

    def test_idle_slots_by_class(self, ll1_report):
        for n in ll1_report.nodes:
            used = sum(v["used"] for v in n.by_class.values())
            assert used == n.used_slots
            assert n.issued == n.committed + n.uncommitted

    def test_metrics_groups(self, ll1_report):
        m = ll1_report.metrics
        assert m.get("journal", "accepted") == ll1_report.journal.accepted
        assert m.get("stages", "pipeline") > 0
        assert m.get("stages", "vm") > 0
        # the incremental-analysis counters rode along
        assert "analysis" in m.as_dict()

    def test_render_mentions_the_essentials(self, ll1_report):
        text = ll1_report.render()
        assert "lower bound" in text
        assert "journal:" in text
        assert "reconcile: ok" in text
        assert "segments:" in text

    def test_efficiency_in_unit_interval(self, ll1_report):
        assert 0.0 < ll1_report.efficiency <= 1.0


class TestProgramReport:
    def test_while_program_reconciles(self, synwhl_report):
        r = synwhl_report
        assert r.kind == "program"
        assert r.reconciled
        assert r.lower_bound <= r.achieved_cycles
        assert any(seg.kind == "while" for seg in r.segments)

    def test_segment_bounds_sum(self, synwhl_report):
        r = synwhl_report
        assert r.dependence_bound == sum(seg.dependence_bound
                                         for seg in r.segments)


class TestExplainArtifact:
    def test_valid_and_roundtrips(self, ll1_report, tmp_path):
        art = to_artifact(ll1_report)
        validate_explain(art)
        assert art["schema"] == EXPLAIN_SCHEMA_VERSION
        assert art["kind"] == EXPLAIN_KIND
        path = tmp_path / "EXPLAIN_ll1.json"
        write_explain(ll1_report, path)
        validate_explain_file(path)
        written = json.loads(path.read_text())
        written.pop("created"), art.pop("created")  # stamped per call
        assert written == art

    def test_program_artifact_valid(self, synwhl_report, tmp_path):
        path = tmp_path / "EXPLAIN_synwhl.json"
        write_explain(synwhl_report, path)
        validate_explain_file(path)

    @pytest.mark.parametrize("corrupt", [
        lambda a: a.__setitem__("kind", "something-else"),
        lambda a: a["bounds"].__setitem__("achieved_cycles",
                                         a["bounds"]["achieved_cycles"] + 1),
        lambda a: a["nodes"][0].__setitem__(
            "committed", a["nodes"][0]["committed"] + 1),
        lambda a: a["vm"].__setitem__("steps", a["vm"]["steps"] + 1),
        lambda a: a["segments"][0].__setitem__(
            "dependence_bound", a["segments"][0]["dependence_bound"] + 1),
        lambda a: a["reconcile"].__setitem__("ok", False),
        lambda a: a.pop("journal"),
    ])
    def test_validator_rejects_corruption(self, ll1_report, corrupt):
        # The validator re-derives the accounting identities, so any
        # single tampered count must be caught, not just shape errors.
        art = json.loads(json.dumps(to_artifact(ll1_report)))
        corrupt(art)
        with pytest.raises(ValueError):
            validate_explain(art)
