"""Hand-computed dependence-height bounds, pinned against the VM.

Each case builds a graph whose latency-weighted longest true-dependence
chain is computable by hand, asserts :func:`critical_path_bound`
returns exactly that number, and -- where the schedule is forced (a
pure chain admits exactly one order) -- executes the encoded program on
the bundle VM and checks the scoreboard realizes exactly the bound.
"""

from repro.backend.bundles import encode
from repro.backend.vm import BundleVM
from repro.ir.builder import straightline_graph
from repro.ir.loops import LoopProgram, build_while_loop
from repro.ir.operations import (
    OpKind,
    add,
    cmp_ge,
    const,
    copy,
    load,
    mul,
    store,
)
from repro.machine import MachineConfig
from repro.obs import build_report, critical_path_bound


def _run(ops, machine):
    graph = straightline_graph(list(ops))
    vm = BundleVM(encode(graph, machine))
    return vm.run()


class TestStraightLine:
    def test_pure_chain_bound_equals_vm_cycles(self):
        # a = x[0]; b = a*a; c = b+1; y[0] = c  -- a 4-op true chain.
        ops = [
            load("a", "x", offset=0),
            mul("b", "a", "a"),
            add("c", "b", 1.0),
            store("y", "c", offset=0),
        ]
        machine = MachineConfig(fus=4)
        assert critical_path_bound(ops, machine) == 4
        assert critical_path_bound(ops, machine, sinks="all") == 4
        res = _run(ops, machine)
        assert res.cycles == 4  # the chain admits exactly one schedule

    def test_parallel_chains_take_the_longest(self):
        ops = [
            load("a", "x", offset=0),
            add("b", "a", 1.0),
            store("y", "b", offset=0),     # chain of 3
            load("p", "x", offset=1),
            store("z", "p", offset=0),     # chain of 2
        ]
        assert critical_path_bound(ops, MachineConfig(fus=4)) == 3

    def test_copies_weigh_zero(self):
        # Copy substitution lets consumers bypass COPY ops, so counting
        # them would overshoot the bound for the *scheduled* graph.
        ops = [
            load("a", "x", offset=0),
            copy("b", "a"),
            add("c", "b", 1.0),
            store("y", "c", offset=0),
        ]
        assert critical_path_bound(ops, MachineConfig(fus=4)) == 3

    def test_effect_sinks_ignore_dead_tails(self):
        # The longest chain ends in a pure op (dead code after
        # clean-up); the default sinks="effects" bound must follow the
        # longest chain that ends in a store instead.
        ops = [
            load("a", "x", offset=0),
            store("y", "a", offset=0),        # effect chain: 2
            mul("t1", "a", "a"),
            mul("t2", "t1", "t1"),
            mul("t3", "t2", "t2"),            # dead tail chain: 4
        ]
        assert critical_path_bound(ops, MachineConfig(fus=4)) == 2
        assert critical_path_bound(ops, MachineConfig(fus=4),
                                   sinks="all") == 4

    def test_empty(self):
        assert critical_path_bound([], MachineConfig(fus=4)) == 0


class TestLatencyMapped:
    def test_mul_chain_under_latency_map(self):
        # Three chained 3-cycle MULs + a 1-cycle store: 3+3+3+1 = 10.
        machine = MachineConfig(fus=4, latencies={OpKind.MUL: 3})
        ops = [
            mul("b", "a", "a"),
            mul("c", "b", "b"),
            mul("d", "c", "c"),
            store("y", "d", offset=0),
        ]
        assert critical_path_bound(ops, machine) == 10
        res = _run(ops, machine)
        assert res.cycles == 10  # scoreboard realizes exactly the chain

    def test_latency_only_weights_the_chain(self):
        # The off-chain load is not on the longest path; its latency
        # must not leak into the bound.
        machine = MachineConfig(fus=4, latencies={OpKind.MUL: 3,
                                                  OpKind.LOAD: 2})
        ops = [
            mul("b", "a", "a"),
            mul("c", "b", "b"),
            store("y", "c", offset=0),       # 3+3+1 = 7
            load("p", "x", offset=0),
            store("z", "p", offset=0),       # 2+1 = 3
        ]
        assert critical_path_bound(ops, machine) == 7


class TestWhileProgram:
    def _program(self):
        # while (w < lim) { d[w] = acc; acc = acc + 1; w = w + 1 }
        # with w=0, lim=3 set in the preheader: exactly 3 iterations.
        wl = build_while_loop(
            "handwhile",
            preheader=[const("w", 0.0), const("lim", 3.0)],
            cond=[cmp_ge("wexit", "w", "lim")],
            exit_reg="wexit",
            body=[
                store("d", "acc", index="w"),
                add("acc", "acc", 1.0),
                add("w", "w", 1),
            ],
            carried=["w", "acc"])
        return LoopProgram(graph=wl.graph, name="handwhile", loops=[wl])

    def test_while_segment_bound_is_hand_computable(self):
        program = self._program()
        machine = MachineConfig(fus=4)
        report = build_report(program, machine, unroll=4)
        # Only preheader + condition + exit jump are guaranteed to run
        # (the body executes zero times in the worst case):
        # const(lim) -> cmp_ge -> cjump is the longest chain = 3.
        assert len(report.segments) == 1
        assert report.segments[0].kind == "while"
        assert report.segments[0].dependence_bound == 3
        assert report.dependence_bound == 3
        assert report.reconciled
        assert report.lower_bound <= report.achieved_cycles

    def test_vm_realizes_the_three_iterations(self):
        program = self._program()
        report = build_report(program, MachineConfig(fus=4), unroll=4)
        # 3 stores (one per iteration) must have retired; the bound
        # stays a true lower bound on the realized cycles.
        assert report.ops_committed > 3
        assert report.achieved_cycles >= report.lower_bound
