"""End-to-end CLI tests: ``repro explain`` and ``repro bench --profile``."""

import json

import pytest

from repro.__main__ import main
from repro.bench import BenchArtifact
from repro.obs import validate_explain_file


class TestExplainCommand:
    def test_ll_kernel_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "EXPLAIN_ll1.json"
        rc = main(["explain", "LL1", "--fus", "2", "--unroll", "6",
                   "--out", str(out)])
        assert rc == 0
        validate_explain_file(out)
        text = capsys.readouterr().out
        assert "lower bound" in text
        assert "reconcile: ok" in text

    def test_while_program_kernel(self, tmp_path):
        out = tmp_path / "EXPLAIN_synwhl.json"
        rc = main(["explain", "SYNWHL", "--fus", "2", "--unroll", "6",
                   "--out", str(out)])
        assert rc == 0
        validate_explain_file(out)
        data = json.loads(out.read_text())
        assert data["kernel_kind"] == "program"
        assert any(seg["kind"] == "while" for seg in data["segments"])

    def test_default_out_path_and_unroll(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["explain", "LL1", "--fus", "2", "--unroll", "6"])
        assert rc == 0
        validate_explain_file(tmp_path / "EXPLAIN_ll1_fus2.json")

    def test_unknown_kernel_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["explain", "NOSUCH", "--fus", "2"])
        assert exc.value.code == 2

    def test_artifact_matches_rendered_numbers(self, tmp_path, capsys):
        out = tmp_path / "EXPLAIN_ll3.json"
        rc = main(["explain", "LL3", "--fus", "4", "--unroll", "6",
                   "--out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        text = capsys.readouterr().out
        achieved = data["bounds"]["achieved_cycles"]
        assert f"achieved:    {achieved} cycles" in text


class TestBenchProfile:
    def test_profile_embeds_journal_tallies(self, tmp_path):
        out = tmp_path / "BENCH_profiled.json"
        rc = main(["bench", "--kernels", "LL1", "--fus", "2",
                   "--backends", "grip", "--out", str(out), "--profile",
                   "--name", "profiled"])
        assert rc == 0
        art = BenchArtifact.read(out)
        assert art.config["profile"] is True
        (rec,) = art.records
        assert rec.profile is not None
        assert rec.profile["journal"]["accepted"] == rec.moves
        assert rec.profile["journal"]["tried"] > 0
        assert isinstance(rec.profile["top_blocked"], list)
        assert rec.analysis_counters  # counters always ride along now

    def test_unprofiled_records_have_no_profile(self, tmp_path):
        out = tmp_path / "BENCH_plain.json"
        rc = main(["bench", "--kernels", "LL1", "--fus", "2",
                   "--backends", "grip", "--out", str(out),
                   "--name", "plain"])
        assert rc == 0
        (rec,) = BenchArtifact.read(out).records
        assert rec.profile is None
        assert rec.analysis_counters  # satellite: surfaced by default

    def test_profile_does_not_change_speedups(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["bench", "--kernels", "LL3", "--fus", "2",
              "--backends", "grip", "--out", str(a), "--name", "x"])
        main(["bench", "--kernels", "LL3", "--fus", "2",
              "--backends", "grip", "--out", str(b), "--name", "x",
              "--profile"])
        ra = BenchArtifact.read(a).records[0]
        rb = BenchArtifact.read(b).records[0]
        assert ra.speedup == rb.speedup
        assert ra.ii == rb.ii
        assert ra.moves == rb.moves
