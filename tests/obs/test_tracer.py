"""Unit tests for the tracer protocol and the decision journal.

The structural guarantee -- attaching a tracer changes nothing -- is
pinned across every Table-1 cell in
``tests/integration/test_schedule_equivalence.py``; these tests cover
the event/reason plumbing itself: classification of percolation
failure reports, journal tallies against the scheduler's own stats,
typed-slot starvation detection, and back-edge bookkeeping.
"""

import pytest

from repro.machine import MachineConfig
from repro.machine.model import FUClass
from repro.obs import DecisionJournal, NULL_TRACER
from repro.obs.tracer import (
    MoveAccepted,
    MoveRejected,
    NodeBegin,
    Reason,
    classify_failure,
)
from repro.pipelining import schedule_loop
from repro.scheduling import GRiPScheduler
from repro.workloads import livermore


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        # emit is a no-op, never raises, returns nothing
        assert NULL_TRACER.emit(NodeBegin(nid=1)) is None

    def test_hot_paths_default_to_null(self):
        assert GRiPScheduler(MachineConfig(fus=4)).tracer is NULL_TRACER


class TestClassifyFailure:
    @pytest.mark.parametrize("detail,expected", [
        ("true-dep: r1 written in To", Reason.DEPENDENCE),
        ("mem-true-dep: store in To", Reason.DEPENDENCE),
        ("mem-output-dep: same cell", Reason.DEPENDENCE),
        ("store-speculation: guarded store", Reason.DEPENDENCE),
        ("cj-not-root: interior jump", Reason.DEPENDENCE),
        ("blocked", Reason.DEPENDENCE),
        ("resources: n3 is full", Reason.RESOURCE),
        ("speculation-disabled: op guarded in From", Reason.SPECULATION),
        ("rename-impossible: no free register", Reason.UNIFY_FAIL),
        ("no-edge: n3 !-> n9", Reason.NO_EDGE),
        ("no-op: 17 not a regular op of n4", Reason.VANISHED),
        ("n3 is not a predecessor of n9", Reason.NO_EDGE),
        ("something entirely new", Reason.OTHER),
    ])
    def test_prefixes(self, detail, expected):
        assert classify_failure(detail) is expected

    def test_resource_blocked_overrides_detail(self):
        assert classify_failure("resources: n3 is full",
                                resource_blocked=True) is Reason.RESOURCE

    def test_typed_starvation_refines_resource(self):
        assert classify_failure("resources: n3 is full",
                                resource_blocked=True,
                                typed_starved=True) is Reason.TYPED_SLOTS

    def test_reason_values_are_json_stable(self):
        # The EXPLAIN schema serializes these values; renaming one is a
        # schema break, not a refactor.
        assert {r.value for r in Reason} == {
            "dependence", "resource", "typed-slots", "gap-veto",
            "unify-fail", "speculation", "loop-boundary", "no-edge",
            "vanished", "other"}


def _traced_run(name="LL1", fus=2, unroll=6, machine=None):
    journal = DecisionJournal()
    m = machine if machine is not None else MachineConfig(fus=fus)
    res = schedule_loop(livermore.kernel(name, unroll), m, unroll=unroll,
                        measure=False, tracer=journal)
    return journal, res


class TestJournalTallies:
    def test_accepted_matches_scheduler_stats(self):
        journal, res = _traced_run()
        assert journal.accepted == res.schedule.stats.moves
        assert journal.renames == res.schedule.stats.renames
        assert journal.unifications == res.schedule.stats.unifications
        assert journal.tried >= journal.accepted

    def test_suspensions_match_gap_policy(self):
        journal, res = _traced_run()
        assert journal.suspensions == res.schedule.gap_policy.suspensions

    def test_candidate_sets_match_scheduler(self):
        journal, res = _traced_run()
        assert journal.candidate_sets == res.schedule.candidate_builds

    def test_tallies_roundtrip_json(self):
        import json

        journal, _ = _traced_run()
        t = json.loads(json.dumps(journal.tallies()))
        assert t["accepted"] == journal.accepted
        assert sum(t["by_reason"].values()) == t["rejected"]

    def test_top_blocked_sorted_and_bounded(self):
        journal, _ = _traced_run()
        top = journal.top_blocked(3)
        assert len(top) <= 3
        counts = [b["count"] for b in top]
        assert counts == sorted(counts, reverse=True)
        for b in top:
            assert b["reason"] in {r.value for r in Reason}

    def test_event_retention_cap(self):
        journal = DecisionJournal(max_events=2)
        for i in range(5):
            journal.emit(MoveAccepted(tid=i, op="a", from_nid=1, to_nid=0,
                                      renamed=False, unified=False,
                                      split=False))
        assert len(journal.events) == 2
        assert journal.dropped_events == 3
        assert journal.accepted == 5  # tallies never drop

    def test_keep_events_false_retains_nothing(self):
        journal = DecisionJournal(keep_events=False)
        journal.emit(MoveRejected(tid=1, op="a", from_nid=1, to_nid=0,
                                  reason=Reason.DEPENDENCE, detail="x"))
        assert journal.events == []
        assert journal.rejected == 1
        assert journal.by_reason == {"dependence": 1}


class TestReasonCoverage:
    def test_typed_slot_starvation_is_detected(self):
        # LL3 (inner product) issues two loads per iteration; one MEM
        # unit on a 4-wide machine leaves total headroom while the MEM
        # class starves, which must classify as typed-slots.
        m = MachineConfig(fus=4, typed={FUClass.MEM: 1})
        journal, _ = _traced_run("LL3", machine=m)
        assert journal.by_reason.get(Reason.TYPED_SLOTS.value, 0) > 0

    def test_gap_vetoes_reach_the_journal(self):
        journal, res = _traced_run("LL1", fus=2)
        vetoes = journal.by_reason.get(Reason.GAP_VETO.value, 0)
        assert vetoes > 0
        # Policy vetoes are journal-only: the percolation stats count
        # real move_op attempts, the journal counts decision points.
        assert journal.tried == vetoes + res.schedule.stats.attempts

    def test_boundary_skips_on_cyclic_graph(self):
        # GRiP applied directly to the cyclic sequential loop graph:
        # upward walks that reach the header must skip its back-edge
        # predecessor, and the journal counts each skip.
        journal = DecisionJournal(keep_events=False)
        loop = livermore.kernel("LL1", 4)
        GRiPScheduler(MachineConfig(fus=4), tracer=journal).schedule(
            loop.graph)
        assert journal.boundary_skips > 0
