"""End-to-end smoke of ``repro bench``: pool fan-out, JSON, diff gate.

The acceptance bar: ``repro bench --jobs N`` must emit a valid artifact
whose Table-1 speedups are *identical* to the sequential path (jobs are
independent and scheduling is deterministic), and the artifact must
round-trip through its JSON schema.
"""

import json

import pytest

from repro.__main__ import main
from repro.bench import (
    BenchArtifact,
    BenchJob,
    make_jobs,
    run_job,
    run_jobs,
    smoke_jobs,
)


@pytest.fixture(scope="module")
def parallel_artifact(tmp_path_factory):
    """One --smoke --jobs 2 run shared by the CLI assertions."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_smoke.json"
    rc = main(["bench", "--smoke", "--jobs", "2", "--out", str(out)])
    assert rc == 0
    return BenchArtifact.read(out)


class TestBenchCLI:
    def test_diff_subset_without_diff_rejected_before_sweep(self, tmp_path,
                                                            capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--smoke", "--diff-subset",
                  "--out", str(tmp_path / "x.json")])
        assert exc.value.code == 2  # usage errors exit 2, documented
        assert "requires --diff" in capsys.readouterr().err
        assert not (tmp_path / "x.json").exists()  # rejected pre-sweep

    def test_artifact_round_trips(self, parallel_artifact):
        art = parallel_artifact
        assert art.name == "smoke"
        assert BenchArtifact.from_json(art.to_json()) == art

    def test_covers_every_smoke_cell(self, parallel_artifact):
        keys = {r.key for r in parallel_artifact.records}
        assert keys == {(j.kernel, j.fus, j.backend) for j in smoke_jobs()}

    def test_parallel_speedups_match_sequential(self, parallel_artifact,
                                                tmp_path):
        out = tmp_path / "BENCH_seq.json"
        rc = main(["bench", "--smoke", "--jobs", "1", "--out", str(out)])
        assert rc == 0
        seq = BenchArtifact.read(out)
        par_cells = {r.key: (r.speedup, r.ii, r.converged, r.periodic,
                             r.realized_cycles)
                     for r in parallel_artifact.records}
        seq_cells = {r.key: (r.speedup, r.ii, r.converged, r.periodic,
                             r.realized_cycles)
                     for r in seq.records}
        assert par_cells == seq_cells
        # record order is preserved by pool.map
        assert [r.key for r in parallel_artifact.records] == \
            [r.key for r in seq.records]

    def test_vm_records_have_realized_cycles(self, parallel_artifact):
        vm = [r for r in parallel_artifact.records if r.backend == "vm"]
        assert vm
        for r in vm:
            assert r.realized_cycles and r.realized_cycles > 0
            assert r.vm_steps and r.vm_steps > 0
            assert r.realized_speedup is not None

    def test_stages_recorded(self, parallel_artifact):
        for r in parallel_artifact.records:
            assert "build" in r.stages and "pipeline" in r.stages
            assert all(secs >= 0 for secs in r.stages.values())

    def test_diff_gate_passes_against_self(self, parallel_artifact,
                                           tmp_path):
        prev = tmp_path / "prev.json"
        parallel_artifact.write(prev)
        out = tmp_path / "BENCH_next.json"
        rc = main(["bench", "--smoke", "--jobs", "1", "--out", str(out),
                   "--diff", str(prev)])
        assert rc == 0

    def test_diff_gate_fails_on_tampered_baseline(self, parallel_artifact,
                                                  tmp_path):
        data = json.loads(parallel_artifact.to_json())
        data["records"][0]["speedup"] = 99.0
        prev = tmp_path / "tampered.json"
        prev.write_text(json.dumps(data))
        out = tmp_path / "BENCH_next.json"
        rc = main(["bench", "--smoke", "--jobs", "1", "--out", str(out),
                   "--diff", str(prev)])
        assert rc == 1

    def test_unknown_kernel_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--kernels", "LL99"])
        assert exc.value.code == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_smoke_rejects_conflicting_selection_flags(self, capsys):
        for extra in (["--fus", "2"], ["--family", "synth"]):
            with pytest.raises(SystemExit) as exc:
                main(["bench", "--smoke", *extra])
            assert exc.value.code == 2
            assert "--smoke fixes" in capsys.readouterr().err


class TestExitCodes:
    """The documented contract: 0 clean, 1 regression/mismatch, 2 usage.

    The 0 and 1 arms are covered end to end by
    ``test_diff_gate_passes_against_self`` /
    ``test_diff_gate_fails_on_tampered_baseline``; this class pins the
    usage arm for both subcommands (argparse errors included).
    """

    def test_bench_usage_exit_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--diff-subset"])
        assert exc.value.code == 2

    def test_argparse_errors_exit_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--backends", "nope"])
        assert exc.value.code == 2
        capsys.readouterr()


class TestSynthFamily:
    def test_smoke_covers_both_families(self):
        jobs = smoke_jobs()
        assert {j.family for j in jobs} == {"ll", "synth"}

    def test_run_job_builds_synth_kernels(self):
        rec = run_job(BenchJob(kernel="SYNRED", fus=2, backend="grip",
                               unroll=6, family="synth"))
        assert rec.key == ("SYNRED", 2, "grip")
        assert rec.family == "synth"
        assert rec.speedup is not None

    def test_make_jobs_infers_family(self):
        jobs = make_jobs(["LL1", "SYNSTR"], [2], ["grip"])
        assert [(j.kernel, j.family) for j in jobs] == \
            [("LL1", "ll"), ("SYNSTR", "synth")]
        with pytest.raises(ValueError, match="unknown kernel"):
            make_jobs(["NOPE"], [2], ["grip"])

    def test_family_flag_selects_kernels(self, tmp_path):
        out = tmp_path / "synth.json"
        rc = main(["bench", "--family", "synth", "--kernels", "SYNIND",
                   "--fus", "2", "--backends", "grip",
                   "--out", str(out)])
        assert rc == 0
        art = BenchArtifact.read(out)
        assert [r.key for r in art.records] == [("SYNIND", 2, "grip")]
        assert art.config["families"] == ["synth"]

    def test_pre_family_artifacts_still_load(self, parallel_artifact):
        """Schema 1 artifacts written before the family field existed
        must read back with the default."""
        data = json.loads(parallel_artifact.to_json())
        for rec in data["records"]:
            del rec["family"]
        art = BenchArtifact.from_json(json.dumps(data))
        assert {r.family for r in art.records} == {"ll"}


class TestProgramKernels:
    """SYNWHL / SYNSEQ: LoopProgram-shaped bench cells."""

    def test_post_skipped_for_program_kernels(self):
        jobs = make_jobs(["SYNWHL", "SYNRED"], [2], ["grip", "post", "vm"])
        assert ("SYNWHL", 2, "post") not in {
            (j.kernel, j.fus, j.backend) for j in jobs}
        assert ("SYNRED", 2, "post") in {
            (j.kernel, j.fus, j.backend) for j in jobs}

    def test_program_grip_record_reports_measured_speedup(self):
        rec = run_job(BenchJob(kernel="SYNSEQ", fus=4, backend="grip",
                               unroll=6, family="synth"))
        assert rec.key == ("SYNSEQ", 4, "grip")
        assert rec.speedup is not None and rec.speedup > 0
        assert rec.ii is None          # no analytic II for programs
        assert rec.converged

    def test_program_vm_realized_pairs_same_state(self):
        """Under a single-cycle machine the realized speedup must equal
        the measured schedule speedup: both ratios are over one shared
        initial state, and realized cycles == tree cycles without
        latencies.  (Regression: pairing seq cycles from one state
        with VM cycles from another silently changed the while loop's
        trip count between numerator and denominator.)"""
        rec = run_job(BenchJob(kernel="SYNWHL", fus=4, backend="vm",
                               unroll=6, family="synth"))
        assert rec.realized_cycles is not None
        assert rec.vm_steps == rec.realized_cycles  # single-cycle ops
        assert rec.realized_speedup == pytest.approx(rec.speedup)

    def test_smoke_includes_while_kernel(self):
        jobs = smoke_jobs()
        kernels = {j.kernel for j in jobs}
        assert "SYNWHL" in kernels
        assert not any(j.kernel == "SYNWHL" and j.backend == "post"
                       for j in jobs)


class TestRunnerUnits:
    def test_run_job_grip_record(self):
        rec = run_job(BenchJob(kernel="LL3", fus=2, backend="grip",
                               unroll=8))
        assert rec.key == ("LL3", 2, "grip")
        assert rec.speedup is not None
        assert rec.moves is not None and rec.moves > 0
        assert rec.candidate_builds is not None

    def test_run_jobs_sequential_fallback(self):
        jobs = [BenchJob(kernel="LL3", fus=2, backend="post", unroll=8)]
        recs = run_jobs(jobs, processes=4)  # one job: stays in-process
        assert len(recs) == 1
        assert recs[0].backend == "post"
