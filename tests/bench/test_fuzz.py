"""The fuzz lane end to end: clean runs, injected bugs, shrinking,
repro artifacts, replay, exit codes."""

import json

import pytest

from repro.__main__ import main
from repro.bench.fuzz import (
    FUZZ_KIND,
    FUZZ_SCHEMA,
    case_from_seed,
    replay,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.workloads.synth import generate


class TestCaseDerivation:
    def test_case_is_pure_in_the_seed(self):
        assert case_from_seed(5) == case_from_seed(5)

    def test_cli_tamper_choices_mirror_registry(self):
        """__main__ keeps a literal copy of the tamper names (so the
        arg parser needn't import the scheduling stack); pin the two
        against drift."""
        from repro.__main__ import TAMPER_NAMES
        from repro.bench.fuzz import TAMPERS

        assert tuple(sorted(TAMPER_NAMES)) == tuple(sorted(TAMPERS))

    def test_run_axes_are_exercised(self):
        cases = [case_from_seed(s) for s in range(40)]
        assert {c.fus for c in cases} == {2, 4, 8}
        assert any(c.typed for c in cases)
        assert {c.unroll for c in cases} <= {4, 6, 8}

    def test_typed_machine_shape(self):
        case = next(c for c in (case_from_seed(s) for s in range(40))
                    if c.typed)
        machine = case.machine()
        assert machine.typed is not None
        assert sum(machine.typed.values()) >= 1


class TestCleanRuns:
    def test_small_budget_clean(self, tmp_path):
        report = run_fuzz(8, 0, verify_every=4, out_dir=tmp_path,
                          log=lambda msg: None)
        assert report.ok
        assert report.verified_seeds == [0, 4]
        assert not list(tmp_path.glob("FUZZ_*.json"))

    def test_cli_clean_exit_zero(self, tmp_path):
        rc = main(["fuzz", "--budget", "3", "--seed", "0",
                   "--verify-every", "0", "--out-dir", str(tmp_path)])
        assert rc == 0

    def test_single_case_with_verify_mode(self):
        assert run_case(case_from_seed(1), verify=True) is None


class TestInjectedBug:
    """The acceptance bar: a deliberately injected scheduler bug must
    be caught, shrunk to a minimized repro artifact, and replayable."""

    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("fuzz")
        report = run_fuzz(2, 0, verify_every=0, out_dir=out,
                          tamper="drop-store", log=lambda msg: None)
        return report, out

    def test_bug_is_caught(self, campaign):
        report, _ = campaign
        assert not report.ok
        assert len(report.failures) == 2
        for _, failure, path in report.failures:
            # dropping a store is observable through memory
            assert failure.stage in ("equivalence", "differential")
            assert path is not None and path.exists()

    def test_artifact_schema(self, campaign):
        _, out = campaign
        data = json.loads((out / "FUZZ_0.json").read_text())
        assert data["kind"] == FUZZ_KIND
        assert data["schema"] == FUZZ_SCHEMA
        assert data["seed"] == 0
        assert data["tamper"] == "drop-store"
        assert data["case"]["fus"] in (2, 4, 8)
        assert "scenario" in data["case"]
        assert data["source"].startswith("# synth seed=0")
        assert data["minimized"] is not None
        assert data["minimized"]["unroll"] <= data["case"]["unroll"]

    def test_minimized_is_no_larger(self, campaign):
        _, out = campaign
        data = json.loads((out / "FUZZ_0.json").read_text())
        orig_stmts = data["source"].count(";")
        mini_stmts = data["minimized"]["source"].count(";")
        assert mini_stmts <= orig_stmts

    def test_replay_reproduces(self, campaign):
        _, out = campaign
        failure = replay(out / "FUZZ_0.json")
        assert failure is not None
        assert failure.stage in ("equivalence", "differential")

    def test_replay_cli_exit_codes(self, campaign):
        _, out = campaign
        assert main(["fuzz", "--replay", str(out / "FUZZ_0.json")]) == 1

    def test_cli_exit_one_on_failures(self, tmp_path):
        rc = main(["fuzz", "--budget", "1", "--verify-every", "0",
                   "--tamper", "drop-store", "--out-dir", str(tmp_path)])
        assert rc == 1

    def test_shrinker_reports_progress(self):
        """On a multi-statement program the shrinker must drop dead
        statements while the tampered failure persists."""
        case = case_from_seed(2)  # seed 2: a 4-statement stream body
        program = generate(case.scenario)
        assert len(program.statements) > 1
        shrunk = shrink_case(case, program, tamper="drop-store")
        assert shrunk.attempts > 0
        assert len(shrunk.program.statements) >= 1
        assert len(shrunk.program.statements) <= len(program.statements)


class TestReplayValidation:
    def test_replay_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a repro-fuzz"):
            replay(bogus)

    def test_cli_usage_errors_exit_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--budget", "0"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--replay", str(tmp_path / "missing.json")])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--replay", "x.json", "--tamper", "drop-store"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--budget must be" in err
        assert "cannot replay" in err
