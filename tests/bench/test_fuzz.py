"""The fuzz lane end to end: clean runs, injected bugs, shrinking,
repro artifacts, replay, exit codes."""

import json

import pytest

from repro.__main__ import main
from repro.bench.fuzz import (
    FUZZ_KIND,
    FUZZ_SCHEMA,
    case_from_seed,
    replay,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.workloads.synth import generate


class TestCaseDerivation:
    def test_case_is_pure_in_the_seed(self):
        assert case_from_seed(5) == case_from_seed(5)

    def test_cli_tamper_choices_mirror_registry(self):
        """__main__ keeps a literal copy of the tamper names (so the
        arg parser needn't import the scheduling stack); pin the two
        against drift."""
        from repro.__main__ import TAMPER_NAMES
        from repro.bench.fuzz import TAMPERS

        assert tuple(sorted(TAMPER_NAMES)) == tuple(sorted(TAMPERS))

    def test_run_axes_are_exercised(self):
        cases = [case_from_seed(s) for s in range(40)]
        assert {c.fus for c in cases} == {2, 4, 8}
        assert any(c.typed for c in cases)
        assert {c.unroll for c in cases} <= {4, 6, 8}

    def test_typed_machine_shape(self):
        case = next(c for c in (case_from_seed(s) for s in range(40))
                    if c.typed)
        machine = case.machine()
        assert machine.typed is not None
        assert sum(machine.typed.values()) >= 1


class TestCleanRuns:
    def test_small_budget_clean(self, tmp_path):
        report = run_fuzz(8, 0, verify_every=4, out_dir=tmp_path,
                          log=lambda msg: None)
        assert report.ok
        assert report.verified_seeds == [0, 4]
        assert not list(tmp_path.glob("FUZZ_*.json"))

    def test_cli_clean_exit_zero(self, tmp_path):
        rc = main(["fuzz", "--budget", "3", "--seed", "0",
                   "--verify-every", "0", "--out-dir", str(tmp_path)])
        assert rc == 0

    def test_single_case_with_verify_mode(self):
        assert run_case(case_from_seed(1), verify=True) is None


class TestInjectedBug:
    """The acceptance bar: a deliberately injected scheduler bug must
    be caught, shrunk to a minimized repro artifact, and replayable."""

    #: first seed of the pinned 2-seed tamper campaign.  Not every seed
    #: can observe a dropped store: a program whose loops overwrite the
    #: same cells with identical (constant-folded) values masks the
    #: drop legitimately, so the test pins seeds whose first-in-RPO
    #: store is observable.
    SEED0 = 3

    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("fuzz")
        report = run_fuzz(2, self.SEED0, verify_every=0, out_dir=out,
                          tamper="drop-store", log=lambda msg: None)
        return report, out

    def test_bug_is_caught(self, campaign):
        report, _ = campaign
        assert not report.ok
        assert len(report.failures) == 2
        for _, failure, path in report.failures:
            # dropping a store is observable through memory
            assert failure.stage in ("equivalence", "differential")
            assert path is not None and path.exists()

    def test_artifact_schema(self, campaign):
        _, out = campaign
        data = json.loads((out / f"FUZZ_{self.SEED0}.json").read_text())
        assert data["kind"] == FUZZ_KIND
        assert data["schema"] == FUZZ_SCHEMA
        assert data["seed"] == self.SEED0
        assert data["tamper"] == "drop-store"
        assert data["case"]["fus"] in (2, 4, 8)
        assert data["case"]["typed_shape"] in ("balanced", "mem-starved",
                                               "branch-rich")
        assert "lat" in data["case"]
        assert "scenario" in data["case"]
        assert data["source"].startswith(f"# synth seed={self.SEED0}")
        assert data["minimized"] is not None
        assert data["minimized"]["unroll"] <= data["case"]["unroll"]

    def test_minimized_is_no_larger(self, campaign):
        _, out = campaign
        data = json.loads((out / f"FUZZ_{self.SEED0}.json").read_text())
        orig_stmts = data["source"].count(";")
        mini_stmts = data["minimized"]["source"].count(";")
        assert mini_stmts <= orig_stmts

    def test_replay_reproduces(self, campaign):
        _, out = campaign
        failure = replay(out / f"FUZZ_{self.SEED0}.json")
        assert failure is not None
        assert failure.stage in ("equivalence", "differential")

    def test_replay_cli_exit_codes(self, campaign):
        _, out = campaign
        assert main(["fuzz", "--replay",
                     str(out / f"FUZZ_{self.SEED0}.json")]) == 1

    def test_cli_exit_one_on_failures(self, tmp_path):
        rc = main(["fuzz", "--budget", "1", "--verify-every", "0",
                   "--tamper", "drop-store", "--out-dir", str(tmp_path)])
        assert rc == 1

    def test_shrinker_reports_progress(self):
        """On a multi-statement program the shrinker must drop dead
        statements while the tampered failure persists."""
        case = case_from_seed(4)  # seed 4: a 5-statement single loop
        program = generate(case.scenario)
        assert len(program.statements) > 1
        shrunk = shrink_case(case, program, tamper="drop-store")
        assert shrunk.attempts > 0
        assert len(shrunk.program.statements) >= 1
        assert len(shrunk.program.statements) <= len(program.statements)


class TestWidenedMatrix:
    """The PR-5 fuzz axes: latency maps, MEM-starved / BRANCH-rich
    typed shapes, while/multi-loop scenarios."""

    def test_new_axes_are_exercised(self):
        cases = [case_from_seed(s) for s in range(60)]
        assert any(c.lat is not None for c in cases)
        shapes = {c.typed_shape for c in cases if c.typed}
        assert {"balanced", "mem-starved", "branch-rich"} <= shapes
        scs = [c.scenario for c in cases]
        assert any(sc.while_density > 0 for sc in scs)
        assert any(sc.n_loops > 1 for sc in scs)
        assert any(sc.special_density > 0 for sc in scs)

    def test_latency_machine_derivation(self):
        from repro.bench.fuzz import LATENCY_MAPS

        case = next(c for c in (case_from_seed(s) for s in range(60))
                    if c.lat is not None)
        machine = case.machine()
        assert machine.latencies == LATENCY_MAPS[case.lat]

    def test_while_scenario_runs_clean(self):
        seed = next(s for s in range(60)
                    if case_from_seed(s).scenario.while_density > 0)
        assert run_case(case_from_seed(seed)) is None

    def test_multi_loop_scenario_runs_clean_with_verify(self):
        seed = next(s for s in range(60)
                    if case_from_seed(s).scenario.n_loops > 1)
        assert run_case(case_from_seed(seed), verify=True) is None

    def test_special_scenario_runs_clean(self):
        seed = next(s for s in range(60)
                    if case_from_seed(s).scenario.special_density > 0)
        assert run_case(case_from_seed(seed)) is None


class TestStratification:
    def test_stratified_seeds_balanced_and_pure(self):
        from collections import Counter

        from repro.bench.fuzz import STRATA, case_stratum, stratified_seeds

        seeds = stratified_seeds(33, 0)
        assert len(seeds) == 33
        assert len(set(seeds)) == 33
        assert seeds == stratified_seeds(33, 0)  # pure
        counts = Counter(case_stratum(s) for s in seeds)
        assert set(counts) == set(STRATA)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_stratified_campaign_runs(self, tmp_path):
        report = run_fuzz(7, 0, verify_every=0, out_dir=tmp_path,
                          stratify=True, log=lambda msg: None)
        assert report.ok
        assert report.stratified
        assert len(report.seeds) == 7
        assert "stratified seeds" in report.render()

    def test_cli_stratify_flag(self, tmp_path):
        rc = main(["fuzz", "--budget", "2", "--seed", "0", "--stratify",
                   "--verify-every", "0", "--out-dir", str(tmp_path)])
        assert rc == 0


class TestShrinkerRoundTrip:
    """Satellite contract: a minimized ``FUZZ_<seed>.json`` must (a)
    still fail under ``--replay`` and (b) be 1-minimal -- no single
    droppable statement can be removed, and no smaller unroll from the
    shrink ladder, while still reproducing the failure."""

    SEED = 4  # multi-statement program whose tampered failure shrinks

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("shrink")
        report = run_fuzz(1, self.SEED, verify_every=0, out_dir=out,
                          tamper="drop-store", log=lambda msg: None)
        assert not report.ok
        return out / f"FUZZ_{self.SEED}.json"

    def test_minimized_replay_still_fails(self, artifact):
        failure = replay(artifact)
        assert failure is not None
        assert failure.stage in ("equivalence", "differential")

    def test_minimized_is_1_minimal(self, artifact):
        import re

        from repro.bench.fuzz import FuzzCase, run_source
        from repro.workloads.synth import Scenario

        data = json.loads(artifact.read_text())
        case = FuzzCase(
            seed=data["seed"],
            scenario=Scenario.from_dict(data["case"]["scenario"]),
            fus=data["case"]["fus"], typed=data["case"]["typed"],
            unroll=data["case"]["unroll"],
            typed_shape=data["case"]["typed_shape"],
            lat=data["case"]["lat"])
        machine = case.machine()
        mini = data["minimized"]
        stage = data["failure"]["stage"]

        def still_fails(src: str, unroll: int) -> bool:
            f = run_source(src, unroll, machine, name="min1",
                           tamper=data["tamper"])
            return f is not None and f.stage == stage

        # the minimized source itself reproduces at its recorded unroll
        assert still_fails(mini["source"], mini["unroll"])

        # 1-minimal over statements: dropping any single body line of
        # the minimized source kills the reproduction (or the program)
        lines = mini["source"].splitlines()
        body_idx = [i for i, ln in enumerate(lines)
                    if re.match(r"\s{4}\S", ln)]
        droppable = [i for i in body_idx
                     if not re.match(r"\s*w\d+ = w\d+ \+ 1;", lines[i])]
        if len(droppable) > 1:
            for i in droppable:
                cand = "\n".join(lines[:i] + lines[i + 1:]) + "\n"
                try:
                    reproduced = still_fails(cand, mini["unroll"])
                except Exception:
                    reproduced = False
                assert not reproduced, (
                    f"minimized repro not 1-minimal: line {i} droppable")

        # 1-minimal over the unroll ladder (the shrinker tries 2, 3)
        for smaller in (2, 3):
            if smaller < mini["unroll"]:
                assert not still_fails(mini["source"], smaller)

    def test_statement_accounting(self, artifact):
        data = json.loads(artifact.read_text())
        mini = data["minimized"]
        assert mini["statements_dropped"] >= 0
        assert mini["shrink_attempts"] > 0


class TestReplayValidation:
    def test_replay_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a repro-fuzz"):
            replay(bogus)

    def test_cli_usage_errors_exit_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--budget", "0"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--replay", str(tmp_path / "missing.json")])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--replay", "x.json", "--tamper", "drop-store"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--budget must be" in err
        assert "cannot replay" in err


class TestBatchedLanes:
    """PR-8 lane model: 16 states per case through the batched VM,
    per-case vacuity accounting, and journal tallies surfaced in the
    campaign summary."""

    def test_case_stats_via_sink(self):
        from repro.bench.fuzz import CaseStats

        sink = []
        assert run_case(case_from_seed(1), stats_sink=sink) is None
        (stats,) = sink
        assert isinstance(stats, CaseStats)
        assert stats.n_lanes == 16
        assert 0 <= stats.checked_lanes <= stats.n_lanes
        assert stats.to_dict() == {"n_lanes": 16,
                                   "checked_lanes": stats.checked_lanes}

    def test_lane_count_is_tunable(self):
        sink = []
        assert run_case(case_from_seed(1), lanes=5, stats_sink=sink) is None
        assert sink[0].n_lanes == 5

    def test_failing_case_contributes_no_stats(self):
        sink = []
        failure = run_case(case_from_seed(3), tamper="drop-store",
                           stats_sink=sink)
        assert failure is not None
        assert sink == []

    def test_report_aggregates_lane_accounting(self, tmp_path):
        report = run_fuzz(6, 0, verify_every=0, out_dir=tmp_path,
                          log=lambda msg: None)
        assert report.ok
        assert report.lanes == 16
        assert report.states_checked == 6 * 16
        assert 0 < report.checked_lanes <= report.states_checked
        rendered = report.render()
        assert "lanes: 16 states/case, 96 states checked" in rendered
        assert "all-vacuous seeds:" in rendered
        assert "scheduler hops tried" in rendered

    def test_journal_tallies_attached_outside_replay(self, tmp_path):
        # satellite 6: every campaign case runs under a tally-only
        # DecisionJournal, so hop totals are non-zero on any real run
        report = run_fuzz(3, 0, verify_every=0, out_dir=tmp_path,
                          log=lambda msg: None)
        assert report.hops_tried > 0
        assert 0 < report.hops_accepted <= report.hops_tried

    def test_artifact_records_lanes_and_stats(self, tmp_path):
        report = run_fuzz(1, 3, verify_every=0, out_dir=tmp_path,
                          tamper="drop-store", log=lambda msg: None)
        assert not report.ok
        data = json.loads((tmp_path / "FUZZ_3.json").read_text())
        assert data["lanes"] == 16
        assert data["stats"] is None  # failing case: no clean stats

    def test_replay_honors_recorded_lanes(self, tmp_path):
        report = run_fuzz(1, 3, verify_every=0, out_dir=tmp_path,
                          tamper="drop-store", log=lambda msg: None)
        assert not report.ok
        art = tmp_path / "FUZZ_3.json"
        data = json.loads(art.read_text())
        data["lanes"] = 4
        art.write_text(json.dumps(data))
        failure = replay(art)
        assert failure is not None

    def test_cli_lanes_flag(self, tmp_path):
        rc = main(["fuzz", "--budget", "2", "--seed", "0", "--lanes", "6",
                   "--verify-every", "0", "--out-dir", str(tmp_path)])
        assert rc == 0

    def test_cli_rejects_bad_lanes(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--budget", "1", "--lanes", "0"])
        assert exc.value.code == 2
        assert "--lanes must be" in capsys.readouterr().err


class TestPolicyStratum:
    """Fuzz cases scheduled under seeded random policies.

    About a quarter of seeds carry a ``policy_seed``; their schedules
    run under a random-but-valid SchedulePolicy and every check
    applies unchanged.  Artifacts record both the seed and the
    rendered policy dict; replay uses the dict (robust against
    random_policy draw drift)."""

    def _policy_seed(self, tamper_observable=False):
        for s in range(200):
            case = case_from_seed(s)
            if case.policy_seed is None:
                continue
            if not tamper_observable:
                return s
            if run_case(case, tamper="drop-store") is not None:
                return s
        raise AssertionError("no policy-stratum seed found in [0, 200)")

    def test_policy_axis_is_exercised_and_pure(self):
        cases = [case_from_seed(s) for s in range(40)]
        with_policy = [c for c in cases if c.policy_seed is not None]
        assert with_policy
        assert len(with_policy) < len(cases)  # default path still covered
        c = with_policy[0]
        assert c.policy() == case_from_seed(c.seed).policy()
        assert c.policy().unroll is None

    def test_policy_case_runs_clean(self):
        failure = run_case(case_from_seed(self._policy_seed()))
        assert failure is None

    def test_stratified_seeds_cover_policy(self):
        from repro.bench.fuzz import STRATA, case_stratum, stratified_seeds

        assert "policy" in STRATA
        seeds = stratified_seeds(33, 0)
        strata = {case_stratum(s) for s in seeds}
        assert "policy" in strata

    def test_artifact_records_policy_and_replays(self, tmp_path):
        seed = self._policy_seed(tamper_observable=True)
        report = run_fuzz(1, seed, verify_every=0, out_dir=tmp_path,
                          tamper="drop-store", log=lambda msg: None)
        assert not report.ok
        art = tmp_path / f"FUZZ_{seed}.json"
        data = json.loads(art.read_text())
        assert data["case"]["policy_seed"] == seed
        pol = data["case"]["policy"]
        assert pol is not None
        from repro.scheduling.policy import SchedulePolicy

        assert SchedulePolicy.from_dict(pol) == case_from_seed(seed).policy()
        failure = replay(art)
        assert failure is not None

    def test_default_case_records_no_policy(self, tmp_path):
        for s in range(40):
            if case_from_seed(s).policy_seed is None:
                seed = s
                break
        report = run_fuzz(1, seed, verify_every=0, out_dir=tmp_path,
                          tamper="drop-store", log=lambda msg: None)
        if not report.ok:  # not every seed observes the tamper
            data = json.loads((tmp_path / f"FUZZ_{seed}.json").read_text())
            assert data["case"]["policy_seed"] is None
            assert data["case"]["policy"] is None
