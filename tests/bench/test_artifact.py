"""Unit tests for BENCH_*.json artifacts and the regression diff."""

import json

import pytest

from repro.bench import (
    BenchArtifact,
    BenchRecord,
    diff_artifacts,
)


def record(kernel="LL1", fus=4, backend="grip", speedup=4.0, **kw):
    defaults = dict(unroll=12, ops_per_iteration=5, ii=1.25,
                    converged=True, periodic=True,
                    stages={"build": 0.01, "pipeline": 0.5})
    defaults.update(kw)
    return BenchRecord(kernel=kernel, fus=fus, backend=backend,
                       speedup=speedup, **defaults)


def artifact(records, name="test"):
    return BenchArtifact(name=name, records=records,
                         config={"jobs": 1}, wall_seconds=1.0, created=1.0)


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        art = artifact([record(), record(backend="post", speedup=3.5),
                        record(backend="vm", realized_cycles=120,
                               vm_steps=100, realized_speedup=3.9)])
        back = BenchArtifact.from_json(art.to_json())
        assert back == art
        # and once more: serialization is stable
        assert back.to_json() == art.to_json()

    def test_file_round_trip(self, tmp_path):
        art = artifact([record()])
        path = art.write(tmp_path / "BENCH_test.json")
        assert BenchArtifact.read(path) == art

    def test_rejects_foreign_json(self):
        with pytest.raises(ValueError, match="not a repro-bench"):
            BenchArtifact.from_json(json.dumps({"kind": "other"}))

    def test_rejects_unknown_schema(self):
        art = artifact([record()])
        data = json.loads(art.to_json())
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            BenchArtifact.from_json(json.dumps(data))

    def test_non_converged_speedup_survives(self):
        art = artifact([record(speedup=None, ii=None, converged=False,
                               periodic=False)])
        back = BenchArtifact.from_json(art.to_json())
        assert back.records[0].speedup is None
        assert not back.records[0].converged


class TestViews:
    def test_speedup_table_layout(self):
        art = artifact([record(fus=2), record(fus=4),
                        record(fus=2, backend="post", speedup=1.8)])
        t = art.speedup_table()
        assert tuple(t.fu_configs) == (2, 4)
        assert t.cells["LL1"][(2, "GRiP")] == 4.0
        assert t.cells["LL1"][(2, "POST")] == 1.8
        assert "GRiP@2" in t.render()

    def test_speedup_table_json_round_trip(self):
        from repro.reporting import SpeedupTable

        t = artifact([record(fus=2), record(fus=4)]).speedup_table()
        back = SpeedupTable.from_dict(t.to_dict())
        assert back.cells == t.cells
        assert tuple(back.fu_configs) == tuple(t.fu_configs)
        assert back.render() == t.render()

    def test_stage_totals_aggregate(self):
        art = artifact([record(), record(backend="post")])
        totals = art.stage_totals()
        assert totals["build"] == pytest.approx(0.02)
        assert totals["pipeline"] == pytest.approx(1.0)


class TestDiffGate:
    def test_identical_sweeps_pass(self):
        a = artifact([record(), record(backend="post", speedup=3.5)])
        b = artifact([record(), record(backend="post", speedup=3.5)])
        diff = diff_artifacts(a, b)
        assert diff.ok
        assert diff.unchanged == 2

    def test_speedup_drop_beyond_tol_fails(self):
        old = artifact([record(speedup=4.0)])
        new = artifact([record(speedup=3.0)])
        diff = diff_artifacts(old, new, rel_tol=0.05)
        assert not diff.ok
        assert len(diff.regressions) == 1
        assert "REGRESSION" in diff.render()

    def test_drop_within_tol_passes(self):
        old = artifact([record(speedup=4.0)])
        new = artifact([record(speedup=3.9)])
        assert diff_artifacts(old, new, rel_tol=0.05).ok

    def test_lost_convergence_is_a_regression(self):
        old = artifact([record(speedup=4.0)])
        new = artifact([record(speedup=None, converged=False)])
        assert not diff_artifacts(old, new).ok

    def test_missing_cell_is_a_regression(self):
        old = artifact([record(), record(kernel="LL2")])
        new = artifact([record()])
        diff = diff_artifacts(old, new)
        assert not diff.ok
        assert diff.missing == [("LL2", 4, "grip")]

    def test_added_coverage_is_fine(self):
        old = artifact([record()])
        new = artifact([record(), record(kernel="LL2")])
        diff = diff_artifacts(old, new)
        assert diff.ok
        assert diff.added == [("LL2", 4, "grip")]

    def test_improvement_reported_not_gated(self):
        old = artifact([record(speedup=4.0)])
        new = artifact([record(speedup=5.0)])
        diff = diff_artifacts(old, new)
        assert diff.ok
        assert len(diff.improvements) == 1

    def test_subset_ignores_uncovered_baseline_cells(self):
        """Smoke-vs-full-table gating: absent cells are not missing."""
        old = artifact([record(), record(kernel="LL2"),
                        record(kernel="LL7", fus=8)])
        new = artifact([record()])
        diff = diff_artifacts(old, new, subset=True)
        assert diff.ok
        assert diff.missing == []
        assert diff.unchanged == 1

    def test_subset_still_gates_shared_cells(self):
        old = artifact([record(speedup=4.0), record(kernel="LL2")])
        new = artifact([record(speedup=3.0)])
        diff = diff_artifacts(old, new, subset=True)
        assert not diff.ok
        assert len(diff.regressions) == 1

    def test_different_unroll_is_incomparable_not_gated(self):
        """Sweeps at different unrolls must fail loudly, not spuriously."""
        old = artifact([record(speedup=4.0, unroll=12)])
        new = artifact([record(speedup=4.0, unroll=20)])
        diff = diff_artifacts(old, new)
        assert not diff.ok
        assert diff.incomparable == [("LL1", 4, "grip")]
        assert not diff.regressions
        assert "INCOMPARABLE" in diff.render()


class TestPolicyDiff:
    """Cells scheduled under different policies never diff silently."""

    def test_different_policy_is_incomparable(self):
        old = artifact([record(speedup=4.0, policy_fingerprint="aa" * 8)])
        new = artifact([record(speedup=2.0, policy_fingerprint="bb" * 8)])
        diff = diff_artifacts(old, new)
        assert not diff.ok
        assert diff.incomparable == [("LL1", 4, "grip")]
        assert not diff.regressions
        rendered = diff.render()
        assert "INCOMPARABLE" in rendered
        assert "different schedule policy" in rendered

    def test_same_policy_diffs_normally(self):
        old = artifact([record(speedup=4.0, policy_fingerprint="aa" * 8)])
        new = artifact([record(speedup=4.0, policy_fingerprint="aa" * 8)])
        assert diff_artifacts(old, new).ok

    def test_absent_fingerprint_means_default(self):
        """Pre-policy baselines gate default-policy sweeps cleanly."""
        from repro.scheduling.policy import DEFAULT_POLICY

        old = artifact([record(speedup=4.0)])  # pre-policy record
        new = artifact([record(
            speedup=4.0, policy_fingerprint=DEFAULT_POLICY.fingerprint())])
        diff = diff_artifacts(old, new)
        assert diff.ok
        assert diff.incomparable == []
        assert diff.unchanged == 1

    def test_absent_vs_non_default_is_incomparable(self):
        old = artifact([record(speedup=4.0)])
        new = artifact([record(speedup=4.0, policy_fingerprint="cc" * 8)])
        diff = diff_artifacts(old, new)
        assert not diff.ok
        assert diff.incomparable == [("LL1", 4, "grip")]

    def test_policy_fingerprint_round_trips(self):
        art = artifact([record(policy_fingerprint="ab" * 8)])
        back = BenchArtifact.from_json(art.to_json())
        assert back.records[0].policy_fingerprint == "ab" * 8
        assert back == art
