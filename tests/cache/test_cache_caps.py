"""Disk caps of the schedule cache store: max-entries + TTL.

The caps exist for many-policy churn (``repro tune`` writes one entry
per candidate policy); the contracts are: the store never holds more
than ``max_entries`` on disk after a put, expired entries read as
misses and are unlinked, both paths tick their metrics counters, and
a capped cache still answers warm hits bit-identically.
"""

import time

import pytest

from repro import api
from repro.cache import ScheduleCache
from repro.machine import MachineConfig
from repro.workloads import build_kernel


def _put(cache, kernel="LL1", fus=2, unroll=6):
    opts = api.ScheduleOptions(unroll=unroll, measure=False)
    loop = build_kernel(kernel, unroll)
    return api.schedule(loop, MachineConfig(fus=fus), options=opts,
                        cache=cache), opts


def _disk_entries(cache):
    return sorted(cache.root.glob("??/*.pkl"))


class TestValidation:
    def test_rejects_bad_caps(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ScheduleCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError, match="ttl_seconds"):
            ScheduleCache(tmp_path, ttl_seconds=0)
        with pytest.raises(ValueError, match="ttl_seconds"):
            ScheduleCache(tmp_path, ttl_seconds=-5)


class TestMaxEntries:
    def test_oldest_evicted_beyond_cap(self, tmp_path):
        import os

        cache = ScheduleCache(tmp_path, max_entries=2)
        stamped = set()
        for i, kernel in enumerate(("LL1", "LL2", "LL3")):
            _put(cache, kernel)
            # distinct mtimes so "oldest" is well-defined on coarse
            # filesystem timestamps
            for p in _disk_entries(cache):
                if p not in stamped:
                    os.utime(p, (time.time() - 30 + 10 * i,) * 2)
                    stamped.add(p)
        assert len(_disk_entries(cache)) == 2
        assert cache.counters().get("disk_evictions") == 1

    def test_within_cap_keeps_everything(self, tmp_path):
        cache = ScheduleCache(tmp_path, max_entries=8)
        for kernel in ("LL1", "LL2", "LL3"):
            _put(cache, kernel)
        assert len(_disk_entries(cache)) == 3
        assert not cache.counters().get("disk_evictions")

    def test_survivor_still_hits_bit_identically(self, tmp_path):
        from repro.ir.render import schedule_table

        cache = ScheduleCache(tmp_path, max_entries=1)
        _put(cache, "LL1")
        cold, opts = _put(cache, "LL3")  # evicts the LL1 entry
        warm, _ = _put(cache, "LL3")
        assert cache.hits == 1
        assert schedule_table(warm.unwound.graph) == \
            schedule_table(cold.unwound.graph)
        # the evicted entry is a clean miss, not an error
        _put(cache, "LL1")
        assert cache.counters().get("misses") == 3


class TestTTL:
    def test_expired_disk_entry_is_a_miss_and_unlinked(self, tmp_path):
        import os

        cache = ScheduleCache(tmp_path, ttl_seconds=60)
        _put(cache, "LL1")
        (path,) = _disk_entries(cache)
        old = time.time() - 3600
        os.utime(path, (old, old))
        # fresh handle: no LRU front, the verdict comes from the mtime
        cache2 = ScheduleCache(tmp_path, ttl_seconds=60)
        res, _ = _put(cache2, "LL1")
        assert cache2.counters().get("expired") == 1
        assert cache2.counters().get("misses") == 1
        assert res is not None

    def test_front_hit_expires_too(self, tmp_path):
        cache = ScheduleCache(tmp_path, ttl_seconds=60)
        _put(cache, "LL1")
        # age the front stamp directly (same handle, warm LRU)
        for digest in list(cache._stamps):
            cache._stamps[digest] -= 3600
        _put(cache, "LL1")
        assert cache.counters().get("expired") == 1
        assert cache.hits == 0

    def test_fresh_entry_hits_normally(self, tmp_path):
        cache = ScheduleCache(tmp_path, ttl_seconds=3600)
        _put(cache, "LL1")
        _put(cache, "LL1")
        assert cache.hits == 1
        assert not cache.counters().get("expired")


class TestMetricsRegistry:
    def test_counters_flow_through_shared_registry(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        cache = ScheduleCache(tmp_path, max_entries=1, metrics=reg)
        _put(cache, "LL1")
        _put(cache, "LL2")
        grp = reg.group("cache")
        assert grp.get("stores") == 2
        assert grp.get("disk_evictions") == 1
