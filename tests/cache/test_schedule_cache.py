"""Correctness of the content-addressed schedule cache.

The contract under test: a warm hit is *bit-identical* to a cold run
-- same schedule table, same summary, same analytic and measured
numbers -- and the key honors every invalidation rule (scheduler
version, options, machine shape, concrete names under measurement).
"""

import pickle

import pytest

from repro import api
from repro.cache import (
    SCHEDULER_VERSION,
    ScheduleCache,
    cache_key,
    canonical_form,
)
from repro.cache import keys as cache_keys
from repro.ir.render import schedule_table
from repro.machine import MachineConfig
from repro.pipelining import main_chain
from repro.workloads import build_kernel


def _loop_fingerprint(res) -> tuple:
    """Everything observable about a counted-loop schedule."""
    graph = res.unwound.graph
    return (
        schedule_table(graph, order=main_chain(graph)),
        res.summary(),
        res.speedup,
        res.initiation_interval,
        res.converged,
        res.periodic,
        res.schedule.stats.moves,
        res.schedule.stats.resource_blocks,
        res.measured_seq_cycles,
        res.measured_par_cycles,
        res.measured_speedup,
    )


def _program_fingerprint(res) -> tuple:
    return (
        schedule_table(res.graph, order=main_chain(res.graph)),
        res.summary(),
        res.speedup,
        res.converged,
        res.periodic,
        [(s.kind, s.initiation_interval, s.converged) for s in res.segments],
        res.measured_seq_cycles,
        res.measured_par_cycles,
        res.measured_speedup,
    )


@pytest.mark.parametrize("fus", [2, 4, 8])
@pytest.mark.parametrize("kernel", ["LL1", "LL3", "LL5"])
def test_warm_hit_bit_identical_counted(tmp_path, kernel, fus):
    machine = MachineConfig(fus=fus)
    unroll = max(8, 2 * fus)
    opts = api.ScheduleOptions(unroll=unroll)
    cache = ScheduleCache(tmp_path)

    loop = build_kernel(kernel, unroll)
    cold = api.schedule(loop, machine, options=opts, cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    assert cache.counters().get("stores") == 1

    warm = api.schedule(build_kernel(kernel, unroll), machine,
                        options=opts, cache=cache)
    assert cache.hits == 1
    assert _loop_fingerprint(warm) == _loop_fingerprint(cold)


def test_warm_hit_bit_identical_program(tmp_path):
    machine = MachineConfig(fus=4)
    opts = api.ScheduleOptions(unroll=6)
    cache = ScheduleCache(tmp_path)

    cold = api.schedule(build_kernel("SYNWHL", 6), machine,
                        options=opts, cache=cache)
    warm = api.schedule(build_kernel("SYNWHL", 6), machine,
                        options=opts, cache=cache)
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.counters().get("stores") == 1
    assert _program_fingerprint(warm) == _program_fingerprint(cold)


def test_warm_realized_cycles_identical(tmp_path):
    """The warm graph must *execute* identically, not just render."""
    machine = MachineConfig(fus=4)
    opts = api.ScheduleOptions(unroll=8, measure=False)
    cache = ScheduleCache(tmp_path)

    cold = api.schedule(build_kernel("LL3", 8), machine,
                        options=opts, cache=cache)
    warm = api.schedule(build_kernel("LL3", 8), machine,
                        options=opts, cache=cache)
    assert cache.hits == 1
    rep_cold = api.run(api.scheduled_graph(cold), machine)
    rep_warm = api.run(api.scheduled_graph(warm), machine)
    assert rep_warm.realized_cycles == rep_cold.realized_cycles
    assert rep_warm.vm_steps == rep_cold.vm_steps
    assert rep_warm.interp_cycles == rep_cold.interp_cycles


def test_scheduler_version_bump_invalidates(tmp_path, monkeypatch):
    machine = MachineConfig(fus=4)
    opts = api.ScheduleOptions(unroll=8)
    cache = ScheduleCache(tmp_path)
    api.schedule(build_kernel("LL1", 8), machine, options=opts, cache=cache)

    monkeypatch.setattr(cache_keys, "SCHEDULER_VERSION",
                        SCHEDULER_VERSION + 1)
    api.schedule(build_kernel("LL1", 8), machine, options=opts, cache=cache)
    # the bumped version missed (silent invalidation) and stored anew
    assert (cache.hits, cache.misses) == (0, 2)
    assert cache.counters().get("stores") == 2


def test_options_change_invalidates(tmp_path):
    machine = MachineConfig(fus=4)
    cache = ScheduleCache(tmp_path)
    loop = build_kernel("LL1", 8)
    api.schedule(loop, machine,
                 options=api.ScheduleOptions(unroll=8), cache=cache)
    api.schedule(loop, machine,
                 options=api.ScheduleOptions(unroll=8,
                                             gap_prevention=False),
                 cache=cache)
    api.schedule(loop, MachineConfig(fus=2),
                 options=api.ScheduleOptions(unroll=8), cache=cache)
    assert (cache.hits, cache.misses) == (0, 3)
    assert cache.counters().get("stores") == 3


def test_corrupted_entry_falls_back_to_cold(tmp_path):
    machine = MachineConfig(fus=4)
    opts = api.ScheduleOptions(unroll=8)
    cache = ScheduleCache(tmp_path)
    loop = build_kernel("LL1", 8)
    cold = api.schedule(loop, machine, options=opts, cache=cache)

    digest, _ = cache_key(loop, machine, opts)
    entry = cache._path(digest)
    assert entry.is_file()
    entry.write_bytes(b"\x00corrupt, not a pickle")
    fresh = ScheduleCache(tmp_path)  # no LRU copy of the good bytes
    res = api.schedule(build_kernel("LL1", 8), machine,
                       options=opts, cache=fresh)
    assert fresh.counters().get("corrupt") == 1
    assert fresh.hits == 0
    assert _loop_fingerprint(res) == _loop_fingerprint(cold)
    # the corrupt entry was dropped and re-stored; next lookup hits
    api.schedule(build_kernel("LL1", 8), machine, options=opts, cache=fresh)
    assert fresh.hits == 1


def test_wrong_schema_entry_is_corrupt(tmp_path):
    machine = MachineConfig(fus=4)
    opts = api.ScheduleOptions(unroll=8)
    cache = ScheduleCache(tmp_path)
    loop = build_kernel("LL1", 8)
    api.schedule(loop, machine, options=opts, cache=cache)
    digest, _ = cache_key(loop, machine, opts)
    cache._path(digest).write_bytes(
        pickle.dumps({"schema": 999, "payload": {}}))
    fresh = ScheduleCache(tmp_path)
    assert fresh.fetch(loop, machine, opts) is None
    assert fresh.counters().get("corrupt") == 1


def test_alpha_equivalent_sources_share_one_entry(tmp_path):
    """Renamed-register programs collide on canonical form."""
    src_a = "param n, q; array A, B;\nfor k = 0 to n { t = A[k] * q; B[k] = t + 1; }"
    src_b = "param m, s; array X, Y;\nfor j = 0 to m { w = X[j] * s; Y[j] = w + 1; }"
    machine = MachineConfig(fus=4)
    opts = api.ScheduleOptions(unroll=8, measure=False)
    loop_a = api.compile(src_a, 8, name="alpha_a")
    loop_b = api.compile(src_b, 8, name="alpha_b")
    assert canonical_form(loop_a).text == canonical_form(loop_b).text
    assert (cache_key(loop_a, machine, opts)[0]
            == cache_key(loop_b, machine, opts)[0])

    cache = ScheduleCache(tmp_path)
    res_a = api.schedule(loop_a, machine, options=opts, cache=cache)
    res_b = api.schedule(loop_b, machine, options=opts, cache=cache)
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.counters().get("stores") == 1
    # b's warm result lives in b's own name space and stays correct
    rep = api.run(api.scheduled_graph(res_b), machine)
    assert rep.realized_cycles == api.run(api.scheduled_graph(res_a),
                                          machine).realized_cycles


def test_measured_keys_split_on_concrete_names(tmp_path):
    """measure=True seeds initial state by register *name*, so
    alpha-equivalent-but-renamed programs must NOT share measured
    results."""
    src_a = "param n, q; array A, B;\nfor k = 0 to n { B[k] = A[k] * q; }"
    src_b = "param m, zz; array X, Y;\nfor j = 0 to m { Y[j] = X[j] * zz; }"
    machine = MachineConfig(fus=4)
    loop_a = api.compile(src_a, 8, name="na")
    loop_b = api.compile(src_b, 8, name="nb")
    measured = api.ScheduleOptions(unroll=8, measure=True)
    unmeasured = api.ScheduleOptions(unroll=8, measure=False)
    assert (cache_key(loop_a, machine, measured)[0]
            != cache_key(loop_b, machine, measured)[0])
    assert (cache_key(loop_a, machine, unmeasured)[0]
            == cache_key(loop_b, machine, unmeasured)[0])


def test_lru_eviction_counted(tmp_path):
    cache = ScheduleCache(tmp_path, lru_capacity=1)
    machine = MachineConfig(fus=2)
    opts = api.ScheduleOptions(unroll=4, measure=False)
    api.schedule(build_kernel("LL1", 4), machine, options=opts, cache=cache)
    api.schedule(build_kernel("LL3", 4), machine, options=opts, cache=cache)
    assert cache.counters().get("evictions") == 1
    # evicted entry still hits from disk
    api.schedule(build_kernel("LL1", 4), machine, options=opts, cache=cache)
    assert cache.hits == 1


def test_fuzz_reuses_cache_across_tampered_runs(tmp_path):
    """A tamper mutates the checked graph *after* scheduling; the
    cached entry must stay pristine (the LRU hands out fresh decodes,
    never a shared graph)."""
    src = "param n, q; array A, B;\nfor k = 0 to n { B[k] = A[k] * q + 2; }"
    machine = MachineConfig(fus=4)
    cache = ScheduleCache(tmp_path)
    api.check(src, 6, machine, cache=cache)  # cold, clean
    with pytest.raises(Exception):
        api.check(src, 6, machine, tamper="drop-store", cache=cache)
    assert cache.hits == 1
    api.check(src, 6, machine, cache=cache)  # warm again, still clean
    assert cache.hits == 2
