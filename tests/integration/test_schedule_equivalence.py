"""Differential test: hot-path caching must not change schedules.

``GRiPScheduler(memoize=True)`` reuses the RPO worklist and the
Moveable-ops region/candidate sets while the graph version is
unchanged; ``memoize=False`` preserves the original
recompute-everything behavior.  Both paths must produce *identical*
schedules -- same node structure, same op placement, same
``PercolationStats``, same detected kernel -- across every Livermore
kernel and FU configuration of Table 1.

The rendered graphs are compared after normalizing CJ-tree leaf ids:
those come from a process-global counter (``cjtree.next_leaf_id``), so
even two runs of the *same* configuration allocate different ids.  The
leaf-id partition itself is structural noise; everything else in the
rendering (node ids, op templates, iteration tags, targets) is
deterministic and compared bitwise.
"""

import re

import pytest

from repro.ir.render import render_graph
from repro.machine import MachineConfig
from repro.pipelining import find_pattern, unwind_counted
from repro.scheduling import GRiPScheduler
from repro.workloads import livermore

FU_CONFIGS = (2, 4, 8)


def normalize(rendered: str) -> str:
    return re.sub(r"@paths\[[0-9, ]+\]", "@paths[..]", rendered)


def schedule(name: str, fus: int, memoize: bool):
    unroll = max(12, 3 * fus)
    loop = livermore.kernel(name, unroll)
    unwound = unwind_counted(loop, unroll)
    res = GRiPScheduler(MachineConfig(fus=fus), memoize=memoize).schedule(
        unwound.graph, ranking_ops=unwound.ops)
    pattern = find_pattern(unwound, unwound.graph)
    return unwound.graph, res, pattern


@pytest.mark.parametrize("name", livermore.kernel_names())
@pytest.mark.parametrize("fus", FU_CONFIGS)
def test_cached_schedule_identical_to_uncached(name, fus):
    g_memo, r_memo, p_memo = schedule(name, fus, memoize=True)
    g_base, r_base, p_base = schedule(name, fus, memoize=False)

    assert normalize(render_graph(g_memo)) == normalize(render_graph(g_base))
    assert r_memo.stats == r_base.stats
    assert r_memo.nodes_processed == r_base.nodes_processed
    assert str(p_memo) == str(p_base)


def test_memoize_skips_rebuilds():
    """The cache must actually fire: fewer candidate-set builds."""
    _, r_memo, _ = schedule("LL3", 4, memoize=True)
    _, r_base, _ = schedule("LL3", 4, memoize=False)
    assert r_memo.candidate_builds <= r_base.candidate_builds


def test_incremental_indexes_verified_under_real_scheduling():
    """Paranoid end-to-end pin of the incremental analysis layer.

    Both memoize arms above share the event-maintained indexes, so a
    patching bug would corrupt them identically and slip through the
    differential.  This run attaches a *verifying* AnalysisManager
    before scheduling: every rpo/region/below/template query during the
    real GRiP mutation stream is cross-checked against a from-scratch
    computation, so any divergence raises at the exact query that
    observed it.
    """
    from repro.analysis.incremental import AnalysisManager

    loop = livermore.kernel("LL3", 6)
    unwound = unwind_counted(loop, 6)
    mgr = AnalysisManager(unwound.graph, verify=True)
    res = GRiPScheduler(MachineConfig(fus=4)).schedule(
        unwound.graph, ranking_ops=unwound.ops)
    assert res.stats.moves > 0
    assert mgr.counters["events"] > 0
    find_pattern(unwound, unwound.graph)
