"""Differential tests: observers and caches must not change schedules.

``GRiPScheduler(memoize=True)`` reuses the RPO worklist and the
Moveable-ops region/candidate sets while the graph version is
unchanged; ``memoize=False`` preserves the original
recompute-everything behavior.  Both paths must produce *identical*
schedules -- same node structure, same op placement, same
``PercolationStats``, same detected kernel -- across every Livermore
kernel and FU configuration of Table 1.

The same bar applies to the observability layer: attaching a
:class:`~repro.obs.journal.DecisionJournal` tracer must be a pure
observer -- bit-identical schedules, stats and kernels versus the
NULL_TRACER default (the tracer contract ``repro explain`` and
``bench --profile`` rely on).

The rendered graphs are compared after normalizing CJ-tree leaf ids:
those come from a process-global counter (``cjtree.next_leaf_id``), so
even two runs of the *same* configuration allocate different ids.  The
leaf-id partition itself is structural noise; everything else in the
rendering (node ids, op templates, iteration tags, targets) is
deterministic and compared bitwise.
"""

import re
from functools import lru_cache

import pytest

from repro.ir.render import render_graph
from repro.machine import MachineConfig
from repro.obs import DecisionJournal
from repro.pipelining import find_pattern, unwind_counted
from repro.scheduling import GRiPScheduler
from repro.workloads import livermore

FU_CONFIGS = (2, 4, 8)


def normalize(rendered: str) -> str:
    return re.sub(r"@paths\[[0-9, ]+\]", "@paths[..]", rendered)


def schedule(name: str, fus: int, memoize: bool, traced: bool = False):
    unroll = max(12, 3 * fus)
    loop = livermore.kernel(name, unroll)
    unwound = unwind_counted(loop, unroll)
    journal = DecisionJournal(keep_events=False) if traced else None
    scheduler = GRiPScheduler(MachineConfig(fus=fus), memoize=memoize)
    if journal is not None:
        scheduler.tracer = journal
    res = scheduler.schedule(unwound.graph, ranking_ops=unwound.ops)
    pattern = find_pattern(unwound, unwound.graph)
    return unwound.graph, res, pattern, journal


@lru_cache(maxsize=None)
def schedule_digest(name: str, fus: int, memoize: bool,
                    traced: bool = False):
    """Comparable fingerprint of one run (cached: the memoized arm is
    shared by the cache-neutrality and tracer-neutrality tests)."""
    graph, res, pattern, journal = schedule(name, fus, memoize, traced)
    return (normalize(render_graph(graph)), res.stats,
            res.nodes_processed, str(pattern), res, journal)


@pytest.mark.parametrize("name", livermore.kernel_names())
@pytest.mark.parametrize("fus", FU_CONFIGS)
def test_cached_schedule_identical_to_uncached(name, fus):
    g_memo, s_memo, n_memo, p_memo, _, _ = schedule_digest(
        name, fus, memoize=True)
    g_base, s_base, n_base, p_base, _, _ = schedule_digest(
        name, fus, memoize=False)

    assert g_memo == g_base
    assert s_memo == s_base
    assert n_memo == n_base
    assert p_memo == p_base


@pytest.mark.parametrize("name", livermore.kernel_names())
@pytest.mark.parametrize("fus", FU_CONFIGS)
def test_traced_schedule_identical_to_untraced(name, fus):
    """A DecisionJournal tracer is observe-only: attaching it changes
    neither the schedule nor the stats nor the detected kernel."""
    g_null, s_null, n_null, p_null, _, _ = schedule_digest(
        name, fus, memoize=True)
    g_tr, s_tr, n_tr, p_tr, _, journal = schedule_digest(
        name, fus, memoize=True, traced=True)

    assert g_tr == g_null
    assert s_tr == s_null
    assert n_tr == n_null
    assert p_tr == p_null
    # The journal agreed with the stats it shadowed.
    assert journal is not None
    assert journal.accepted == s_tr.moves
    assert journal.tried >= journal.accepted


def test_memoize_skips_rebuilds():
    """The cache must actually fire: fewer candidate-set builds."""
    _, _, _, _, r_memo, _ = schedule_digest("LL3", 4, memoize=True)
    _, _, _, _, r_base, _ = schedule_digest("LL3", 4, memoize=False)
    assert r_memo.candidate_builds <= r_base.candidate_builds


def test_incremental_indexes_verified_under_real_scheduling():
    """Paranoid end-to-end pin of the incremental analysis layer.

    Both memoize arms above share the event-maintained indexes, so a
    patching bug would corrupt them identically and slip through the
    differential.  This run attaches a *verifying* AnalysisManager
    before scheduling: every rpo/region/below/template query during the
    real GRiP mutation stream is cross-checked against a from-scratch
    computation, so any divergence raises at the exact query that
    observed it.
    """
    from repro.analysis.incremental import AnalysisManager

    loop = livermore.kernel("LL3", 6)
    unwound = unwind_counted(loop, 6)
    mgr = AnalysisManager(unwound.graph, verify=True)
    res = GRiPScheduler(MachineConfig(fus=4)).schedule(
        unwound.graph, ranking_ops=unwound.ops)
    assert res.stats.moves > 0
    assert mgr.counters["events"] > 0
    find_pattern(unwound, unwound.graph)
