"""Differential tests: observers and caches must not change schedules.

``GRiPScheduler(memoize=True)`` reuses the RPO worklist and the
Moveable-ops region/candidate sets while the graph version is
unchanged; ``memoize=False`` preserves the original
recompute-everything behavior.  Both paths must produce *identical*
schedules -- same node structure, same op placement, same
``PercolationStats``, same detected kernel -- across every Livermore
kernel and FU configuration of Table 1.

The same bar applies to the observability layer: attaching a
:class:`~repro.obs.journal.DecisionJournal` tracer must be a pure
observer -- bit-identical schedules, stats and kernels versus the
NULL_TRACER default (the tracer contract ``repro explain`` and
``bench --profile`` rely on).

The rendered graphs are compared after normalizing CJ-tree leaf ids:
those come from a process-global counter (``cjtree.next_leaf_id``), so
even two runs of the *same* configuration allocate different ids.  The
leaf-id partition itself is structural noise; everything else in the
rendering (node ids, op templates, iteration tags, targets) is
deterministic and compared bitwise.
"""

import re
from functools import lru_cache

import pytest

from repro.ir.render import render_graph
from repro.machine import MachineConfig
from repro.obs import DecisionJournal
from repro.pipelining import find_pattern, unwind_counted
from repro.scheduling import GRiPScheduler
from repro.workloads import livermore

FU_CONFIGS = (2, 4, 8)


def normalize(rendered: str) -> str:
    return re.sub(r"@paths\[[0-9, ]+\]", "@paths[..]", rendered)


def schedule(name: str, fus: int, memoize: bool, traced: bool = False):
    unroll = max(12, 3 * fus)
    loop = livermore.kernel(name, unroll)
    unwound = unwind_counted(loop, unroll)
    journal = DecisionJournal(keep_events=False) if traced else None
    scheduler = GRiPScheduler(MachineConfig(fus=fus), memoize=memoize)
    if journal is not None:
        scheduler.tracer = journal
    res = scheduler.schedule(unwound.graph, ranking_ops=unwound.ops)
    pattern = find_pattern(unwound, unwound.graph)
    return unwound.graph, res, pattern, journal


@lru_cache(maxsize=None)
def schedule_digest(name: str, fus: int, memoize: bool,
                    traced: bool = False):
    """Comparable fingerprint of one run (cached: the memoized arm is
    shared by the cache-neutrality and tracer-neutrality tests)."""
    graph, res, pattern, journal = schedule(name, fus, memoize, traced)
    return (normalize(render_graph(graph)), res.stats,
            res.nodes_processed, str(pattern), res, journal)


@pytest.mark.parametrize("name", livermore.kernel_names())
@pytest.mark.parametrize("fus", FU_CONFIGS)
def test_cached_schedule_identical_to_uncached(name, fus):
    g_memo, s_memo, n_memo, p_memo, _, _ = schedule_digest(
        name, fus, memoize=True)
    g_base, s_base, n_base, p_base, _, _ = schedule_digest(
        name, fus, memoize=False)

    assert g_memo == g_base
    assert s_memo == s_base
    assert n_memo == n_base
    assert p_memo == p_base


@pytest.mark.parametrize("name", livermore.kernel_names())
@pytest.mark.parametrize("fus", FU_CONFIGS)
def test_traced_schedule_identical_to_untraced(name, fus):
    """A DecisionJournal tracer is observe-only: attaching it changes
    neither the schedule nor the stats nor the detected kernel."""
    g_null, s_null, n_null, p_null, _, _ = schedule_digest(
        name, fus, memoize=True)
    g_tr, s_tr, n_tr, p_tr, _, journal = schedule_digest(
        name, fus, memoize=True, traced=True)

    assert g_tr == g_null
    assert s_tr == s_null
    assert n_tr == n_null
    assert p_tr == p_null
    # The journal agreed with the stats it shadowed.
    assert journal is not None
    assert journal.accepted == s_tr.moves
    assert journal.tried >= journal.accepted


def test_memoize_skips_rebuilds():
    """The cache must actually fire: fewer candidate-set builds."""
    _, _, _, _, r_memo, _ = schedule_digest("LL3", 4, memoize=True)
    _, _, _, _, r_base, _ = schedule_digest("LL3", 4, memoize=False)
    assert r_memo.candidate_builds <= r_base.candidate_builds


@pytest.mark.parametrize("name", livermore.kernel_names())
@pytest.mark.parametrize("fus", FU_CONFIGS)
def test_default_policy_schedule_neutral(name, fus):
    """DEFAULT_POLICY is schedule-neutral versus the legacy heuristic.

    The policy-parametric path (no explicit heuristic: the scheduler
    resolves ``WeightedHeuristic(DEFAULT_POLICY)``) must produce
    bit-identical schedules to the pre-policy ``PaperHeuristic`` over
    every Table-1 cell -- the contract that lets the committed bench
    baseline survive the refactor without regeneration.
    """
    from repro.scheduling import PaperHeuristic

    unroll = max(12, 3 * fus)

    def run(heuristic):
        loop = livermore.kernel(name, unroll)
        unwound = unwind_counted(loop, unroll)
        scheduler = GRiPScheduler(MachineConfig(fus=fus), heuristic)
        res = scheduler.schedule(unwound.graph, ranking_ops=unwound.ops)
        pattern = find_pattern(unwound, unwound.graph)
        return (normalize(render_graph(unwound.graph)), res.stats,
                res.nodes_processed, str(pattern))

    assert run(None) == run(PaperHeuristic())


@pytest.mark.parametrize("name", ("SYNWHL", "SYNSEQ"))
def test_default_policy_neutral_for_programs(name):
    """Program-shaped kernels: explicit DEFAULT_POLICY == policy-less.

    ``schedule_program`` threads the policy through every staged pass
    (hoist / fuse / unwind / compact / slack); passing DEFAULT_POLICY
    explicitly must change nothing versus the ``policy=None`` default.
    """
    from repro import api
    from repro.scheduling import DEFAULT_POLICY

    def run(policy):
        program = api.load_kernel(name, 8)
        res = api.schedule(
            program, MachineConfig(fus=4),
            options=api.ScheduleOptions(unroll=8, measure=True, seeds=(0,),
                                        policy=policy))
        return (normalize(render_graph(res.graph)), res.speedup,
                res.measured_par_cycles)

    assert run(None) == run(DEFAULT_POLICY)


@pytest.mark.parametrize("seed", range(6))
def test_random_policies_schedule_correctly(seed):
    """Property: any valid policy yields a valid, equivalent schedule.

    Seeded random policies (the same generator the fuzz ``policy``
    stratum and ``repro tune`` draw from) are pushed through the full
    fuzz check pipeline -- structural graph check, slot budgets,
    walker equivalence, batched-VM differential.  A policy may change
    the schedule; it must never break it.
    """
    import random

    from repro.bench.fuzz import check_source
    from repro.tune import random_policy
    from repro.workloads.synth import generate, scenario_from_seed

    policy = random_policy(random.Random(f"policy-prop:{seed}"),
                           allow_gap_off=True)
    program = generate(scenario_from_seed(seed))
    stats = check_source(program.source(), 6, MachineConfig(fus=4),
                         name=f"prop{seed}", policy=policy)
    assert stats.n_lanes > 0


def test_incremental_indexes_verified_under_real_scheduling():
    """Paranoid end-to-end pin of the incremental analysis layer.

    Both memoize arms above share the event-maintained indexes, so a
    patching bug would corrupt them identically and slip through the
    differential.  This run attaches a *verifying* AnalysisManager
    before scheduling: every rpo/region/below/template query during the
    real GRiP mutation stream is cross-checked against a from-scratch
    computation, so any divergence raises at the exact query that
    observed it.
    """
    from repro.analysis.incremental import AnalysisManager

    loop = livermore.kernel("LL3", 6)
    unwound = unwind_counted(loop, 6)
    mgr = AnalysisManager(unwound.graph, verify=True)
    res = GRiPScheduler(MachineConfig(fus=4)).schedule(
        unwound.graph, ranking_ops=unwound.ops)
    assert res.stats.moves > 0
    assert mgr.counters["events"] > 0
    find_pattern(unwound, unwound.graph)
