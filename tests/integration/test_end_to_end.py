"""Integration tests: DSL -> lowering -> pipelining -> simulation."""

import pytest

from repro.frontend import compile_dsl
from repro.machine import MachineConfig
from repro.pipelining import schedule_loop, pipeline_loop_post
from repro.reporting import SpeedupTable, weighted_harmonic_mean
from repro.scheduling import GRiPScheduler
from repro.simulator import check_equivalent
from repro.workloads import livermore


class TestLivermoreEndToEnd:
    """Each kernel: compile, unwind, schedule, verify memory, measure."""

    @pytest.mark.parametrize("name", livermore.kernel_names())
    def test_kernel_pipeline_verified(self, name):
        unroll = 8
        loop = livermore.kernel(name, unroll)
        res = schedule_loop(loop, MachineConfig(fus=4), unroll=unroll,
                            verify=True)
        assert res.measured_speedup is not None
        assert res.measured_speedup > 1.0, name

    @pytest.mark.parametrize("name", ["LL1", "LL3", "LL12"])
    def test_grip_at_least_post(self, name):
        unroll = 12
        g = schedule_loop(livermore.kernel(name, unroll),
                          MachineConfig(fus=4), unroll=unroll, measure=False)
        p = pipeline_loop_post(livermore.kernel(name, unroll),
                               MachineConfig(fus=4), unroll=unroll)
        assert g.speedup is not None and p.speedup is not None
        assert g.speedup >= p.speedup - 1e-9

    def test_two_fu_speedups_near_two(self):
        """Paper Table 1: at 2 FUs GRiP is essentially optimal (mean 2.0)."""
        vals = []
        for name in ("LL1", "LL2", "LL7", "LL9"):
            res = schedule_loop(livermore.kernel(name, 8),
                                MachineConfig(fus=2), unroll=8,
                                measure=False)
            assert res.speedup is not None
            vals.append(res.speedup)
        assert weighted_harmonic_mean(vals) == pytest.approx(2.0, abs=0.15)

    def test_recurrence_loops_capped(self):
        """LL6-style recurrences cannot scale with FUs (paper: 3.6 flat)."""
        s4 = schedule_loop(livermore.kernel("LL6", 12), MachineConfig(fus=4),
                           unroll=12, measure=False).speedup
        s8 = schedule_loop(livermore.kernel("LL6", 16), MachineConfig(fus=8),
                           unroll=16, measure=False).speedup
        assert s4 is not None and s8 is not None
        assert s8 <= s4 + 0.25  # no scaling from 4 to 8 FUs


class TestSpeedupTable:
    def test_table_renders_with_aggregates(self):
        t = SpeedupTable(fu_configs=(2,), systems=("GRiP", "POST"))
        t.add("LL1", 2, "GRiP", 2.0, weight=12)
        t.add("LL1", 2, "POST", 1.8, weight=12)
        t.add("LL2", 2, "GRiP", 1.9, weight=10)
        t.add("LL2", 2, "POST", None, weight=10)
        text = t.render()
        assert "Mean" in text and "WHM" in text and "n/c" in text


class TestSchedulerOnLoweredCode:
    def test_grip_compacts_lowered_body(self):
        loop = compile_dsl(
            "param q, n; array x, y, z; "
            "for k = 0 to n { x[k] = q + y[k] * z[k]; }", 6)
        g = loop.graph
        orig = g.clone()
        GRiPScheduler(MachineConfig(fus=4),
                      gap_prevention=False).schedule(g)
        g.check()
        check_equivalent(orig, g)
        assert len(g.reachable()) < len(orig.reachable())
