"""Unit tests for liveness, dominators, dependence, and chains."""

import pytest

from repro.analysis import (
    DepKind,
    anti_dep,
    build_dag,
    chain_lengths,
    critical_cycle_ratio,
    dependent_counts,
    dominators,
    liveness,
    mem_conflict,
    output_dep,
    true_dep,
)
from repro.analysis.livequery import reg_live_at_entry
from repro.ir import (
    MemRef,
    Reg,
    add,
    load,
    mul,
    store,
    straightline_graph,
    sub,
)
from repro.ir.builder import simple_loop


class TestDependencePredicates:
    def test_register_true_dep(self):
        a = add("x", "p", "q")
        b = mul("y", "x", "r")
        assert true_dep(a, b)
        assert not true_dep(b, a)

    def test_anti_dep(self):
        a = mul("y", "x", "r")
        b = add("x", "p", "q")
        assert anti_dep(a, b)

    def test_output_dep(self):
        a = add("x", "p", "q")
        b = sub("x", "r", "s")
        assert output_dep(a, b)

    def test_memory_true_dep(self):
        st = store("arr", "v", index="k", affine=0)
        ld = load("d", "arr", index="k", affine=0)
        assert true_dep(st, ld)

    def test_memory_disjoint_affine(self):
        st = store("arr", "v", index="k", affine=0)
        ld = load("d", "arr", index="k", offset=1, affine=1)
        assert not true_dep(st, ld)

    def test_memory_different_arrays(self):
        st = store("a1", "v", index="k")
        ld = load("d", "a2", index="k")
        assert not true_dep(st, ld)

    def test_memory_unknown_index_conservative(self):
        st = store("arr", "v", index="i")
        ld = load("d", "arr", index="j")
        assert mem_conflict(st.mem, ld.mem)

    def test_same_index_reg_different_offsets(self):
        a = MemRef("arr", Reg("k"), 0, None)
        b = MemRef("arr", Reg("k"), 1, None)
        assert not mem_conflict(a, b)


class TestDependenceDAG:
    def test_chain_edges(self):
        ops = [add("a", "x", 1), mul("b", "a", 2), sub("c", "b", 3)]
        dag = build_dag(ops)
        assert dag.true_succs(ops[0].uid) == [ops[1].uid]
        assert dag.true_succs(ops[1].uid) == [ops[2].uid]

    def test_transitive_pruning(self):
        # a writes x; b rewrites x; c reads x -> only b->c flows.
        ops = [add("x", "p", 1), add("x", "q", 2), mul("y", "x", 3)]
        dag = build_dag(ops)
        assert ops[2].uid not in dag.true_succs(ops[0].uid)
        assert ops[2].uid in dag.true_succs(ops[1].uid)

    def test_loop_carried_register(self):
        ops = [add("q", "q", "x"), mul("y", "q", 2)]
        dag = build_dag(ops, loop=True)
        carried = [e for e in dag.carried_edges() if e.kind is DepKind.TRUE]
        assert any(e.src == ops[0].uid and e.dst == ops[0].uid
                   for e in carried)

    def test_loop_carried_memory_distance(self):
        ops = [
            load("t", "x", index="k", affine=0),
            store("x", "t", index="k", offset=5, affine=5),
        ]
        dag = build_dag(ops, loop=True)
        carried = [e for e in dag.carried_edges() if e.kind is DepKind.TRUE]
        assert carried and carried[0].distance == 5

    def test_critical_cycle_ratio_chain(self):
        # self-recurrence of 1 op at distance 1 -> ratio 1
        ops = [add("q", "q", 1)]
        dag = build_dag(ops, loop=True)
        assert critical_cycle_ratio(dag) == pytest.approx(1.0, abs=1e-6)

    def test_critical_cycle_ratio_two_op_cycle(self):
        ops = [add("d", "e", 1), add("e", "d", 1)]
        dag = build_dag(ops, loop=True)
        assert critical_cycle_ratio(dag) == pytest.approx(2.0, abs=1e-6)


class TestChains:
    def test_chain_lengths(self):
        ops = [add("a", "x", 1), mul("b", "a", 2), sub("c", "b", 3),
               add("z", "y", 1)]
        dag = build_dag(ops)
        lens = chain_lengths(dag)
        assert lens[ops[0].uid] == 3
        assert lens[ops[2].uid] == 1
        assert lens[ops[3].uid] == 1

    def test_dependent_counts(self):
        ops = [add("a", "x", 1), mul("b", "a", 2), sub("c", "a", 3)]
        dag = build_dag(ops)
        deps = dependent_counts(dag)
        assert deps[ops[0].uid] == 2
        assert deps[ops[1].uid] == 0


class TestLiveness:
    def test_straightline_liveness(self):
        ops = [add("a", "x", 1), mul("b", "a", 2), store("out", "b")]
        g = straightline_graph(ops)
        live = liveness(g)
        order = g.rpo()
        assert Reg("x") in live.live_at_entry(order[0])
        assert Reg("a") in live.live_at_entry(order[1])
        assert Reg("a") not in live.live_at_entry(order[2])

    def test_exit_live(self):
        ops = [add("a", "x", 1)]
        g = straightline_graph(ops)
        live = liveness(g, exit_live=frozenset({Reg("a")}))
        assert live.dest_dead_after(g.rpo()[0],
                                    next(iter(g.nodes[g.rpo()[0]].ops))) \
            is False

    def test_dead_dest(self):
        ops = [add("a", "x", 1), add("b", "y", 1), store("out", "b")]
        g = straightline_graph(ops)
        live = liveness(g)
        first = g.rpo()[0]
        uid = next(iter(g.nodes[first].ops))
        assert live.dest_dead_after(first, uid)

    def test_loop_liveness_fixed_point(self):
        loop = simple_loop([add("q", "q", 1), mul("y", "q", 2)])
        live = liveness(loop.graph)
        # q is live around the back edge.
        assert Reg("q") in live.live_at_entry(loop.header)

    def test_livequery_agrees_with_batch(self):
        ops = [add("a", "x", 1), mul("b", "a", 2), store("out", "b")]
        g = straightline_graph(ops)
        live = liveness(g)
        for nid in g.nodes:
            for reg in (Reg("x"), Reg("a"), Reg("b"), Reg("zz")):
                assert reg_live_at_entry(g, nid, reg) == \
                    (reg in live.live_at_entry(nid)), (nid, reg)


class TestDominators:
    def test_chain_dominators(self):
        g = straightline_graph([add("a", "x", 1), add("b", "a", 1),
                                add("c", "b", 1)])
        dom = dominators(g)
        order = g.rpo()
        assert dom.dominates(order[0], order[2])
        assert not dom.dominates(order[2], order[0])
        assert dom.dominated_set(order[1]) == frozenset(order[1:])

    def test_diamond_join_dominated_by_fork(self):
        from tests.ir.test_instruction_graph import diamond

        g, (n1, n2, nt, ne, nm) = diamond()
        dom = dominators(g)
        assert dom.dominates(n2.nid, nm.nid)
        assert not dom.dominates(nt.nid, nm.nid)

    def test_region_below_matches_dominated(self):
        """Forward reachability equals dominance on unwound chains."""
        from repro.percolation import region_below

        g = straightline_graph([add(f"v{i}", "x", i) for i in range(6)])
        dom = dominators(g)
        for nid in g.nodes:
            assert set(region_below(g, nid)) == set(dom.dominated_set(nid))
