"""Unit tests: the mutation-event journal and the AnalysisManager.

The property suite (``tests/property/test_incremental_analysis.py``)
pins index == rebuild over random sequences; these tests pin the
journal contract itself -- which events each mutation emits, the
observer API, and that the cheap patch paths actually fire (no silent
fallback to rebuild-everything).
"""

import pytest

from repro.analysis.incremental import manager_for
from repro.ir import ProgramGraph, add, cjump
from repro.ir.cjtree import EXIT


def chain(n_ops):
    """entry -> n1(-op) -> n2(-op) ... -> EXIT, one op per node."""
    g = ProgramGraph()
    nodes = []
    prev = None
    for i in range(n_ops):
        node = g.new_node(EXIT)
        node.add_op(add(f"r{i}", "x", i))
        if prev is not None:
            g.retarget_leaf(prev.nid, prev.leaves()[0].leaf_id, node.nid)
        else:
            g.set_entry(node.nid)
        prev = node
        nodes.append(node)
    return g, nodes


class Journal:
    def __init__(self, graph):
        self.events = []
        graph.subscribe(self.events.append)

    def types(self):
        return [type(e).__name__ for e in self.events]


class TestEventJournal:
    def test_op_mutations_emit_typed_events(self):
        g, nodes = chain(2)
        j = Journal(g)
        op = add("z", "x", 9)
        g.add_op(nodes[0].nid, op)
        g.replace_op(nodes[0].nid, op.uid, op.duplicate())
        g.remove_op(nodes[0].nid, list(g.nodes[nodes[0].nid].ops)[0])
        assert j.types() == ["OpAdded", "OpReplaced", "OpRemoved"]
        assert j.events[1].old.uid == op.uid
        assert j.events[1].new.tid == op.tid

    def test_delete_empty_node_emits_single_bypass(self):
        g, nodes = chain(3)
        mid = nodes[1]
        mid.remove_op(list(mid.ops)[0])  # silent surgery, then announce
        g._touch()
        j = Journal(g)
        assert g.delete_empty_node(mid.nid)
        assert j.types() == ["NodeBypassed"]
        assert j.events[0].nid == mid.nid
        assert j.events[0].succ == nodes[2].nid

    def test_touch_emits_bulk_mutation(self):
        g, _ = chain(1)
        j = Journal(g)
        g._touch()
        assert j.types() == ["BulkMutation"]

    def test_every_event_bumps_version(self):
        g, nodes = chain(2)
        v0 = g.version
        g.add_op(nodes[0].nid, add("q", "x", 3))
        assert g.version == v0 + 1

    def test_unsubscribe_stops_delivery(self):
        g, nodes = chain(2)
        j = Journal(g)
        g.unsubscribe(j.events.append)
        g.add_op(nodes[0].nid, add("q", "x", 3))
        assert j.events == []

    def test_clone_does_not_inherit_observers(self):
        g, nodes = chain(2)
        j = Journal(g)
        c = g.clone()
        c.add_op(nodes[0].nid, add("q", "x", 3))
        assert j.events == []

    def test_remove_node_carries_content(self):
        g, nodes = chain(2)
        orphan = g.new_node()
        orphan.add_op(add("dead", "x", 1))
        g.note_tree_change(orphan.nid)
        j = Journal(g)
        node = g.remove_node(orphan.nid)
        assert j.types() == ["NodeRemoved"]
        assert j.events[0].node is node
        assert node.op_count() == 1


class TestManagerPatching:
    def test_op_motion_keeps_rpo_hot(self):
        """An op hop must not trigger an RPO rebuild or splice."""
        g, nodes = chain(4)
        mgr = manager_for(g)
        mgr.rpo_index()
        base = mgr.counters["rpo_rebuilds"]
        uid = list(g.nodes[nodes[2].nid].ops)[0]
        op = g.remove_op(nodes[2].nid, uid)
        g.add_op(nodes[1].nid, op)
        assert mgr.rpo_index() == {nid: i for i, nid in enumerate(g.rpo())}
        assert mgr.counters["rpo_rebuilds"] == base
        assert mgr.counters["rpo_splices"] == 0

    def test_bypass_splices_instead_of_rebuilding(self):
        g, nodes = chain(4)
        mgr = manager_for(g)
        mgr.rpo_index()
        base = mgr.counters["rpo_rebuilds"]
        mid = nodes[2]
        g.remove_op(mid.nid, list(mid.ops)[0])
        assert g.delete_empty_node(mid.nid)
        assert mgr.rpo_index() == {nid: i for i, nid in enumerate(g.rpo())}
        assert mgr.counters["rpo_rebuilds"] == base
        assert mgr.counters["rpo_splices"] == 1

    def test_edge_retarget_dirties_structure(self):
        g, nodes = chain(3)
        mgr = manager_for(g)
        mgr.rpo_index()
        base = mgr.counters["rpo_rebuilds"]
        # Skip the middle node: n0 -> n2.
        g.retarget_leaf(nodes[0].nid, nodes[0].leaves()[0].leaf_id,
                        nodes[2].nid)
        assert mgr.rpo_index() == {nid: i for i, nid in enumerate(g.rpo())}
        assert mgr.counters["rpo_rebuilds"] == base + 1

    def test_template_index_patched_not_rebuilt(self):
        g, nodes = chain(3)
        mgr = manager_for(g)
        mgr.template_index()
        base = mgr.counters["template_rebuilds"]
        op = add("t", "x", 7)
        g.add_op(nodes[0].nid, op)
        assert (nodes[0].nid, op.uid) in mgr.template_index()[op.tid]
        g.remove_op(nodes[0].nid, op.uid)
        assert op.tid not in mgr.template_index()
        assert mgr.counters["template_rebuilds"] == base

    def test_template_entries_canonically_ordered(self):
        g, nodes = chain(2)
        mgr = manager_for(g)
        first = add("a", "x", 1)
        g.add_op(nodes[1].nid, first)          # higher nid first
        twin = first.duplicate()               # same template, higher uid
        g.add_op(nodes[0].nid, twin)
        entries = mgr.template_index()[first.tid]
        assert entries == sorted(entries)

    def test_below_patch_tracks_iteration_motion(self):
        g, nodes = chain(3)
        mgr = manager_for(g)
        tagged = add("it", "x", 5, iteration=2)
        g.add_op(nodes[2].nid, tagged)
        below = mgr.iterations_below()
        assert 2 in below[nodes[0].nid] and 2 in below[nodes[1].nid]
        base = mgr.counters["below_rebuilds"]
        # Hop the tagged op up one node: membership retracts exactly.
        g.remove_op(nodes[2].nid, tagged.uid)
        g.add_op(nodes[1].nid, tagged)
        below = mgr.iterations_below()
        assert 2 in below[nodes[0].nid]
        assert 2 not in below[nodes[1].nid]
        assert mgr.counters["below_rebuilds"] == base

    def test_shims_reach_the_manager(self):
        from repro.percolation import region_below, rpo_index
        from repro.scheduling.gaps import _iterations_below

        g, nodes = chain(3)
        mgr = manager_for(g)
        assert rpo_index(g) is mgr.rpo_index()
        assert region_below(g, nodes[0].nid) == mgr.region_below(nodes[0].nid)
        assert _iterations_below(g) is mgr.iterations_below()
        assert g.template_index() is mgr.template_index()

    def test_back_edge_bypass_rebuilds_instead_of_splicing(self):
        """Splicing is unsound when the bypassed edge was a back edge.

        E->{X,P}, X->S, S->N, N->S (back edge), P->N; N is empty.  RPO
        is E,P,X,S,N, so deleting N retargets P at S -- a *new forward
        edge* (P before S): region_below(P) gains S and the tagged
        iteration on S becomes visible below P.  The manager must fall
        back to a rebuild here; the splice would miss both.
        """
        g = ProgramGraph()
        e = g.new_node()
        x = g.new_node()
        p = g.new_node()
        s = g.new_node()
        n = g.new_node()
        cj = cjump("c")
        e.add_root_cj(cj, x.nid, p.nid)
        g.note_tree_change(e.nid)
        g.set_entry(e.nid)
        g.retarget_leaf(x.nid, x.leaves()[0].leaf_id, s.nid)
        g.retarget_leaf(s.nid, s.leaves()[0].leaf_id, n.nid)
        g.retarget_leaf(n.nid, n.leaves()[0].leaf_id, s.nid)  # back edge
        g.retarget_leaf(p.nid, p.leaves()[0].leaf_id, n.nid)
        g.add_op(s.nid, add("tagged", "x", 1, iteration=1))

        mgr = manager_for(g)
        assert list(mgr.rpo_index()) == [e.nid, p.nid, x.nid, s.nid, n.nid]
        assert mgr.region_below(p.nid) == [n.nid, p.nid]
        assert 1 not in mgr.iterations_below()[p.nid]

        assert g.delete_empty_node(n.nid)
        assert list(mgr.rpo_index()) == list(g.rpo())
        assert mgr.region_below(p.nid) == [s.nid, p.nid]
        assert 1 in mgr.iterations_below()[p.nid]

    def test_second_manager_construction_rejected(self):
        from repro.analysis.incremental import AnalysisManager

        g, _ = chain(2)
        mgr = manager_for(g)
        assert manager_for(g) is mgr  # idempotent accessor
        with pytest.raises(ValueError, match="already has an attached"):
            AnalysisManager(g)

    def test_bulk_mutation_recovers_direct_surgery(self):
        """Un-migrated mutation paths stay correct via the coarse event."""
        g, nodes = chain(3)
        mgr = manager_for(g)
        mgr.template_index()
        op = add("raw", "x", 8, iteration=1)
        nodes[2].add_op(op)  # direct, journal-less surgery ...
        g._touch()           # ... announced coarsely
        assert (nodes[2].nid, op.uid) in mgr.template_index()[op.tid]
        assert 1 in mgr.iterations_below()[nodes[0].nid]
