"""Unit tests for the Livermore kernels and synthetic generators."""

import random

import pytest

from repro.ir import Reg
from repro.simulator import MachineState, run
from repro.workloads import livermore
from repro.workloads.paper_examples import abc_body, abc_loop, ag_body
from repro.workloads.synthetic import (
    branchy_program,
    chain_body,
    random_counted_loop,
    random_straightline,
    wide_body,
)


class TestLivermore:
    def test_all_fourteen_build(self):
        for name in livermore.kernel_names():
            loop = livermore.kernel(name, 8)
            loop.graph.check()
            assert loop.body_ops

    def test_kernel_names_order(self):
        assert livermore.kernel_names()[0] == "LL1"
        assert len(livermore.kernel_names()) == 14

    def test_ll3_is_reduction(self):
        loop = livermore.ll3(8)
        assert Reg("q") in loop.carried_regs
        assert loop.epilogue_ops

    def test_ll2_stride(self):
        assert livermore.ll2(8).step == 2

    def test_ll13_indirection_conservative(self):
        loop = livermore.ll13(8)
        indirect = [op for op in loop.body_ops
                    if op.mem is not None and op.mem.affine is None]
        assert indirect

    def test_kernels_execute(self):
        for name in ("LL1", "LL3", "LL5", "LL11", "LL13"):
            loop = livermore.kernel(name, 5)
            st = MachineState()
            r = run(loop.graph, st, max_cycles=100_000)
            assert r.exited, name
            assert st.mem, name

    def test_ll11_prefix_sum_values(self):
        loop = livermore.ll11(4)
        st = MachineState()
        st.regs["s"] = 0.0
        run(loop.graph, st)
        acc = 0.0
        for k in range(4):
            acc += st.read_mem("y", k)
            assert st.mem[("x", k)] == pytest.approx(acc)

    def test_all_kernels_dict(self):
        ks = livermore.all_kernels(4)
        assert set(ks) == set(livermore.kernel_names())


class TestPaperExamples:
    def test_abc_structure(self):
        body = abc_body()
        assert [op.name for op in body] == ["a", "b", "c"]
        loop = abc_loop()
        loop.graph.check()
        assert loop.graph.successors(loop.latch) == [loop.header]

    def test_ag_dependences(self):
        from repro.analysis import build_dag

        body = ag_body()
        dag = build_dag(body, loop=True)
        by_name = {op.name: op for op in body}
        # b depends on a; c on b; g on f.
        assert by_name["b"].uid in dag.true_succs(by_name["a"].uid)
        assert by_name["c"].uid in dag.true_succs(by_name["b"].uid)
        assert by_name["g"].uid in dag.true_succs(by_name["f"].uid)
        # slope-2 cycle: e -> d carried, d -> e intra.
        carried = {(e.src, e.dst) for e in dag.carried_edges()}
        assert (by_name["e"].uid, by_name["d"].uid) in carried
        assert by_name["e"].uid in dag.true_succs(by_name["d"].uid)

    def test_ag_critical_ratio_is_two(self):
        from repro.analysis import build_dag, critical_cycle_ratio

        dag = build_dag(ag_body(), loop=True)
        assert critical_cycle_ratio(dag) == pytest.approx(2.0, abs=1e-6)


class TestSynthetic:
    def test_random_straightline_valid_and_deterministic(self):
        g1 = random_straightline(random.Random(5), 10)
        g2 = random_straightline(random.Random(5), 10)
        g1.check()
        assert [repr(op) for _, op in g1.all_operations()] == \
               [repr(op) for _, op in g2.all_operations()]

    def test_random_straightline_observable(self):
        g = random_straightline(random.Random(1), 9)
        assert any(op.writes_memory for _, op in g.all_operations())

    def test_random_counted_loop_runs(self):
        loop = random_counted_loop(random.Random(2), trip=5)
        loop.graph.check()
        st = MachineState()
        r = run(loop.graph, st, max_cycles=100_000)
        assert r.exited

    def test_random_counted_loop_reduction(self):
        loop = random_counted_loop(random.Random(3), reduction=True)
        assert Reg("acc") in loop.carried_regs

    def test_shapes(self):
        assert len(chain_body(5)) == 6
        assert len(wide_body(4)) == 8

    def test_branchy_depths(self):
        for depth in (1, 2, 3):
            g = branchy_program(depth=depth)
            g.check()
            cjs = sum(len(n.cjs) for n in g.nodes.values())
            assert cjs == depth
