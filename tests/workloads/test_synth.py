"""Unit tests for the seeded synthetic-workload generator."""

import pytest

from repro.frontend import compile_dsl
from repro.simulator.check import initial_state, input_registers
from repro.simulator.interp import run
from repro.workloads import build_kernel, family_names, family_of
from repro.workloads.synth import (
    CURATED,
    PATTERNS,
    Scenario,
    generate,
    kernel,
    kernel_names,
    scenario_from_seed,
    source_for_seed,
)


class TestSeedContract:
    def test_generation_is_pure_in_the_seed(self):
        for seed in (0, 7, 123):
            assert source_for_seed(seed) == source_for_seed(seed)
            assert scenario_from_seed(seed) == scenario_from_seed(seed)

    def test_different_seeds_differ(self):
        sources = {source_for_seed(seed) for seed in range(20)}
        assert len(sources) >= 18  # collisions would be a red flag

    def test_scenario_space_is_covered(self):
        """A modest seed range must reach every pattern and both depths."""
        scenarios = [scenario_from_seed(s) for s in range(60)]
        assert {sc.pattern for sc in scenarios} == set(PATTERNS)
        assert {sc.depth for sc in scenarios} == {1, 2}
        assert any(sc.step == 2 for sc in scenarios)
        assert any(sc.cond_density > 0 for sc in scenarios)

    def test_scenario_round_trips_through_dict(self):
        sc = scenario_from_seed(11)
        assert Scenario.from_dict(sc.to_dict()) == sc


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(12))
    def test_frontend_round_trip_and_execution(self, seed):
        """Generated source must lower and run to EXIT, with at least
        one observable store (otherwise the checkers see nothing)."""
        src = source_for_seed(seed)
        loop = compile_dsl(src, 4, name=f"synth{seed}")
        loop.graph.check()
        assert any(op.writes_memory
                   for _, op in loop.graph.all_operations())
        st = initial_state(0, input_registers(loop.graph))
        res = run(loop.graph, st, max_cycles=100_000)
        assert res.exited

    def test_depth2_instantiates_inner_copies(self):
        sc = Scenario(seed=1, pattern="stream", stmts=1, depth=2,
                      inner_trip=3)
        prog = generate(sc)
        base = generate(Scenario(seed=1, pattern="stream", stmts=1))
        assert len(prog.statements) == 3 * len(base.statements)

    def test_statement_subsets_stay_parseable(self):
        """The fuzz shrinker drops statements; every subset must still
        compile (declarations are kept)."""
        prog = generate(scenario_from_seed(3))
        for i in range(len(prog.statements)):
            sub = prog.with_statements(
                prog.statements[:i] + prog.statements[i + 1:])
            if not sub.statements:
                continue
            compile_dsl(sub.source(), 4, name="sub")

    def test_degenerate_scenarios_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            generate(Scenario(pattern="nope"))
        with pytest.raises(ValueError, match="degenerate"):
            generate(Scenario(stmts=0))


class TestCuratedFamily:
    def test_registered_names(self):
        assert kernel_names() == list(CURATED)
        assert family_names("synth") == kernel_names()
        assert family_of("SYNRED") == "synth"
        assert family_of("synred") == "synth"
        assert family_of("LL3") == "ll"
        assert family_of("NOPE") is None

    @pytest.mark.parametrize("name", list(CURATED))
    def test_curated_kernels_build(self, name):
        loop = kernel(name, 6)
        loop.graph.check()
        assert loop.ops_per_iteration > 0
        # build_kernel dispatches to the same builder
        via_registry = build_kernel(name, 6)
        assert via_registry.ops_per_iteration == loop.ops_per_iteration

    def test_curated_covers_the_axes(self):
        patterns = {sc.pattern for sc in CURATED.values()}
        assert {"stream", "reduction", "recurrence", "indirect",
                "mixed"} <= patterns
        assert any(sc.cond_density == 1.0 for sc in CURATED.values())
        assert any(sc.depth == 2 for sc in CURATED.values())

    def test_reduction_kernel_carries_scalars(self):
        loop = kernel("SYNRED", 6)
        assert loop.carried_regs  # the reduction accumulators
        assert loop.epilogue_ops  # observable through _scalars
