"""Unit tests for the seeded synthetic-workload generator."""

import pytest

from repro.frontend import compile_dsl
from repro.simulator.check import initial_state, input_registers
from repro.simulator.interp import run
from repro.workloads import build_kernel, family_names, family_of
from repro.workloads.synth import (
    CURATED,
    PATTERNS,
    Scenario,
    generate,
    kernel,
    kernel_names,
    scenario_from_seed,
    source_for_seed,
)


class TestSeedContract:
    def test_generation_is_pure_in_the_seed(self):
        for seed in (0, 7, 123):
            assert source_for_seed(seed) == source_for_seed(seed)
            assert scenario_from_seed(seed) == scenario_from_seed(seed)

    def test_different_seeds_differ(self):
        sources = {source_for_seed(seed) for seed in range(20)}
        assert len(sources) >= 18  # collisions would be a red flag

    def test_scenario_space_is_covered(self):
        """A modest seed range must reach every pattern and both depths."""
        scenarios = [scenario_from_seed(s) for s in range(60)]
        assert {sc.pattern for sc in scenarios} == set(PATTERNS)
        assert {sc.depth for sc in scenarios} == {1, 2}
        assert any(sc.step == 2 for sc in scenarios)
        assert any(sc.cond_density > 0 for sc in scenarios)

    def test_scenario_round_trips_through_dict(self):
        sc = scenario_from_seed(11)
        assert Scenario.from_dict(sc.to_dict()) == sc


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(12))
    def test_frontend_round_trip_and_execution(self, seed):
        """Generated source must lower and run to EXIT, with at least
        one observable store (otherwise the checkers see nothing)."""
        src = source_for_seed(seed)
        loop = compile_dsl(src, 4, name=f"synth{seed}")
        loop.graph.check()
        assert any(op.writes_memory
                   for _, op in loop.graph.all_operations())
        st = initial_state(0, input_registers(loop.graph))
        res = run(loop.graph, st, max_cycles=100_000)
        assert res.exited

    def test_depth2_instantiates_inner_copies(self):
        sc = Scenario(seed=1, pattern="stream", stmts=1, depth=2,
                      inner_trip=3)
        prog = generate(sc)
        base = generate(Scenario(seed=1, pattern="stream", stmts=1))
        assert len(prog.statements) == 3 * len(base.statements)

    def test_statement_subsets_stay_parseable(self):
        """The fuzz shrinker drops statements; every subset must still
        compile (declarations are kept)."""
        prog = generate(scenario_from_seed(3))
        for i in range(len(prog.statements)):
            sub = prog.with_statements(
                prog.statements[:i] + prog.statements[i + 1:])
            if not sub.statements:
                continue
            compile_dsl(sub.source(), 4, name="sub")

    def test_degenerate_scenarios_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            generate(Scenario(pattern="nope"))
        with pytest.raises(ValueError, match="degenerate"):
            generate(Scenario(stmts=0))


class TestCuratedFamily:
    def test_registered_names(self):
        assert kernel_names() == list(CURATED)
        assert family_names("synth") == kernel_names()
        assert family_of("SYNRED") == "synth"
        assert family_of("synred") == "synth"
        assert family_of("LL3") == "ll"
        assert family_of("NOPE") is None

    @pytest.mark.parametrize("name", list(CURATED))
    def test_curated_kernels_build(self, name):
        loop = kernel(name, 6)
        loop.graph.check()
        assert loop.ops_per_iteration > 0
        # build_kernel dispatches to the same builder
        via_registry = build_kernel(name, 6)
        assert via_registry.ops_per_iteration == loop.ops_per_iteration

    def test_curated_covers_the_axes(self):
        patterns = {sc.pattern for sc in CURATED.values()}
        assert {"stream", "reduction", "recurrence", "indirect",
                "mixed"} <= patterns
        assert any(sc.cond_density == 1.0 for sc in CURATED.values())
        assert any(sc.depth == 2 for sc in CURATED.values())

    def test_reduction_kernel_carries_scalars(self):
        loop = kernel("SYNRED", 6)
        assert loop.carried_regs  # the reduction accumulators
        assert loop.epilogue_ops  # observable through _scalars


class TestProgramAxes:
    """The PR-5 scenario axes: while loops, loop sequences, float
    specials -- plus the compatibility contract that legacy scenarios
    keep generating byte-identical programs."""

    def test_seed_key_stable_for_legacy_scenarios(self):
        """A scenario with every new axis at its default must seed the
        generator with the historical dataclass repr."""
        sc = Scenario(seed=201, pattern="stream", stmts=3, mem_ratio=0.7,
                      opmix=("+", "-", "*"))
        assert sc.seed_key() == (
            "Scenario(seed=201, pattern='stream', stmts=3, depth=1, "
            "inner_trip=1, cond_density=0.0, mem_ratio=0.7, "
            "opmix=('+', '-', '*'), step=1)")

    def test_seed_key_extends_for_new_axes(self):
        sc = Scenario(seed=1, while_density=1.0, n_loops=2)
        key = sc.seed_key()
        assert key.endswith("while_density=1.0, n_loops=2)")

    def test_new_axes_are_reached(self):
        scs = [scenario_from_seed(s) for s in range(80)]
        assert any(sc.while_density > 0 for sc in scs)
        assert any(sc.n_loops > 1 for sc in scs)
        assert any(sc.special_density > 0 for sc in scs)

    def test_while_program_compiles_and_terminates(self):
        from repro.ir.loops import LoopProgram

        prog = generate(Scenario(seed=5, pattern="stream", stmts=2,
                                 while_density=1.0))
        (lp,) = prog.loops
        assert lp.kind == "while"
        assert lp.tail  # the non-droppable counter advance
        compiled = compile_dsl(prog.source(), 4, name="wh")
        assert isinstance(compiled, LoopProgram)
        st = initial_state(0, input_registers(compiled.graph))
        res = run(compiled.graph, st, max_cycles=100_000)
        assert res.exited

    def test_multi_loop_program_emits_n_loops(self):
        prog = generate(Scenario(seed=9, pattern="mixed", stmts=2,
                                 n_loops=3))
        assert len(prog.loops) == 3

    def test_special_density_emits_huge_literals(self):
        prog = generate(Scenario(seed=7, pattern="stream", stmts=4,
                                 special_density=0.9))
        assert "1e308" in prog.source()

    def test_drop_statement_flattens_across_loops(self):
        prog = generate(Scenario(seed=9, pattern="mixed", stmts=2,
                                 n_loops=3))
        total = prog.n_statements
        smaller = prog.drop_statement(0)
        assert smaller.n_statements == total - 1
        compile_dsl(smaller.source(), 4, name="drop")

    def test_drop_statement_removes_emptied_loop(self):
        prog = generate(Scenario(seed=5, pattern="recurrence", stmts=1,
                                 n_loops=2))
        per_loop = [len(lp.statements) for lp in prog.loops]
        assert per_loop[0] >= 1
        smaller = prog
        for _ in range(per_loop[0]):
            smaller = smaller.drop_statement(0)
        assert len(smaller.loops) == len(prog.loops) - 1
        compile_dsl(smaller.source(), 4, name="dropped-loop")

    def test_with_statements_rejects_multi_loop(self):
        prog = generate(Scenario(seed=9, n_loops=2))
        with pytest.raises(ValueError, match="single-loop"):
            prog.with_statements(prog.statements[:1])

    def test_curated_program_kernels_registered(self):
        from repro.workloads.synth import is_program_kernel

        assert is_program_kernel("SYNWHL")
        assert is_program_kernel("synseq")
        assert not is_program_kernel("SYNSTR")
        assert family_of("SYNWHL") == "synth"

    @pytest.mark.parametrize("name", ["SYNWHL", "SYNSEQ"])
    def test_curated_program_kernels_build_and_run(self, name):
        from repro.ir.loops import LoopProgram

        prog = kernel(name, 6)
        assert isinstance(prog, LoopProgram)
        prog.graph.check()
        st = initial_state(0, input_registers(prog.graph))
        res = run(prog.graph, st, max_cycles=200_000)
        assert res.exited
