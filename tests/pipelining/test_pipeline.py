"""Unit tests for unwinding, pattern detection, and the PP driver."""

import pytest

from repro.frontend import compile_dsl
from repro.ir import Reg, add, const, load, mul, store
from repro.ir.loops import build_counted_loop
from repro.machine import INFINITE_RESOURCES, MachineConfig
from repro.pipelining import (
    estimate_ii,
    find_pattern,
    iteration_locals,
    main_chain,
    schedule_loop,
    pipeline_loop_post,
    unwind_counted,
    unwind_implicit,
)
from repro.scheduling import AlphabeticalHeuristic, GRiPScheduler
from repro.simulator import run, initial_state
from repro.simulator.check import input_registers
from repro.workloads.paper_examples import abc_body


def tiny_loop(n=6):
    body = [
        load("v", "y", index="k", affine=0, name="ld"),
        mul("t", "v", 2, name="m"),
        store("x", "t", index="k", affine=0, name="st"),
    ]
    return build_counted_loop("tiny", [const("k", 0, name="init")],
                              body, "k", n)


class TestIterationLocals:
    def test_temps_are_local(self):
        loop = tiny_loop()
        locs = iteration_locals(loop)
        assert Reg("v") in locs and Reg("t") in locs

    def test_counter_not_local(self):
        loop = tiny_loop()
        assert Reg("k") not in iteration_locals(loop)

    def test_carried_not_local(self):
        body = [load("v", "y", index="k", affine=0, name="ld"),
                add("q", "q", "v", name="acc")]
        loop = build_counted_loop("red", [const("k", 0, name="i")],
                                  body, "k", 4, carried=["q"])
        assert Reg("q") not in iteration_locals(loop)

    def test_epilogue_reads_not_local(self):
        body = [load("v", "y", index="k", affine=0, name="ld"),
                add("last", "v", 0, name="cap")]
        loop = build_counted_loop(
            "epi", [const("k", 0, name="i")], body, "k", 4,
            epilogue=[store("_scalars", "last", offset=0, name="out")])
        assert Reg("last") not in iteration_locals(loop)


class TestUnwind:
    def test_op_counts(self):
        loop = tiny_loop()
        u = unwind_counted(loop, 4)
        # 4 iterations x (3 body + iv + cmp + cj) + preheader.
        assert len(u.ops) == 4 * 6
        assert u.graph.op_count() == 4 * 6 + 1

    def test_iteration_tags(self):
        u = unwind_counted(tiny_loop(), 3)
        tags = sorted({op.iteration for op in u.ops})
        assert tags == [0, 1, 2]

    def test_affine_rebase(self):
        u = unwind_counted(tiny_loop(), 3)
        loads = [op for op in u.ops if op.reads_memory]
        assert sorted(op.mem.affine for op in loads) == [0, 1, 2]

    def test_unwound_executes_like_sequential(self):
        loop = tiny_loop(n=4)
        u = unwind_counted(loop, 4)
        inputs = input_registers(loop.graph) | input_registers(u.graph)
        sa, sb = initial_state(7, inputs), initial_state(7, inputs)
        ra = run(loop.graph, sa)
        rb = run(u.graph, sb)
        assert ra.exited and rb.exited
        assert {k: v for k, v in sa.mem.items() if k[0] == "x"} == \
               {k: v for k, v in sb.mem.items() if k[0] == "x"}

    def test_early_exit_when_trip_below_unroll(self):
        loop = tiny_loop(n=2)
        u = unwind_counted(loop, 5)
        inputs = input_registers(loop.graph) | input_registers(u.graph)
        sa, sb = initial_state(3, inputs), initial_state(3, inputs)
        run(loop.graph, sa)
        rb = run(u.graph, sb)
        assert rb.exited
        xa = {k: v for k, v in sa.mem.items() if k[0] == "x"}
        xb = {k: v for k, v in sb.mem.items() if k[0] == "x"}
        assert xa == xb
        assert ("x", 3) not in sb.mem  # iterations beyond trip never stored

    def test_implicit_unwind(self):
        u = unwind_implicit(abc_body(), 4)
        assert len(u.ops) == 12
        assert u.graph.op_count() == 12


class TestPatternDetection:
    def test_abc_kernel(self):
        """Figure 5/6: kernel 'cba', II=1, PP speedup 3."""
        u = unwind_implicit(abc_body(), 8)
        GRiPScheduler(INFINITE_RESOURCES, AlphabeticalHeuristic(),
                      gap_prevention=True).schedule(u.graph,
                                                    ranking_ops=u.ops)
        pat = find_pattern(u, u.graph)
        assert pat is not None
        assert pat.period == 1 and pat.shift == 1
        assert pat.initiation_interval == 1.0

    def test_main_chain_skips_stubs(self):
        loop = tiny_loop(n=6)
        res = schedule_loop(loop, MachineConfig(fus=2), unroll=6,
                            measure=False)
        chain = main_chain(res.unwound.graph)
        assert res.unwound.graph.entry == chain[0]
        assert len(chain) <= len(res.unwound.graph.nodes)

    def test_estimate_ii_linear(self):
        retires = {i: 3 + 2 * i for i in range(10)}
        est = estimate_ii(retires, 10)
        assert est is not None
        assert est.ii == pytest.approx(2.0)
        assert est.max_deviation == pytest.approx(0.0)
        assert est.steady

    def test_estimate_ii_unstable(self):
        retires = {i: (i * i) for i in range(12)}
        est = estimate_ii(retires, 12)
        assert est is not None and not est.steady


class TestPipelineLoop:
    def test_vectorizable_reaches_fu_bound(self):
        loop = tiny_loop(n=12)
        res = schedule_loop(loop, MachineConfig(fus=2), unroll=12)
        assert res.converged
        # 6 ops/iteration on 2 FUs: speedup 2.
        assert res.speedup == pytest.approx(2.0, abs=0.05)

    def test_measured_close_to_analytic(self):
        loop = tiny_loop(n=12)
        res = schedule_loop(loop, MachineConfig(fus=2), unroll=12)
        assert res.measured_speedup <= res.speedup + 0.01
        assert res.measured_speedup >= 0.75 * res.speedup

    def test_memory_verification_runs(self):
        # verify=True is the default; divergence would raise.
        loop = tiny_loop(n=8)
        schedule_loop(loop, MachineConfig(fus=4), unroll=8, verify=True)

    def test_reduction_capped_at_recurrence(self):
        src = """
        param q, n; array z;
        for k = 0 to n { q = q + z[k]; }
        """
        loop = compile_dsl(src, 16, name="red")
        res = schedule_loop(loop, MachineConfig(fus=8), unroll=16)
        # 5 ops/iter, II >= 1 due to the q chain: speedup <= 5.
        assert res.converged
        assert res.speedup <= 5.01

    def test_gap_prevention_off_still_correct(self):
        loop = tiny_loop(n=8)
        res = schedule_loop(loop, MachineConfig(fus=4), unroll=8,
                            gap_prevention=False)
        assert res.measured_speedup > 1.5  # semantics verified inside

    def test_post_below_grip(self):
        loop = tiny_loop(n=12)
        g = schedule_loop(loop, MachineConfig(fus=4), unroll=12,
                          measure=False)
        p = pipeline_loop_post(tiny_loop(n=12), MachineConfig(fus=4),
                               unroll=12)
        assert p.converged and g.converged
        assert p.speedup <= g.speedup + 1e-9
