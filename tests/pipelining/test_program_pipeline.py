"""Program-level scheduling: segment isolation, while compaction,
combined-graph equivalence, trip-count-unknown guards."""

import pytest

from repro.backend import differential_check
from repro.frontend import compile_dsl
from repro.ir.cjtree import EXIT
from repro.ir.loops import CountedLoop, concat_graphs
from repro.ir.builder import straightline_graph
from repro.ir.operations import OpKind, add, mul
from repro.machine import FUClass, MachineConfig
from repro.pipelining import compact_while, schedule_program
from repro.simulator.check import check_equivalent

WHILE_SRC = """
param w0, lim, acc, n; array x, d;
while (w0 < lim + 8) {
    acc = acc + x[w0];
    d[w0] = acc * 2;
    w0 = w0 + 1;
}
"""

MIXED_SRC = """
param q, acc, w1, lim, n; array x, d, g;
for k = 0 to n { d[k] = x[k] * q; acc = acc + x[k]; }
while (w1 < lim + 8) {
    g[w1] = d[w1] + acc;
    w1 = w1 + 2;
}
"""


class TestConcatGraphs:
    def test_chain_and_exit_rewiring(self):
        g1 = straightline_graph([add("a", "x", 1, name="A")])
        g2 = straightline_graph([mul("b", "a", 2, name="B")])
        out = concat_graphs([g1, g2])
        out.check()
        order = out.rpo()
        assert len(order) == 2
        first, second = order
        assert out.successors(first) == [second]
        assert out.successors(second) == []  # EXIT
        # inputs untouched: g1 still exits the program
        assert g1.nodes[g1.entry].leaves()[0].target == EXIT

    def test_empty_graphs_skipped(self):
        g = straightline_graph([add("a", "x", 1)])
        out = concat_graphs([g])
        assert len(out.nodes) == 1


class TestCompactWhile:
    def build(self, fus=4, typed=None, latencies=None):
        prog = compile_dsl(WHILE_SRC, 6, name="w")
        (wl,) = prog.loops
        machine = MachineConfig(fus=fus, typed=typed, latencies=latencies)
        return wl, machine, compact_while(wl, machine)

    def test_rows_respect_budgets_and_backedge(self):
        wl, machine, g = self.build(fus=2)
        g.check()
        for nid in g.reachable():
            assert machine.fits(g.nodes[nid])
        # exactly one back edge, targeting the header region
        back = [(nid, s) for nid in g.nodes
                for s in g.successors(nid)
                if s == g.entry]
        assert back, "while compaction lost its back edge"

    def test_exit_test_precedes_body_effects(self):
        """No store may sit at or above the exit jump's node: body
        effects of an iteration that should not run must not commit."""
        wl, machine, g = self.build(fus=8)
        order = g.rpo()
        cj_pos = next(i for i, nid in enumerate(order)
                      if g.nodes[nid].cjs)
        for i, nid in enumerate(order):
            for op in g.nodes[nid].all_ops():
                if op.kind is OpKind.STORE:
                    assert i > cj_pos

    def test_latency_map_ignored_for_row_packing(self):
        wl, machine, g_lat = self.build(
            fus=4, latencies={OpKind.MUL: 4, OpKind.LOAD: 3})
        _, _, g_plain = self.build(fus=4)
        assert len(g_lat.nodes) == len(g_plain.nodes)

    def test_wider_machine_fewer_rows(self):
        _, _, g2 = self.build(fus=2)
        _, _, g8 = self.build(fus=8)
        assert len(g8.nodes) <= len(g2.nodes)


class TestPipelineProgram:
    @pytest.mark.parametrize("fus", [2, 4, 8])
    def test_while_program_equivalent(self, fus):
        prog = compile_dsl(WHILE_SRC, 6, name="w")
        res = schedule_program(prog, MachineConfig(fus=fus), unroll=6,
                               seeds=(0, 1, 2))
        check_equivalent(prog.graph, res.graph, seeds=(0, 1, 2, 3))
        differential_check(res.graph, MachineConfig(fus=fus), seeds=(0, 1))

    def test_while_segment_declines_pipelining(self):
        prog = compile_dsl(WHILE_SRC, 6, name="w")
        res = schedule_program(prog, MachineConfig(fus=4), unroll=6,
                               measure=False)
        (seg,) = res.segments
        assert seg.kind == "while"
        assert seg.unwound is None and seg.pattern is None
        assert seg.initiation_interval is None
        assert seg.converged  # declining is not a failure

    def test_mixed_program_counted_segment_pipelines(self):
        prog = compile_dsl(MIXED_SRC, 8, name="mix")
        res = schedule_program(prog, MachineConfig(fus=8), unroll=8,
                               seeds=(0, 1))
        kinds = [seg.kind for seg in res.segments]
        assert kinds == ["counted", "while"]
        counted = res.segments[0]
        assert counted.initiation_interval is not None
        assert counted.initiation_interval < counted.loop.ops_per_iteration
        check_equivalent(prog.graph, res.graph, seeds=(0, 1, 2))

    def test_live_out_survives_segment_cleanup(self):
        """Loop 0 computes ``acc`` that only loop 1 reads; per-segment
        scheduling must not clean it away (exit_live = live_out)."""
        prog = compile_dsl(MIXED_SRC, 6, name="mix")
        res = schedule_program(prog, MachineConfig(fus=4), unroll=6,
                               seeds=(0, 1, 2))
        check_equivalent(prog.graph, res.graph, seeds=(0, 1, 2, 3, 4))

    def test_measured_speedup_positive(self):
        prog = compile_dsl(MIXED_SRC, 8, name="mix")
        res = schedule_program(prog, MachineConfig(fus=4), unroll=8)
        assert res.measured_speedup is not None
        assert res.measured_speedup > 1.0

    def test_typed_machine_program(self):
        prog = compile_dsl(MIXED_SRC, 6, name="mix")
        machine = MachineConfig(fus=4, typed={FUClass.ALU: 2,
                                              FUClass.MEM: 2,
                                              FUClass.BRANCH: 1})
        res = schedule_program(prog, machine, unroll=6, measure=False)
        for nid in res.graph.reachable():
            assert machine.fits(res.graph.nodes[nid])
        check_equivalent(prog.graph, res.graph, seeds=(0, 1))

    def test_verify_analysis_mode(self):
        prog = compile_dsl(MIXED_SRC, 5, name="mix")
        res = schedule_program(prog, MachineConfig(fus=4), unroll=5,
                               measure=False, verify_analysis=True)
        assert res.segments[0].schedule is not None


class TestCountedLoopUnchanged:
    def test_single_counted_source_still_counted_path(self):
        loop = compile_dsl(
            "param q, n; array x, y;\n"
            "for k = 0 to n { x[k] = q + y[k+1]; }", 6)
        assert isinstance(loop, CountedLoop)
        assert loop.live_out == frozenset()

    def test_loads_for_counted_kernels_unaffected(self):
        # sanity: a classic kernel still pipelines through the old path
        from repro.pipelining import schedule_loop
        from repro.workloads import livermore

        loop = livermore.kernel("LL1", 6)
        res = schedule_loop(loop, MachineConfig(fus=4), unroll=6,
                            measure=False)
        assert res.speedup is not None


def test_program_graph_runs_on_tree_walker_and_vm_with_latencies():
    prog = compile_dsl(WHILE_SRC, 6, name="w")
    machine = MachineConfig(fus=4, latencies={OpKind.MUL: 3,
                                              OpKind.LOAD: 2})
    res = schedule_program(prog, machine, unroll=6, measure=False)
    rep = differential_check(res.graph, machine, seeds=(0, 1, 2, 3))
    # scoreboard realizes stalls; bundles-per-cycle contract still holds
    assert rep.vm_steps == rep.interp_cycles
    assert all(c >= s for c, s in zip(rep.vm_cycles, rep.vm_steps))
