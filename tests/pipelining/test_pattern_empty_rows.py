"""Pattern-detector blind spots around untagged rows (regression).

``RowSignature`` carries the sentinel ``base=0`` when a row holds no
iteration-tagged op (empty rows, or rows of pure extras).  The shift
derivation used to read ``sigs[start + period].base - sigs[start].base``
unconditionally, so any steady-state kernel containing an empty row got
a bogus shift and was never detected -- silently degrading Table-1
points to the drift estimate.  Shift derivation and base matching now
skip untagged rows.
"""

import pytest

from repro.pipelining import ThroughputEstimate, find_pattern_in_signatures
from repro.pipelining.pattern import RowSignature, _derive_shift


def tagged_row(base: int, *deltas: int) -> RowSignature:
    items = tuple(sorted((b, d) for b, d in enumerate(deltas)))
    return RowSignature(items=items, base=base,
                        max_iter=base + (max(deltas) if deltas else 0),
                        extras=0)


EMPTY = RowSignature(items=(), base=0, max_iter=-1, extras=0)


def extras_row(count: int) -> RowSignature:
    return RowSignature(items=(), base=0, max_iter=-1, extras=count)


class TestEmptyRowKernels:
    def test_kernel_with_empty_row_is_detected(self):
        """Period-2 kernel whose second row is empty: [work(i), empty].

        With the sentinel bases participating in shift arithmetic the
        candidate (start=0, period=2) derived shift from row 0 vs row 2
        correctly, but every (empty, empty) pair then failed the
        uniform-base check -- and candidates *starting* on an empty row
        derived shift 0.  The kernel must now be found.
        """
        sigs = []
        for i in range(8):
            sigs.append(tagged_row(i, 0))
            sigs.append(EMPTY)
        pat = find_pattern_in_signatures(sigs, iterations=20)
        assert pat is not None
        assert pat.period == 2
        assert pat.shift == 1
        assert pat.initiation_interval == pytest.approx(2.0)

    def test_candidate_starting_on_empty_row(self):
        """A leading empty row must not poison the shift derivation."""
        sigs = [EMPTY]
        for i in range(8):
            sigs.append(tagged_row(i, 0))
            sigs.append(EMPTY)
        pat = find_pattern_in_signatures(sigs, iterations=20)
        assert pat is not None
        assert pat.period == 2
        assert pat.shift == 1

    def test_extras_only_rows_use_no_sentinel_base(self):
        """Rows of untagged extras also carry base=0; they must match
        positionally (extras count) but never via base arithmetic."""
        sigs = []
        for i in range(8):
            sigs.append(tagged_row(i, 0))
            sigs.append(extras_row(1))
        pat = find_pattern_in_signatures(sigs, iterations=20)
        assert pat is not None
        assert pat.period == 2
        assert pat.shift == 1

    def test_all_untagged_window_yields_no_pattern(self):
        sigs = [EMPTY] * 8
        assert find_pattern_in_signatures(sigs, iterations=20) is None
        assert _derive_shift(sigs, 0, 2, len(sigs)) is None

    def test_plain_kernel_still_detected(self):
        """No empty rows: behavior unchanged from the original search."""
        sigs = [tagged_row(i, 0) for i in range(8)]
        pat = find_pattern_in_signatures(sigs, iterations=20)
        assert pat is not None
        assert pat.start_row == 0
        assert pat.period == 1
        assert pat.shift == 1

    def test_mismatched_empty_row_placement_rejected(self):
        """An empty row must still break a bogus periodicity claim:
        (work, empty) vs (work, work) cannot alias."""
        sigs = [tagged_row(0, 0), EMPTY,
                tagged_row(1, 0), tagged_row(1, 1),
                tagged_row(2, 0), EMPTY,
                tagged_row(3, 0), tagged_row(3, 1)]
        pat = find_pattern_in_signatures(sigs, iterations=20,
                                         min_repetitions=2)
        assert pat is None or pat.period != 2 or pat.start_row != 0


class TestSteadyThreshold:
    def test_threshold_constant_matches_property(self):
        assert ThroughputEstimate.STEADY_TOLERANCE_ROWS == 1.5
        at = ThroughputEstimate(ii=1.0, first_iter=0, last_iter=10,
                                max_deviation=1.5)
        above = ThroughputEstimate(ii=1.0, first_iter=0, last_iter=10,
                                   max_deviation=1.5000001)
        assert at.steady
        assert not above.steady

    def test_zero_deviation_is_steady(self):
        assert ThroughputEstimate(ii=1.0, first_iter=0, last_iter=10,
                                  max_deviation=0.0).steady
