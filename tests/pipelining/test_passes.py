"""Unit tests for the program pass pipeline (repro.pipelining.passes).

The property suite (tests/property/test_pass_pipeline.py) adjudicates
soundness differentially; these tests pin the *mechanics*: which ops
move where, which reason codes fire, and that a transform-free run of
the optimizing pipeline leaves the schedule untouched.
"""

import pytest

from repro.frontend import compile_dsl
from repro.ir.operations import OpKind
from repro.ir.registers import Reg
from repro.machine import MachineConfig
from repro.obs import DecisionJournal, FusionBlocked, OpHoisted, SlackMove
from repro.pipelining.passes import (
    fuse_counted_segments,
    hoist_invariants,
    normalize_program,
)
from repro.pipelining.program import schedule_program
from repro.simulator.check import check_equivalent


def plan_for(src: str, n: int = 6, name: str = "t"):
    program = compile_dsl(src, n, name=name)
    return program, normalize_program(program)


# ----------------------------------------------------------------------
# Hoisting
# ----------------------------------------------------------------------
HOIST_SRC = """
param p0, hv, n; array x, d;
for k = 0 to n {
    hv = (p0 * 1.5);
    d[k] = (x[k] + hv);
}
while (p0 < 1) { p0 = p0 + 1; }
"""


class TestHoisting:
    def test_counted_body_invariant_moves_to_preheader(self):
        program, plan = plan_for(HOIST_SRC)
        journal = DecisionJournal()
        assert hoist_invariants(plan, journal) >= 1
        loop = plan.segments[0].loop
        assert any(op.dest == Reg("hv") for op in loop.preheader_ops)
        assert not any(op.dest == Reg("hv") for op in loop.body_ops)
        kinds = [e.kind for e in journal.events if isinstance(e, OpHoisted)]
        assert "counted" in kinds

    def test_dependent_chain_hoists_across_rounds(self):
        # t = p0 * 2 then hv = t + 1: the second becomes invariant only
        # once the first has hoisted -- the fixpoint must lift both.
        src = """
param p0, hv, n; array x, d;
for k = 0 to n {
    hv = ((p0 * 2) + 1);
    d[k] = (x[k] + hv);
}
while (p0 < 1) { p0 = p0 + 1; }
"""
        program, plan = plan_for(src)
        hoist_invariants(plan)
        loop = plan.segments[0].loop
        body_defs = {op.dest for op in loop.body_ops if op.dest}
        assert Reg("hv") not in body_defs
        # everything feeding hv left the body too
        assert all(op.mem is not None or op.dest is not None
                   for op in loop.body_ops)

    def test_carried_accumulator_stays(self):
        src = """
param acc, n; array x;
for k = 0 to n { acc = (acc + x[k]); }
while (acc < 1) { acc = acc + 1; }
"""
        program, plan = plan_for(src)
        journal = DecisionJournal()
        hoist_invariants(plan, journal)
        loop = plan.segments[0].loop
        assert any(op.dest == Reg("acc") for op in loop.body_ops)


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
class TestFusion:
    def test_three_way_chain_fuses_to_one_segment(self):
        src = """
param q, n; array x, y, z, d, e, f;
for k = 0 to n { d[k] = (x[k] * q); }
for k = 0 to n { e[k] = (y[k] + q); }
for k = 0 to n { f[k] = (z[k] - q); }
"""
        program, plan = plan_for(src, name="chain")
        journal = DecisionJournal()
        assert fuse_counted_segments(plan, journal) == 2
        assert len(plan.segments) == 1
        assert plan.segments[0].loop.name == "chain.L0+chain.L1+chain.L2"

    def test_shared_accumulator_blocks_with_scalar_dep(self):
        src = """
param acc, n; array x, y, d;
for k = 0 to n { acc = (acc + x[k]); d[k] = acc; }
for k = 0 to n { acc = (acc * y[k]); }
"""
        program, plan = plan_for(src)
        journal = DecisionJournal()
        assert fuse_counted_segments(plan, journal) == 0
        whys = [e.why for e in journal.events if isinstance(e, FusionBlocked)]
        assert whys == ["scalar-dep"]

    def test_backward_memory_distance_blocks_with_mem_dep(self):
        # L1 writes r[k+1]; L2 reads r[k+2]: fused iteration k would
        # read a cell L1 only writes at iteration k+1 (d = -1 < 0).
        src = """
param n; array x, r, d;
for k = 0 to n { r[k+1] = (x[k] + 1); }
for k = 0 to n { d[k] = (r[k+2] * 2); }
"""
        program, plan = plan_for(src)
        journal = DecisionJournal()
        assert fuse_counted_segments(plan, journal) == 0
        whys = [e.why for e in journal.events if isinstance(e, FusionBlocked)]
        assert whys == ["mem-dep"]

    def test_forward_memory_distance_fuses_and_verifies(self):
        # Same arrays, but the read distance trails the write (d >= 0):
        # safe, and the fused program must stay memory-equivalent.
        src = """
param n; array x, r, d;
for k = 0 to n { r[k+1] = (x[k] + 1); }
for k = 0 to n { d[k] = (r[k] * 2); }
"""
        program, plan = plan_for(src)
        assert fuse_counted_segments(plan, DecisionJournal()) == 1
        res = schedule_program(program, MachineConfig(fus=4), unroll=8,
                               measure=False)
        check_equivalent(program.graph, res.graph, seeds=(0, 1, 2))


# ----------------------------------------------------------------------
# Slack-slot motion
# ----------------------------------------------------------------------
SLACK_SRC = """
param acc, q, n; array x, y, d;
for k = 0 to 6 { acc = (acc + x[k]); }
for k = 0 to 9 { d[k] = (y[k] * q); }
"""


class TestSlackMotion:
    def test_independent_epilogue_store_migrates(self):
        program = compile_dsl(SLACK_SRC, 6, name="slack")
        machine = MachineConfig(fus=4)
        journal = DecisionJournal()
        res = schedule_program(program, machine, measure=False,
                               tracer=journal, verify=True)
        assert journal.slack_moves == 1
        assert res.residual_epilogue == []
        moves = [e for e in journal.events if isinstance(e, SlackMove)]
        assert moves and moves[0].op.startswith("out_acc")

    def test_dependent_epilogue_store_stays(self):
        # Fusion merges both loops, so out_acc depends on the (only)
        # segment that computes acc -- it must stay in the epilogue.
        src = SLACK_SRC.replace("to 6", "to n").replace("to 9", "to n")
        program = compile_dsl(src, 6, name="slack2")
        journal = DecisionJournal()
        res = schedule_program(program, MachineConfig(fus=4), measure=False,
                               tracer=journal)
        assert journal.slack_moves == 0
        assert [op.name for op in res.residual_epilogue] == ["out_acc"]


# ----------------------------------------------------------------------
# No-transform bit-identity
# ----------------------------------------------------------------------
def test_transform_free_program_schedules_identically():
    # The condition reads only the carried counter and the raw limit,
    # so nothing is invariant; one while segment, nothing to fuse or
    # slack-fill -- no transform may fire and the optimizing pipeline
    # must produce the legacy flow's graph, node for node.
    src = """
param w0, lim, n; array x;
while (w0 < lim) { x[w0] = (x[w0] + 1); w0 = w0 + 1; }
"""
    program = compile_dsl(src, 6, name="noop")
    machine = MachineConfig(fus=4)
    journal = DecisionJournal()
    opt = schedule_program(program, machine, measure=False, tracer=journal)
    base = schedule_program(program, machine, measure=False, optimize=False)
    assert not journal.pass_reasons

    def shape(graph):
        return [(nid, sorted(op.name for op in graph.nodes[nid].all_ops()))
                for nid in graph.rpo()]

    assert shape(opt.graph) == shape(base.graph)
