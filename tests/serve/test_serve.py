"""The ``repro serve`` batch front: protocol, round-trip fidelity,
cache hit accounting, and error isolation."""

import json

import pytest

from repro import api
from repro.machine import MachineConfig
from repro.serve import SERVE_KIND, SERVE_SCHEMA, run_serve_job, schedule_payload
from repro.serve.client import (
    ServeProtocolError,
    parse_addr,
    submit_batch,
    submit_fuzz_tasks,
)
from repro.serve.jobs import init_worker
from repro.serve.server import SELFTEST_SOURCES, TcpServeFixture, selftest_batch


@pytest.fixture(scope="module")
def front(tmp_path_factory):
    """One live TCP serve front shared by the module's tests."""
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    with TcpServeFixture(jobs=2, cache_dir=str(cache_dir)) as fixture:
        yield fixture


class TestParseAddr:
    def test_host_port(self):
        assert parse_addr("10.0.0.1:9000") == ("10.0.0.1", 9000)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_addr(":9000") == ("127.0.0.1", 9000)

    def test_rejects_portless(self):
        with pytest.raises(ValueError):
            parse_addr("localhost")


class TestRoundTrip:
    def test_batch_matches_direct_api_schedule(self, front):
        """Per-job streamed results == direct repro.api.schedule output
        (the acceptance criterion: a mixed counted / while / multi-loop
        batch, compared through the same stable payload)."""
        batch = selftest_batch()
        results, summary = submit_batch(front.addr, batch)
        assert summary["jobs"] == len(batch)
        assert summary["errors"] == 0
        by_id = {r["id"]: r for r in results}
        assert set(by_id) == set(SELFTEST_SOURCES)
        machine = MachineConfig(fus=4)
        for name, src in SELFTEST_SOURCES.items():
            program = api.compile(src, 8, name="serve")
            direct = api.schedule(program, machine,
                                  options=api.ScheduleOptions(unroll=8))
            assert by_id[name]["ok"], by_id[name]
            assert by_id[name]["result"] == schedule_payload(direct)

    def test_mixed_batch_covers_all_shapes(self):
        kinds = set()
        for src in SELFTEST_SOURCES.values():
            program = api.compile(src, 8)
            kinds.add(type(program).__name__)
        assert kinds == {"CountedLoop", "LoopProgram"}
        assert any("while" in s for s in SELFTEST_SOURCES.values())
        assert any(s.count("for ") > 1 for s in SELFTEST_SOURCES.values())

    def test_second_batch_hits_cache(self, front):
        batch = selftest_batch()
        first, _ = submit_batch(front.addr, batch)
        _, summary = submit_batch(front.addr, batch)
        assert summary["cache_hits"] >= len(batch) - 1
        assert summary["hit_rate"] >= (len(batch) - 1) / len(batch)

    def test_every_line_carries_kind_and_schema(self, front):
        results, summary = submit_batch(front.addr, selftest_batch()[:2])
        for line in [*results, summary]:
            assert line["kind"] == SERVE_KIND
            assert line["schema"] == SERVE_SCHEMA

    def test_fuzz_jobs_round_trip(self, front):
        tasks = [(seed, False, None, 4, None) for seed in (0, 1)]
        out = sorted(submit_fuzz_tasks(front.addr, tasks))
        assert [seed for seed, _, _ in out] == [0, 1]
        for _, failure, stats in out:
            assert failure is None
            assert stats is not None and stats.n_lanes == 4


class TestErrors:
    def test_bad_job_streams_error_not_crash(self, front):
        batch = [
            {"id": "good", "kind": "schedule",
             "source": SELFTEST_SOURCES["stream"], "options": {"unroll": 4}},
            {"id": "bad", "kind": "schedule",
             "source": "this is not DSL"},
            {"id": "worse", "kind": "nonsense"},
        ]
        results, summary = submit_batch(front.addr, batch)
        by_id = {r["id"]: r for r in results}
        assert by_id["good"]["ok"]
        assert not by_id["bad"]["ok"]
        assert not by_id["worse"]["ok"]
        assert "kind" in by_id["worse"]["error"]["message"]
        assert summary["errors"] == 2

    def test_malformed_batch_raises_protocol_error(self, front):
        import socket

        host, port = parse_addr(front.addr)
        with socket.create_connection((host, port)) as sock:
            sock.sendall(b'{"not": "a batch"}\n')
            line = json.loads(sock.makefile("r").readline())
        assert line["type"] == "error"
        # the client surfaces the same line as ServeProtocolError
        from repro.serve.client import stream_batch

        with pytest.raises(ServeProtocolError):
            list(stream_batch(front.addr, "nope"))

    def test_unknown_option_rejected(self, front):
        results, _ = submit_batch(front.addr, [
            {"id": 1, "kind": "schedule",
             "source": SELFTEST_SOURCES["stream"],
             "options": {"warp_speed": True}}])
        assert not results[0]["ok"]
        assert "warp_speed" in results[0]["error"]["message"]


class TestInProcessJobs:
    """run_serve_job without a server (what each worker executes)."""

    def test_schedule_job_kernel_spec(self):
        init_worker(None)
        answer = run_serve_job({"id": 7, "kind": "schedule",
                                "kernel": "LL1", "fus": 2, "unroll": 6})
        assert answer["ok"] and answer["id"] == 7
        assert answer["result"]["kind"] == "counted"
        assert answer["cache"] is None  # no cache configured

    def test_bench_job(self, tmp_path):
        init_worker(str(tmp_path))
        answer = run_serve_job({
            "id": "b", "kind": "bench",
            "job": {"kernel": "LL1", "fus": 2, "backend": "grip",
                    "unroll": 6}})
        assert answer["ok"], answer
        rec = answer["result"]["record"]
        assert rec["kernel"] == "LL1" and rec["speedup"] > 1
        assert answer["cache"] == "miss"
        warm = run_serve_job({
            "id": "b2", "kind": "bench",
            "job": {"kernel": "LL1", "fus": 2, "backend": "grip",
                    "unroll": 6}})
        assert warm["cache"] == "hit"
        cold = {k: v for k, v in rec.items() if k != "stages"}
        hot = {k: v for k, v in warm["result"]["record"].items()
               if k != "stages"}
        assert cold == hot
