"""Unit tests for statistics and table rendering."""

import math

import pytest

from repro.reporting import (
    SpeedupTable,
    arithmetic_mean,
    comparison_table,
    geometric_mean,
    harmonic_mean,
    weighted_harmonic_mean,
)


class TestStats:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0

    def test_arithmetic_mean_skips_none(self):
        assert arithmetic_mean([2.0, None, 4.0]) == 3.0

    def test_harmonic_mean(self):
        assert harmonic_mean([2, 2]) == pytest.approx(2.0)
        assert harmonic_mean([1, 3]) == pytest.approx(1.5)

    def test_whm_equal_weights_is_hm(self):
        vals = [2.0, 4.0, 8.0]
        assert weighted_harmonic_mean(vals) == pytest.approx(
            harmonic_mean(vals))

    def test_whm_weights(self):
        # Heavier weight on the slow loop pulls the mean down.
        light = weighted_harmonic_mean([2.0, 8.0], [1, 1])
        heavy = weighted_harmonic_mean([2.0, 8.0], [10, 1])
        assert heavy < light

    def test_whm_below_mean(self):
        vals = [2.0, 4.0, 8.0]
        assert weighted_harmonic_mean(vals) <= arithmetic_mean(vals)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_empty_inputs(self):
        assert math.isnan(arithmetic_mean([]))
        assert math.isnan(harmonic_mean([0.0]))
        assert math.isnan(weighted_harmonic_mean([]))


class TestTables:
    def test_speedup_table_layout(self):
        t = SpeedupTable(fu_configs=(2, 4), systems=("GRiP", "POST"))
        for loop, spds in (("LL1", (2.0, 1.8, 4.0, 3.5)),
                           ("LL2", (1.9, 1.9, 3.8, 3.0))):
            t.add(loop, 2, "GRiP", spds[0], weight=10)
            t.add(loop, 2, "POST", spds[1], weight=10)
            t.add(loop, 4, "GRiP", spds[2], weight=10)
            t.add(loop, 4, "POST", spds[3], weight=10)
        text = t.render()
        lines = text.splitlines()
        assert "GRiP@2" in lines[1] and "POST@4" in lines[1]
        assert lines[-2].split()[0] == "Mean"
        assert lines[-1].split()[0] == "WHM"

    def test_speedup_table_column(self):
        t = SpeedupTable(fu_configs=(2,), systems=("GRiP",))
        t.add("LL1", 2, "GRiP", 2.0)
        t.add("LL2", 2, "GRiP", None)
        assert t.column(2, "GRiP") == [2.0, None]

    def test_comparison_table_alignment(self):
        text = comparison_table(["a", "bb"], [[1, 2.5], [33, 4.0]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].endswith("bb")
