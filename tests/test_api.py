"""The ``repro.api`` facade: dispatch, options, and the deprecation
surface of the old entrypoints."""

import warnings

import pytest

from repro import api
from repro.frontend.ast import Program
from repro.ir.loops import CountedLoop, LoopProgram
from repro.machine import MachineConfig
from repro.pipelining import (
    pipeline_loop,
    pipeline_program,
    schedule_loop,
    schedule_program,
)
from repro.workloads import build_kernel

COUNTED_SRC = "param n, q; array A, B;\nfor k = 0 to n { B[k] = A[k] * q; }"
WHILE_SRC = ("param w0, lim; array x, d;\n"
             "while (w0 < lim + 4) { d[w0] = x[w0] + 1; w0 = w0 + 1; }")


class TestCompileAndLoad:
    def test_compile_dispatch_shapes(self):
        assert isinstance(api.compile(COUNTED_SRC, 8), CountedLoop)
        assert isinstance(api.compile(WHILE_SRC, 8), LoopProgram)

    def test_load_kernel_builtin_and_file(self, tmp_path):
        assert isinstance(api.load_kernel("LL1", 8), CountedLoop)
        f = tmp_path / "mine.dsl"
        f.write_text(COUNTED_SRC)
        loop = api.load_kernel(str(f), 8)
        assert isinstance(loop, CountedLoop)
        assert loop.name == "mine"

    def test_load_kernel_bad_spec_raises(self):
        with pytest.raises(api.KernelSpecError, match="not a built-in"):
            api.load_kernel("NOPE99", 8)


class TestScheduleDispatch:
    def test_counted_equals_direct_entrypoint(self):
        machine = MachineConfig(fus=4)
        via_api = api.schedule(build_kernel("LL1", 8), machine,
                               options=api.ScheduleOptions(unroll=8))
        direct = schedule_loop(build_kernel("LL1", 8), machine, unroll=8)
        assert via_api.summary() == direct.summary()
        assert via_api.speedup == direct.speedup

    def test_program_equals_direct_entrypoint(self):
        machine = MachineConfig(fus=4)
        via_api = api.schedule(build_kernel("SYNWHL", 6), machine,
                               options=api.ScheduleOptions(unroll=6))
        direct = schedule_program(build_kernel("SYNWHL", 6), machine,
                                  unroll=6)
        assert via_api.summary() == direct.summary()
        assert via_api.speedup == direct.speedup

    def test_rejects_foreign_descriptor(self):
        with pytest.raises(TypeError, match="CountedLoop or LoopProgram"):
            api.schedule(object(), MachineConfig(fus=4))

    def test_scheduled_graph_both_flavors(self):
        machine = MachineConfig(fus=2)
        counted = api.schedule(build_kernel("LL1", 4), machine,
                               options=api.ScheduleOptions(unroll=4))
        program = api.schedule(build_kernel("SYNWHL", 4), machine,
                               options=api.ScheduleOptions(unroll=4))
        assert api.scheduled_graph(counted) is counted.unwound.graph
        assert api.scheduled_graph(program) is program.graph

    def test_emit_and_run(self):
        machine = MachineConfig(fus=4)
        loop = api.compile(COUNTED_SRC, 6)
        prog = api.emit(loop, machine,
                        options=api.ScheduleOptions(unroll=6))
        assert prog.schedule_length > 0
        seq = api.emit(api.compile(COUNTED_SRC, 6), machine, seq=True)
        assert seq.schedule_length > 0
        res = api.schedule(api.compile(COUNTED_SRC, 6), machine,
                           options=api.ScheduleOptions(unroll=6,
                                                       measure=False))
        rep = api.run(api.scheduled_graph(res), machine)
        assert rep.realized_cycles > 0

    def test_check_clean_source(self):
        stats = api.check(COUNTED_SRC, 6, MachineConfig(fus=4))
        assert stats.n_lanes == 16


class TestDeprecatedShims:
    def test_pipeline_loop_warns_and_delegates(self):
        machine = MachineConfig(fus=4)
        with pytest.warns(DeprecationWarning, match="repro.api.schedule"):
            old = pipeline_loop(build_kernel("LL1", 6), machine, unroll=6)
        new = schedule_loop(build_kernel("LL1", 6), machine, unroll=6)
        assert old.summary() == new.summary()

    def test_pipeline_program_warns_and_delegates(self):
        machine = MachineConfig(fus=4)
        with pytest.warns(DeprecationWarning, match="repro.api.schedule"):
            old = pipeline_program(build_kernel("SYNWHL", 4), machine,
                                   unroll=4)
        new = schedule_program(build_kernel("SYNWHL", 4), machine, unroll=4)
        assert old.summary() == new.summary()

    def test_new_entrypoints_do_not_warn(self):
        machine = MachineConfig(fus=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            schedule_loop(build_kernel("LL1", 4), machine, unroll=4)
            schedule_program(build_kernel("SYNWHL", 4), machine, unroll=4)

    def test_program_loop_shim_removed(self):
        # the deprecated Program.loop property is gone for good
        assert not hasattr(Program, "loop")
        assert "loop" not in Program().__dict__
