"""Unit tests for move-cj, migrate, node splitting, and cleanup."""

from repro.ir import EXIT, RegisterFile, add, cjump, cmp_lt, mul, store
from repro.machine import MachineConfig
from repro.percolation import (
    MigrateContext,
    cleanup,
    migrate,
    move_cj,
    move_op,
)
from repro.simulator import check_equivalent
from repro.workloads.synthetic import branchy_program


def diamond_graph():
    return branchy_program(depth=1)


class TestMoveCJ:
    def test_cj_moves_above_independent_op(self):
        """The branch hoists into the compare's successor... blocked by
        its condition; but an independent op node lets it through."""
        from repro.ir import ProgramGraph, straightline_graph
        from repro.ir.cjtree import Branch, make_leaf

        g = ProgramGraph()
        n0 = g.new_node()
        n0.add_op(cmp_lt("c", "a", "b", name="K"))
        g.set_entry(n0.nid)
        n1 = g.new_node()
        n1.add_op(add("w", "a", 1, name="W"))
        g.retarget_leaf(n0.nid, n0.leaves()[0].leaf_id, n1.nid)
        cj = cjump("c", name="J")
        n2 = g.new_node()
        tl, fl = make_leaf(EXIT), make_leaf(EXIT)
        n2.tree = Branch(cj.uid, tl, fl)
        n2.cjs[cj.uid] = cj
        g.note_tree_change(n2.nid)
        g.retarget_leaf(n1.nid, n1.leaves()[0].leaf_id, n2.nid)
        nt = g.new_node(); nt.add_op(store("o", "w", offset=0, name="T"))
        ne = g.new_node(); ne.add_op(store("o", "a", offset=0, name="E"))
        g.retarget_leaf(n2.nid, tl.leaf_id, nt.nid)
        g.retarget_leaf(n2.nid, fl.leaf_id, ne.nid)
        g.check()
        orig = g.clone()

        out = move_cj(g, n2.nid, n1.nid, cj.uid,
                      machine=MachineConfig(fus=4), regfile=RegisterFile())
        assert out.moved
        g.check()
        # n1 now branches directly.
        assert len(g.nodes[n1.nid].cjs) == 1
        check_equivalent(orig, g)

    def test_cj_blocked_by_condition_producer(self):
        g = diamond_graph()
        order = g.rpo()
        cmp_node, cj_node = order[0], order[1]
        cj_uid = next(iter(g.nodes[cj_node].cjs))
        out = move_cj(g, cj_node, cmp_node, cj_uid,
                      machine=MachineConfig(fus=4), regfile=RegisterFile())
        assert not out.moved and "true-dep" in out.reason

    def test_cj_resource_block(self):
        """A full node between the branch and its condition blocks on
        resources (the branch itself consumes a slot)."""
        from repro.ir import ProgramGraph
        from repro.ir.cjtree import Branch, make_leaf

        g = ProgramGraph()
        n0 = g.new_node()
        n0.add_op(cmp_lt("c", "a", "b"))
        g.set_entry(n0.nid)
        n1 = g.new_node()
        n1.add_op(add("w1", "a", 1))
        n1.add_op(add("w2", "a", 2))
        g.retarget_leaf(n0.nid, n0.leaves()[0].leaf_id, n1.nid)
        cj = cjump("c")
        n2 = g.new_node()
        tl, fl = make_leaf(EXIT), make_leaf(EXIT)
        n2.tree = Branch(cj.uid, tl, fl)
        n2.cjs[cj.uid] = cj
        g.note_tree_change(n2.nid)
        g.retarget_leaf(n1.nid, n1.leaves()[0].leaf_id, n2.nid)
        out = move_cj(g, n2.nid, n1.nid, cj.uid,
                      machine=MachineConfig(fus=2), regfile=RegisterFile())
        assert not out.moved and out.resource_blocked


class TestMigrate:
    def test_migrate_through_branch_speculates(self):
        """An op below a join hoists above the diamond; equivalence holds."""
        g = diamond_graph()
        orig = g.clone()
        ctx = MigrateContext(g, MachineConfig(fus=4), RegisterFile())
        order = g.rpo()
        store_node = order[-1]
        tid = next(iter(g.nodes[store_node].ops.values())).tid
        # The store moves up but stays guarded (never above the branch
        # unconditionally without covering all paths).
        moved = migrate(ctx, g.entry, tid)
        g.check()
        check_equivalent(orig, g)

    def test_migrate_then_else_ops(self):
        """Then/else ops hoist speculatively with renaming; semantics hold."""
        g = diamond_graph()
        orig = g.clone()
        ctx = MigrateContext(g, MachineConfig(fus=6), RegisterFile())
        tids = [op.tid for _, op in g.all_operations() if op.name in ("t0", "e0")]
        for tid in tids:
            migrate(ctx, g.entry, tid)
        g.check()
        check_equivalent(orig, g)

    def test_migrate_stops_at_dependence(self):
        from repro.ir import straightline_graph

        ops = [add("a", "x", 1, name="A"), mul("b", "a", 2, name="B"),
               store("o", "b", name="S")]
        g = straightline_graph(ops)
        ctx = MigrateContext(g, MachineConfig(fus=4), RegisterFile())
        assert not migrate(ctx, g.entry, ops[1].tid)
        # B stays strictly below A.
        order = g.rpo()
        assert any(op.tid == ops[1].tid
                   for op in g.nodes[order[1]].all_ops())

    def test_migrate_multi_level(self):
        from repro.ir import straightline_graph

        ops = [add("a", "x", 1, name="A"), add("b", "y", 1, name="B"),
               add("c", "z", 1, name="C"), store("o", "a", offset=0),
               store("o", "b", offset=1), store("o", "c", offset=2)]
        g = straightline_graph(ops)
        orig = g.clone()
        ctx = MigrateContext(g, MachineConfig(fus=4), RegisterFile())
        assert migrate(ctx, g.entry, ops[2].tid)
        entry_ops = {op.tid for op in g.nodes[g.entry].all_ops()}
        assert ops[2].tid in entry_ops
        check_equivalent(orig, g)


class TestSplitting:
    def test_move_out_of_join_splits(self):
        g = diamond_graph()
        order = g.rpo()
        join = order[-1]
        # Add an op independent of the branch sides to the join.
        indep = add("u", "g0", 1, name="U")
        g.nodes[join].add_op(indep)
        g._touch()
        orig = g.clone()
        preds = sorted(g.predecessors(join))
        assert len(preds) == 2
        out = move_op(g, join, preds[0], indep.uid,
                      machine=MachineConfig(fus=4), regfile=RegisterFile())
        assert out.moved and out.split_nid is not None
        g.check()
        # The other predecessor still reaches a copy holding U.
        other_succ = g.successors(preds[1])[0]
        assert any(op.tid == indep.tid
                   for op in g.nodes[other_succ].all_ops())
        check_equivalent(orig, g)


class TestCleanup:
    def test_dead_copy_removed(self):
        from repro.ir import copy, straightline_graph

        ops = [add("a", "x", 1), copy("b", "a"), store("o", "a")]
        g = straightline_graph(ops)
        counts = cleanup(g)
        assert counts["dead_removed"] == 1

    def test_copy_propagation_then_dce(self):
        from repro.ir import copy, straightline_graph

        ops = [add("a", "x", 1), copy("b", "a"), mul("c", "b", 2),
               store("o", "c")]
        g = straightline_graph(ops)
        orig = g.clone()
        counts = cleanup(g)
        assert counts["copies_propagated"] >= 1
        assert counts["dead_removed"] >= 1
        check_equivalent(orig, g)

    def test_cleanup_preserves_semantics_on_branchy(self):
        g = branchy_program(depth=2)
        orig = g.clone()
        cleanup(g)
        g.check()
        check_equivalent(orig, g)

    def test_empty_node_chain_collapse(self):
        from repro.ir import straightline_graph

        ops = [add("a", "x", 1), add("b", "y", 1), store("o", "a")]
        g = straightline_graph(ops)
        order = g.rpo()
        mid = g.nodes[order[1]]
        mid.remove_op(next(iter(mid.ops)))
        g._touch()
        counts = cleanup(g)
        assert counts["empty_nodes"] == 1
        g.check()
