"""Unit tests for the move-op transformation."""

from repro.ir import (
    RegisterFile,
    add,
    load,
    mul,
    store,
    straightline_graph,
    sub,
)
from repro.machine import MachineConfig
from repro.percolation import PercolationStats, move_op
from repro.simulator import check_equivalent


def setup(ops, fus=4):
    g = straightline_graph(ops)
    return g, g.clone(), MachineConfig(fus=fus), RegisterFile()


def first_uid(g, nid):
    return next(iter(g.nodes[nid].ops))


class TestBasicMotion:
    def test_independent_op_moves(self):
        ops = [add("a", "x", 1, name="A"), sub("b", "y", 1, name="B"),
               store("out", "a", offset=0), store("out", "b", offset=1)]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert out.moved and not out.renamed
        g.check()
        check_equivalent(orig, g)

    def test_true_dependence_blocks(self):
        ops = [add("a", "x", 1), mul("b", "a", 2), store("out", "b")]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert not out.moved
        assert "true-dep" in out.reason

    def test_resource_block(self):
        ops = [add("a", "x", 1), add("b", "y", 1), store("out", "a"),
               store("out", "b", offset=1)]
        g, orig, m, rf = setup(ops, fus=1)
        order = g.rpo()
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert not out.moved and out.resource_blocked

    def test_emptied_node_deleted(self):
        ops = [add("a", "x", 1), sub("b", "y", 1), store("out", "a"),
               store("out", "b", offset=1)]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        n_before = len(g.nodes)
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert out.moved and out.deleted_from
        assert len(g.nodes) == n_before - 1

    def test_failed_attempt_does_not_mutate(self):
        ops = [add("a", "x", 1), mul("b", "a", 2), store("out", "b")]
        g, orig, m, rf = setup(ops)
        version = g.version
        order = g.rpo()
        move_op(g, order[1], order[0], first_uid(g, order[1]),
                machine=m, regfile=rf)
        assert g.version == version


def two_op_node_graph():
    """head(A) -> from{C, R} -> store; R reads C's dest inside From."""
    from repro.ir import ProgramGraph

    g = ProgramGraph()
    head = g.new_node()
    head.add_op(add("x", "a", 1, name="A"))
    g.set_entry(head.nid)
    frm = g.new_node()
    frm.add_op(add("x", "b", 2, name="C"))
    frm.add_op(mul("z", "x", 3, name="R"))  # reads entry x (move-past-read)
    g.retarget_leaf(head.nid, head.leaves()[0].leaf_id, frm.nid)
    tail = g.new_node()
    tail.add_op(store("o1", "x", offset=0))
    g.retarget_leaf(frm.nid, frm.leaves()[0].leaf_id, tail.nid)
    tail2 = g.new_node()
    tail2.add_op(store("o2", "z", offset=0))
    g.retarget_leaf(tail.nid, tail.leaves()[0].leaf_id, tail2.nid)
    g.check()
    return g, head, frm


class TestRenaming:
    def test_reader_in_to_is_legal_without_rename(self):
        """Co-resident ops read entry values: joining a reader's node
        needs no rename (VLIW semantics, paper footnote 2)."""
        ops = [add("x", "a", 1, name="A"), mul("y", "x", 2, name="B"),
               add("x", "b", 2, name="C"), store("o1", "y"),
               store("o2", "x", offset=1)]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        out = move_op(g, order[2], order[1], first_uid(g, order[2]),
                      machine=m, regfile=rf)
        assert out.moved and not out.renamed
        g.check()
        check_equivalent(orig, g, out_regs={"x", "y"})

    def test_move_past_read_renames(self):
        """A reader of the op's dest in *From* forces renaming."""
        g, head, frm = two_op_node_graph()
        orig = g.clone()
        c_uid = next(uid for uid, op in frm.ops.items() if op.name == "C")
        out = move_op(g, frm.nid, head.nid, c_uid,
                      machine=MachineConfig(fus=4), regfile=RegisterFile())
        assert out.moved and out.renamed
        g.check()
        check_equivalent(orig, g, out_regs={"x", "z"})
        # Compensation copy stays behind on the op's paths.
        assert any(op.is_copy for op in g.nodes[frm.nid].ops.values())

    def test_output_dependence_renames(self):
        ops = [add("x", "a", 1, name="A"), add("x", "b", 2, name="B"),
               store("o", "x")]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert out.moved and out.renamed
        g.check()
        check_equivalent(orig, g, out_regs={"x"})

    def test_rename_fails_without_free_register(self):
        g, head, frm = two_op_node_graph()
        c_uid = next(uid for uid, op in frm.ops.items() if op.name == "C")
        out = move_op(g, frm.nid, head.nid, c_uid,
                      machine=MachineConfig(fus=4),
                      regfile=RegisterFile(limit=0))
        assert not out.moved and "rename-impossible" in out.reason


class TestMemory:
    def test_load_blocked_by_conflicting_store(self):
        ops = [store("arr", "v", index="k", affine=0),
               load("d", "arr", index="k", affine=0), store("out", "d")]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert not out.moved and "mem-true-dep" in out.reason

    def test_load_passes_disjoint_store(self):
        ops = [store("arr", "v", index="k", affine=0),
               load("d", "arr", index="k", offset=3, affine=3),
               store("out", "d")]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert out.moved
        check_equivalent(orig, g)

    def test_store_store_conflict_blocked(self):
        ops = [store("arr", "v", index="k"), store("arr", "w", index="k")]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert not out.moved and "mem-output-dep" in out.reason

    def test_store_above_load_same_instruction_ok(self):
        """Anti-dependence within one instruction is legal (VLIW fetch)."""
        ops = [load("d", "arr", index="k", affine=0),
               store("arr", "v", index="k", affine=0),
               store("out", "d")]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        out = move_op(g, order[1], order[0], first_uid(g, order[1]),
                      machine=m, regfile=rf)
        assert out.moved
        check_equivalent(orig, g)


class TestUnification:
    def test_identical_op_unifies(self):
        a1 = add("a", "x", 1, name="A1")
        a2 = add("a", "x", 1, name="A2")
        ops = [a1, store("o", "a", offset=0), a2,
               store("o", "a", offset=1)]
        g, orig, m, rf = setup(ops)
        order = g.rpo()
        # move A2 up into the store node then into A1's node
        stats = PercolationStats()
        out1 = move_op(g, order[2], order[1], first_uid(g, order[2]),
                       machine=m, regfile=rf, stats=stats)
        assert out1.moved
        # now A2 sits beside the first store; move to node 0 (A1)
        src = out1.from_nid if not out1.deleted_from else None
        nid = g.find_op(out1.new_uid)
        out2 = move_op(g, nid, order[0], out1.new_uid,
                       machine=m, regfile=rf, stats=stats)
        assert out2.moved and out2.unified
        assert out2.new_uid == a1.uid
        g.check()
        check_equivalent(orig, g)

    def test_unification_consumes_no_slot(self):
        a1 = add("a", "x", 1, name="A1")
        a2 = add("a", "x", 1, name="A2")
        filler = [add(f"f{i}", "y", i, name=f"F{i}") for i in range(3)]
        ops = [a1, *filler, a2, store("o", "a")]
        g, orig, m, rf = setup(ops, fus=4)
        order = g.rpo()
        # Fill node 0 to capacity 4 with A1+3 fillers.
        for i in range(1, 4):
            out = move_op(g, g.rpo()[1], g.rpo()[0],
                          first_uid(g, g.rpo()[1]), machine=m, regfile=rf)
            assert out.moved
        head = g.rpo()[0]
        assert m.room(g.nodes[head]) == 0
        # A2 can still unify into the full node.
        nid = g.find_op(a2.uid)
        while nid != head:
            order = g.rpo()
            pred = order[order.index(nid) - 1]
            out = move_op(g, nid, pred, a2.uid, machine=m, regfile=rf)
            if not out.moved:
                break
            nid = g.find_op(out.new_uid)
            if out.unified:
                break
        assert out.unified
        check_equivalent(orig, g)


class TestNodeSplitting:
    """Node splitting must move the *private copy's* op instance.

    Regression for a bug the PR-4 fuzz lane caught on its first run:
    after ``split_for_edge`` gave To a private copy (fresh uids),
    ``move_op`` still inserted the pre-split instance into To, so its
    uid lived in two nodes at once -- the original keeps that uid for
    the other predecessors -- and a later hop of either instance blew
    up with "op already in node".  LL-shaped pipelines never split
    (the unwound chain is single-predecessor), which is why Table 1
    alone never exposed it.
    """

    def _diamond_with_merge_arith(self):
        from repro.ir.builder import SequentialBuilder
        from repro.ir.cjtree import EXIT, Branch, make_leaf
        from repro.ir.operations import cjump, cmp_lt

        b = SequentialBuilder()
        g = b.graph
        n_cmp = g.new_node()
        n_cmp.add_op(cmp_lt("c", "a", "b", name="k"))
        g.set_entry(n_cmp.nid)
        cj = cjump("c", name="j")
        n_cj = g.new_node()
        tl, fl = make_leaf(EXIT), make_leaf(EXIT)
        n_cj.tree = Branch(cj.uid, tl, fl)
        n_cj.cjs[cj.uid] = cj
        g.note_tree_change(n_cj.nid)
        g.retarget_leaf(n_cmp.nid, n_cmp.leaves()[0].leaf_id, n_cj.nid)
        n_t = g.new_node()
        n_t.add_op(add("vt", "a", 1, name="t"))
        n_e = g.new_node()
        n_e.add_op(add("ve", "b", 1, name="e"))
        g.retarget_leaf(n_cj.nid, tl.leaf_id, n_t.nid)
        g.retarget_leaf(n_cj.nid, fl.leaf_id, n_e.nid)
        n_m = g.new_node()
        moved = add("w", "x", 2, name="W")
        n_m.add_op(moved)
        n_m.add_op(store("out", "w", offset=0, name="S"))
        g.retarget_leaf(n_t.nid, n_t.leaves()[0].leaf_id, n_m.nid)
        g.retarget_leaf(n_e.nid, n_e.leaves()[0].leaf_id, n_m.nid)
        g.check()
        return g, n_m.nid, n_t.nid, moved.uid

    def test_split_moves_the_copys_instance(self):
        g, merge, pred, uid = self._diamond_with_merge_arith()
        orig = g.clone()
        out = move_op(g, merge, pred, uid,
                      machine=MachineConfig(fus=4), regfile=RegisterFile())
        assert out.moved and out.split_nid is not None
        # The instance that landed in To is the copy's, not the original.
        assert out.new_uid != uid
        # The original instance stays behind for the other predecessor.
        assert uid in {op.uid for op in g.nodes[merge].all_ops()}
        # Graph-wide uid uniqueness (the invariant the bug broke).
        seen = {}
        for nid, node in g.nodes.items():
            for op in node.all_ops():
                assert op.uid not in seen, \
                    f"uid {op.uid} in both n{seen[op.uid]} and n{nid}"
                seen[op.uid] = nid
        g.check()
        check_equivalent(orig, g)

    def test_recurrence_plus_sibling_schedules(self):
        """End-to-end minimal repro: a distance-1 array recurrence next
        to any second statement used to crash GRiP at fus >= 4."""
        from repro.frontend import compile_dsl
        from repro.pipelining import unwind_counted
        from repro.scheduling import GRiPScheduler

        src = ("param p1, n;\narray s0, r3;\n"
               "for k = 0 to n {\n"
               "p1 = s0[k];\n"
               "r3[k+1] = (r3[k] * s0[k+3]);\n"
               "}\n")
        loop = compile_dsl(src, 4, name="rec")
        unwound = unwind_counted(loop, 4)
        GRiPScheduler(MachineConfig(fus=4)).schedule(
            unwound.graph, ranking_ops=unwound.ops)
        unwound.graph.check()
        check_equivalent(loop.graph, unwound.graph, seeds=(0,))
