"""Unit tests for the SchedulePolicy surface.

Three contracts: (1) a policy is a validated, frozen, fingerprinted
value -- invalid shapes are rejected at construction and the dict
round-trip is lossless; (2) ``WeightedHeuristic(DEFAULT_POLICY)``
produces rank keys *tuple-identical* to the legacy ``PaperHeuristic``
(the int-preserving weight trick: no float creeps into a default
key); (3) non-default axes actually steer: weights reorder ranks,
fill orders permute candidate order, and every axis shows up in the
fingerprint.
"""

import random
from dataclasses import replace

import pytest

from repro.pipelining import unwind_counted
from repro.scheduling import (
    DEFAULT_POLICY,
    PaperHeuristic,
    SchedulePolicy,
    WeightedHeuristic,
)
from repro.scheduling.moveable import _apply_fill_order
from repro.scheduling.policy import FILL_ORDERS, GAP_MODES
from repro.workloads import livermore


class TestValidation:
    def test_default_is_default(self):
        assert DEFAULT_POLICY.is_default
        assert SchedulePolicy().fingerprint() == DEFAULT_POLICY.fingerprint()

    @pytest.mark.parametrize("kwargs", [
        {"rank_terms": ("chain", "chain", "pos")},
        {"rank_terms": ("chain", "deps")},
        {"rank_terms": ("chain", "deps", "nope")},
        {"chain_weight": 0.0},
        {"chain_weight": -1.0},
        {"dep_weight": float("nan")},
        {"dep_weight": float("inf")},
        {"fill_order": "random"},
        {"gap_mode": "maybe"},
        {"unroll": 1},
        {"unroll": 2.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            SchedulePolicy(**kwargs)

    def test_round_trip(self):
        pol = SchedulePolicy(rank_terms=("pos", "chain", "deps"),
                             chain_weight=2.0, dep_weight=0.5,
                             iteration_major=False, fill_order="alternate",
                             speculate=False, unroll=6, gap_mode="local",
                             enable_fuse=False)
        back = SchedulePolicy.from_dict(pol.to_dict())
        assert back == pol
        assert back.fingerprint() == pol.fingerprint()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            SchedulePolicy.from_dict({"speculate": True, "warp": 9})

    def test_list_rank_terms_coerced(self):
        pol = SchedulePolicy(rank_terms=["deps", "chain", "pos"])
        assert pol.rank_terms == ("deps", "chain", "pos")

    def test_every_axis_moves_the_fingerprint(self):
        fps = {DEFAULT_POLICY.fingerprint()}
        for change in ({"rank_terms": ("deps", "chain", "pos")},
                       {"chain_weight": 2.0}, {"dep_weight": 0.5},
                       {"iteration_major": False},
                       {"fill_order": "reversed"}, {"speculate": False},
                       {"unroll": 4}, {"gap_mode": "local"},
                       {"enable_hoist": False}, {"enable_fuse": False},
                       {"enable_slack": False}):
            fp = replace(DEFAULT_POLICY, **change).fingerprint()
            assert fp not in fps, f"fingerprint collision for {change}"
            fps.add(fp)


class TestWeightedHeuristic:
    @pytest.mark.parametrize("name", ("LL1", "LL3", "LL5"))
    def test_default_ranks_tuple_identical_to_paper(self, name):
        unwound = unwind_counted(livermore.kernel(name, 8), 8)
        paper = PaperHeuristic().rank(unwound.ops)
        weighted = WeightedHeuristic(DEFAULT_POLICY).rank(unwound.ops)
        assert weighted == paper
        # not merely ==: no float snuck into a default key
        for key in weighted.values():
            assert all(isinstance(term, int) for term in key)

    def test_weights_reorder(self):
        unwound = unwind_counted(livermore.kernel("LL3", 8), 8)
        base = WeightedHeuristic(DEFAULT_POLICY).rank(unwound.ops)
        heavy = WeightedHeuristic(
            replace(DEFAULT_POLICY, dep_weight=8.0)).rank(unwound.ops)
        assert base != heavy

    def test_term_order_respected(self):
        unwound = unwind_counted(livermore.kernel("LL3", 8), 8)
        pol = replace(DEFAULT_POLICY, rank_terms=("pos", "chain", "deps"))
        swapped = WeightedHeuristic(pol).rank(unwound.ops)
        base = WeightedHeuristic(DEFAULT_POLICY).rank(unwound.ops)
        # same multiset of (it, terms...) components, different order
        assert {k for k in swapped} == {k for k in base}
        assert any(swapped[t] != base[t] for t in base)


class TestFillOrder:
    RANKED = ["a", "b", "c", "d", "e"]

    def test_ranked_is_identity(self):
        assert _apply_fill_order(self.RANKED, "ranked") == self.RANKED

    def test_reversed(self):
        assert _apply_fill_order(self.RANKED, "reversed") == \
            ["e", "d", "c", "b", "a"]

    def test_alternate_interleaves_best_worst(self):
        assert _apply_fill_order(self.RANKED, "alternate") == \
            ["a", "e", "b", "d", "c"]

    @pytest.mark.parametrize("order", FILL_ORDERS)
    def test_every_order_is_a_permutation(self, order):
        out = _apply_fill_order(self.RANKED, order)
        assert sorted(out) == sorted(self.RANKED)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            _apply_fill_order(self.RANKED, "nope")


class TestRandomPolicy:
    def test_deterministic_per_seed(self):
        from repro.tune import random_policy

        a = random_policy(random.Random("s:7"), allow_gap_off=True)
        b = random_policy(random.Random("s:7"), allow_gap_off=True)
        assert a == b

    def test_draws_are_valid_and_diverse(self):
        from repro.tune import random_policy

        pols = [random_policy(random.Random(f"s:{i}"), allow_gap_off=True)
                for i in range(40)]
        assert len({p.fingerprint() for p in pols}) > 10
        assert all(p.gap_mode in GAP_MODES for p in pols)
        assert all(p.unroll is None for p in pols)
