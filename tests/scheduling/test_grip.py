"""Unit tests for the GRiP scheduler, priorities, and Moveable-ops."""

from repro.ir import add, mul, store, straightline_graph, sub
from repro.machine import INFINITE_RESOURCES, MachineConfig
from repro.scheduling import (
    AlphabeticalHeuristic,
    GRiPScheduler,
    MoveableOps,
    PaperHeuristic,
    SourceOrderHeuristic,
    ranked_templates,
)
from repro.simulator import check_equivalent
from repro.workloads.synthetic import chain_body, wide_body


class TestPriorities:
    def test_longest_chain_first(self):
        ops = [add("a", "x", 1, name="A", pos=0),
               mul("b", "a", 2, name="B", pos=1),
               sub("c", "b", 3, name="C", pos=2),
               add("z", "y", 1, name="Z", pos=3)]
        ranking = PaperHeuristic(iteration_major=False).rank(ops)
        order = ranked_templates(ranking, [op.tid for op in ops])
        assert order[0] == ops[0].tid      # chain length 3
        assert order[-1] == ops[2].tid or order[-1] == ops[3].tid

    def test_dependents_break_ties(self):
        # A feeds two consumers; Z feeds one; equal chain lengths.
        ops = [add("a", "x", 1, name="A", pos=0),
               add("z", "y", 1, name="Z", pos=1),
               mul("b", "a", 2, name="B", pos=2),
               mul("c", "a", 3, name="C", pos=3),
               mul("d", "z", 4, name="D", pos=4)]
        ranking = PaperHeuristic(iteration_major=False).rank(ops)
        assert ranking[ops[0].tid] < ranking[ops[1].tid]

    def test_iteration_major_stipulation(self):
        early = add("a", "x", 1, name="A", iteration=0, pos=5)
        late_long = add("b", "y", 1, name="B", iteration=1, pos=0)
        ranking = PaperHeuristic().rank([early, late_long])
        assert ranking[early.tid] < ranking[late_long.tid]

    def test_alphabetical(self):
        ops = [add("r1", "x", 1, name="b", pos=0),
               add("r2", "y", 1, name="a", pos=1)]
        ranking = AlphabeticalHeuristic(iteration_major=False).rank(ops)
        assert ranking[ops[1].tid] < ranking[ops[0].tid]

    def test_source_order(self):
        ops = [add("r1", "x", 1, name="b", pos=0),
               add("r2", "y", 1, name="a", pos=1)]
        ranking = SourceOrderHeuristic(iteration_major=False).rank(ops)
        assert ranking[ops[0].tid] < ranking[ops[1].tid]

    def test_unknown_templates_rank_last(self):
        ranking = {1: (0,)}
        assert ranked_templates(ranking, [99, 1]) == [1, 99]


class TestGRiPStraightline:
    def test_respects_resource_budget(self):
        g = straightline_graph(wide_body(8))
        GRiPScheduler(MachineConfig(fus=4), gap_prevention=False).schedule(g)
        for node in g.nodes.values():
            assert MachineConfig(fus=4).fits(node)

    def test_wide_body_optimal(self):
        """8 independent ops + 8 stores on 4 FUs: 4 cycles optimal."""
        g = straightline_graph(wide_body(8))
        orig = g.clone()
        GRiPScheduler(MachineConfig(fus=4), gap_prevention=False).schedule(g)
        assert len(g.nodes) == 4
        check_equivalent(orig, g)

    def test_chain_not_compressible(self):
        ops = chain_body(6)
        g = straightline_graph(ops)
        orig = g.clone()
        GRiPScheduler(MachineConfig(fus=4), gap_prevention=False).schedule(g)
        # A serial chain of 6 plus its dependent store: >= 6 nodes.
        assert len(g.nodes) >= 6
        check_equivalent(orig, g)

    def test_infinite_resources_reach_dependence_height(self):
        ops = [add("a", "x", 1, name="A"), add("b", "y", 1, name="B"),
               mul("c", "a", 2, name="C"), mul("d", "b", 3, name="D"),
               store("o", "c", offset=0), store("o", "d", offset=1)]
        g = straightline_graph(ops)
        orig = g.clone()
        GRiPScheduler(INFINITE_RESOURCES, gap_prevention=False).schedule(g)
        # Height = 3: {A,B}, {C,D}, {stores}.
        assert len(g.nodes) == 3
        check_equivalent(orig, g)

    def test_semantics_preserved_at_every_width(self):
        for fus in (1, 2, 3, 8):
            g = straightline_graph(wide_body(5))
            orig = g.clone()
            GRiPScheduler(MachineConfig(fus=fus),
                          gap_prevention=False).schedule(g)
            g.check()
            check_equivalent(orig, g)

    def test_schedule_result_counters(self):
        g = straightline_graph(wide_body(4))
        res = GRiPScheduler(MachineConfig(fus=4),
                            gap_prevention=False).schedule(g)
        assert res.stats.moves > 0
        assert res.nodes_processed >= 1
        assert res.seconds >= 0


class TestMoveableOps:
    def test_candidates_are_below(self):
        ops = wide_body(3)
        g = straightline_graph(ops)
        ranking = PaperHeuristic(iteration_major=False).rank(ops)
        mv = MoveableOps(g, ranking)
        entry_candidates = mv.candidates(g.entry)
        entry_ops = {op.tid for op in g.nodes[g.entry].all_ops()}
        assert entry_ops.isdisjoint(entry_candidates)
        assert len(entry_candidates) == g.op_count() - 1

    def test_stuck_excluded_until_motion(self):
        ops = wide_body(3)
        g = straightline_graph(ops)
        ranking = PaperHeuristic(iteration_major=False).rank(ops)
        mv = MoveableOps(g, ranking)
        victim = mv.candidates(g.entry)[0]
        mv.mark_stuck(victim)
        assert victim not in mv.candidates(g.entry)
        mv.note_motion()
        assert victim in mv.candidates(g.entry)

    def test_unstick_selective(self):
        ops = wide_body(3)
        g = straightline_graph(ops)
        ranking = PaperHeuristic(iteration_major=False).rank(ops)
        mv = MoveableOps(g, ranking)
        cands = mv.candidates(g.entry)
        mv.mark_stuck(cands[0])
        mv.mark_stuck(cands[1])
        mv.unstick({cands[0]})
        after = mv.candidates(g.entry)
        assert cands[0] in after and cands[1] not in after
