"""Unit tests for Gapless-move and the suspension policy (section 3.3)."""

from repro.ir import ProgramGraph, add
from repro.machine import INFINITE_RESOURCES
from repro.scheduling.gaps import GapPreventionPolicy, gapless_move


def tagged(name, dest, src, iteration, pos=0):
    return add(dest, src, 1, name=name, iteration=iteration, pos=pos)


def chain_graph(specs):
    """specs: list of lists of (name, dest, src, iteration)."""
    g = ProgramGraph()
    prev = None
    nodes = []
    for row in specs:
        n = g.new_node()
        for (name, dest, src, it) in row:
            n.add_op(tagged(name, dest, src, it))
        if prev is None:
            g.set_entry(n.nid)
        else:
            g.retarget_leaf(prev.nid, prev.leaves()[0].leaf_id, n.nid)
        prev = n
        nodes.append(n)
    g.check()
    return g, nodes


class TestGaplessConditions:
    def test_condition1_alone_in_node(self):
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0)],   # moving y: alone at From
            [("z", "c", "r", 0)],
        ])
        uid = next(iter(nodes[1].ops))
        assert gapless_move(g, nodes[1].nid, nodes[0].nid, uid,
                            INFINITE_RESOURCES)

    def test_condition2_sibling_same_iteration(self):
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 1), ("y2", "b2", "q2", 1)],
            [("z", "c", "r", 1)],
        ])
        uid = next(uid for uid, op in nodes[1].ops.items() if op.name == "y")
        assert gapless_move(g, nodes[1].nid, nodes[0].nid, uid,
                            INFINITE_RESOURCES)

    def test_condition3_last_of_iteration(self):
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0), ("w", "d", "s", 1)],  # y last of iter 0
            [("z", "c", "r", 1)],
        ])
        uid = next(uid for uid, op in nodes[1].ops.items() if op.name == "y")
        assert gapless_move(g, nodes[1].nid, nodes[0].nid, uid,
                            INFINITE_RESOURCES)

    def test_condition4_fillable_gap(self):
        # Moving y out of From leaves iteration-0 work below, but z
        # (same iteration, independent) can slide up from S into From.
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0), ("w", "d", "s", 1)],
            [("z", "c", "r", 0)],   # z independent of y/w
        ])
        uid = next(uid for uid, op in nodes[1].ops.items() if op.name == "y")
        assert gapless_move(g, nodes[1].nid, nodes[0].nid, uid,
                            INFINITE_RESOURCES)

    def test_condition4_dependent_filler_still_ok(self):
        # z depends on y itself; once y sits in To, z can slide into
        # From right behind it -- the gap is fillable (condition 4).
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0), ("w", "d", "s", 1)],
            [("z", "c", "b", 0)],   # reads b = y's result
        ])
        uid = next(uid for uid, op in nodes[1].ops.items() if op.name == "y")
        assert gapless_move(g, nodes[1].nid, nodes[0].nid, uid,
                            INFINITE_RESOURCES)

    def test_permanent_gap_vetoed(self):
        # z (iteration 0, below) depends on w, the iteration-1 op that
        # STAYS in From: z can never pass w, the hole y leaves is
        # permanent, and Gapless-move must fail.
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0), ("w", "d", "s", 1)],
            [("z", "c", "d", 0)],   # reads d = w's result
        ])
        uid = next(uid for uid, op in nodes[1].ops.items() if op.name == "y")
        assert not gapless_move(g, nodes[1].nid, nodes[0].nid, uid,
                                INFINITE_RESOURCES)

    def test_untagged_ops_exempt(self):
        g, nodes = chain_graph([
            [("x", "a", "p", -1)],
            [("y", "b", "q", -1), ("w", "d", "s", 0)],
            [("z", "c", "r", -1)],
        ])
        uid = next(uid for uid, op in nodes[1].ops.items() if op.name == "y")
        assert gapless_move(g, nodes[1].nid, nodes[0].nid, uid,
                            INFINITE_RESOURCES)


class TestSuspensionPolicy:
    def make_policy(self, g):
        return GapPreventionPolicy(g, INFINITE_RESOURCES, enabled=True)

    def test_suspension_and_unsuspend(self):
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0), ("w", "d", "s", 1)],
            [("z", "c", "d", 0)],
        ])
        policy = self.make_policy(g)
        op = next(op for op in nodes[1].ops.values() if op.name == "y")
        assert not policy.allow_move(g, nodes[1].nid, nodes[0].nid, op)
        assert op.tid in policy.suspended
        retry = policy.unsuspend_all()
        assert op.tid in retry and not policy.suspended

    def test_rule3_blocks_ops_at_or_above_suspension(self):
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0), ("w", "d", "s", 1)],
            [("z", "c", "d", 0), ("u", "e", "t", 1)],
        ])
        policy = self.make_policy(g)
        y = next(op for op in nodes[1].ops.values() if op.name == "y")
        assert not policy.allow_move(g, nodes[1].nid, nodes[0].nid, y)
        # w sits at the suspension depth: vetoed by rule 3.
        w = next(op for op in nodes[1].ops.values() if op.name == "w")
        assert not policy.allow_move(g, nodes[1].nid, nodes[0].nid, w)
        # u sits strictly below: may move (subject to its own gap test).
        u = next(op for op in nodes[2].ops.values() if op.name == "u")
        assert policy.allow_move(g, nodes[2].nid, nodes[1].nid, u)

    def test_disabled_policy_allows_everything(self):
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0), ("w", "d", "s", 1)],
            [("z", "c", "b", 0)],
        ])
        policy = GapPreventionPolicy(g, INFINITE_RESOURCES, enabled=False)
        y = next(op for op in nodes[1].ops.values() if op.name == "y")
        assert policy.allow_move(g, nodes[1].nid, nodes[0].nid, y)

    def test_stop_sweep_after_move_while_suspended(self):
        g, nodes = chain_graph([
            [("x", "a", "p", 0)],
            [("y", "b", "q", 0), ("w", "d", "s", 1)],
            [("z", "c", "d", 0)],
        ])
        policy = self.make_policy(g)
        y = next(op for op in nodes[1].ops.values() if op.name == "y")
        policy.allow_move(g, nodes[1].nid, nodes[0].nid, y)  # suspends y
        assert not policy.stop_sweep()
        from repro.percolation.moveop import MoveOutcome

        policy.after_move(g, MoveOutcome(True), y)
        assert policy.stop_sweep()
