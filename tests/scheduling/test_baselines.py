"""Unit tests for the Unifiable-ops, POST, and list schedulers."""

from repro.ir import add, mul, store, straightline_graph
from repro.machine import MachineConfig
from repro.scheduling import (
    GRiPScheduler,
    POSTScheduler,
    UnifiableOpsScheduler,
    asap_pipeline_rows,
    list_schedule,
    repack,
)
from repro.simulator import check_equivalent
from repro.workloads.synthetic import chain_body, wide_body


class TestUnifiable:
    def test_schedules_and_preserves_semantics(self):
        g = straightline_graph(wide_body(6))
        orig = g.clone()
        res = UnifiableOpsScheduler(MachineConfig(fus=4)).schedule(g)
        g.check()
        for node in g.nodes.values():
            assert MachineConfig(fus=4).fits(node)
        check_equivalent(orig, g)
        assert res.unifiable_stats.set_builds > 0

    def test_cost_counters_grow_with_program(self):
        small = straightline_graph(wide_body(3))
        big = straightline_graph(wide_body(10))
        rs = UnifiableOpsScheduler(MachineConfig(fus=2)).schedule(small)
        rb = UnifiableOpsScheduler(MachineConfig(fus=2)).schedule(big)
        assert rb.unifiable_stats.closure_ops >= rs.unifiable_stats.closure_ops

    def test_agrees_with_grip_on_simple_code(self):
        """Both reach the dependence-optimal 4-cycle schedule."""
        ga = straightline_graph(wide_body(8))
        gb = straightline_graph(wide_body(8))
        GRiPScheduler(MachineConfig(fus=4), gap_prevention=False).schedule(ga)
        UnifiableOpsScheduler(MachineConfig(fus=4)).schedule(gb)
        assert len(ga.nodes) == len(gb.nodes) == 4


class TestPOST:
    def test_asap_rows_one_iteration_per_cycle(self):
        ops = []
        for i in range(4):
            op = add(f"v{i}", "x", i, name=f"o{i}", iteration=i, pos=i)
            ops.append(op)
        rows = asap_pipeline_rows(ops)
        # Independent ops still enter one iteration per row.
        assert len(rows) == 4
        for i, row in enumerate(rows):
            assert [op.iteration for op in row] == [i]

    def test_asap_respects_dependences(self):
        a = add("a", "x", 1, name="A", iteration=0, pos=0)
        b = mul("b", "a", 2, name="B", iteration=0, pos=1)
        rows = asap_pipeline_rows([a, b])
        assert rows[0] == [a] and rows[1] == [b]

    def test_repack_budget(self):
        ops = [add(f"v{i}", "x", i, name=f"o{i}", iteration=0, pos=i)
               for i in range(6)]
        rows = asap_pipeline_rows(ops)
        rp = repack(rows, MachineConfig(fus=2))
        assert all(len(r) <= 2 for r in rp.rows)

    def test_repack_window_advance(self):
        """ceil(W/k) rows per iteration: 6 ops at 2 FUs -> 3 rows each."""
        ops = []
        for it in range(3):
            for j in range(6):
                ops.append(add(f"v{it}_{j}", "x", j, name=f"o{it}_{j}",
                               iteration=it, pos=it * 6 + j))
        rows = asap_pipeline_rows(ops)
        rp = repack(rows, MachineConfig(fus=2))
        assert rp.cycles == 9  # 3 iterations x ceil(6/2)

    def test_repack_dependences_hold(self):
        a = add("a", "x", 1, name="A", iteration=0, pos=0)
        b = mul("b", "a", 2, name="B", iteration=0, pos=1)
        rp = repack(asap_pipeline_rows([a, b]), MachineConfig(fus=8))
        row_of = {}
        for i, row in enumerate(rp.rows):
            for op in row:
                row_of[op.uid] = i
        assert row_of[a.uid] < row_of[b.uid]

    def test_post_scheduler_end_to_end(self):
        ops = [add(f"v{i}", "x", i, name=f"o{i}", iteration=i, pos=i)
               for i in range(5)]
        pr = POSTScheduler(MachineConfig(fus=2)).schedule_ops(ops)
        assert pr.repacked.cycles >= 5  # one iteration per cycle cap


class TestListScheduler:
    def test_wide_optimal(self):
        sched = list_schedule(wide_body(8), MachineConfig(fus=4))
        assert sched.cycles == 4

    def test_chain_serial(self):
        sched = list_schedule(chain_body(5), MachineConfig(fus=4))
        assert sched.cycles == 6  # 5 chain ops + the dependent store

    def test_latency_extension(self):
        from repro.ir import OpKind

        ops = [mul("a", "x", 2, name="M"), add("b", "a", 1, name="A"),
               store("o", "b")]
        m = MachineConfig(fus=4, latencies={OpKind.MUL: 3})
        sched = list_schedule(ops, m)
        assert sched.cycles == 5  # mul@0, add@3, store@4

    def test_anti_dep_same_cycle(self):
        ops = [mul("y", "x", 2, name="R"), add("x", "x", 1, name="W")]
        sched = list_schedule(ops, MachineConfig(fus=4))
        assert sched.cycles == 1  # reader and writer share the instruction

    def test_budget_respected(self):
        sched = list_schedule(wide_body(9), MachineConfig(fus=2))
        assert all(len(r) <= 2 for r in sched.rows)
