"""Regression: typed machines must not under-fill instructions.

``MachineConfig.room()`` reports the *tightest* per-class slack, so the
old fill-loop gate ``room() > 0`` stopped filling a node as soon as one
class budget (say ALU) was exhausted -- even though ``can_accept`` would
happily admit further MEM/BRANCH ops.  The fill loop now gates on
``has_headroom``: keep going while *some* class could still accept an
operation.
"""

from repro.ir import add, load, mul, straightline_graph
from repro.machine import FUClass, MachineConfig
from repro.scheduling import GRiPScheduler, UnifiableOpsScheduler


def alu_then_loads():
    """One ALU op followed by two independent loads."""
    return straightline_graph([
        add("a", "x", 1, name="A", pos=0),
        load("b", "arr", "i", name="L1", pos=1),
        load("c", "brr", "i", name="L2", pos=2),
    ])


class TestTypedFillLoop:
    def test_loads_migrate_after_alu_slot_fills(self):
        """typed={ALU: 1, MEM: 2}: the entry's single ALU slot is taken
        by its own op, yet both loads must still migrate up into it."""
        m = MachineConfig(fus=3, typed={FUClass.ALU: 1, FUClass.MEM: 2})
        g = alu_then_loads()
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        entry = g.nodes[g.entry]
        assert sorted(op.name for op in entry.all_ops()) == ["A", "L1", "L2"]
        assert len(g.nodes) == 1

    def test_class_budgets_still_enforced(self):
        """The fill loop keeps going, but per-class budgets still bind:
        with MEM: 1 only one load fits beside the ALU op."""
        m = MachineConfig(fus=3, typed={FUClass.ALU: 1, FUClass.MEM: 1})
        g = alu_then_loads()
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        entry = g.nodes[g.entry]
        names = sorted(op.name for op in entry.all_ops())
        assert names == ["A", "L1"]
        assert len(g.nodes) == 2

    def test_total_budget_still_binds(self):
        """Exhausted total budget ends the fill even with class slack."""
        m = MachineConfig(fus=2, typed={FUClass.ALU: 1, FUClass.MEM: 2})
        g = alu_then_loads()
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        entry = g.nodes[g.entry]
        assert sorted(op.name for op in entry.all_ops()) == ["A", "L1"]

    def test_alu_ops_do_not_overfill_their_class(self):
        """Independent ALU ops past the class budget stay below."""
        m = MachineConfig(fus=4, typed={FUClass.ALU: 2})
        g = straightline_graph([
            add("a", "x", 1, name="A", pos=0),
            mul("b", "y", 2, name="B", pos=1),
            add("c", "z", 3, name="C", pos=2),
            load("d", "arr", "i", name="L", pos=3),
        ])
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        entry = g.nodes[g.entry]
        names = sorted(op.name for op in entry.all_ops())
        assert names == ["A", "B", "L"]

    def test_unifiable_scheduler_fills_typed_machines_too(self):
        """The same gate fix applies to the Unifiable-ops baseline."""
        m = MachineConfig(fus=3, typed={FUClass.ALU: 1, FUClass.MEM: 2})
        g = alu_then_loads()
        UnifiableOpsScheduler(m).schedule(g)
        entry = g.nodes[g.entry]
        assert sorted(op.name for op in entry.all_ops()) == ["A", "L1", "L2"]


class TestWidenedTypedSpectrum:
    """The fuzz lane's MEM-starved and BRANCH-rich shapes
    (``repro.bench.fuzz.typed_budgets``): per-class budgets must bind
    exactly -- no under-filling (free ALU slots hidden by a full MEM
    port) and no over-filling (two loads through a single port)."""

    def test_mem_starved_serializes_loads_but_fills_alu(self):
        """MEM: 1 -- the two loads must land in *different* nodes, yet
        the free ALU slots beside each load must still fill."""
        from repro.bench.fuzz import typed_budgets

        m = MachineConfig(fus=4, typed=typed_budgets("mem-starved", 4))
        g = straightline_graph([
            load("a", "arr", "i", name="L1", pos=0),
            load("b", "brr", "i", name="L2", pos=1),
            add("c", "x", 1, name="A1", pos=2),
            mul("d", "y", 2, name="A2", pos=3),
        ])
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        for nid in g.reachable():
            node = g.nodes[nid]
            assert m.fits(node)
            n_mem = sum(1 for op in node.all_ops() if op.name.startswith("L"))
            assert n_mem <= 1
        entry = g.nodes[g.entry]
        names = sorted(op.name for op in entry.all_ops())
        # one load plus both independent ALU ops migrate into the entry
        assert names == ["A1", "A2", "L1"]

    def test_branch_rich_budgets_fit(self):
        from repro.bench.fuzz import typed_budgets

        m = MachineConfig(fus=4, typed=typed_budgets("branch-rich", 4))
        assert m.typed[FUClass.BRANCH] == 2
        g = alu_then_loads()
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        for nid in g.reachable():
            assert m.fits(g.nodes[nid])

    def test_typed_budgets_shapes(self):
        from repro.bench.fuzz import typed_budgets

        for fus in (2, 4, 8):
            for shape in ("balanced", "mem-starved", "branch-rich"):
                budgets = typed_budgets(shape, fus)
                assert all(v >= 1 for v in budgets.values())
        assert typed_budgets("mem-starved", 8)[FUClass.MEM] == 1
        import pytest

        with pytest.raises(ValueError, match="unknown typed shape"):
            typed_budgets("nope", 4)

    def test_mem_starved_scheduled_kernel_stays_valid_and_equivalent(self):
        """End to end on a real kernel: schedule under MEM: 1, check
        budgets and semantic equivalence."""
        from repro.bench.fuzz import typed_budgets
        from repro.pipelining import schedule_loop
        from repro.simulator.check import check_equivalent
        from repro.workloads import livermore

        loop = livermore.kernel("LL1", 5)
        m = MachineConfig(fus=4, typed=typed_budgets("mem-starved", 4))
        res = schedule_loop(loop, m, unroll=5, measure=False)
        for nid in res.unwound.graph.reachable():
            assert m.fits(res.unwound.graph.nodes[nid])
        check_equivalent(loop.graph, res.unwound.graph, seeds=(0,))
