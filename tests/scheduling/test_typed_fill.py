"""Regression: typed machines must not under-fill instructions.

``MachineConfig.room()`` reports the *tightest* per-class slack, so the
old fill-loop gate ``room() > 0`` stopped filling a node as soon as one
class budget (say ALU) was exhausted -- even though ``can_accept`` would
happily admit further MEM/BRANCH ops.  The fill loop now gates on
``has_headroom``: keep going while *some* class could still accept an
operation.
"""

from repro.ir import add, load, mul, straightline_graph
from repro.machine import FUClass, MachineConfig
from repro.scheduling import GRiPScheduler, UnifiableOpsScheduler


def alu_then_loads():
    """One ALU op followed by two independent loads."""
    return straightline_graph([
        add("a", "x", 1, name="A", pos=0),
        load("b", "arr", "i", name="L1", pos=1),
        load("c", "brr", "i", name="L2", pos=2),
    ])


class TestTypedFillLoop:
    def test_loads_migrate_after_alu_slot_fills(self):
        """typed={ALU: 1, MEM: 2}: the entry's single ALU slot is taken
        by its own op, yet both loads must still migrate up into it."""
        m = MachineConfig(fus=3, typed={FUClass.ALU: 1, FUClass.MEM: 2})
        g = alu_then_loads()
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        entry = g.nodes[g.entry]
        assert sorted(op.name for op in entry.all_ops()) == ["A", "L1", "L2"]
        assert len(g.nodes) == 1

    def test_class_budgets_still_enforced(self):
        """The fill loop keeps going, but per-class budgets still bind:
        with MEM: 1 only one load fits beside the ALU op."""
        m = MachineConfig(fus=3, typed={FUClass.ALU: 1, FUClass.MEM: 1})
        g = alu_then_loads()
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        entry = g.nodes[g.entry]
        names = sorted(op.name for op in entry.all_ops())
        assert names == ["A", "L1"]
        assert len(g.nodes) == 2

    def test_total_budget_still_binds(self):
        """Exhausted total budget ends the fill even with class slack."""
        m = MachineConfig(fus=2, typed={FUClass.ALU: 1, FUClass.MEM: 2})
        g = alu_then_loads()
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        entry = g.nodes[g.entry]
        assert sorted(op.name for op in entry.all_ops()) == ["A", "L1"]

    def test_alu_ops_do_not_overfill_their_class(self):
        """Independent ALU ops past the class budget stay below."""
        m = MachineConfig(fus=4, typed={FUClass.ALU: 2})
        g = straightline_graph([
            add("a", "x", 1, name="A", pos=0),
            mul("b", "y", 2, name="B", pos=1),
            add("c", "z", 3, name="C", pos=2),
            load("d", "arr", "i", name="L", pos=3),
        ])
        GRiPScheduler(m, gap_prevention=False).schedule(g)
        entry = g.nodes[g.entry]
        names = sorted(op.name for op in entry.all_ops())
        assert names == ["A", "B", "L"]

    def test_unifiable_scheduler_fills_typed_machines_too(self):
        """The same gate fix applies to the Unifiable-ops baseline."""
        m = MachineConfig(fus=3, typed={FUClass.ALU: 1, FUClass.MEM: 2})
        g = alu_then_loads()
        UnifiableOpsScheduler(m).schedule(g)
        entry = g.nodes[g.entry]
        assert sorted(op.name for op in entry.all_ops()) == ["A", "L1", "L2"]
