"""Property tests: incremental indexes equal from-scratch rebuilds.

The :class:`~repro.analysis.incremental.AnalysisManager` patches its
indexes in place from the graph's mutation-event journal.  The
correctness contract is exact equality -- including orderings, since
the scheduler's stable sorts make tie-breaking observable -- with what
a from-scratch rebuild over the post-mutation graph would produce.

These tests drive random mutation sequences (real percolation hops,
which exercise splits, unifications, renames, empty-node bypasses and
cj motion; plus direct op surgery and coarse ``_touch`` fallbacks) and
after *every* mutation compare each maintained index against an
independent reference implementation.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.incremental import manager_for
from repro.ir import RegisterFile, add
from repro.machine import INFINITE_RESOURCES, MachineConfig
from repro.percolation import MigrateContext
from repro.pipelining import unwind_counted
from repro.workloads import livermore
from repro.workloads.synthetic import branchy_program, random_straightline

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Reference implementations (independent of the incremental layer)
# ----------------------------------------------------------------------
def ref_rpo_index(graph):
    return {nid: i for i, nid in enumerate(graph.rpo())}


def ref_region_below(graph, n):
    index = ref_rpo_index(graph)
    if n not in index:
        return []
    out, seen, stack = [], {n}, [n]
    while stack:
        cur = stack.pop()
        out.append(cur)
        for s in graph.successors(cur):
            if s in seen or s not in index or index[s] <= index[cur]:
                continue
            seen.add(s)
            stack.append(s)
    out.sort(key=lambda nid: -index[nid])
    return out


def ref_iterations_below(graph):
    index = ref_rpo_index(graph)
    order = list(index)
    own = {nid: {op.iteration for op in graph.nodes[nid].all_ops()
                 if op.iteration >= 0}
           for nid in order}
    below = {}
    for nid in reversed(order):
        acc = set()
        for s in graph.successors(nid):
            if s in index and index[s] > index[nid]:
                acc |= below[s]
                acc |= own[s]
        below[nid] = acc
    return below


def ref_template_index(graph):
    index = {}
    for nid, node in graph.nodes.items():
        for op in node.all_ops():
            index.setdefault(op.tid, []).append((nid, op.uid))
    for entries in index.values():
        entries.sort()
    return index


def assert_indexes_match(graph, context=""):
    """Every maintained index must equal a from-scratch rebuild."""
    mgr = manager_for(graph)
    got_rpo = mgr.rpo_index()
    want_rpo = ref_rpo_index(graph)
    assert got_rpo == want_rpo, f"rpo mismatch {context}"
    # Iteration order is part of the contract (the scheduler's worklist
    # iterates the map).
    assert list(got_rpo) == list(want_rpo), f"rpo order mismatch {context}"

    assert mgr.iterations_below() == ref_iterations_below(graph), \
        f"iterations_below mismatch {context}"

    got_t = mgr.template_index()
    want_t = ref_template_index(graph)
    assert got_t == want_t, f"template index mismatch {context}"
    assert graph.template_index() == want_t, f"graph shim mismatch {context}"

    for n in list(want_rpo)[::3] + [next(iter(want_rpo), None)]:
        if n is None:
            continue
        assert mgr.region_below(n) == ref_region_below(graph, n), \
            f"region_below({n}) mismatch {context}"


def warm(graph):
    """Query every index so the incremental patch paths are exercised."""
    mgr = manager_for(graph)
    mgr.rpo_index()
    mgr.iterations_below()
    mgr.template_index()
    for n in list(graph.nodes)[:8]:
        mgr.region_below(n)
    return mgr


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def random_hops(graph, rng, machine, steps, exit_live=frozenset()):
    """Attempt ``steps`` random single hops through the real move machinery.

    Yields after every attempt (successful ones mutate the graph via
    the full event vocabulary: op motion, renames, unifications, node
    splits, empty-node bypasses, cj grafts and node removals).
    """
    ctx = MigrateContext(graph=graph, machine=machine,
                         regfile=RegisterFile(), exit_live=exit_live)
    for _ in range(steps):
        nids = [nid for nid in graph.nodes if graph.nodes[nid].op_count()]
        if not nids:
            return
        from_nid = rng.choice(nids)
        preds = list(graph.predecessors(from_nid))
        if not preds:
            continue
        to_nid = rng.choice(preds)
        ops = list(graph.nodes[from_nid].all_ops())
        uid = rng.choice(ops).uid
        ctx.hop(from_nid, to_nid, uid)
        yield


class TestRandomMutationSequences:
    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(6, 16))
    def test_straightline_hops(self, seed, n_ops):
        rng = random.Random(seed)
        graph = random_straightline(rng, n_ops)
        warm(graph)
        assert_indexes_match(graph, "initial")
        for i, _ in enumerate(random_hops(graph, rng,
                                          MachineConfig(fus=2), steps=40)):
            assert_indexes_match(graph, f"straightline step {i}")

    @SETTINGS
    @given(st.integers(0, 10_000))
    def test_branchy_hops(self, seed):
        rng = random.Random(seed)
        graph = branchy_program(rng)
        warm(graph)
        assert_indexes_match(graph, "initial")
        for i, _ in enumerate(random_hops(graph, rng,
                                          INFINITE_RESOURCES, steps=40)):
            assert_indexes_match(graph, f"branchy step {i}")

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000),
           st.sampled_from(["LL1", "LL3", "LL5"]))
    def test_unwound_kernel_hops(self, seed, name):
        """Iteration-tagged graphs: the gap-prevention sets must track."""
        rng = random.Random(seed)
        loop = livermore.kernel(name, 6)
        unwound = unwind_counted(loop, 6)
        graph = unwound.graph
        warm(graph)
        assert_indexes_match(graph, "initial")
        for i, _ in enumerate(random_hops(graph, rng,
                                          MachineConfig(fus=4), steps=30)):
            assert_indexes_match(graph, f"{name} step {i}")

    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(6, 14))
    def test_direct_surgery_and_fallbacks(self, seed, n_ops):
        """Direct op surgery, inserts, deletes and coarse fallbacks."""
        rng = random.Random(seed)
        graph = random_straightline(rng, n_ops)
        warm(graph)
        iteration_pool = [-1, 0, 1, 2]
        for i in range(30):
            action = rng.randrange(7)
            nids = list(graph.nodes)
            nid = rng.choice(nids)
            node = graph.nodes[nid]
            if action == 0:  # add a fresh tagged op
                op = add(f"t{seed}_{i}", "a0", 1,
                         iteration=rng.choice(iteration_pool))
                graph.add_op(nid, op)
            elif action == 1 and node.ops:  # remove one
                graph.remove_op(nid, rng.choice(list(node.ops)))
            elif action == 2 and node.ops:  # replace in place
                uid = rng.choice(list(node.ops))
                graph.replace_op(nid, uid, node.ops[uid].duplicate())
            elif action == 3:  # bypass an empty node (may refuse)
                graph.delete_empty_node(nid)
            elif action == 4:  # append a fresh node + link it
                fresh = graph.new_node()
                leaf = rng.choice(node.leaves())
                old_target = leaf.target
                graph.retarget_leaf(nid, leaf.leaf_id, fresh.nid)
                graph.retarget_leaf(fresh.nid,
                                    fresh.leaves()[0].leaf_id, old_target)
            elif action == 5:  # rewire anywhere: back edges, cycles,
                               # unreachable stubs all fair game
                target = rng.choice(nids)
                if target != nid:
                    leaf = rng.choice(node.leaves())
                    graph.retarget_leaf(nid, leaf.leaf_id, target)
            else:  # un-migrated mutation path: direct + coarse _touch
                node.add_op(add(f"x{seed}_{i}", "a0", 2,
                                iteration=rng.choice(iteration_pool)))
                graph._touch()
            assert_indexes_match(graph, f"surgery step {i} action {action}")
        graph.drop_unreachable()
        assert_indexes_match(graph, "after drop_unreachable")
        graph.check()


class TestSchedulerCountersSanity:
    def test_incremental_paths_fire_under_grip(self):
        """A real scheduling run must mostly patch, rarely rebuild."""
        from repro.scheduling import GRiPScheduler

        loop = livermore.kernel("LL3", 8)
        unwound = unwind_counted(loop, 8)
        res = GRiPScheduler(MachineConfig(fus=4)).schedule(
            unwound.graph, ranking_ops=unwound.ops)
        c = res.analysis_counters
        assert c["events"] > 0
        # Structure rebuilds must be far rarer than mutation events --
        # that is the point of the event journal.
        assert c["rpo_rebuilds"] + c["rpo_splices"] < c["events"] / 2
        assert c["below_patches"] > c["below_rebuilds"]
        # The template index should essentially never rebuild.
        assert c["template_rebuilds"] <= 2
        assert_indexes_match(unwound.graph, "after GRiP")
