"""Property-based tests for Perfect Pipelining end to end.

Random counted loops are unwound, GRiP-scheduled and simulated against
their sequential originals; memory must agree and speedups must respect
the machine bound and the dependence bound.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine import MachineConfig
from repro.pipelining import schedule_loop, pipeline_loop_post
from repro.workloads.synthetic import random_counted_loop

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class TestPipelineProperties:
    @SETTINGS
    @given(st.integers(0, 5_000), st.integers(2, 4),
           st.sampled_from([2, 4]), st.booleans())
    def test_memory_equivalence(self, seed, n_stmts, fus, reduction):
        """schedule_loop verifies memory internally (verify=True)."""
        trip = 8
        loop = random_counted_loop(random.Random(seed), n_stmts=n_stmts,
                                   trip=trip, reduction=reduction)
        res = schedule_loop(loop, MachineConfig(fus=fus), unroll=trip,
                            verify=True)
        assert res.measured_speedup is not None

    @SETTINGS
    @given(st.integers(0, 5_000), st.sampled_from([2, 4, 8]))
    def test_speedup_bounded_by_machine_and_dedup(self, seed, fus):
        """Speedup <= FUs x (sequential ops / deduplicated ops).

        Unification removes redundant loads across statements and
        iterations, so speedups can exceed the FU count relative to the
        *sequential* operation count -- the paper notes exactly this for
        its superlinear Table-1 entries.  The bound holds against the
        deduplicated work.
        """
        loop = random_counted_loop(random.Random(seed), n_stmts=3, trip=10)
        res = schedule_loop(loop, MachineConfig(fus=fus), unroll=10,
                            measure=False)
        if res.speedup is None:
            return
        seq_ops = loop.ops_per_iteration
        distinct = len({(op.kind, op.dest, op.srcs, op.mem)
                        for op in loop.body_ops}) + len(loop.control_ops)
        dedup_factor = seq_ops / distinct
        if res.periodic:
            tol = 1e-9  # exact kernels obey the bound exactly
        else:
            # Throughput fits have resolution limited by the window:
            # +-max_deviation rows over the fitted span.
            est = res.throughput
            span = max(1, est.last_iter - est.first_iter)
            tol = 2 * est.max_deviation / span + 0.02
        assert res.speedup <= fus * dedup_factor * (1 + tol) + 1e-9

    @SETTINGS
    @given(st.integers(0, 5_000))
    def test_monotone_in_resources(self, seed):
        """More functional units never hurt the analytic speedup."""
        trip = 10
        speedups = []
        for fus in (2, 4):
            loop = random_counted_loop(random.Random(seed), n_stmts=3,
                                       trip=trip)
            res = schedule_loop(loop, MachineConfig(fus=fus), unroll=trip,
                                measure=False)
            speedups.append(res.speedup)
        if None not in speedups:
            assert speedups[1] >= speedups[0] - 1e-9

    @SETTINGS
    @given(st.integers(0, 5_000), st.sampled_from([2, 4]))
    def test_post_never_beats_grip(self, seed, fus):
        trip = 10
        loop_g = random_counted_loop(random.Random(seed), n_stmts=3,
                                     trip=trip)
        loop_p = random_counted_loop(random.Random(seed), n_stmts=3,
                                     trip=trip)
        g = schedule_loop(loop_g, MachineConfig(fus=fus), unroll=trip,
                          measure=False)
        p = pipeline_loop_post(loop_p, MachineConfig(fus=fus), unroll=trip)
        if g.speedup is not None and p.speedup is not None:
            assert p.speedup <= g.speedup + 0.35  # small repack noise

    @SETTINGS
    @given(st.integers(0, 5_000))
    def test_budget_respected_in_unwound_graph(self, seed):
        loop = random_counted_loop(random.Random(seed), n_stmts=3, trip=8)
        machine = MachineConfig(fus=3)
        res = schedule_loop(loop, machine, unroll=8, measure=False)
        for node in res.unwound.graph.nodes.values():
            assert machine.fits(node)

    @SETTINGS
    @given(st.integers(0, 5_000))
    def test_reduction_iis_at_least_one(self, seed):
        loop = random_counted_loop(random.Random(seed), n_stmts=2, trip=10,
                                   reduction=True)
        res = schedule_loop(loop, MachineConfig(fus=8), unroll=10,
                            measure=False)
        if res.initiation_interval is not None:
            assert res.initiation_interval >= 1.0 - 1e-9
