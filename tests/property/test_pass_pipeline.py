"""Property tests for the program pass pipeline.

The pipeline's transforms (invariant hoisting, counted-segment fusion,
slack-slot motion) rewrite programs *before and after* GRiP sees them,
so their soundness contract is differential: for any generated
multi-loop program, scheduling with ``optimize=True`` must be
memory-equivalent to both the sequential original and the
``optimize=False`` legacy flow, and the optimized graph must agree
with the bundle VM.  Alongside the random sweep, hand-built cases pin
the three soundness rules that make the passes conservative:

* a while body's invariant op must NOT hoist (zero-trip hazard --
  only condition-chain ops execute unconditionally);
* a STORE is never hoisted, however invariant its operands look;
* fusion of counted loops with mismatched trip counts is refused
  (reason code ``fusion-blocked:trip-mismatch``).
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend.check import differential_check
from repro.frontend import compile_dsl
from repro.ir.loops import CountedLoop
from repro.ir.operations import OpKind
from repro.ir.registers import Reg
from repro.machine import MachineConfig
from repro.obs import DecisionJournal
from repro.pipelining.passes import (
    fuse_counted_segments,
    hoist_invariants,
    normalize_program,
)
from repro.pipelining.program import schedule_program
from repro.simulator.check import check_equivalent
from repro.workloads.synth import generate, scenario_from_seed

SETTINGS = settings(max_examples=10, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# The differential property
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=5_000),
       hoist=st.sampled_from((0.0, 0.6, 1.0)),
       fuse=st.sampled_from((0.0, 0.7, 1.0)),
       nest=st.sampled_from((0.0, 0.4)))
@SETTINGS
def test_optimized_pipeline_is_differentially_equivalent(
        seed, hoist, fuse, nest):
    """optimize=True == optimize=False == sequential, on memory."""
    sc = replace(scenario_from_seed(seed), hoist_density=hoist,
                 fuse_density=fuse, nest_density=nest)
    program = compile_dsl(generate(sc).source(), 6, name=f"prop{seed}")
    if isinstance(program, CountedLoop):
        return  # single counted loop: the pass pipeline never runs
    machine = MachineConfig(fus=4)
    base = schedule_program(program, machine, unroll=8, measure=False,
                            optimize=False)
    opt = schedule_program(program, machine, unroll=8, measure=False,
                           optimize=True)
    check_equivalent(program.graph, opt.graph, seeds=(0, 1, 2))
    check_equivalent(base.graph, opt.graph, seeds=(0, 1, 2))
    differential_check(opt.graph, machine, seeds=(0, 1))


# ----------------------------------------------------------------------
# Hand-built soundness pins
# ----------------------------------------------------------------------
WHILE_INVARIANT_SRC = """
param hv, w, lim, n; array x;
while (w < lim + 8) {
    hv = (lim + 1);
    x[w] = hv;
    w = w + 1;
}
"""


def test_zero_trip_while_body_op_is_not_hoisted():
    program = compile_dsl(WHILE_INVARIANT_SRC, 6, name="ztw")
    plan = normalize_program(program)
    hoist_invariants(plan)
    loop = plan.segments[0].loop
    # The condition chain may hoist (it executes even at zero trips)
    # but `hv = lim + 1` lives in the body: at zero trips it must not
    # execute, so it must still be a body op afterwards.
    assert any(op.dest == Reg("hv") for op in loop.body_ops)
    assert not any(op.dest == Reg("hv") for op in loop.preheader_ops)
    # End-to-end: the full pipeline stays equivalent (seeded states
    # include low-trip and zero-trip initial counters).
    res = schedule_program(program, MachineConfig(fus=4), unroll=4,
                           measure=False)
    check_equivalent(program.graph, res.graph, seeds=(0, 1, 2))


STORE_INVARIANT_SRC = """
param p0, q, n; array d, x;
for k = 0 to n {
    d[0] = (p0 + 1);
    x[k] = (x[k] * q);
}
"""


def test_invariant_looking_store_is_not_hoisted():
    program = compile_dsl(STORE_INVARIANT_SRC + "while (q < 1) { q = q + 1; }",
                          6, name="sst")
    plan = normalize_program(program)
    hoist_invariants(plan)
    loop = plan.segments[0].loop
    # `p0 + 1` is a hoistable scalar; the STORE feeding d[0] is an
    # effect op and must stay in the body whatever its operands.
    assert not any(op.kind is OpKind.STORE for op in loop.preheader_ops)
    assert any(op.kind is OpKind.STORE and op.mem.array == "d"
               for op in loop.body_ops)


TRIP_MISMATCH_SRC = """
param q, n; array x, y, d, e;
for k = 0 to 6 { d[k] = (x[k] * q); }
for k = 0 to 9 { e[k] = (y[k] + q); }
"""


def test_trip_mismatch_fusion_is_refused():
    program = compile_dsl(TRIP_MISMATCH_SRC, 6, name="tmf")
    plan = normalize_program(program)
    journal = DecisionJournal()
    fused = fuse_counted_segments(plan, journal)
    assert fused == 0
    assert len(plan.segments) == 2
    assert journal.pass_reasons.get("fusion-blocked:trip-mismatch") == 1
    # The same two loops with matching bounds do fuse -- the refusal
    # above is the trip rule, not some other blocker.
    twin = compile_dsl(TRIP_MISMATCH_SRC.replace("to 9", "to 6"), 6,
                       name="tmf2")
    twin_plan = normalize_program(twin)
    assert fuse_counted_segments(twin_plan, DecisionJournal()) == 1
    assert len(twin_plan.segments) == 1
