"""Property-based tests: scheduling preserves semantics and budgets.

The central invariant of the whole system: **any** sequence of
percolation transformations driven by **any** scheduler must leave the
program observationally equivalent to the original, and every node must
respect the machine budget.  Random programs come from the synthetic
generators; hypothesis drives shapes and seeds.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir import RegisterFile
from repro.machine import MachineConfig
from repro.percolation import MigrateContext, migrate
from repro.scheduling import (
    GRiPScheduler,
    PaperHeuristic,
    SourceOrderHeuristic,
    UnifiableOpsScheduler,
)
from repro.simulator import check_equivalent
from repro.workloads.synthetic import branchy_program, random_straightline

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def program_and_machine(draw):
    seed = draw(st.integers(0, 10_000))
    n_ops = draw(st.integers(4, 18))
    fus = draw(st.sampled_from([1, 2, 3, 4, 8, None]))
    g = random_straightline(random.Random(seed), n_ops,
                            n_inputs=draw(st.integers(2, 5)),
                            store_every=draw(st.integers(2, 5)))
    return g, MachineConfig(fus=fus)


class TestGRiPProperties:
    @SETTINGS
    @given(program_and_machine())
    def test_semantics_preserved(self, pm):
        g, machine = pm
        orig = g.clone()
        GRiPScheduler(machine, gap_prevention=False).schedule(g)
        g.check()
        check_equivalent(orig, g, seeds=(0, 1))

    @SETTINGS
    @given(program_and_machine())
    def test_budget_respected(self, pm):
        g, machine = pm
        GRiPScheduler(machine, gap_prevention=False).schedule(g)
        for node in g.nodes.values():
            assert machine.fits(node), f"overfull node {node}"

    @SETTINGS
    @given(program_and_machine())
    def test_never_slower(self, pm):
        """Compaction never lengthens the (straight-line) program."""
        g, machine = pm
        before = len(g.reachable())
        GRiPScheduler(machine, gap_prevention=False).schedule(g)
        assert len(g.reachable()) <= before

    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(4, 14))
    def test_heuristic_independence_of_correctness(self, seed, n_ops):
        """Any ranking yields a correct schedule (only quality varies)."""
        for heuristic in (PaperHeuristic(), SourceOrderHeuristic()):
            g = random_straightline(random.Random(seed), n_ops)
            orig = g.clone()
            GRiPScheduler(MachineConfig(fus=2),
                          heuristic=heuristic,
                          gap_prevention=False).schedule(g)
            check_equivalent(orig, g, seeds=(0,))

    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_branchy_programs(self, seed, depth):
        g = branchy_program(random.Random(seed), depth=depth)
        orig = g.clone()
        GRiPScheduler(MachineConfig(fus=4),
                      gap_prevention=False).schedule(g)
        g.check()
        check_equivalent(orig, g, seeds=(0, 1))

    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(1, 2))
    def test_branchy_no_speculation(self, seed, depth):
        g = branchy_program(random.Random(seed), depth=depth)
        orig = g.clone()
        GRiPScheduler(MachineConfig(fus=4), gap_prevention=False,
                      allow_speculation=False).schedule(g)
        check_equivalent(orig, g, seeds=(0,))


class TestUnifiableProperties:
    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(4, 12))
    def test_semantics_preserved(self, seed, n_ops):
        g = random_straightline(random.Random(seed), n_ops)
        orig = g.clone()
        UnifiableOpsScheduler(MachineConfig(fus=3)).schedule(g)
        g.check()
        check_equivalent(orig, g, seeds=(0,))

    @SETTINGS
    @given(st.integers(0, 10_000))
    def test_no_worse_than_unscheduled(self, seed):
        g = random_straightline(random.Random(seed), 10)
        before = len(g.reachable())
        UnifiableOpsScheduler(MachineConfig(fus=4)).schedule(g)
        assert len(g.reachable()) <= before


class TestMigrateProperties:
    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(4, 12))
    def test_single_migrate_preserves_semantics(self, seed, n_ops):
        g = random_straightline(random.Random(seed), n_ops)
        orig = g.clone()
        tids = [op.tid for _, op in g.all_operations()]
        ctx = MigrateContext(g, MachineConfig(fus=4), RegisterFile())
        rng = random.Random(seed)
        migrate(ctx, g.entry, rng.choice(tids))
        g.check()
        check_equivalent(orig, g, seeds=(0,))

    @SETTINGS
    @given(st.integers(0, 10_000))
    def test_migrate_idempotent_when_blocked(self, seed):
        g = random_straightline(random.Random(seed), 8)
        ctx = MigrateContext(g, MachineConfig(fus=4), RegisterFile())
        tids = [op.tid for _, op in g.all_operations()]
        for tid in tids:
            migrate(ctx, g.entry, tid)
        version = g.version
        for tid in tids:
            assert not migrate(ctx, g.entry, tid)
        assert g.version == version
