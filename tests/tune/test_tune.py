"""Unit + integration tests for the ``repro tune`` autotuner lane.

The load-bearing contracts: the objective equals the bench runner's
realized-cycle measurement (so tuned numbers are comparable to
BENCH artifacts at the same unroll), the search is deterministic per
seed and never returns worse-than-default (the default is in the
candidate set), failed candidates are skipped rather than fatal, and
the TUNED artifact round-trips through validation + exact-cycle
re-execution.
"""

import json
import random

import pytest

from repro.scheduling.policy import DEFAULT_POLICY, SchedulePolicy
from repro.tune import (
    TuneEntry,
    TuneReport,
    evaluate_policy,
    random_policy,
    validate_tuned_file,
    verify_tuned,
    write_tuned,
)
from repro.tune.search import (
    AXIS_CHOICES,
    REASON_AXES,
    _axis_order,
    _eval_task,
    tune_cell,
)


def report(entries, budget=6, seed=0):
    return TuneReport(entries=entries, budget=budget, seed=seed,
                      wall_seconds=1.0)


def entry(kernel="LL3", fus=4, cycles=24, default_cycles=24, **kw):
    kw.setdefault("unroll", 12)
    kw.setdefault("policy", DEFAULT_POLICY)
    kw.setdefault("evals", 6)
    return TuneEntry(kernel=kernel, fus=fus, cycles=cycles,
                     default_cycles=default_cycles, **kw)


class TestObjective:
    def test_matches_bench_vm_backend(self):
        """The tune objective IS the bench vm realized-cycle column."""
        from repro.bench.runner import BenchJob, run_job

        rec = run_job(BenchJob(kernel="LL3", fus=4, backend="vm", unroll=12))
        assert evaluate_policy("LL3", 4, None, unroll=12) == \
            rec.realized_cycles

    def test_program_kernels_supported(self):
        cycles = evaluate_policy("SYNWHL", 4, None, unroll=6)
        assert cycles > 0

    def test_eval_task_skips_bad_candidates(self):
        cycles, err = _eval_task(("NOPE", 4, 12, None, None))
        assert cycles is None
        assert err

    def test_eval_task_round_trips_policy_dict(self):
        pol = random_policy(random.Random("t:1"))
        cycles, err = _eval_task(("LL1", 2, 12, pol.to_dict(), None))
        assert err is None
        assert cycles == evaluate_policy("LL1", 2, pol, unroll=12)


class TestSearch:
    def test_axis_order_reason_steered(self):
        order = _axis_order(["gap-veto", "speculation"])
        assert order[0] == "gap_mode"
        assert order[1] == "speculate"
        assert set(order) == set(AXIS_CHOICES)

    def test_axis_order_unknown_reason_harmless(self):
        assert set(_axis_order(["no-such-reason"])) == set(AXIS_CHOICES)

    def test_reason_axes_name_real_axes(self):
        for axes in REASON_AXES.values():
            for axis in axes:
                assert axis in AXIS_CHOICES

    def test_never_worse_than_default_and_deterministic(self):
        a = tune_cell("LL3", 2, budget=5, seed=3)
        b = tune_cell("LL3", 2, budget=5, seed=3)
        assert a.cycles <= a.default_cycles
        assert a.evals <= 5
        assert (a.policy, a.cycles, a.evals) == (b.policy, b.cycles, b.evals)

    def test_budget_one_is_default_only(self):
        e = tune_cell("LL1", 2, budget=1, seed=0)
        assert e.policy == DEFAULT_POLICY
        assert e.evals == 1
        assert not e.improved

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            tune_cell("LL1", 2, budget=0)


class TestArtifact:
    def test_round_trip_validates(self, tmp_path):
        rep = report([entry(), entry(kernel="LL1", fus=2, cycles=70,
                                     default_cycles=74)])
        out = tmp_path / "TUNED_test.json"
        payload = write_tuned(rep, out, name="test")
        assert payload == validate_tuned_file(out)
        assert payload["entries"][1]["improved"] is True
        assert payload["entries"][0]["improved"] is False

    def test_validate_rejects_fingerprint_mismatch(self, tmp_path):
        out = tmp_path / "TUNED_test.json"
        write_tuned(report([entry()]), out)
        data = json.loads(out.read_text())
        data["entries"][0]["policy_fingerprint"] = "0" * 16
        out.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="fingerprint"):
            validate_tuned_file(out)

    def test_validate_rejects_lying_improved_flag(self, tmp_path):
        out = tmp_path / "TUNED_test.json"
        write_tuned(report([entry()]), out)
        data = json.loads(out.read_text())
        data["entries"][0]["improved"] = True  # but cycles == default
        out.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="improved"):
            validate_tuned_file(out)

    def test_validate_rejects_wrong_kind_and_schema(self, tmp_path):
        out = tmp_path / "TUNED_test.json"
        write_tuned(report([entry()]), out)
        data = json.loads(out.read_text())
        data["kind"] = "other"
        out.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="kind"):
            validate_tuned_file(out)
        data["kind"] = "repro-tuned"
        data["schema"] = 99
        out.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema"):
            validate_tuned_file(out)

    def test_validate_rejects_bad_policy_dict(self, tmp_path):
        out = tmp_path / "TUNED_test.json"
        write_tuned(report([entry()]), out)
        data = json.loads(out.read_text())
        data["entries"][0]["policy"]["gap_mode"] = "bogus"
        out.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="policy"):
            validate_tuned_file(out)


class TestVerify:
    def test_real_cell_reproduces_exactly(self, tmp_path):
        e = tune_cell("LL1", 2, budget=4, seed=0)
        out = tmp_path / "TUNED_v.json"
        write_tuned(report([e], budget=4), out)
        assert verify_tuned(out) == []

    def test_tampered_cycles_detected(self, tmp_path):
        e = tune_cell("LL1", 2, budget=2, seed=0)
        out = tmp_path / "TUNED_v.json"
        write_tuned(report([e], budget=2), out)
        data = json.loads(out.read_text())
        for ent in data["entries"]:
            ent["cycles"] += 1
            ent["default_cycles"] += 1
            ent["improved"] = ent["cycles"] < ent["default_cycles"]
        out.write_text(json.dumps(data))
        mismatches = verify_tuned(out)
        assert len(mismatches) == 2
        assert "tuned cycles" in mismatches[0]


class TestEndToEnd:
    def test_smoke_cli(self, tmp_path, capsys):
        """``repro tune --smoke``: search, artifact, validation, exit 0."""
        from repro.__main__ import main

        out = tmp_path / "TUNED_smoke.json"
        code = main(["tune", "--smoke", "--out", str(out),
                     "--cache", str(tmp_path / "cache")])
        assert code == 0
        payload = validate_tuned_file(out)
        assert {e["kernel"] for e in payload["entries"]} == {"LL3", "SYNRED"}
        assert all(e["cycles"] <= e["default_cycles"]
                   for e in payload["entries"])
        assert "tune smoke ok" in capsys.readouterr().out

    def test_check_cli_exit_codes(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "TUNED_c.json"
        write_tuned(report([tune_cell("LL1", 2, budget=2, seed=0)],
                           budget=2), out)
        assert main(["tune", "--check", str(out)]) == 0
        data = json.loads(out.read_text())
        data["entries"][0]["cycles"] += 5
        data["entries"][0]["improved"] = (
            data["entries"][0]["cycles"] < data["entries"][0]["default_cycles"])
        out.write_text(json.dumps(data))
        assert main(["tune", "--check", str(out)]) == 1

    def test_smoke_rejects_conflicting_flags(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["tune", "--smoke", "--budget", "50"])
        assert exc.value.code == 2
