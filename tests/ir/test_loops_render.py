"""Unit tests for counted-loop construction and rendering."""

import pytest

from repro.ir import Imm, Reg, add, const, load, store
from repro.ir.loops import build_counted_loop
from repro.ir.render import render_graph, render_node, schedule_table, to_dot
from repro.simulator import MachineState, run


def make_loop(n=4, epilogue=False):
    body = [load("v", "y", index="k", affine=0, name="ld"),
            add("q", "q", "v", name="acc")]
    epi = [store("_scalars", "q", offset=0, name="out_q")] if epilogue else []
    return build_counted_loop("t", [const("k", 0, name="init")], body,
                              "k", n, carried=["q"], epilogue=epi)


class TestCountedLoop:
    def test_shape(self):
        loop = make_loop()
        loop.graph.check()
        assert loop.counter == Reg("k")
        assert loop.bound == Imm(4)
        assert loop.ops_per_iteration == 2 + 3

    def test_control_ops_present(self):
        loop = make_loop()
        assert [op.name for op in loop.control_ops] == ["inc", "cmp", "br"]

    def test_back_edge(self):
        loop = make_loop()
        cj_node = next(nid for nid, node in loop.graph.nodes.items()
                       if node.cjs)
        succs = loop.graph.nodes[cj_node].successors()
        assert loop.header in succs

    def test_executes_trip_count(self):
        loop = make_loop(n=5)
        st = MachineState()
        st.regs["q"] = 0.0
        r = run(loop.graph, st)
        assert r.exited
        total = sum(st.read_mem("y", k) for k in range(5))
        assert st.regs["q"] == pytest.approx(total)

    def test_epilogue_runs_after_exit(self):
        loop = make_loop(n=3, epilogue=True)
        st = MachineState()
        st.regs["q"] = 0.0
        run(loop.graph, st)
        total = sum(st.read_mem("y", k) for k in range(3))
        assert st.mem[("_scalars", 0)] == pytest.approx(total)

    def test_positions_stamped(self):
        loop = make_loop()
        positions = [op.pos for op in loop.preheader_ops + loop.body_ops]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)


class TestRendering:
    def test_render_node_lists_ops(self):
        loop = make_loop()
        text = render_node(loop.graph.nodes[loop.header])
        assert "ld" in text

    def test_render_graph_covers_reachable(self):
        loop = make_loop()
        text = render_graph(loop.graph)
        for nid in loop.graph.rpo():
            assert f"n{nid}:" in text

    def test_schedule_table_columns(self):
        from repro.pipelining import unwind_counted

        u = unwind_counted(make_loop(n=3), 3)
        table = schedule_table(u.graph)
        header = table.splitlines()[1]
        assert header.split()[-3:] == ["0", "1", "2"]

    def test_to_dot_wellformed(self):
        loop = make_loop()
        dot = to_dot(loop.graph)
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
        assert "exit" in dot


class TestCLI:
    def test_kernels_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "LL1" in out and "LL14" in out

    def test_pipeline_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["pipeline", "LL12", "--fus", "2",
                     "--unroll", "8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
