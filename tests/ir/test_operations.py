"""Unit tests for the operation model."""

import pytest

from repro.ir import (
    Imm,
    MemRef,
    OpKind,
    Operation,
    Reg,
    add,
    cjump,
    const,
    copy,
    load,
    mul,
    store,
)


class TestConstruction:
    def test_add_shape(self):
        op = add("d", "a", "b")
        assert op.kind is OpKind.ADD
        assert op.dest == Reg("d")
        assert op.srcs == (Reg("a"), Reg("b"))

    def test_immediate_source(self):
        op = add("d", "a", 3)
        assert op.srcs[1] == Imm(3)

    def test_load_shape(self):
        op = load("d", "arr", index="k", offset=2, affine=2)
        assert op.reads_memory and not op.writes_memory
        assert op.mem.array == "arr"
        assert op.mem.offset == 2 and op.mem.affine == 2

    def test_store_shape(self):
        op = store("arr", "v", index="k")
        assert op.writes_memory and op.dest is None
        assert op.srcs == (Reg("v"),)

    def test_cjump_shape(self):
        op = cjump("c")
        assert op.is_cjump and op.dest is None

    def test_malformed_store_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.STORE, Reg("d"), (Reg("v"),),
                      MemRef("a", None, 0))

    def test_malformed_binary_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.ADD, Reg("d"), (Reg("a"),))

    def test_malformed_const_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.CONST, Reg("d"), (Reg("a"),))


class TestIdentity:
    def test_uid_unique(self):
        a, b = add("d", "a", "b"), add("d", "a", "b")
        assert a.uid != b.uid

    def test_tid_defaults_to_uid(self):
        op = add("d", "a", "b")
        assert op.tid == op.uid

    def test_duplicate_preserves_template(self):
        op = add("d", "a", "b")
        dup = op.duplicate()
        assert dup.tid == op.tid and dup.uid != op.uid

    def test_with_dest_preserves_template(self):
        op = add("d", "a", "b")
        renamed = op.with_dest(Reg("x"))
        assert renamed.tid == op.tid
        assert renamed.dest == Reg("x")


class TestDataflow:
    def test_uses_include_memory_index(self):
        op = load("d", "arr", index="k", offset=1)
        assert op.uses() == frozenset({Reg("k")})

    def test_store_uses_value_and_index(self):
        op = store("arr", "v", index="k")
        assert op.uses() == frozenset({Reg("v"), Reg("k")})

    def test_defs(self):
        assert add("d", "a", "b").defs() == frozenset({Reg("d")})
        assert store("arr", "v").defs() == frozenset()

    def test_immediates_not_used(self):
        op = add("d", "a", 1)
        assert op.uses() == frozenset({Reg("a")})

    def test_substitute_use(self):
        op = mul("d", "a", "b")
        sub = op.substitute_use(Reg("a"), Reg("x"))
        assert sub.srcs == (Reg("x"), Reg("b"))
        assert sub.tid == op.tid

    def test_substitute_use_in_memory_index(self):
        op = load("d", "arr", index="k")
        sub = op.substitute_use(Reg("k"), Reg("k2"))
        assert sub.mem.index == Reg("k2")

    def test_substitute_immediate(self):
        op = add("d", "a", "b")
        sub = op.substitute_use(Reg("b"), Imm(5))
        assert sub.srcs == (Reg("a"), Imm(5))

    def test_side_effects(self):
        assert store("a", "v").has_side_effect
        assert cjump("c").has_side_effect
        assert not add("d", "a", "b").has_side_effect
        assert not copy("d", "s").has_side_effect

    def test_copy_flag(self):
        assert copy("d", "s").is_copy
        assert not const("d", 3).is_copy
