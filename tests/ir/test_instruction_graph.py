"""Unit tests for instructions and program graphs."""

import pytest

from repro.ir import (
    EXIT,
    ProgramGraph,
    SequentialBuilder,
    add,
    cjump,
    cmp_lt,
    store,
    straightline_graph,
    sub,
)


def diamond():
    """cmp; cj -> (then: t) / (else: e); both -> merge(store)."""
    g = ProgramGraph()
    n1 = g.new_node()
    n1.add_op(cmp_lt("c", "a", "b", name="K"))
    g.set_entry(n1.nid)
    cj = cjump("c", name="J")
    n2 = g.new_node()
    from repro.ir.cjtree import Branch, make_leaf

    tl, fl = make_leaf(EXIT), make_leaf(EXIT)
    n2.tree = Branch(cj.uid, tl, fl)
    n2.cjs[cj.uid] = cj
    g.note_tree_change(n2.nid)
    g.retarget_leaf(n1.nid, n1.leaves()[0].leaf_id, n2.nid)
    nt = g.new_node()
    nt.add_op(add("v", "a", 1, name="T"))
    ne = g.new_node()
    ne.add_op(sub("v", "b", 1, name="E"))
    g.retarget_leaf(n2.nid, tl.leaf_id, nt.nid)
    g.retarget_leaf(n2.nid, fl.leaf_id, ne.nid)
    nm = g.new_node()
    nm.add_op(store("out", "v", name="S"))
    g.retarget_leaf(nt.nid, nt.leaves()[0].leaf_id, nm.nid)
    g.retarget_leaf(ne.nid, ne.leaves()[0].leaf_id, nm.nid)
    g.check()
    return g, (n1, n2, nt, ne, nm)


class TestInstruction:
    def test_add_remove_op(self):
        g = ProgramGraph()
        n = g.new_node()
        op = add("d", "a", "b")
        n.add_op(op)
        assert n.op_count() == 1
        assert n.paths_of(op.uid) == n.all_paths
        n.remove_op(op.uid)
        assert n.is_empty()

    def test_add_duplicate_uid_rejected(self):
        g = ProgramGraph()
        n = g.new_node()
        op = add("d", "a", "b")
        n.add_op(op)
        with pytest.raises(ValueError):
            n.add_op(op)

    def test_path_subset_placement(self):
        g, (n1, n2, nt, ne, nm) = diamond()
        leaves = n2.leaves()
        op = add("z", "a", 2)
        n2.add_op(op, frozenset({leaves[0].leaf_id}))
        assert n2.paths_of(op.uid) == frozenset({leaves[0].leaf_id})
        n2.check()

    def test_bad_paths_rejected(self):
        g = ProgramGraph()
        n = g.new_node()
        with pytest.raises(ValueError):
            n.add_op(add("d", "a", "b"), frozenset({999}))

    def test_two_writers_same_path_detected(self):
        g = ProgramGraph()
        n = g.new_node()
        n.add_op(add("d", "a", "b"))
        n.add_op(add("d", "a", "c"))
        with pytest.raises(AssertionError):
            n.check()

    def test_find_identical(self):
        g = ProgramGraph()
        n = g.new_node()
        op = add("d", "a", "b")
        n.add_op(op)
        twin = add("d", "a", "b")
        assert n.find_identical(twin) is op
        assert n.find_identical(add("d", "a", "c")) is None

    def test_clone_with_map(self):
        g, (n1, n2, nt, ne, nm) = diamond()
        dup, uid_map = n2.clone_with_map(999)
        assert set(uid_map) == set(n2.cjs) | set(n2.ops)
        assert dup.leaf_ids().isdisjoint(n2.leaf_ids())
        assert [l.target for l in dup.leaves()] == \
            [l.target for l in n2.leaves()]

    def test_cjs_on_path(self):
        g, (n1, n2, nt, ne, nm) = diamond()
        leaf = n2.leaves()[0]
        assert [op.name for op in n2.cjs_on(leaf.leaf_id)] == ["J"]


class TestGraph:
    def test_straightline_structure(self):
        g = straightline_graph([add("a", "x", 1), add("b", "a", 1)])
        assert len(g.nodes) == 2
        order = g.rpo()
        assert g.successors(order[0]) == [order[1]]
        assert g.predecessors(order[1]) == frozenset({order[0]})

    def test_preds_maintained_on_retarget(self):
        g, (n1, n2, nt, ne, nm) = diamond()
        assert g.predecessors(nm.nid) == frozenset({nt.nid, ne.nid})
        g.retarget_all_edges(nt.nid, nm.nid, EXIT)
        assert g.predecessors(nm.nid) == frozenset({ne.nid})

    def test_split_for_edge(self):
        g, (n1, n2, nt, ne, nm) = diamond()
        new_nid, uid_map = g.split_for_edge(nt.nid, nm.nid)
        g.check()
        # nt now points at the copy; ne keeps the original.
        assert g.successors(nt.nid) == [new_nid]
        assert g.successors(ne.nid) == [nm.nid]
        assert g.predecessors(nm.nid) == frozenset({ne.nid})
        assert g.predecessors(new_nid) == frozenset({nt.nid})

    def test_delete_empty_node(self):
        g = straightline_graph([add("a", "x", 1), add("b", "a", 1)])
        order = g.rpo()
        mid = g.nodes[order[1]]
        op_uid = next(iter(mid.ops))
        mid.remove_op(op_uid)
        assert g.delete_empty_node(order[1])
        assert order[1] not in g.nodes

    def test_delete_entry_moves_forward(self):
        g = straightline_graph([add("a", "x", 1), add("b", "a", 1)])
        first = g.entry
        g.nodes[first].remove_op(next(iter(g.nodes[first].ops)))
        assert g.delete_empty_node(first)
        assert g.entry != first and g.entry in g.nodes

    def test_delete_nonempty_refused(self):
        g = straightline_graph([add("a", "x", 1)])
        assert not g.delete_empty_node(g.entry)

    def test_rpo_topological_on_dag(self):
        g, (n1, n2, nt, ne, nm) = diamond()
        order = g.rpo()
        pos = {nid: i for i, nid in enumerate(order)}
        for src, dst in g.edges():
            if dst != EXIT:
                assert pos[src] < pos[dst]

    def test_clone_preserves_identity(self):
        g, _ = diamond()
        c = g.clone()
        c.check()
        assert set(c.nodes) == set(g.nodes)
        for nid in g.nodes:
            assert set(c.nodes[nid].ops) == set(g.nodes[nid].ops)
            assert c.nodes[nid].leaf_ids() == g.nodes[nid].leaf_ids()

    def test_clone_isolated_mutation(self):
        g, (n1, *_ ) = diamond()
        c = g.clone()
        c.nodes[n1.nid].add_op(add("zz", "a", "a"))
        assert len(g.nodes[n1.nid].ops) == 1

    def test_template_index(self):
        g = straightline_graph([add("a", "x", 1, name="A")])
        (nid, op), = list(g.all_operations())
        idx = g.template_index()
        assert idx[op.tid] == [(nid, op.uid)]

    def test_template_index_invalidation(self):
        g = straightline_graph([add("a", "x", 1), add("b", "a", 1)])
        g.template_index()
        order = g.rpo()
        first = g.nodes[order[0]]
        op = add("z", "x", 2)
        first.add_op(op)
        g._touch()
        assert op.tid in g.template_index()

    def test_drop_unreachable(self):
        g = straightline_graph([add("a", "x", 1)])
        orphan = g.new_node()
        orphan.add_op(add("q", "x", 3))
        g.note_tree_change(orphan.nid)
        dead = g.drop_unreachable()
        assert orphan.nid in dead


class TestBuilder:
    def test_cjump_chain(self):
        b = SequentialBuilder()
        b.append(cmp_lt("c", "a", "b"))
        n = b.append_cjump(cjump("c"), true_target=EXIT)
        tail = b.append(add("z", "a", 1))
        g = b.graph
        g.check()
        # false side of the cjump falls through to the tail
        leaves = n.leaves()
        assert leaves[0].target == EXIT
        assert leaves[1].target == tail.nid

    def test_close_loop(self):
        b = SequentialBuilder()
        first = b.append(add("a", "a", 1))
        b.append(add("b", "a", 1))
        b.close_loop(first.nid)
        g = b.graph
        g.check()
        assert first.nid in g.successors(b.tail.nid)
