"""Unit tests for conditional-jump trees."""

import pytest

from repro.ir import cjump
from repro.ir.cjtree import (
    Branch,
    EXIT,
    depth,
    find_leaf,
    iter_branches,
    iter_leaves,
    leaf_ids,
    leaves_under,
    make_leaf,
    refresh_leaf_ids,
    remove_branch,
    replace_leaf,
    retarget_all,
    retarget_leaf,
    subtree_of,
)


def two_level():
    """(cj1? (cj2? L1 : L2) : L3) with targets 11,12,13."""
    cj1, cj2 = cjump("a"), cjump("b")
    l1, l2, l3 = make_leaf(11), make_leaf(12), make_leaf(13)
    tree = Branch(cj1.uid, Branch(cj2.uid, l1, l2), l3)
    return tree, (cj1, cj2), (l1, l2, l3)


class TestStructure:
    def test_single_leaf(self):
        l = make_leaf(EXIT)
        assert list(iter_leaves(l)) == [l]
        assert depth(l) == 0

    def test_leaf_ids_unique(self):
        a, b = make_leaf(1), make_leaf(1)
        assert a.leaf_id != b.leaf_id

    def test_iter_leaves_order(self):
        tree, _, (l1, l2, l3) = two_level()
        assert [l.leaf_id for l in iter_leaves(tree)] == \
            [l1.leaf_id, l2.leaf_id, l3.leaf_id]

    def test_iter_branches(self):
        tree, (cj1, cj2), _ = two_level()
        assert [b.cj_uid for b in iter_branches(tree)] == [cj1.uid, cj2.uid]

    def test_depth(self):
        tree, _, _ = two_level()
        assert depth(tree) == 2

    def test_leaves_under(self):
        tree, (cj1, cj2), (l1, l2, l3) = two_level()
        assert leaves_under(tree, cj1.uid, True) == \
            frozenset({l1.leaf_id, l2.leaf_id})
        assert leaves_under(tree, cj1.uid, False) == frozenset({l3.leaf_id})
        assert leaves_under(tree, cj2.uid, True) == frozenset({l1.leaf_id})


class TestSurgery:
    def test_retarget_leaf(self):
        tree, _, (l1, _, _) = two_level()
        new = retarget_leaf(tree, l1.leaf_id, 99)
        assert find_leaf(new, l1.leaf_id).target == 99
        # original untouched (immutability)
        assert find_leaf(tree, l1.leaf_id).target == 11

    def test_retarget_all(self):
        tree = Branch(cjump("c").uid, make_leaf(5), make_leaf(5))
        new = retarget_all(tree, 5, 7)
        assert all(l.target == 7 for l in iter_leaves(new))

    def test_replace_leaf_with_branch(self):
        tree, _, (l1, _, _) = two_level()
        cj3 = cjump("c")
        graft = Branch(cj3.uid, make_leaf(21), make_leaf(22))
        new = replace_leaf(tree, l1.leaf_id, graft)
        assert subtree_of(new, cj3.uid) is not None
        assert len(leaf_ids(new)) == 4

    def test_replace_missing_leaf_raises(self):
        tree, _, _ = two_level()
        with pytest.raises(KeyError):
            replace_leaf(tree, 10**9, make_leaf(1))

    def test_remove_branch_keep_true(self):
        tree, (cj1, cj2), (l1, l2, l3) = two_level()
        new = remove_branch(tree, cj2.uid, keep_true=True)
        assert leaf_ids(new) == frozenset({l1.leaf_id, l3.leaf_id})

    def test_remove_root_branch(self):
        tree, (cj1, _), (l1, l2, _) = two_level()
        new = remove_branch(tree, cj1.uid, keep_true=True)
        assert leaf_ids(new) == frozenset({l1.leaf_id, l2.leaf_id})

    def test_refresh_leaf_ids(self):
        tree, _, (l1, l2, l3) = two_level()
        new, mapping = refresh_leaf_ids(tree)
        assert set(mapping) == {l1.leaf_id, l2.leaf_id, l3.leaf_id}
        assert leaf_ids(new).isdisjoint(leaf_ids(tree))
        # Targets preserved.
        assert sorted(l.target for l in iter_leaves(new)) == [11, 12, 13]
