#!/usr/bin/env python3
"""Pipeline the Livermore loops across machine widths (mini Table 1).

Run:  python examples/livermore_pipelining.py [LL1 LL3 ...]

For each requested kernel (default: a representative sample) the script
pipelines with GRiP and with the POST baseline at 2/4/8 functional
units, printing analytic speedups and the simulator-verified measured
speedup at 4 FUs.
"""

import sys

from repro.machine import MachineConfig
from repro.pipelining import schedule_loop, pipeline_loop_post
from repro.reporting import comparison_table
from repro.workloads import livermore


def main() -> None:
    names = sys.argv[1:] or ["LL1", "LL3", "LL5", "LL10", "LL12"]
    rows = []
    for name in names:
        row = [name]
        measured = None
        for fus in (2, 4, 8):
            unroll = max(12, 3 * fus)
            g = schedule_loop(livermore.kernel(name, unroll),
                              MachineConfig(fus=fus), unroll=unroll,
                              measure=(fus == 4))
            p = pipeline_loop_post(livermore.kernel(name, unroll),
                                   MachineConfig(fus=fus), unroll=unroll)
            gs = f"{g.speedup:.1f}" if g.speedup else "n/c"
            ps = f"{p.speedup:.1f}" if p.speedup else "n/c"
            row.append(f"{gs}/{ps}")
            if fus == 4:
                measured = g.measured_speedup
        row.append(f"{measured:.2f}" if measured else "-")
        rows.append(row)
    print(comparison_table(
        ["Loop", "2FU G/P", "4FU G/P", "8FU G/P", "measured@4 (verified)"],
        rows, "Livermore loops: GRiP vs POST"))
    print("Every measured cell simulated the pipelined code against the"
          " sequential loop\non identical inputs and compared final"
          " memory (the run would fail otherwise).")


if __name__ == "__main__":
    main()
