#!/usr/bin/env python3
"""Quickstart: compile a loop, GRiP-pipeline it, inspect the kernel.

Run:  python examples/quickstart.py
"""

from repro.frontend import compile_dsl
from repro.ir.render import schedule_table
from repro.machine import MachineConfig
from repro.pipelining import main_chain, schedule_loop

# A small kernel in the loop DSL: a saxpy-like stream update.
SRC = """
param a, n;
array x, y;
for k = 0 to n {
    y[k] = y[k] + a * x[k];
}
"""


def main() -> None:
    # Trip count doubles as the unroll factor for measured runs.
    n = 16
    loop = compile_dsl(SRC, n, name="saxpy")
    print(f"compiled '{loop.name}': {len(loop.body_ops)} body ops + "
          f"{len(loop.control_ops)} control ops per iteration\n")

    machine = MachineConfig(fus=4)
    result = schedule_loop(loop, machine, unroll=n)

    print(result.summary())
    print()
    if result.pattern is not None:
        print("steady-state kernel rows:")
        print(schedule_table(result.unwound.graph,
                             order=result.pattern.rows))
    else:
        print("compacted schedule (main chain):")
        print(schedule_table(result.unwound.graph,
                             order=main_chain(result.unwound.graph)))
    print("scheduling statistics:")
    print(result.schedule.summary())


if __name__ == "__main__":
    main()
