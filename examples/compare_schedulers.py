#!/usr/bin/env python3
"""Four schedulers on one workload: GRiP, Unifiable-ops, POST, list.

Run:  python examples/compare_schedulers.py

Uses the paper's A..G running example (unwound 6 times) so the contrast
matches Figures 8-13: schedule length, bookkeeping cost, and -- for the
pipelining systems -- the steady-state initiation interval.
"""

from repro.machine import MachineConfig
from repro.pipelining import graph_throughput, unwind_implicit
from repro.reporting import comparison_table
from repro.scheduling import (
    AlphabeticalHeuristic,
    GRiPScheduler,
    POSTScheduler,
    UnifiableOpsScheduler,
    list_schedule,
)
from repro.workloads.paper_examples import ag_body

MACHINE = MachineConfig(fus=4)
UNROLL = 6


def main() -> None:
    rows = []

    u = unwind_implicit(ag_body(), UNROLL)
    res = GRiPScheduler(MACHINE, AlphabeticalHeuristic(),
                        gap_prevention=True).schedule(u.graph,
                                                      ranking_ops=u.ops)
    est = graph_throughput(u, u.graph)
    rows.append(["GRiP (gapless)", len(u.graph.rpo()),
                 f"{res.stats.moves} moves",
                 f"II~{est.ii:.2f}" if est else "-"])

    u2 = unwind_implicit(ag_body(), UNROLL)
    res2 = UnifiableOpsScheduler(MACHINE, AlphabeticalHeuristic()
                                 ).schedule(u2.graph, ranking_ops=u2.ops)
    rows.append(["Unifiable-ops", len(u2.graph.rpo()),
                 f"{res2.unifiable_stats.closure_ops} closure touches",
                 "-"])

    u3 = unwind_implicit(ag_body(), UNROLL)
    pr = POSTScheduler(MACHINE, AlphabeticalHeuristic()).schedule_ops(u3.ops)
    rows.append(["POST (repack)", pr.repacked.cycles,
                 f"{pr.repacked.spilled_ops} spilled ops", "-"])

    ls = list_schedule(list(ag_body()), MACHINE,
                       heuristic=AlphabeticalHeuristic())
    rows.append(["list (1 body)", ls.cycles, "-", "-"])

    print(comparison_table(
        ["scheduler", "rows", "cost/notes", "steady state"],
        rows, f"A..G example, {UNROLL} iterations, {MACHINE}"))
    print("\nThe A..G loop carries a 2-cycles-per-iteration recurrence"
          " (d<->e), so II~2.0 is\nthe dependence bound; GRiP's gapless"
          " schedule sustains it while POST stretches\neach iteration"
          " over the broken unconstrained pattern.")


if __name__ == "__main__":
    main()
