#!/usr/bin/env python3
"""Conditional jumps under percolation: move-cj and speculation.

Run:  python examples/conditional_scheduling.py

Builds a chain of branch diamonds (IBM VLIW conditional-jump trees),
then compacts it twice -- with speculative scheduling enabled (the
paper's GRiP default) and disabled -- and shows the schedules and the
simulator's equivalence verdicts.
"""

import random

from repro.ir.render import render_graph
from repro.machine import MachineConfig
from repro.scheduling import GRiPScheduler
from repro.simulator import check_equivalent
from repro.workloads.synthetic import branchy_program


def compact(depth: int, speculate: bool):
    g = branchy_program(random.Random(1), depth=depth)
    orig = g.clone()
    res = GRiPScheduler(MachineConfig(fus=8), gap_prevention=False,
                        allow_speculation=speculate).schedule(g)
    rep = check_equivalent(orig, g, seeds=(0, 1, 2))
    return g, res, rep


def main() -> None:
    depth = 3
    print(f"program: {depth} chained branch diamonds\n")
    for speculate in (True, False):
        label = "speculative (GRiP default)" if speculate else "no speculation"
        g, res, rep = compact(depth, speculate)
        print(f"=== {label} ===")
        print(f"rows: {len(g.reachable())}   cj-moves: {res.stats.cj_moves}"
              f"   renames: {res.stats.renames}")
        print(f"simulator speedup over 3 random inputs: "
              f"{rep.mean_speedup:.2f} (memory verified)\n")
        print(render_graph(g))


if __name__ == "__main__":
    main()
