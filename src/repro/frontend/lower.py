"""Lowering: DSL AST -> three-address operations -> loop descriptors.

The lowering mirrors what the paper's GCC-based front end handed the
UCI VLIW compiler: clean three-address code over virtual registers,
with

* one operation per statement-level computation (temporaries ``t%N``),
* loads for array reads, de-duplicated per body (local CSE),
* affine annotations on counter-indexed references (``z[k+11]`` gets
  ``affine=11``), enabling exact cross-iteration disambiguation,
* reductions detected as *carried* scalars (read before written),
* an epilogue that stores every scalar the loop produces into the
  ``_scalars`` result array, so the simulator observes results through
  memory,
* inner conditionals lowered by if-conversion (computing both sides and
  selecting arithmetically), matching the paper's evaluation setting in
  which the Table-1 loops carry no explicit internal branches.

A classic one-``for``-loop program lowers to the paper's
:class:`CountedLoop`, exactly as before.  Programs using ``while``
loops or several top-level loops lower to a :class:`LoopProgram`:

* every loop becomes its own descriptor (:class:`CountedLoop` or the
  trip-count-unknown :class:`~repro.ir.loops.WhileLoop`) with a
  standalone sequential graph, so the scheduler can treat each as an
  isolated segment;
* a ``while (cond) { ... }`` loop recomputes its condition at the
  header each iteration and exits via ``exit = (cond == 0)``; its
  array indexes carry no affine annotation (there is no induction
  variable), which the dependence tester treats conservatively;
* scalar state flows across loop boundaries: each descriptor records
  the registers later segments read (``live_out``) and the single
  program-level epilogue stores every written param to ``_scalars``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.loops import (
    CountedLoop,
    InnerWhile,
    LoopProgram,
    WhileLoop,
    build_counted_loop,
    build_while_loop,
    concat_graphs,
)
from ..ir.builder import straightline_graph
from ..ir.operations import (
    MemRef,
    Operation,
    OpKind,
    Operation as Op,
)
from ..ir.registers import Imm, Operand, Reg
from .ast import Assign, Bin, Expr, ForLoop, IfStmt, Index, Num, Program, Un, Var, WhileStmt

_BINOPS = {
    "+": OpKind.ADD, "-": OpKind.SUB, "*": OpKind.MUL, "/": OpKind.DIV,
    "min": OpKind.MIN, "max": OpKind.MAX,
    "==": OpKind.CMP_EQ, "!=": OpKind.CMP_NE, "<": OpKind.CMP_LT,
    "<=": OpKind.CMP_LE, ">": OpKind.CMP_GT, ">=": OpKind.CMP_GE,
}

#: result array receiving the loop's scalar outputs
SCALAR_OUT = "_scalars"


class LowerError(ValueError):
    pass


@dataclass
class _Ctx:
    #: induction variable of the enclosing counted loop; ``None`` inside
    #: a while loop (no affine base, indexes lower to general registers)
    counter: str | None
    params: set[str]
    arrays: set[str]
    ops: list[Operation] = field(default_factory=list)
    temp_n: int = 0
    load_cse: dict[tuple, Reg] = field(default_factory=dict)
    name_n: dict[str, int] = field(default_factory=dict)
    #: nested while loops collected for the ops list being built
    inner: list[InnerWhile] = field(default_factory=list)

    def temp(self) -> Reg:
        self.temp_n += 1
        return Reg(f"t{self.temp_n}")

    def opname(self, prefix: str) -> str:
        n = self.name_n.get(prefix, 0) + 1
        self.name_n[prefix] = n
        return f"{prefix}{n}"

    def emit(self, op: Operation) -> Operation:
        self.ops.append(op)
        return op


def _memref(ctx: _Ctx, array: str, index: Expr) -> MemRef:
    """Build a memory reference with affine analysis of the index."""
    if array not in ctx.arrays:
        raise LowerError(f"{array} used as array but not declared")
    base, offset = _affine_parts(index, ctx.counter)
    if base == "counter":
        return MemRef(array, Reg(ctx.counter), offset, affine=offset)
    if base == "const":
        return MemRef(array, None, offset, affine=None)
    # General index expression: lower to a register.
    operand = _lower_expr(ctx, index)
    if isinstance(operand, Imm):
        return MemRef(array, None, int(operand.value), affine=None)
    return MemRef(array, operand, 0, affine=None)


def _affine_parts(e: Expr, counter: str) -> tuple[str, int]:
    """Classify an index as counter+c / const c / other."""
    if isinstance(e, Num):
        return "const", int(e.value)
    if isinstance(e, Var):
        return ("counter", 0) if e.name == counter else ("other", 0)
    if isinstance(e, Bin) and e.op in ("+", "-"):
        lb, lo = _affine_parts(e.left, counter)
        rb, ro = _affine_parts(e.right, counter)
        sign = 1 if e.op == "+" else -1
        if lb == "counter" and rb == "const":
            return "counter", lo + sign * ro
        if lb == "const" and rb == "counter" and e.op == "+":
            return "counter", lo + ro
        if lb == "const" and rb == "const":
            return "const", lo + sign * ro
    return "other", 0


def _lower_expr(ctx: _Ctx, e: Expr) -> Operand:
    """Lower an expression, returning the operand holding its value."""
    if isinstance(e, Num):
        return Imm(e.value)
    if isinstance(e, Var):
        if e.name in ctx.arrays:
            raise LowerError(
                f"array {e.name} read as a scalar (missing [index]?)")
        return Reg(e.name)
    if isinstance(e, Index):
        ref = _memref(ctx, e.array, e.index)
        key = (ref.array, ref.index, ref.offset, ref.affine)
        hit = ctx.load_cse.get(key)
        if hit is not None:
            return hit
        dest = ctx.temp()
        ctx.emit(Op(OpKind.LOAD, dest, (), ref, name=ctx.opname("ld")))
        ctx.load_cse[key] = dest
        return dest
    if isinstance(e, Un):
        inner = _lower_expr(ctx, e.operand)
        dest = ctx.temp()
        kind = OpKind.NEG if e.op == "-" else OpKind.ABS
        ctx.emit(Op(kind, dest, (inner,), name=ctx.opname("u")))
        return dest
    if isinstance(e, Bin):
        kind = _BINOPS.get(e.op)
        if kind is None:
            raise LowerError(f"unsupported operator {e.op!r}")
        a = _lower_expr(ctx, e.left)
        b = _lower_expr(ctx, e.right)
        dest = ctx.temp()
        prefix = {"+": "a", "-": "d", "*": "m", "/": "q"}.get(e.op, "c")
        ctx.emit(Op(kind, dest, (a, b), name=ctx.opname(prefix)))
        return dest
    raise LowerError(f"cannot lower expression {e!r}")


def _invalidate_cse(ctx: _Ctx, array: str) -> None:
    """Drop CSE entries that a store to ``array`` may have changed."""
    stale = [k for k in ctx.load_cse if k[0] == array]
    for k in stale:
        del ctx.load_cse[k]


def _lower_assign(ctx: _Ctx, st: Assign) -> None:
    if isinstance(st.target, Index):
        value = _lower_expr(ctx, st.value)
        ref = _memref(ctx, st.target.array, st.target.index)
        _invalidate_cse(ctx, st.target.array)
        ctx.emit(Op(OpKind.STORE, None, (value,), ref,
                    name=ctx.opname("st")))
        return
    # Scalar assignment: retarget the producing op when possible.
    if st.target.name in ctx.arrays:
        raise LowerError(
            f"array {st.target.name} assigned as a scalar "
            f"(missing [index]?)")
    if st.target.name == ctx.counter:
        raise LowerError(f"cannot assign the loop counter {ctx.counter}")
    dest = Reg(st.target.name)
    before = len(ctx.ops)
    value = _lower_expr(ctx, st.value)
    if len(ctx.ops) > before and isinstance(value, Reg) \
            and ctx.ops[-1].dest == value:
        last = ctx.ops[-1]
        ctx.ops[-1] = Op(last.kind, dest, last.srcs, last.mem,
                         name=last.name, pos=last.pos)
        # Loads feeding the CSE table must not alias the retargeted reg.
        for key, reg in list(ctx.load_cse.items()):
            if reg == value:
                ctx.load_cse[key] = dest
    else:
        ctx.emit(Op(OpKind.COPY, dest, (value,), name=ctx.opname("cp")))


def _lower_if(ctx: _Ctx, st: IfStmt) -> None:
    """If-conversion: both sides compute, selection is arithmetic.

    ``x = c*then + (1-c)*else`` for every scalar/array cell either side
    assigns.  Supported shape: each branch is a sequence of assignments;
    assignments appearing in only one branch use the current value as
    the implicit other side.
    """
    cond = _lower_expr(ctx, st.cond)
    # Normalize the condition to a register so both selects share it.
    if isinstance(cond, Imm):
        cond_reg = ctx.temp()
        ctx.emit(Op(OpKind.CONST, cond_reg, (cond,), name=ctx.opname("k")))
    else:
        cond_reg = cond

    def branch_values(stmts) -> dict[object, Operand]:
        values: dict[object, Operand] = {}
        for s in stmts:
            if not isinstance(s, Assign):
                raise LowerError("nested if not supported by if-conversion")
            v = _lower_expr(ctx, s.value)
            if isinstance(s.target, Var):
                values[("scalar", s.target.name)] = v
            else:
                ref = _memref(ctx, s.target.array, s.target.index)
                values[("cell", ref.array, ref.index, ref.offset)] = (ref, v)
        return values

    then_vals = branch_values(st.then_body)
    else_vals = branch_values(st.else_body)
    for key in sorted(set(then_vals) | set(else_vals),
                      key=lambda k: repr(k)):
        if key[0] == "scalar":
            name = key[1]
            tv = then_vals.get(key, Reg(name))
            ev = else_vals.get(key, Reg(name))
            _emit_select(ctx, Reg(name), cond_reg, tv, ev)
        else:
            pair_t = then_vals.get(key)
            pair_e = else_vals.get(key)
            ref = (pair_t or pair_e)[0]
            old = ctx.temp()
            ctx.emit(Op(OpKind.LOAD, old, (), ref, name=ctx.opname("ld")))
            tv = pair_t[1] if pair_t else old
            ev = pair_e[1] if pair_e else old
            sel = ctx.temp()
            _emit_select(ctx, sel, cond_reg, tv, ev)
            _invalidate_cse(ctx, ref.array)
            ctx.emit(Op(OpKind.STORE, None, (sel,), ref,
                        name=ctx.opname("st")))


def _emit_select(ctx: _Ctx, dest: Reg, cond: Operand, tv: Operand,
                 ev: Operand) -> None:
    """dest = cond*tv + (1-cond)*ev  (cond is 0/1)."""
    a = ctx.temp()
    ctx.emit(Op(OpKind.MUL, a, (cond, tv), name=ctx.opname("m")))
    ninv = ctx.temp()
    ctx.emit(Op(OpKind.SUB, ninv, (Imm(1), cond), name=ctx.opname("d")))
    b = ctx.temp()
    ctx.emit(Op(OpKind.MUL, b, (ninv, ev), name=ctx.opname("m")))
    ctx.emit(Op(OpKind.ADD, dest, (a, b), name=ctx.opname("a")))


def _validate_decls(program: Program) -> None:
    shadowed = set(program.params) & set(program.arrays)
    if shadowed:
        raise LowerError(
            f"declared as both param and array: "
            f"{', '.join(sorted(shadowed))}")


def _resolve_bound(loop: ForLoop, n: int) -> int:
    if not isinstance(loop.lo, Num):
        raise LowerError("loop lower bound must be a constant")
    if isinstance(loop.hi, Num):
        return int(loop.hi.value)
    if isinstance(loop.hi, Var):
        return n
    raise LowerError("loop bound must be a constant or a parameter")


def _validate_for(program: Program, loop: ForLoop) -> None:
    if loop.counter in program.params or loop.counter in program.arrays:
        raise LowerError(
            f"loop counter {loop.counter} shadows a declaration")


def _lower_stmts(ctx: _Ctx, body) -> None:
    for st in body:
        if isinstance(st, Assign):
            _lower_assign(ctx, st)
        elif isinstance(st, IfStmt):
            _lower_if(ctx, st)
        elif isinstance(st, WhileStmt):
            ctx.inner.append(_lower_inner_while(ctx, st))
        else:  # pragma: no cover - parser prevents this
            raise LowerError(f"unsupported statement {st!r}")


def _lower_inner_while(ctx: _Ctx, st: WhileStmt) -> InnerWhile:
    """Lower a nested while into an :class:`InnerWhile` spec.

    The spec anchors at the host's current op count; cond and body are
    lowered into their own op lists on the shared context (so temp and
    name numbering stays program-wide).  The load-CSE table is cleared
    around every boundary the loop introduces: a cached host load must
    not survive into (or past) a region that re-executes and may store
    to the same array.
    """
    anchor = len(ctx.ops)
    saved_ops, saved_inner = ctx.ops, ctx.inner
    ctx.load_cse.clear()
    ctx.ops, ctx.inner = [], []
    cond_val = _lower_expr(ctx, st.cond)
    exit_reg = ctx.temp()
    ctx.emit(Op(OpKind.CMP_EQ, exit_reg, (cond_val, Imm(0)),
                name=ctx.opname("wx")))
    cond_ops = ctx.ops
    ctx.ops = []
    ctx.load_cse.clear()
    _lower_stmts(ctx, st.body)
    body_ops, inner = ctx.ops, ctx.inner
    ctx.ops, ctx.inner = saved_ops, saved_inner
    ctx.load_cse.clear()
    if not body_ops and not inner:
        raise LowerError("while loop has an empty body")
    return InnerWhile(name=ctx.opname("iw"), anchor=anchor,
                      cond_ops=cond_ops, exit_reg=exit_reg,
                      body_ops=body_ops, inner=inner)


def _carried_scalars(ops: list[Operation],
                     exclude: frozenset[Reg]) -> set[Reg]:
    """Registers read before (or without) a prior write in ``ops``."""
    seen_defs: set[Reg] = set()
    carried: set[Reg] = set()
    for op in ops:
        for r in op.uses():
            if r not in seen_defs and r not in exclude:
                if any(o.dest == r for o in ops):
                    carried.add(r)
        seen_defs |= op.defs()
    return carried


def _scalar_epilogue(program: Program,
                     written: set[Reg]) -> list[Operation]:
    """Stores making every written param observable through memory."""
    epilogue: list[Operation] = []
    slot = 0
    for pname in sorted(program.params):
        if Reg(pname) in written:
            epilogue.append(Op(OpKind.STORE, None, (Reg(pname),),
                               MemRef(SCALAR_OUT, None, slot, None),
                               name=f"out_{pname}"))
            slot += 1
    return epilogue


def lower(program: Program, n: int, *, name: str | None = None,
          optimize: bool = True) -> CountedLoop | LoopProgram:
    """Lower a parsed program.

    A classic program -- exactly one counted ``for`` loop -- lowers to
    a :class:`CountedLoop`, byte-for-byte as it always has.  Programs
    with ``while`` loops or several top-level loops lower to a
    :class:`LoopProgram` of per-loop descriptors plus a combined
    sequential graph (see :func:`lower_program`).

    ``n`` substitutes a symbolic ``for`` upper bound (the conventional
    ``for k = 0 to n``); a literal bound in the source is used as-is.
    """
    if not program.loops:
        raise LowerError("program has no loop")
    if (len(program.loops) == 1 and isinstance(program.loops[0], ForLoop)
            and not _has_nested_while(program.loops[0].body)):
        return _lower_single_for(program, n, name=name, optimize=optimize)
    return lower_program(program, n, name=name, optimize=optimize)


def _has_nested_while(body) -> bool:
    return any(isinstance(st, WhileStmt) for st in body)


def _lower_single_for(program: Program, n: int, *, name: str | None,
                      optimize: bool) -> CountedLoop:
    """The historical one-counted-loop lowering (unchanged output)."""
    loop = program.loops[0]
    _validate_decls(program)
    _validate_for(program, loop)
    bound = _resolve_bound(loop, n)

    ctx = _Ctx(counter=loop.counter,
               params=set(program.params),
               arrays=set(program.arrays))
    _lower_stmts(ctx, loop.body)
    body_ops = ctx.ops

    if optimize:
        from .passes import optimize_body

        body_ops = optimize_body(body_ops)

    counter_reg = Reg(loop.counter)
    carried = _carried_scalars(body_ops, frozenset((counter_reg,)))
    written: set[Reg] = set()
    for op in body_ops:
        written |= op.defs()
    epilogue = _scalar_epilogue(program, written)

    preheader = [Op(OpKind.CONST, counter_reg, (Imm(int(loop.lo.value)),),
                    name="init")]
    return build_counted_loop(
        name or program.name, preheader, body_ops, counter_reg,
        bound, step=loop.step, carried=sorted(carried, key=lambda r: r.name),
        epilogue=epilogue, description=f"DSL kernel {program.name}")


@dataclass
class _LoweredLoop:
    """One loop's lowered op lists, pre-descriptor."""

    kind: str                       # "for" | "while"
    ast: ForLoop | WhileStmt
    body_ops: list[Operation]
    cond_ops: list[Operation] = field(default_factory=list)
    exit_reg: Reg | None = None
    carried: set[Reg] = field(default_factory=set)
    inner: list[InnerWhile] = field(default_factory=list)

    def all_ops(self) -> list[Operation]:
        """Every op of one iteration, nested loops spliced in order."""
        out = list(self.cond_ops)
        idx = 0
        for iw in self.inner:
            out.extend(self.body_ops[idx:iw.anchor])
            idx = iw.anchor
            out.extend(iw.all_loop_ops())
        out.extend(self.body_ops[idx:])
        return out


def lower_program(program: Program, n: int, *, name: str | None = None,
                  optimize: bool = True) -> LoopProgram:
    """Lower a multi-loop / while-loop program to a :class:`LoopProgram`.

    Each loop becomes its own descriptor with a standalone sequential
    graph; temporaries are numbered program-wide so segments never
    collide on names.  The returned program's ``graph`` is the
    concatenated sequential reference ending in one program-level
    epilogue (every written param stored to ``_scalars``).
    """
    if not program.loops:
        raise LowerError("program has no loop")
    _validate_decls(program)
    kname = name or program.name

    temp_n = 0
    name_n: dict[str, int] = {}
    lowered: list[_LoweredLoop] = []
    for loop in program.loops:
        ctx = _Ctx(counter=loop.counter if isinstance(loop, ForLoop) else None,
                   params=set(program.params),
                   arrays=set(program.arrays),
                   temp_n=temp_n, name_n=name_n)
        if isinstance(loop, ForLoop):
            _validate_for(program, loop)
            _lower_stmts(ctx, loop.body)
            body_ops, inner = ctx.ops, ctx.inner
            ctx.ops, ctx.inner = [], []
            if optimize and not inner:
                # The body optimizer assumes straight-line semantics;
                # a spliced inner loop breaks that, so nested shapes
                # lower unoptimized.
                from .passes import optimize_body

                body_ops = optimize_body(body_ops)
            entry = _LoweredLoop(kind="for", ast=loop, body_ops=body_ops,
                                 inner=inner)
            entry.carried = _carried_scalars(
                entry.all_ops(), frozenset((Reg(loop.counter),)))
        else:
            entry = _lower_while(ctx, loop, optimize=optimize)
        temp_n = ctx.temp_n
        lowered.append(entry)

    written: set[Reg] = set()
    for entry in lowered:
        for op in entry.all_ops():
            written |= op.defs()
    epilogue = _scalar_epilogue(program, written)

    # Registers each segment must keep alive for the code after it.
    live_after: list[set[Reg]] = [set() for _ in lowered]
    acc: set[Reg] = set()
    for op in epilogue:
        acc |= op.uses()
    for i in reversed(range(len(lowered))):
        live_after[i] = set(acc)
        for op in lowered[i].all_ops():
            acc |= op.uses()

    loops: list[CountedLoop | WhileLoop] = []
    for i, entry in enumerate(lowered):
        lname = f"{kname}.L{i}"
        live_out = sorted(live_after[i], key=lambda r: r.name)
        carried = sorted(entry.carried, key=lambda r: r.name)
        if entry.kind == "for":
            ast = entry.ast
            counter_reg = Reg(ast.counter)
            preheader = [Op(OpKind.CONST, counter_reg,
                            (Imm(int(ast.lo.value)),), name=f"init{i}")]
            if entry.inner:
                # While-ization: a counted loop with a nested while has
                # no static trip schedule to unwind, so it lowers as a
                # test-first while over its own counter (init in the
                # preheader, exit test in the condition, increment at
                # the body's end, after every spliced inner loop).
                bound = _resolve_bound(ast, n)
                exit_reg = Reg(f"{ast.counter}.exit")
                cmp_ = Op(OpKind.CMP_GE, exit_reg,
                          (counter_reg, Imm(bound)), name=f"wcmp{i}")
                inc = Op(OpKind.ADD, counter_reg,
                         (counter_reg, Imm(ast.step)), name=f"winc{i}")
                carried = sorted(
                    _carried_scalars([cmp_] + entry.all_ops() + [inc],
                                     frozenset()),
                    key=lambda r: r.name)
                loops.append(build_while_loop(
                    lname, preheader, [cmp_], exit_reg,
                    entry.body_ops + [inc], carried=carried,
                    epilogue=(), live_out=live_out, inner=entry.inner,
                    description=f"DSL loop {i} of {kname} "
                                f"(while-ized for)"))
            else:
                loops.append(build_counted_loop(
                    lname, preheader, entry.body_ops, counter_reg,
                    _resolve_bound(ast, n), step=ast.step, carried=carried,
                    epilogue=(), live_out=live_out,
                    description=f"DSL loop {i} of {kname}"))
        else:
            loops.append(build_while_loop(
                lname, (), entry.cond_ops, entry.exit_reg,
                entry.body_ops, carried=carried, epilogue=(),
                live_out=live_out, inner=entry.inner,
                description=f"DSL while loop {i} of {kname}"))

    graphs = [lp.graph for lp in loops]
    if epilogue:
        graphs.append(straightline_graph(epilogue))
    combined = concat_graphs(graphs)
    return LoopProgram(
        graph=combined, name=kname, loops=loops, epilogue_ops=epilogue,
        description=f"DSL program {kname} "
                    f"({len(loops)} loop(s))")


def _lower_while(ctx: _Ctx, loop: WhileStmt, *,
                 optimize: bool) -> _LoweredLoop:
    """Lower one ``while`` loop's condition and body op lists.

    The condition is re-evaluated at the header each iteration and the
    exit register is its negation (``cond == 0``), so the loop's
    conditional jump leaves when the condition turns false.  The body
    must lower to at least one operation -- a state-free body could
    never terminate.
    """
    cond_val = _lower_expr(ctx, loop.cond)
    exit_reg = ctx.temp()
    ctx.emit(Op(OpKind.CMP_EQ, exit_reg, (cond_val, Imm(0)),
                name=ctx.opname("wx")))
    cond_ops = ctx.ops
    ctx.ops = []
    _lower_stmts(ctx, loop.body)
    body_ops, inner = ctx.ops, ctx.inner
    ctx.ops, ctx.inner = [], []
    if not body_ops and not inner:
        raise LowerError("while loop has an empty body")
    if optimize:
        from .passes import optimize_body

        if not inner:
            # (see lower_program: the body optimizer assumes
            # straight-line semantics, which a spliced loop breaks)
            body_ops = optimize_body(body_ops)
            if not body_ops:
                raise LowerError(
                    "while loop body is empty after optimization")
        cond_opt = optimize_body(cond_ops, live_out={exit_reg.name})
        # Constant folding may erase the exit register's producer
        # entirely (a literal condition); keep the unoptimized ops then.
        if any(op.dest == exit_reg for op in cond_opt):
            cond_ops = cond_opt
    entry = _LoweredLoop(kind="while", ast=loop, body_ops=body_ops,
                         cond_ops=cond_ops, exit_reg=exit_reg, inner=inner)
    entry.carried = _carried_scalars(entry.all_ops(), frozenset())
    return entry


def compile_dsl(src: str, n: int, *, name: str = "kernel",
                optimize: bool = True) -> CountedLoop | LoopProgram:
    """Parse + lower in one call."""
    from .parser import parse

    return lower(parse(src, name), n, name=name, optimize=optimize)
