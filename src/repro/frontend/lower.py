"""Lowering: DSL AST -> three-address operations -> :class:`CountedLoop`.

The lowering mirrors what the paper's GCC-based front end handed the
UCI VLIW compiler: clean three-address code over virtual registers,
with

* one operation per statement-level computation (temporaries ``t%N``),
* loads for array reads, de-duplicated per body (local CSE),
* affine annotations on counter-indexed references (``z[k+11]`` gets
  ``affine=11``), enabling exact cross-iteration disambiguation,
* reductions detected as *carried* scalars (read before written),
* an epilogue that stores every scalar the loop produces into the
  ``_scalars`` result array, so the simulator observes results through
  memory,
* inner conditionals lowered by if-conversion (computing both sides and
  selecting arithmetically), matching the paper's evaluation setting in
  which the Table-1 loops carry no explicit internal branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.loops import CountedLoop, build_counted_loop
from ..ir.operations import (
    MemRef,
    Operation,
    OpKind,
    Operation as Op,
)
from ..ir.registers import Imm, Operand, Reg
from .ast import Assign, Bin, Expr, IfStmt, Index, Num, Program, Un, Var

_BINOPS = {
    "+": OpKind.ADD, "-": OpKind.SUB, "*": OpKind.MUL, "/": OpKind.DIV,
    "min": OpKind.MIN, "max": OpKind.MAX,
    "==": OpKind.CMP_EQ, "!=": OpKind.CMP_NE, "<": OpKind.CMP_LT,
    "<=": OpKind.CMP_LE, ">": OpKind.CMP_GT, ">=": OpKind.CMP_GE,
}

#: result array receiving the loop's scalar outputs
SCALAR_OUT = "_scalars"


class LowerError(ValueError):
    pass


@dataclass
class _Ctx:
    counter: str
    params: set[str]
    arrays: set[str]
    ops: list[Operation] = field(default_factory=list)
    temp_n: int = 0
    load_cse: dict[tuple, Reg] = field(default_factory=dict)
    name_n: dict[str, int] = field(default_factory=dict)

    def temp(self) -> Reg:
        self.temp_n += 1
        return Reg(f"t{self.temp_n}")

    def opname(self, prefix: str) -> str:
        n = self.name_n.get(prefix, 0) + 1
        self.name_n[prefix] = n
        return f"{prefix}{n}"

    def emit(self, op: Operation) -> Operation:
        self.ops.append(op)
        return op


def _memref(ctx: _Ctx, array: str, index: Expr) -> MemRef:
    """Build a memory reference with affine analysis of the index."""
    if array not in ctx.arrays:
        raise LowerError(f"{array} used as array but not declared")
    base, offset = _affine_parts(index, ctx.counter)
    if base == "counter":
        return MemRef(array, Reg(ctx.counter), offset, affine=offset)
    if base == "const":
        return MemRef(array, None, offset, affine=None)
    # General index expression: lower to a register.
    operand = _lower_expr(ctx, index)
    if isinstance(operand, Imm):
        return MemRef(array, None, int(operand.value), affine=None)
    return MemRef(array, operand, 0, affine=None)


def _affine_parts(e: Expr, counter: str) -> tuple[str, int]:
    """Classify an index as counter+c / const c / other."""
    if isinstance(e, Num):
        return "const", int(e.value)
    if isinstance(e, Var):
        return ("counter", 0) if e.name == counter else ("other", 0)
    if isinstance(e, Bin) and e.op in ("+", "-"):
        lb, lo = _affine_parts(e.left, counter)
        rb, ro = _affine_parts(e.right, counter)
        sign = 1 if e.op == "+" else -1
        if lb == "counter" and rb == "const":
            return "counter", lo + sign * ro
        if lb == "const" and rb == "counter" and e.op == "+":
            return "counter", lo + ro
        if lb == "const" and rb == "const":
            return "const", lo + sign * ro
    return "other", 0


def _lower_expr(ctx: _Ctx, e: Expr) -> Operand:
    """Lower an expression, returning the operand holding its value."""
    if isinstance(e, Num):
        return Imm(e.value)
    if isinstance(e, Var):
        if e.name in ctx.arrays:
            raise LowerError(
                f"array {e.name} read as a scalar (missing [index]?)")
        return Reg(e.name)
    if isinstance(e, Index):
        ref = _memref(ctx, e.array, e.index)
        key = (ref.array, ref.index, ref.offset, ref.affine)
        hit = ctx.load_cse.get(key)
        if hit is not None:
            return hit
        dest = ctx.temp()
        ctx.emit(Op(OpKind.LOAD, dest, (), ref, name=ctx.opname("ld")))
        ctx.load_cse[key] = dest
        return dest
    if isinstance(e, Un):
        inner = _lower_expr(ctx, e.operand)
        dest = ctx.temp()
        kind = OpKind.NEG if e.op == "-" else OpKind.ABS
        ctx.emit(Op(kind, dest, (inner,), name=ctx.opname("u")))
        return dest
    if isinstance(e, Bin):
        kind = _BINOPS.get(e.op)
        if kind is None:
            raise LowerError(f"unsupported operator {e.op!r}")
        a = _lower_expr(ctx, e.left)
        b = _lower_expr(ctx, e.right)
        dest = ctx.temp()
        prefix = {"+": "a", "-": "d", "*": "m", "/": "q"}.get(e.op, "c")
        ctx.emit(Op(kind, dest, (a, b), name=ctx.opname(prefix)))
        return dest
    raise LowerError(f"cannot lower expression {e!r}")


def _invalidate_cse(ctx: _Ctx, array: str) -> None:
    """Drop CSE entries that a store to ``array`` may have changed."""
    stale = [k for k in ctx.load_cse if k[0] == array]
    for k in stale:
        del ctx.load_cse[k]


def _lower_assign(ctx: _Ctx, st: Assign) -> None:
    if isinstance(st.target, Index):
        value = _lower_expr(ctx, st.value)
        ref = _memref(ctx, st.target.array, st.target.index)
        _invalidate_cse(ctx, st.target.array)
        ctx.emit(Op(OpKind.STORE, None, (value,), ref,
                    name=ctx.opname("st")))
        return
    # Scalar assignment: retarget the producing op when possible.
    if st.target.name in ctx.arrays:
        raise LowerError(
            f"array {st.target.name} assigned as a scalar "
            f"(missing [index]?)")
    if st.target.name == ctx.counter:
        raise LowerError(f"cannot assign the loop counter {ctx.counter}")
    dest = Reg(st.target.name)
    before = len(ctx.ops)
    value = _lower_expr(ctx, st.value)
    if len(ctx.ops) > before and isinstance(value, Reg) \
            and ctx.ops[-1].dest == value:
        last = ctx.ops[-1]
        ctx.ops[-1] = Op(last.kind, dest, last.srcs, last.mem,
                         name=last.name, pos=last.pos)
        # Loads feeding the CSE table must not alias the retargeted reg.
        for key, reg in list(ctx.load_cse.items()):
            if reg == value:
                ctx.load_cse[key] = dest
    else:
        ctx.emit(Op(OpKind.COPY, dest, (value,), name=ctx.opname("cp")))


def _lower_if(ctx: _Ctx, st: IfStmt) -> None:
    """If-conversion: both sides compute, selection is arithmetic.

    ``x = c*then + (1-c)*else`` for every scalar/array cell either side
    assigns.  Supported shape: each branch is a sequence of assignments;
    assignments appearing in only one branch use the current value as
    the implicit other side.
    """
    cond = _lower_expr(ctx, st.cond)
    # Normalize the condition to a register so both selects share it.
    if isinstance(cond, Imm):
        cond_reg = ctx.temp()
        ctx.emit(Op(OpKind.CONST, cond_reg, (cond,), name=ctx.opname("k")))
    else:
        cond_reg = cond

    def branch_values(stmts) -> dict[object, Operand]:
        values: dict[object, Operand] = {}
        for s in stmts:
            if not isinstance(s, Assign):
                raise LowerError("nested if not supported by if-conversion")
            v = _lower_expr(ctx, s.value)
            if isinstance(s.target, Var):
                values[("scalar", s.target.name)] = v
            else:
                ref = _memref(ctx, s.target.array, s.target.index)
                values[("cell", ref.array, ref.index, ref.offset)] = (ref, v)
        return values

    then_vals = branch_values(st.then_body)
    else_vals = branch_values(st.else_body)
    for key in sorted(set(then_vals) | set(else_vals),
                      key=lambda k: repr(k)):
        if key[0] == "scalar":
            name = key[1]
            tv = then_vals.get(key, Reg(name))
            ev = else_vals.get(key, Reg(name))
            _emit_select(ctx, Reg(name), cond_reg, tv, ev)
        else:
            pair_t = then_vals.get(key)
            pair_e = else_vals.get(key)
            ref = (pair_t or pair_e)[0]
            old = ctx.temp()
            ctx.emit(Op(OpKind.LOAD, old, (), ref, name=ctx.opname("ld")))
            tv = pair_t[1] if pair_t else old
            ev = pair_e[1] if pair_e else old
            sel = ctx.temp()
            _emit_select(ctx, sel, cond_reg, tv, ev)
            _invalidate_cse(ctx, ref.array)
            ctx.emit(Op(OpKind.STORE, None, (sel,), ref,
                        name=ctx.opname("st")))


def _emit_select(ctx: _Ctx, dest: Reg, cond: Operand, tv: Operand,
                 ev: Operand) -> None:
    """dest = cond*tv + (1-cond)*ev  (cond is 0/1)."""
    a = ctx.temp()
    ctx.emit(Op(OpKind.MUL, a, (cond, tv), name=ctx.opname("m")))
    ninv = ctx.temp()
    ctx.emit(Op(OpKind.SUB, ninv, (Imm(1), cond), name=ctx.opname("d")))
    b = ctx.temp()
    ctx.emit(Op(OpKind.MUL, b, (ninv, ev), name=ctx.opname("m")))
    ctx.emit(Op(OpKind.ADD, dest, (a, b), name=ctx.opname("a")))


def lower(program: Program, n: int, *, name: str | None = None,
          optimize: bool = True) -> CountedLoop:
    """Lower a parsed program into a :class:`CountedLoop`.

    ``n`` substitutes the loop's upper bound when it is symbolic (the
    conventional ``for k = 0 to n``); a literal bound in the source is
    used as-is.  The loop's low bound must be a constant.
    """
    loop = program.loop
    if loop is None:
        raise LowerError("program has no loop")
    shadowed = set(program.params) & set(program.arrays)
    if shadowed:
        raise LowerError(
            f"declared as both param and array: "
            f"{', '.join(sorted(shadowed))}")
    if loop.counter in program.params or loop.counter in program.arrays:
        raise LowerError(
            f"loop counter {loop.counter} shadows a declaration")
    if not isinstance(loop.lo, Num):
        raise LowerError("loop lower bound must be a constant")
    if isinstance(loop.hi, Num):
        bound = int(loop.hi.value)
    elif isinstance(loop.hi, Var):
        bound = n
    else:
        raise LowerError("loop bound must be a constant or a parameter")

    ctx = _Ctx(counter=loop.counter,
               params=set(program.params),
               arrays=set(program.arrays))
    for st in loop.body:
        if isinstance(st, Assign):
            _lower_assign(ctx, st)
        elif isinstance(st, IfStmt):
            _lower_if(ctx, st)
        else:  # pragma: no cover - parser prevents this
            raise LowerError(f"unsupported statement {st!r}")
    body_ops = ctx.ops

    if optimize:
        from .passes import optimize_body

        body_ops = optimize_body(body_ops)

    # Carried scalars: read before (or without) a prior write in the body.
    seen_defs: set[Reg] = set()
    carried: set[Reg] = set()
    written: set[Reg] = set()
    counter_reg = Reg(loop.counter)
    for op in body_ops:
        for r in op.uses():
            if r not in seen_defs and r != counter_reg:
                if any(o.dest == r for o in body_ops):
                    carried.add(r)
        seen_defs |= op.defs()
        written |= op.defs()

    # Scalar outputs: every declared param the body writes.
    epilogue: list[Operation] = []
    slot = 0
    for pname in sorted(program.params):
        if Reg(pname) in written:
            epilogue.append(Op(OpKind.STORE, None, (Reg(pname),),
                               MemRef(SCALAR_OUT, None, slot, None),
                               name=f"out_{pname}"))
            slot += 1

    preheader = [Op(OpKind.CONST, counter_reg, (Imm(int(loop.lo.value)),),
                    name="init")]
    return build_counted_loop(
        name or program.name, preheader, body_ops, counter_reg,
        bound, step=loop.step, carried=sorted(carried, key=lambda r: r.name),
        epilogue=epilogue, description=f"DSL kernel {program.name}")


def compile_dsl(src: str, n: int, *, name: str = "kernel",
                optimize: bool = True) -> CountedLoop:
    """Parse + lower in one call."""
    from .parser import parse

    return lower(parse(src, name), n, name=name, optimize=optimize)
