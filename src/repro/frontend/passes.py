"""Clean-up passes over lowered three-address bodies.

Standing in for GCC's "-O" pipeline ahead of the paper's scheduler:

* constant folding of operations with all-immediate sources,
* copy propagation through COPY temporaries,
* dead-op elimination of unused, side-effect-free results.

These run on the *linear body* before the loop graph is built -- global
(graph-level) clean-ups during scheduling live in
:mod:`repro.percolation.cleanup`.
"""

from __future__ import annotations

from ..ir.operations import Operation, OpKind
from ..ir.registers import Imm, Reg
from ..simulator.interp import compute
from ..simulator.state import MachineState

_FOLDABLE = frozenset({
    OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.NEG,
    OpKind.MIN, OpKind.MAX, OpKind.ABS, OpKind.AND, OpKind.OR,
    OpKind.XOR, OpKind.NOT, OpKind.SHL, OpKind.SHR, OpKind.CMP_EQ,
    OpKind.CMP_NE, OpKind.CMP_LT, OpKind.CMP_LE, OpKind.CMP_GT,
    OpKind.CMP_GE,
})


def fold_constants(ops: list[Operation]) -> list[Operation]:
    """Evaluate operations whose sources are all immediates."""
    out: list[Operation] = []
    consts: dict[Reg, Imm] = {}
    for op in ops:
        srcs = tuple(consts.get(s, s) if isinstance(s, Reg) else s
                     for s in op.srcs)
        if srcs != op.srcs:
            op = op.with_srcs(srcs)
        if op.kind in _FOLDABLE and op.dest is not None \
                and all(isinstance(s, Imm) for s in op.srcs):
            value = compute(op, MachineState())
            consts[op.dest] = Imm(value)
            continue  # producer folded away
        if op.kind is OpKind.CONST:
            consts[op.dest] = op.srcs[0]
            out.append(op)
            continue
        if op.dest is not None:
            consts.pop(op.dest, None)
        out.append(op)
    return out


def propagate_copies(ops: list[Operation]) -> list[Operation]:
    """Rewrite uses of COPY destinations to read the source directly."""
    out: list[Operation] = []
    alias: dict[Reg, object] = {}
    for op in ops:
        srcs = tuple(alias.get(s, s) if isinstance(s, Reg) else s
                     for s in op.srcs)
        mem = op.mem
        if mem is not None and isinstance(mem.index, Reg) \
                and mem.index in alias:
            repl = alias[mem.index]
            if isinstance(repl, Reg):
                op = op.substitute_use(mem.index, repl)
        if srcs != op.srcs:
            op = op.with_srcs(srcs)
        if op.is_copy and isinstance(op.srcs[0], (Reg, Imm)):
            # Only forward temps; user-visible scalars keep their copy.
            if op.dest.name.startswith("t"):
                alias[op.dest] = op.srcs[0]
                continue
        if op.dest is not None:
            alias.pop(op.dest, None)
            # A redefinition invalidates aliases reading this register.
            for k in [k for k, v in alias.items() if v == op.dest]:
                del alias[k]
        out.append(op)
    return out


def eliminate_dead(ops: list[Operation],
                   live_out: set[str] | None = None) -> list[Operation]:
    """Drop side-effect-free ops whose results nothing reads.

    ``live_out`` names registers observable after the body (defaults to
    every non-temporary register, which is the safe assumption for a
    loop body whose scalars feed the next iteration or the epilogue).
    """
    keep: list[Operation] = []
    needed: set[str] = set(live_out) if live_out is not None else {
        op.dest.name for op in ops
        if op.dest is not None and not op.dest.name.startswith("t")}
    for op in reversed(ops):
        if op.has_side_effect or op.dest is None \
                or op.dest.name in needed:
            keep.append(op)
            needed.discard(op.dest.name if op.dest else "")
            needed |= {r.name for r in op.uses()}
    keep.reverse()
    return keep


def optimize_body(ops: list[Operation], *, live_out: set[str] | None = None
                  ) -> list[Operation]:
    """Fold + propagate + DCE to a fixed point (bounded)."""
    prev = None
    cur = list(ops)
    for _ in range(8):
        if prev is not None and len(cur) == len(prev):
            break
        prev = cur
        cur = eliminate_dead(propagate_copies(fold_constants(cur)),
                             live_out)
    return cur
