"""Recursive-descent parser for the loop DSL.

Grammar::

    program := decl* loop+
    decl    := ('param' | 'array') ident (',' ident)* ';'
    loop    := for_loop | while_loop
    for_loop   := 'for' ident '=' expr 'to' expr ('step' number)? block
    while_loop := 'while' '(' expr ')' block
    block   := '{' stmt* '}'
    stmt    := lvalue '=' expr ';'
             | 'if' '(' expr ')' block ('else' block)?
             | while_loop
    lvalue  := ident ('[' expr ']')?
    expr    := cmp (('=='|'!='|'<'|'<='|'>'|'>=') cmp)?
    cmp     := term (('+'|'-') term)*
    term    := factor (('*'|'/') factor)*
    factor  := number | '-' factor
             | ('min'|'max') '(' expr ',' expr ')' | 'abs' '(' expr ')'
             | ident ('[' expr ']')? | '(' expr ')'
"""

from __future__ import annotations

from .ast import (
    Assign,
    Bin,
    Expr,
    ForLoop,
    IfStmt,
    Index,
    Num,
    Program,
    Stmt,
    Un,
    Var,
    WhileStmt,
)
from .lexer import Token, TokKind, tokenize


class ParseError(SyntaxError):
    pass


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: TokKind, text: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind is not kind or (text is not None and tok.text != text):
            want = text or kind.name
            raise ParseError(
                f"expected {want!r}, found {tok.text!r} at "
                f"{tok.line}:{tok.col}")
        return self.next()

    def accept(self, kind: TokKind, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind is kind and (text is None or tok.text == text):
            return self.next()
        return None

    # -- grammar ---------------------------------------------------------
    def program(self, name: str = "kernel") -> Program:
        prog = Program(name=name)
        while True:
            if self.accept(TokKind.KEYWORD, "param"):
                prog.params.extend(self._ident_list())
            elif self.accept(TokKind.KEYWORD, "array"):
                prog.arrays.extend(self._ident_list())
            else:
                break
        prog.loops.append(self.loop())
        while self.peek().kind is not TokKind.EOF:
            prog.loops.append(self.loop())
        self.expect(TokKind.EOF)
        return prog

    def _ident_list(self) -> list[str]:
        names = [self.expect(TokKind.IDENT).text]
        while self.accept(TokKind.PUNCT, ","):
            names.append(self.expect(TokKind.IDENT).text)
        self.expect(TokKind.PUNCT, ";")
        return names

    def loop(self):
        if self.peek().kind is TokKind.KEYWORD and self.peek().text == "while":
            return self.while_loop()
        return self.for_loop()

    def while_loop(self) -> WhileStmt:
        self.expect(TokKind.KEYWORD, "while")
        self.expect(TokKind.PUNCT, "(")
        cond = self.expr()
        self.expect(TokKind.PUNCT, ")")
        body = self.block()
        return WhileStmt(cond=cond, body=body)

    def for_loop(self) -> ForLoop:
        self.expect(TokKind.KEYWORD, "for")
        counter = self.expect(TokKind.IDENT).text
        self.expect(TokKind.OP, "=")
        lo = self.expr()
        self.expect(TokKind.KEYWORD, "to")
        hi = self.expr()
        step = 1
        if self.accept(TokKind.KEYWORD, "step"):
            step_tok = self.expect(TokKind.NUMBER)
            step = int(float(step_tok.text))
            if step <= 0:
                raise ParseError(f"step must be positive at {step_tok.line}")
        body = self.block()
        return ForLoop(counter=counter, lo=lo, hi=hi, step=step, body=body)

    def block(self) -> tuple[Stmt, ...]:
        open_tok = self.expect(TokKind.PUNCT, "{")
        stmts: list[Stmt] = []
        while not self.accept(TokKind.PUNCT, "}"):
            if self.peek().kind is TokKind.EOF:
                raise ParseError(
                    f"unterminated block: '{{' at {open_tok.line}:"
                    f"{open_tok.col} never closed")
            stmts.append(self.stmt())
        return tuple(stmts)

    def stmt(self) -> Stmt:
        tok = self.peek()
        if tok.kind is TokKind.KEYWORD and tok.text == "while":
            # Nested non-counted loop (while-in-while, while-in-for).
            return self.while_loop()
        if self.accept(TokKind.KEYWORD, "if"):
            self.expect(TokKind.PUNCT, "(")
            cond = self.expr()
            self.expect(TokKind.PUNCT, ")")
            then_body = self.block()
            else_body: tuple[Stmt, ...] = ()
            if self.accept(TokKind.KEYWORD, "else"):
                else_body = self.block()
            return IfStmt(cond=cond, then_body=then_body, else_body=else_body)
        target = self.lvalue()
        self.expect(TokKind.OP, "=")
        value = self.expr()
        self.expect(TokKind.PUNCT, ";")
        return Assign(target=target, value=value)

    def lvalue(self):
        name = self.expect(TokKind.IDENT).text
        if self.accept(TokKind.PUNCT, "["):
            idx = self.expr()
            self.expect(TokKind.PUNCT, "]")
            return Index(array=name, index=idx)
        return Var(name)

    def expr(self) -> Expr:
        left = self.cmp_operand()
        tok = self.peek()
        if tok.kind is TokKind.OP and tok.text in ("==", "!=", "<", "<=", ">", ">="):
            op = self.next().text
            right = self.cmp_operand()
            return Bin(op, left, right)
        return left

    def cmp_operand(self) -> Expr:
        left = self.term()
        while True:
            tok = self.peek()
            if tok.kind is TokKind.OP and tok.text in ("+", "-"):
                op = self.next().text
                left = Bin(op, left, self.term())
            else:
                return left

    def term(self) -> Expr:
        left = self.factor()
        while True:
            tok = self.peek()
            if tok.kind is TokKind.OP and tok.text in ("*", "/"):
                op = self.next().text
                left = Bin(op, left, self.factor())
            else:
                return left

    def factor(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokKind.NUMBER:
            self.next()
            text = tok.text
            is_float = "." in text or "e" in text or "E" in text
            return Num(float(text) if is_float else int(text))
        if tok.kind is TokKind.OP and tok.text == "-":
            self.next()
            return Un("-", self.factor())
        if tok.kind is TokKind.KEYWORD and tok.text in ("min", "max"):
            self.next()
            self.expect(TokKind.PUNCT, "(")
            a = self.expr()
            self.expect(TokKind.PUNCT, ",")
            b = self.expr()
            self.expect(TokKind.PUNCT, ")")
            return Bin(tok.text, a, b)
        if tok.kind is TokKind.KEYWORD and tok.text == "abs":
            self.next()
            self.expect(TokKind.PUNCT, "(")
            a = self.expr()
            self.expect(TokKind.PUNCT, ")")
            return Un("abs", a)
        if tok.kind is TokKind.IDENT:
            self.next()
            if self.accept(TokKind.PUNCT, "["):
                idx = self.expr()
                self.expect(TokKind.PUNCT, "]")
                return Index(array=tok.text, index=idx)
            return Var(tok.text)
        if self.accept(TokKind.PUNCT, "("):
            inner = self.expr()
            self.expect(TokKind.PUNCT, ")")
            return inner
        raise ParseError(f"unexpected token {tok.text!r} at {tok.line}:{tok.col}")


def parse(src: str, name: str = "kernel") -> Program:
    """Parse DSL source into a :class:`Program`."""
    return Parser(tokenize(src)).program(name)
