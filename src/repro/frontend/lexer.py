"""Lexer for the loop DSL.

The DSL is the reproduction's stand-in for the paper's GCC front end: a
small C-like language sufficient to express every Livermore kernel::

    param q, r, t; array x, y, z;
    for k = 0 to n step 1 {
        x[k] = q + y[k] * (r * z[k+10] + t * z[k+11]);
    }

Tokens: identifiers, numbers, punctuation, operators and the keywords
``param array for to step while if else min max abs``.  Numbers accept
exponent notation (``1e308``, ``2.5e-3``) so workloads can name values
near the float-overflow boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokKind(Enum):
    IDENT = auto()
    NUMBER = auto()
    PUNCT = auto()      # ; , ( ) [ ] { }
    OP = auto()         # + - * / = < <= > >= == !=
    KEYWORD = auto()
    EOF = auto()


KEYWORDS = frozenset({"param", "array", "for", "to", "step", "while",
                      "if", "else", "min", "max", "abs"})
PUNCT = frozenset(";,()[]{}")
TWO_CHAR_OPS = ("<=", ">=", "==", "!=")
ONE_CHAR_OPS = frozenset("+-*/=<>")


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.name}({self.text!r}@{self.line}:{self.col})"


class LexError(SyntaxError):
    pass


def tokenize(src: str) -> list[Token]:
    """Split source text into tokens (comments run ``#`` to newline)."""
    out: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(src)
    while i < n:
        c = src[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "#":
            while i < n and src[i] != "\n":
                i += 1
            continue
        start_col = col
        if c.isalpha() or c == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            text = src[i:j]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            out.append(Token(kind, text, line, start_col))
            col += j - i
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (src[j].isdigit() or (src[j] == "." and not seen_dot)):
                if src[j] == ".":
                    seen_dot = True
                j += 1
            # Optional exponent: e[+-]?digits (only when digits follow,
            # so an identifier like ``e`` after a number still lexes).
            if j < n and src[j] in "eE":
                k2 = j + 1
                if k2 < n and src[k2] in "+-":
                    k2 += 1
                if k2 < n and src[k2].isdigit():
                    while k2 < n and src[k2].isdigit():
                        k2 += 1
                    j = k2
            out.append(Token(TokKind.NUMBER, src[i:j], line, start_col))
            col += j - i
            i = j
            continue
        if src[i:i + 2] in TWO_CHAR_OPS:
            out.append(Token(TokKind.OP, src[i:i + 2], line, start_col))
            i += 2
            col += 2
            continue
        if c in ONE_CHAR_OPS:
            out.append(Token(TokKind.OP, c, line, start_col))
            i += 1
            col += 1
            continue
        if c in PUNCT:
            out.append(Token(TokKind.PUNCT, c, line, start_col))
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {c!r} at {line}:{col}")
    out.append(Token(TokKind.EOF, "", line, col))
    return out
