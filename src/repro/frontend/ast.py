"""Abstract syntax for the loop DSL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class Num:
    """Numeric literal."""

    value: float | int


@dataclass(frozen=True)
class Var:
    """Scalar variable reference."""

    name: str


@dataclass(frozen=True)
class Index:
    """Array element reference ``array[expr]``."""

    array: str
    index: "Expr"


@dataclass(frozen=True)
class Bin:
    """Binary operation; ``op`` in + - * / < <= > >= == != min max."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Un:
    """Unary operation; ``op`` in - abs."""

    op: str
    operand: "Expr"


Expr = Union[Num, Var, Index, Bin, Un]


@dataclass(frozen=True)
class Assign:
    """``lvalue = expr;`` where lvalue is a Var or Index."""

    target: Union[Var, Index]
    value: Expr


@dataclass(frozen=True)
class IfStmt:
    """``if (cond) { ... } else { ... }`` inside a loop body."""

    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class WhileStmt:
    """``while (cond) { body }`` -- a non-counted (trip-count-unknown)
    loop.  The condition is re-evaluated before every iteration; the
    loop runs while it is nonzero.  Unlike :class:`ForLoop` there is no
    induction variable: the body updates whatever scalars the condition
    reads.  A ``WhileStmt`` may appear at the top level *or* nested in
    another loop's body (while-in-while, while-in-for)."""

    cond: Expr
    body: tuple["Stmt", ...]


Stmt = Union[Assign, IfStmt, WhileStmt]


@dataclass(frozen=True)
class ForLoop:
    """``for k = lo to hi step s { body }`` (hi is exclusive)."""

    counter: str
    lo: Expr
    hi: Expr
    step: int
    body: tuple[Stmt, ...]


Loop = Union[ForLoop, WhileStmt]


@dataclass
class Program:
    """A DSL compilation unit: declarations plus one or more top-level
    loops, executed in sequence."""

    params: list[str] = field(default_factory=list)
    arrays: list[str] = field(default_factory=list)
    loops: list[Loop] = field(default_factory=list)
    name: str = "kernel"
