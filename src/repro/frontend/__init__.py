"""Loop-DSL front end: lexer, parser, lowering, clean-up passes."""

from .ast import (
    Assign,
    Bin,
    Expr,
    ForLoop,
    IfStmt,
    Index,
    Num,
    Program,
    Stmt,
    Un,
    Var,
    WhileStmt,
)
from .lexer import LexError, Token, TokKind, tokenize
from .lower import SCALAR_OUT, LowerError, compile_dsl, lower, lower_program
from .parser import ParseError, parse
from .passes import eliminate_dead, fold_constants, optimize_body, propagate_copies

__all__ = [
    "Assign", "Bin", "Expr", "ForLoop", "IfStmt", "Index", "LexError",
    "LowerError", "Num", "ParseError", "Program", "SCALAR_OUT", "Stmt",
    "Token", "TokKind", "Un", "Var", "WhileStmt", "compile_dsl",
    "eliminate_dead", "fold_constants", "lower", "lower_program",
    "optimize_body", "parse", "propagate_copies", "tokenize",
]
