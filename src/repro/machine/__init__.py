"""VLIW machine models: functional-unit budgets and latencies."""

from .model import FUClass, MachineConfig, INFINITE_RESOURCES

__all__ = ["FUClass", "MachineConfig", "INFINITE_RESOURCES"]
