"""Machine model: how many operations fit in one VLIW instruction.

The paper evaluates homogeneous machines with 2, 4 and 8 functional
units and single-cycle operations ("for simplicity of exposition, we
assume that all operations are completed within a single cycle").  The
model here supports that directly, plus two documented extensions:

* **typed units** -- per-class budgets (ALU / MEM / BRANCH), for
  studying heterogeneous machines;
* **latencies** -- per-kind multi-cycle latencies in the style of
  [Po91], consumed by the list scheduler and the simulator's timing
  model (the percolation framework itself stays single-cycle, as in the
  paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..ir.instruction import Instruction
from ..ir.operations import Operation, OpKind


class FUClass(Enum):
    """Functional-unit classes for the typed-unit extension."""

    ALU = auto()
    MEM = auto()
    BRANCH = auto()


def fu_class_of(op: Operation) -> FUClass:
    if op.kind in (OpKind.LOAD, OpKind.STORE):
        return FUClass.MEM
    if op.kind is OpKind.CJUMP:
        return FUClass.BRANCH
    return FUClass.ALU


@dataclass(frozen=True)
class MachineConfig:
    """A VLIW machine description.

    Parameters
    ----------
    fus:
        Total operation slots per instruction.  ``None`` models the
        paper's "infinite resources" setting (used by POST's first
        phase and by unconstrained percolation).
    typed:
        Optional per-class budgets; when given, an instruction must
        satisfy both the total and each class budget.
    latencies:
        Optional per-kind latency map for the multi-cycle extension;
        missing kinds default to 1 cycle.
    count_nops:
        Whether NOPs consume a slot (default False).
    phys_regs:
        Size of the physical register file the backend allocates onto;
        ``None`` (default) models an unbounded file, so the bundle
        encoder gives every symbolic register its own home and never
        spills.  The percolation framework itself always works over
        the symbolic namespace; only lowering consumes this.
    """

    fus: int | None = 4
    typed: dict[FUClass, int] | None = None
    latencies: dict[OpKind, int] | None = None
    count_nops: bool = False
    phys_regs: int | None = None

    # ------------------------------------------------------------------
    def slots_used(self, node: Instruction) -> int:
        """Operation slots consumed by a node (CJ ops included)."""
        ops = list(node.all_ops())
        if not self.count_nops:
            ops = [o for o in ops if o.kind is not OpKind.NOP]
        return len(ops)

    def fits(self, node: Instruction) -> bool:
        """Does the node satisfy every budget?"""
        return self.room(node) >= 0

    def room(self, node: Instruction) -> int:
        """Free total slots in the node (negative = over budget).

        With typed budgets, returns the *tightest* remaining headroom so
        that ``room() > 0`` still means "one more op of any class could
        fit" conservatively.
        """
        if self.fus is None:
            return 1 << 30
        used = self.slots_used(node)
        slack = self.fus - used
        if self.typed:
            per = {c: 0 for c in self.typed}
            for op in node.all_ops():
                if not self.count_nops and op.kind is OpKind.NOP:
                    continue
                c = fu_class_of(op)
                if c in per:
                    per[c] += 1
            for c, budget in self.typed.items():
                slack = min(slack, budget - per[c])
        return slack

    def has_headroom(self, node: Instruction) -> bool:
        """Could *some* operation class still be added to ``node``?

        ``room() > 0`` is the wrong fill-loop gate for typed machines:
        it reports the *tightest* per-class slack, so one exhausted
        class (say ALU) hides free MEM/BRANCH slots and the scheduler
        under-fills the instruction.  This predicate is true while the
        total budget has slack and at least one class could still
        accept an op -- classes absent from ``typed`` are bounded by
        the total alone.
        """
        if self.fus is None:
            return True
        if self.fus - self.slots_used(node) <= 0:
            return False
        if not self.typed:
            return True
        if any(c not in self.typed for c in FUClass):
            return True
        per = {c: 0 for c in FUClass}
        for op in node.all_ops():
            if not self.count_nops and op.kind is OpKind.NOP:
                continue
            per[fu_class_of(op)] += 1
        return any(per[c] < budget for c, budget in self.typed.items())

    def can_accept(self, node: Instruction, op: Operation) -> bool:
        """Would adding ``op`` keep the node within budget?"""
        if self.fus is None:
            return True
        if not self.count_nops and op.kind is OpKind.NOP:
            return True
        used = self.slots_used(node)
        if used + 1 > self.fus:
            return False
        if self.typed:
            c = fu_class_of(op)
            if c in self.typed:
                same = sum(1 for o in node.all_ops()
                           if fu_class_of(o) is c
                           and (self.count_nops or o.kind is not OpKind.NOP))
                if same + 1 > self.typed[c]:
                    return False
        return True

    def can_accept_ops(self, row: list[Operation], op: Operation) -> bool:
        """Budget check for a bare operation list (list scheduler)."""
        if self.fus is None:
            return True
        ops = [o for o in row
               if self.count_nops or o.kind is not OpKind.NOP]
        if not self.count_nops and op.kind is OpKind.NOP:
            return True
        if len(ops) + 1 > self.fus:
            return False
        if self.typed:
            c = fu_class_of(op)
            if c in self.typed:
                same = sum(1 for o in ops if fu_class_of(o) is c)
                if same + 1 > self.typed[c]:
                    return False
        return True

    def latency(self, op: Operation) -> int:
        if self.latencies is None:
            return 1
        return self.latencies.get(op.kind, 1)

    def class_budget(self, cls: FUClass) -> int | None:
        """Issue slots available to one FU class (None = unbounded).

        With typed budgets this is the class's own budget capped by the
        total; untyped machines bound every class by ``fus`` alone.
        The bundle encoder uses this to size spill-traffic bundles.
        """
        if self.fus is None:
            return None
        if self.typed and cls in self.typed:
            return min(self.fus, self.typed[cls])
        return self.fus

    @property
    def is_infinite(self) -> bool:
        return self.fus is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = "inf" if self.fus is None else str(self.fus)
        return f"Machine({base} FUs)"


#: The unconstrained machine used by POST's first phase.
INFINITE_RESOURCES = MachineConfig(fus=None)
