"""The inefficiency report: why a schedule costs what it costs.

For one scheduled kernel this module computes, and reconciles against
the bundle VM's realized-cycle scoreboard:

* a **dependence-height lower bound** -- the latency-weighted longest
  true-dependence chain (per segment for :class:`LoopProgram` shapes;
  segments serialize because code motion never crosses a loop
  boundary, so per-segment bounds sum).  COPY/NOP ops weigh zero: copy
  substitution lets consumers bypass renaming copies, so counting them
  would overshoot the bound.  The bound is taken over chains ending in
  a side effect (store / conditional jump) -- those sinks can never be
  dead-code-eliminated, which keeps the bound valid for the *scheduled*
  graph too;
* a **resource lower bound** -- ``ceil(ops committed / fus)``: no
  machine with ``fus`` slots per cycle can retire the committed work
  faster;
* **per-node slot usage** -- static occupancy by FU class plus dynamic
  ``visits`` / ``committed`` counts from a profiled VM run, with the
  exact accounting identity
  ``fus * steps == committed + uncommitted + idle``
  checked per run (``uncommitted`` = issued slots whose op was off the
  taken CJ path; ``idle`` = slots the schedule never filled);
* the **decision-journal tallies** and top blocked candidates, and the
  unwinding / pattern-detection outcome per segment.

Every cross-check lands in ``reconcile``; :class:`ReconcileError` means
the observability layer and the VM disagree -- a bug, never a warning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..backend.bundles import encode
from ..backend.vm import BundleVM
from ..ir.loops import CountedLoop, LoopProgram, WhileLoop
from ..ir.operations import Operation, OpKind
from ..machine.model import FUClass, MachineConfig
from ..simulator.check import initial_state, input_registers
from .journal import DecisionJournal
from .metrics import MetricsRegistry


class ReconcileError(AssertionError):
    """The report's accounting disagrees with the VM scoreboard."""


# ----------------------------------------------------------------------
# Dependence-height lower bound
# ----------------------------------------------------------------------
def critical_path_bound(ops: Sequence[Operation],
                        machine: MachineConfig | None = None, *,
                        sinks: str = "effects") -> int:
    """Latency-weighted longest true-dependence chain over ``ops``.

    A valid lower bound on the realized cycles of *any* legal schedule
    of ``ops``: truly dependent operations cannot share a bundle, and
    under the scoreboard a read stalls until ``issue + latency`` of its
    producer.  COPY and NOP weigh zero (see module docstring).

    ``sinks="effects"`` (default) takes the maximum over chains ending
    in a store or conditional jump -- sinks clean-up can never delete;
    ``sinks="all"`` takes the maximum over every op (tighter, but only
    valid when no chain tail is dead code).
    """
    from ..analysis.dependence import build_dag

    machine = machine if machine is not None else MachineConfig()
    if not ops:
        return 0
    dag = build_dag(ops)

    def weight(op: Operation) -> int:
        if op.kind is OpKind.COPY or op.kind is OpKind.NOP:
            return 0
        return machine.latency(op)

    # Ops arrive in program order and intra-iteration true edges point
    # forward, so one reverse sweep computes the chain DP iteratively
    # (recursion would overflow on long unwound chains).
    height: dict[int, int] = {}
    for uid in reversed(dag.order):
        best = 0
        for succ in dag.true_succs(uid, carried=False):
            h = height.get(succ, 0)
            if h > best:
                best = h
        height[uid] = weight(dag.ops[uid]) + best
    if sinks == "all":
        return max(height.values(), default=0)
    # Chains *ending* at an effect: walk tops (chain start heights) is
    # wrong here -- instead compute the downward height anchored at
    # effect sinks by a forward sweep of "longest chain ending at uid".
    ending: dict[int, int] = {}
    for uid in dag.order:
        best = 0
        for pred in dag.true_preds(uid, carried=False):
            h = ending.get(pred, 0)
            if h > best:
                best = h
        ending[uid] = weight(dag.ops[uid]) + best
    effect = [ending[uid] for uid in dag.order
              if dag.ops[uid].writes_memory or dag.ops[uid].is_cjump]
    return max(effect, default=0)


@dataclass
class SegmentBound:
    """Unwinding / pattern outcome and dependence bound of one segment."""

    index: int
    kind: str                      # "counted" | "while" | "epilogue"
    name: str
    dependence_bound: int
    iterations: int | None = None
    pattern: str | None = None
    ii: float | None = None
    converged: bool | None = None

    def to_dict(self) -> dict:
        return {"index": self.index, "kind": self.kind, "name": self.name,
                "dependence_bound": self.dependence_bound,
                "iterations": self.iterations, "pattern": self.pattern,
                "ii": self.ii, "converged": self.converged}


# ----------------------------------------------------------------------
# Per-node slot usage
# ----------------------------------------------------------------------
@dataclass
class NodeUsage:
    """Static occupancy + dynamic profile of one bundle."""

    bundle: int
    nid: int
    kind: str
    used_slots: int
    idle_slots: int
    visits: int
    committed: int
    uncommitted: int
    by_class: dict[str, dict[str, int | None]] = field(default_factory=dict)

    @property
    def issued(self) -> int:
        return self.visits * self.used_slots

    @property
    def idle_total(self) -> int:
        """Dynamic idle slots: empty issue slots over all visits."""
        return self.visits * self.idle_slots

    def to_dict(self) -> dict:
        return {"bundle": self.bundle, "nid": self.nid, "kind": self.kind,
                "used_slots": self.used_slots, "idle_slots": self.idle_slots,
                "visits": self.visits, "issued": self.issued,
                "committed": self.committed,
                "uncommitted": self.uncommitted,
                "idle_total": self.idle_total,
                "by_class": self.by_class}


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclass
class InefficiencyReport:
    """Everything ``repro explain`` knows about one schedule."""

    kernel: str
    family: str | None
    fus: int | None
    unroll: int
    seed: int
    kind: str                      # "loop" | "program"
    machine: MachineConfig
    journal: DecisionJournal
    metrics: MetricsRegistry
    segments: list[SegmentBound]
    nodes: list[NodeUsage]
    speedup: float | None
    schedule_nodes: int
    schedule_ops: int
    converged: bool
    vm_steps: int
    vm_cycles: int
    ops_committed: int
    schedule_length: int
    spill_bundles: int
    dependence_bound: int
    resource_bound: int
    reconcile: dict[str, bool]

    # -- derived --------------------------------------------------------
    @property
    def achieved_cycles(self) -> int:
        return self.vm_cycles

    @property
    def lower_bound(self) -> int:
        return max(self.dependence_bound, self.resource_bound)

    @property
    def efficiency(self) -> float | None:
        """lower_bound / achieved: 1.0 = provably optimal schedule."""
        if not self.achieved_cycles:
            return None
        return self.lower_bound / self.achieved_cycles

    @property
    def reconciled(self) -> bool:
        return all(self.reconcile.values())

    @property
    def totals(self) -> dict[str, int]:
        return {
            "issue_slots": (self.fus * self.vm_steps
                            if self.fus is not None else 0),
            "committed": self.ops_committed,
            "uncommitted": sum(n.uncommitted for n in self.nodes),
            "idle_slots": sum(n.idle_total for n in self.nodes),
        }

    def top_blocked(self, k: int = 5) -> list[dict]:
        return self.journal.top_blocked(k)

    def render(self) -> str:
        m = "inf" if self.fus is None else str(self.fus)
        lines = [
            f"explain {self.kernel} ({self.kind}, fus={m}, "
            f"unroll={self.unroll}, seed={self.seed})",
            "",
            f"achieved:    {self.achieved_cycles} cycles "
            f"({self.vm_steps} bundles, {self.ops_committed} ops committed, "
            f"{self.spill_bundles} spill bundles)",
            f"lower bound: {self.lower_bound} cycles "
            f"(dependence height {self.dependence_bound}, "
            f"resource {self.resource_bound})",
        ]
        if self.efficiency is not None:
            lines.append(f"efficiency:  {self.efficiency:.1%} of bound")
        if self.speedup is not None:
            lines.append(f"speedup:     {self.speedup:.2f}")
        tot = self.totals
        if self.fus is not None:
            lines.append(
                f"slots:       {tot['issue_slots']} issued = "
                f"{tot['committed']} committed + "
                f"{tot['uncommitted']} uncommitted + "
                f"{tot['idle_slots']} idle")
        lines.append("")
        lines.append("segments:")
        for seg in self.segments:
            det = f"  [{seg.index}] {seg.kind:8s} {seg.name}: " \
                  f"bound {seg.dependence_bound}"
            if seg.iterations is not None:
                det += f", {seg.iterations} iterations"
            if seg.ii is not None:
                det += f", II={seg.ii:.3f}"
            if seg.kind == "counted":
                det += (", kernel found" if seg.pattern
                        else ", no periodic kernel")
            lines.append(det)
        lines.append("")
        lines.append(self.journal.summary_line())
        blocked = self.top_blocked()
        if blocked:
            lines.append("top blocked candidates:")
            for b in blocked:
                lines.append(f"  t{b['tid']} {b['op']}: {b['count']}x "
                             f"({b['reason']})")
        worst = sorted((n for n in self.nodes if n.idle_total),
                       key=lambda n: -n.idle_total)[:5]
        if worst:
            lines.append("idlest nodes (bundle: idle slots over run):")
            for n in worst:
                lines.append(
                    f"  b{n.bundle} (n{n.nid}, {n.kind}): "
                    f"{n.idle_total} idle = {n.visits} visits x "
                    f"{n.idle_slots} empty slots")
        lines.append("")
        lines.append(f"reconcile: {'ok' if self.reconciled else 'FAILED'} "
                     f"({', '.join(sorted(self.reconcile))})")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def build_report(kernel, machine: MachineConfig, *, unroll: int,
                 seed: int = 0, family: str | None = None,
                 max_steps: int = 2_000_000) -> InefficiencyReport:
    """Schedule ``kernel`` with a decision journal, execute it on the
    bundle VM (normal + profiled), and reconcile every count.

    ``kernel`` is a :class:`CountedLoop` or :class:`LoopProgram`;
    :class:`WhileLoop` shapes arrive wrapped in a program by the
    workload builders.
    """
    journal = DecisionJournal()
    metrics = MetricsRegistry()
    stages: dict[str, float] = {}

    t0 = time.perf_counter()
    if isinstance(kernel, LoopProgram):
        kind, segments, graph, speedup, scheds = _schedule_program(
            kernel, machine, unroll, journal)
    else:
        kind, segments, graph, speedup, scheds = _schedule_loop(
            kernel, machine, unroll, journal)
    stages["pipeline"] = time.perf_counter() - t0
    stages["schedule"] = sum(s.seconds for s in scheds)

    t1 = time.perf_counter()
    program = encode(graph, machine)
    vm = BundleVM(program)
    stages["encode"] = time.perf_counter() - t1

    t2 = time.perf_counter()
    inputs = input_registers(graph)
    st = initial_state(seed, inputs)
    normal = vm.run(init_regs=dict(st.regs), mem_default=st.mem_default,
                    max_steps=max_steps)
    st2 = initial_state(seed, inputs)
    profiled, visits, committed = vm.run_profiled(
        init_regs=dict(st2.regs), mem_default=st2.mem_default,
        max_steps=max_steps)
    stages["vm"] = time.perf_counter() - t2

    nodes = _node_usage(program, machine, visits, committed)
    reconcile = _reconcile(machine, normal, profiled, nodes, journal, scheds)
    if not all(reconcile.values()):
        bad = sorted(k for k, v in reconcile.items() if not v)
        raise ReconcileError(
            f"{getattr(kernel, 'name', kernel)!r}: report does not "
            f"reconcile with the VM scoreboard: {', '.join(bad)}")

    analysis: dict[str, int] = {}
    for s in scheds:
        for key, val in s.analysis_counters.items():
            analysis[key] = analysis.get(key, 0) + val
    metrics.record("journal", journal.tallies())
    if analysis:
        metrics.record("analysis", analysis)
    metrics.record("stages", stages)

    dep_bound = sum(seg.dependence_bound for seg in segments)
    res_bound = (-(-normal.ops_committed // machine.fus)
                 if machine.fus else 0)
    return InefficiencyReport(
        kernel=getattr(kernel, "name", "?"), family=family,
        fus=machine.fus, unroll=unroll, seed=seed, kind=kind,
        machine=machine, journal=journal, metrics=metrics,
        segments=segments, nodes=nodes, speedup=speedup,
        schedule_nodes=len(graph.nodes), schedule_ops=graph.op_count(),
        converged=all(seg.converged is not False for seg in segments),
        vm_steps=normal.steps, vm_cycles=normal.cycles,
        ops_committed=normal.ops_committed,
        schedule_length=program.schedule_length,
        spill_bundles=program.spill_bundles,
        dependence_bound=dep_bound, resource_bound=res_bound,
        reconcile=reconcile)


def _schedule_loop(loop: CountedLoop, machine, unroll, journal):
    from ..pipelining.perfect import schedule_loop

    res = schedule_loop(loop, machine, unroll=unroll, measure=False,
                        tracer=journal)
    ii = res.initiation_interval
    seg = SegmentBound(
        index=0, kind="counted", name=loop.name,
        dependence_bound=critical_path_bound(res.unwound.ops, machine),
        iterations=res.unwound.iterations,
        pattern=str(res.pattern) if res.pattern is not None else None,
        ii=ii, converged=res.converged)
    return ("loop", [seg], res.unwound.graph, res.speedup, [res.schedule])


def _schedule_program(program: LoopProgram, machine, unroll, journal):
    from ..pipelining.program import schedule_program

    res = schedule_program(program, machine, unroll=unroll, measure=False,
                           tracer=journal)
    segments: list[SegmentBound] = []
    scheds = []
    for i, seg in enumerate(res.segments):
        if seg.kind == "counted":
            assert seg.unwound is not None
            ii = seg.initiation_interval
            segments.append(SegmentBound(
                index=i, kind="counted", name=seg.loop.name,
                dependence_bound=critical_path_bound(seg.unwound.ops,
                                                     machine),
                iterations=seg.unwound.iterations,
                pattern=(str(seg.pattern) if seg.pattern is not None
                         else None),
                ii=ii, converged=seg.converged))
            if seg.schedule is not None:
                scheds.append(seg.schedule)
        else:
            loop = seg.loop
            assert isinstance(loop, WhileLoop)
            # Only the pre-loop code and the first condition evaluation
            # are guaranteed to execute (the trip count is data-
            # dependent), so the sound per-segment bound is the chain
            # through preheader + condition + exit jump alone.
            ops = list(loop.preheader_ops) + list(loop.cond_ops) \
                + [loop.cj_op]
            segments.append(SegmentBound(
                index=i, kind="while", name=loop.name,
                dependence_bound=critical_path_bound(ops, machine),
                iterations=None, pattern=None, ii=None, converged=None))
    # Bound the epilogue over what is *left* after slack-slot motion:
    # ops migrated into a segment's idle slots are already inside that
    # segment's schedule, and counting them here too would overstate
    # the lower bound (validate_explain pins bound <= achieved cycles).
    if res.residual_epilogue:
        segments.append(SegmentBound(
            index=len(segments), kind="epilogue", name="epilogue",
            dependence_bound=critical_path_bound(res.residual_epilogue,
                                                 machine)))
    return ("program", segments, res.graph, res.speedup, scheds)


def _node_usage(program, machine: MachineConfig, visits: list[int],
                committed: list[int]) -> list[NodeUsage]:
    fus = machine.fus
    out: list[NodeUsage] = []
    for b in program.bundles:
        # CJ ops are encoded into the branch tree, not the slot lists,
        # but they consume issue slots exactly like regular ops (the
        # scheduler's slots_used() counts them) -- one tree row per CJ.
        n_cjs = len(b.tree)
        used = b.op_count() + n_cjs
        idle = (fus - used) if fus is not None else 0
        by_class = {}
        for cls in FUClass:
            n = len(b.slots[cls])
            if cls is FUClass.BRANCH:
                n += n_cjs
            budget = machine.class_budget(cls)
            if n or budget is not None:
                by_class[cls.name] = {"used": n, "budget": budget}
        out.append(NodeUsage(
            bundle=b.index, nid=b.nid, kind=b.kind, used_slots=used,
            idle_slots=idle, visits=visits[b.index],
            committed=committed[b.index],
            uncommitted=visits[b.index] * used - committed[b.index],
            by_class=by_class))
    return out


def _reconcile(machine, normal, profiled, nodes, journal,
               scheds) -> dict[str, bool]:
    """Every cross-check between the report and the VM scoreboard.

    The profiled run re-executes the program on the decoded-tuple
    interpreter, so agreement with the normal (compiled) run doubles
    as a compiled-vs-interpreted differential check.
    """
    checks = {
        "profiled_run_matches": (
            profiled.steps == normal.steps
            and profiled.cycles == normal.cycles
            and profiled.ops_committed == normal.ops_committed),
        "visits_sum_to_steps": (
            sum(n.visits for n in nodes) == normal.steps),
        "commits_sum_to_ops": (
            sum(n.committed for n in nodes) == normal.ops_committed),
        "uncommitted_nonnegative": all(n.uncommitted >= 0 for n in nodes),
        "journal_matches_stats": (
            journal.accepted == sum(s.stats.moves for s in scheds)),
    }
    if machine.fus is not None:
        total = machine.fus * normal.steps
        checks["slot_identity"] = (
            total == normal.ops_committed
            + sum(n.uncommitted for n in nodes)
            + sum(n.idle_total for n in nodes))
    return checks
