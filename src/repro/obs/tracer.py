"""The scheduler decision tracer: typed events, zero-cost when off.

GRiP makes thousands of micro-decisions per schedule -- rank this
candidate, attempt this hop, veto that one -- and the paper evaluates
the outcome only by final cycle counts.  This module defines the
*decision points* as typed events and a pluggable :class:`Tracer`
protocol to observe them:

* :data:`NULL_TRACER` (the default everywhere) has ``enabled = False``
  and every hot path guards emission with ``if tracer.enabled:``, so
  tracing costs nothing when off -- schedules are bit-identical with
  and without a tracer attached
  (``tests/integration/test_schedule_equivalence.py`` pins this).
* :class:`~repro.obs.journal.DecisionJournal` is the standard consumer:
  it tallies events into the inefficiency report and ``repro explain``.

Tracers are **observe-only** by contract: an emit must never mutate
the graph, the policy, or any scheduling state.

Reason codes
------------
Every rejected move carries one :class:`Reason`, classified from the
percolation layer's failure reports (``repro.percolation.conflicts``):

=================  ====================================================
code               meaning
=================  ====================================================
``dependence``     a true / memory dependence blocks the hop
``resource``       the target instruction is full (total budget)
``typed-slots``    only the op's FU class is exhausted; total has room
``gap-veto``       gap-prevention rules 1/3 vetoed the hop
``unify-fail``     could neither unify nor rename (no dest / no regs)
``speculation``    speculation disabled and the op is guarded
``loop-boundary``  the only path upward crosses a loop back edge
``no-edge``        target is not a predecessor of the source node
``vanished``       the instance disappeared mid-sweep (unify/split)
``other``          anything else (kept for forward compatibility)
=================  ====================================================

The program pass pipeline (``repro.pipelining.passes``) adds its own
event family with stable reason strings of its own:

=========================  ============================================
code                       meaning
=========================  ============================================
``hoisted``                an invariant op moved to a loop pre-header
``fusion-applied``         two adjacent counted segments merged
``fusion-blocked:<why>``   fusion legality failed (``trip-mismatch``,
                           ``scalar-dep``, ``mem-unknown``, ``mem-dep``,
                           ``preheader-dep``, ``epilogue``,
                           ``interleaved-scalar``, ``not-counted``)
``slack-move``             a boundary-straddling scalar op migrated
                           into a neighbor segment's idle slots
=========================  ============================================

These are *transform* decisions, not percolation hops: the journal
counts them separately from ``accepted``/``rejected`` so the report's
``journal.accepted == sum(per-segment moves)`` reconciliation stays
exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Reason(str, Enum):
    """Stable (JSON-safe) rejection reason codes."""

    DEPENDENCE = "dependence"
    RESOURCE = "resource"
    TYPED_SLOTS = "typed-slots"
    GAP_VETO = "gap-veto"
    UNIFY_FAIL = "unify-fail"
    SPECULATION = "speculation"
    LOOP_BOUNDARY = "loop-boundary"
    NO_EDGE = "no-edge"
    VANISHED = "vanished"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: conflict-report prefix (``reason.split(":")[0]``) -> Reason
_PREFIX_MAP = {
    "true-dep": Reason.DEPENDENCE,
    "mem-true-dep": Reason.DEPENDENCE,
    "mem-output-dep": Reason.DEPENDENCE,
    "store-speculation": Reason.DEPENDENCE,
    "cj-not-root": Reason.DEPENDENCE,
    "blocked": Reason.DEPENDENCE,
    "resources": Reason.RESOURCE,
    "speculation-disabled": Reason.SPECULATION,
    "rename-impossible": Reason.UNIFY_FAIL,
    "no-edge": Reason.NO_EDGE,
    "no-op": Reason.VANISHED,
}


def classify_failure(detail: str, *, resource_blocked: bool = False,
                     typed_starved: bool = False) -> Reason:
    """Map a percolation failure report onto one :class:`Reason`.

    ``resource_blocked`` comes from :class:`MoveOutcome`;
    ``typed_starved`` refines it: the total budget had room, so only
    the op's FU class was exhausted (typed machines only).
    """
    if resource_blocked:
        return Reason.TYPED_SLOTS if typed_starved else Reason.RESOURCE
    head = detail.split(":", 1)[0]
    mapped = _PREFIX_MAP.get(head)
    if mapped is not None:
        return mapped
    if "is not a predecessor" in detail:
        return Reason.NO_EDGE
    return Reason.OTHER


# ----------------------------------------------------------------------
# Typed events, one per decision point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeBegin:
    """The scheduler started filling node ``nid``."""

    nid: int


@dataclass(frozen=True)
class NodeEnd:
    """Node ``nid`` is full / out of candidates after ``rounds`` rounds."""

    nid: int
    rounds: int


@dataclass(frozen=True)
class CandidateSetBuilt:
    """A ranked candidate set for node ``nid`` was (re)built.

    Emitted once per construction (cache hits re-read, they don't
    rebuild), so the journal tally mirrors ``MoveableOps.set_builds``.
    """

    nid: int
    size: int


@dataclass(frozen=True)
class MoveAccepted:
    """One hop succeeded: instance of template ``tid`` From -> To."""

    tid: int
    op: str
    from_nid: int
    to_nid: int
    renamed: bool = False
    unified: bool = False
    split: bool = False


@dataclass(frozen=True)
class MoveRejected:
    """One hop (or a whole migrate) failed, with a classified reason."""

    tid: int
    op: str
    from_nid: int
    to_nid: int
    reason: Reason
    detail: str = ""


@dataclass(frozen=True)
class Suspended:
    """Gap prevention rule 1: the template failed Gapless-move."""

    tid: int
    op: str
    nid: int


@dataclass(frozen=True)
class BoundarySkipped:
    """Migrate refused to carry an instance across a loop back edge."""

    tid: int
    nid: int
    pred: int


@dataclass(frozen=True)
class SegmentBegin:
    """Program scheduling entered segment ``index`` (``kind``, name)."""

    index: int
    kind: str
    name: str


# ----------------------------------------------------------------------
# Program pass-pipeline events (cross-segment transforms)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpHoisted:
    """An invariant op left ``loop``'s body/cond for its pre-header."""

    loop: str
    op: str
    tid: int
    kind: str = "counted"           # "counted" | "while"


@dataclass(frozen=True)
class FusionApplied:
    """Adjacent counted segments ``first`` + ``second`` merged."""

    first: str
    second: str
    trip_count: int


@dataclass(frozen=True)
class FusionBlocked:
    """Fusion of ``first`` + ``second`` refused; ``why`` is the stable
    sub-code behind the ``fusion-blocked:<why>`` reason string."""

    first: str
    second: str
    why: str

    @property
    def reason(self) -> str:
        return f"fusion-blocked:{self.why}"


@dataclass(frozen=True)
class SlackMove:
    """A scalar op straddling a segment boundary migrated into node
    ``nid`` of segment ``segment``'s schedule (idle-slot fill)."""

    segment: str
    op: str
    tid: int
    nid: int


Event = (NodeBegin | NodeEnd | CandidateSetBuilt | MoveAccepted
         | MoveRejected | Suspended | BoundarySkipped | SegmentBegin
         | OpHoisted | FusionApplied | FusionBlocked | SlackMove)


# ----------------------------------------------------------------------
# Tracer protocol + the zero-cost default
# ----------------------------------------------------------------------
class Tracer:
    """Base tracer: ``enabled`` gates emission at every decision point.

    Hot paths check ``tracer.enabled`` before *constructing* an event,
    so a disabled tracer costs one attribute read per decision point
    and zero allocations.  Subclasses set ``enabled = True`` and
    override :meth:`emit`; they must be observe-only.
    """

    enabled: bool = False

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        pass


class NullTracer(Tracer):
    """The do-nothing default."""

    enabled = False

    def emit(self, event: Event) -> None:
        pass


#: Shared default instance -- safe because it carries no state.
NULL_TRACER = NullTracer()
