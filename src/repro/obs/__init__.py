"""Observability: decision journal, inefficiency reports, metrics.

Import layering: :mod:`~repro.obs.tracer`, :mod:`~repro.obs.journal`
and :mod:`~repro.obs.metrics` are dependency-free (the scheduling
stack imports them for its default tracer field), while
:mod:`~repro.obs.report` / :mod:`~repro.obs.explain` import the
scheduling, pipelining and backend layers.  The heavy half is exposed
lazily so ``repro.scheduling -> repro.obs`` never becomes circular.
"""

from .journal import DecisionJournal
from .metrics import MetricsRegistry
from .tracer import (
    NULL_TRACER,
    BoundarySkipped,
    CandidateSetBuilt,
    FusionApplied,
    FusionBlocked,
    MoveAccepted,
    MoveRejected,
    NodeBegin,
    NodeEnd,
    NullTracer,
    OpHoisted,
    Reason,
    SegmentBegin,
    SlackMove,
    Suspended,
    Tracer,
    classify_failure,
)

__all__ = [
    "NULL_TRACER",
    "BoundarySkipped",
    "CandidateSetBuilt",
    "DecisionJournal",
    "FusionApplied",
    "FusionBlocked",
    "InefficiencyReport",
    "MetricsRegistry",
    "MoveAccepted",
    "MoveRejected",
    "NodeBegin",
    "NodeEnd",
    "NullTracer",
    "OpHoisted",
    "Reason",
    "ReconcileError",
    "SegmentBegin",
    "SlackMove",
    "Suspended",
    "Tracer",
    "build_report",
    "classify_failure",
    "critical_path_bound",
    "explain_kernel",
    "to_artifact",
    "validate_explain",
    "validate_explain_file",
    "write_explain",
]

_LAZY = {
    "InefficiencyReport": "report",
    "ReconcileError": "report",
    "build_report": "report",
    "critical_path_bound": "report",
    "explain_kernel": "explain",
    "to_artifact": "explain",
    "validate_explain": "explain",
    "validate_explain_file": "explain",
    "write_explain": "explain",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
