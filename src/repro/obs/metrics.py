"""A small metrics registry: one interface over every counter family.

The reproduction already produces three disjoint counter vocabularies:

* ``ScheduleResult.analysis_counters`` -- incremental-analysis
  rebuild/patch deltas (PR 3);
* per-stage wall-clock dicts (``BenchRecord.stages``);
* the decision journal's tallies (this PR).

:class:`MetricsRegistry` groups them under named namespaces so report
builders and artifacts consume one flat, JSON-ready mapping instead of
three ad-hoc dict shapes.  Values are numbers only; nested dicts are
flattened with ``.`` separators.
"""

from __future__ import annotations


class MetricsRegistry:
    """Grouped numeric counters with a canonical dict rendering."""

    def __init__(self) -> None:
        self._groups: dict[str, dict[str, float | int]] = {}

    def record(self, group: str, values: dict) -> None:
        """Merge ``values`` into ``group``, flattening nested dicts."""
        bucket = self._groups.setdefault(group, {})
        for key, val in _flatten(values):
            bucket[key] = val

    def increment(self, group: str, key: str, delta: float | int = 1) -> None:
        bucket = self._groups.setdefault(group, {})
        bucket[key] = bucket.get(key, 0) + delta

    def get(self, group: str, key: str, default: float | int = 0):
        return self._groups.get(group, {}).get(key, default)

    def group(self, group: str) -> dict[str, float | int]:
        return dict(self._groups.get(group, {}))

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        """Stable nested rendering: ``{group: {key: value}}``, sorted."""
        return {g: dict(sorted(vals.items()))
                for g, vals in sorted(self._groups.items())}


def _flatten(values: dict, prefix: str = ""):
    for key, val in values.items():
        name = f"{prefix}{key}"
        if isinstance(val, dict):
            yield from _flatten(val, prefix=f"{name}.")
        elif isinstance(val, bool) or not isinstance(val, (int, float)):
            raise TypeError(
                f"metric {name!r} must be numeric, got {type(val).__name__}")
        else:
            yield name, val
