"""The decision journal: the standard tracer behind ``repro explain``.

A :class:`DecisionJournal` subscribes to the scheduler's decision
stream and keeps two things:

* **tallies** -- counts per event type and per rejection
  :class:`~repro.obs.tracer.Reason`, always maintained (O(1) per
  event);
* **events** -- the raw typed records, retained up to ``max_events``
  (high-volume bookkeeping events are tallied but never stored).

It is observe-only: attaching a journal must not change the schedule
(``tests/integration/test_schedule_equivalence.py`` diffs traced vs
untraced runs across every Table-1 cell).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tracer import (
    BoundarySkipped,
    CandidateSetBuilt,
    Event,
    FusionApplied,
    FusionBlocked,
    MoveAccepted,
    MoveRejected,
    NodeBegin,
    NodeEnd,
    OpHoisted,
    Reason,
    SegmentBegin,
    SlackMove,
    Suspended,
    Tracer,
)


@dataclass
class _BlockedOp:
    """Aggregate rejection record for one template."""

    tid: int
    op: str
    count: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)

    @property
    def top_reason(self) -> str:
        if not self.by_reason:
            return Reason.OTHER.value
        return max(sorted(self.by_reason), key=lambda k: self.by_reason[k])


class DecisionJournal(Tracer):
    """Tally-keeping tracer; see module docstring.

    ``keep_events=False`` drops raw event retention entirely (bench
    ``--profile`` mode: only the tallies reach the artifact).
    """

    enabled = True

    def __init__(self, *, keep_events: bool = True,
                 max_events: int = 200_000) -> None:
        self.keep_events = keep_events
        self.max_events = max_events
        self.events: list[Event] = []
        self.dropped_events = 0
        self.accepted = 0
        self.rejected = 0
        self.renames = 0
        self.unifications = 0
        self.suspensions = 0
        self.boundary_skips = 0
        self.candidate_sets = 0
        self.candidates_seen = 0
        self.nodes_begun = 0
        self.by_reason: dict[str, int] = {}
        self.segments: list[SegmentBegin] = []
        self._blocked: dict[int, _BlockedOp] = {}
        # Program pass-pipeline transforms.  Counted apart from the
        # percolation hop counters: the report reconciles ``accepted``
        # against per-segment GRiP move stats, which these are not.
        self.hoisted = 0
        self.fusions = 0
        self.slack_moves = 0
        self.pass_reasons: dict[str, int] = {}

    def _pass_reason(self, code: str) -> None:
        self.pass_reasons[code] = self.pass_reasons.get(code, 0) + 1

    # -- Tracer interface ----------------------------------------------
    def emit(self, event: Event) -> None:
        if isinstance(event, MoveAccepted):
            self.accepted += 1
            if event.renamed:
                self.renames += 1
            if event.unified:
                self.unifications += 1
        elif isinstance(event, MoveRejected):
            self.rejected += 1
            key = event.reason.value
            self.by_reason[key] = self.by_reason.get(key, 0) + 1
            rec = self._blocked.get(event.tid)
            if rec is None:
                rec = self._blocked[event.tid] = _BlockedOp(
                    tid=event.tid, op=event.op)
            rec.count += 1
            rec.by_reason[key] = rec.by_reason.get(key, 0) + 1
        elif isinstance(event, Suspended):
            self.suspensions += 1
        elif isinstance(event, BoundarySkipped):
            # High-volume bookkeeping: tally only, never retained.
            # (A template with NO non-boundary path upward additionally
            # gets a MoveRejected(loop-boundary), which is what lands
            # in ``by_reason``.)
            self.boundary_skips += 1
            return
        elif isinstance(event, CandidateSetBuilt):
            self.candidate_sets += 1
            self.candidates_seen += event.size
            return  # tally-only: one per rebuild, still chatty
        elif isinstance(event, NodeBegin):
            self.nodes_begun += 1
        elif isinstance(event, SegmentBegin):
            self.segments.append(event)
        elif isinstance(event, OpHoisted):
            self.hoisted += 1
            self._pass_reason("hoisted")
        elif isinstance(event, FusionApplied):
            self.fusions += 1
            self._pass_reason("fusion-applied")
        elif isinstance(event, FusionBlocked):
            self._pass_reason(event.reason)
        elif isinstance(event, SlackMove):
            self.slack_moves += 1
            self._pass_reason("slack-move")
        elif isinstance(event, NodeEnd):
            pass
        if self.keep_events:
            if len(self.events) < self.max_events:
                self.events.append(event)
            else:
                self.dropped_events += 1

    # -- Views ----------------------------------------------------------
    @property
    def tried(self) -> int:
        """Hops attempted: accepted + rejected (vetoes included)."""
        return self.accepted + self.rejected

    def tallies(self) -> dict:
        """JSON-ready summary of the whole run."""
        return {
            "tried": self.tried,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "renames": self.renames,
            "unifications": self.unifications,
            "suspensions": self.suspensions,
            "boundary_skips": self.boundary_skips,
            "candidate_sets": self.candidate_sets,
            "candidates_seen": self.candidates_seen,
            "nodes_begun": self.nodes_begun,
            "by_reason": dict(sorted(self.by_reason.items())),
            "hoisted": self.hoisted,
            "fusions": self.fusions,
            "slack_moves": self.slack_moves,
            "pass_reasons": dict(sorted(self.pass_reasons.items())),
        }

    def top_blocked(self, k: int = 5) -> list[dict]:
        """The ``k`` most-rejected templates, with their top reason."""
        ranked = sorted(self._blocked.values(),
                        key=lambda r: (-r.count, r.tid))
        return [{"tid": r.tid, "op": r.op, "count": r.count,
                 "reason": r.top_reason,
                 "by_reason": dict(sorted(r.by_reason.items()))}
                for r in ranked[:k]]

    def summary_line(self) -> str:
        rej = sorted(self.by_reason.items(), key=lambda kv: (-kv[1], kv[0]))
        detail = ", ".join(f"{k}={v}" for k, v in rej) or "none"
        line = (f"journal: {self.tried} hops tried, {self.accepted} "
                f"accepted; rejected: {detail}")
        if self.pass_reasons:
            passes = ", ".join(
                f"{k}={v}" for k, v in sorted(self.pass_reasons.items()))
            line += f"; passes: {passes}"
        return line
