"""``EXPLAIN_*.json``: the stable artifact behind ``repro explain``.

Schema (``schema`` = 1, ``kind`` = "repro-explain")::

    {
      "schema": 1,
      "kind": "repro-explain",
      "kernel": "LL7", "family": "ll", "kernel_kind": "loop",
      "fus": 8, "unroll": 24, "seed": 0,
      "created": 1753776000.0,
      "machine": {"fus": 8, "typed": null, "latencies": null},
      "schedule": {"nodes": 40, "ops": 350, "converged": true,
                   "speedup": 6.4, "schedule_length": 40,
                   "spill_bundles": 0},
      "segments": [{"index": 0, "kind": "counted", "name": "LL7",
                    "dependence_bound": 26, "iterations": 24,
                    "pattern": "...", "ii": 1.25, "converged": true}],
      "bounds": {"dependence_bound": 26, "resource_bound": 44,
                 "lower_bound": 44, "achieved_cycles": 51,
                 "efficiency": 0.86},
      "vm": {"steps": 51, "cycles": 51, "ops_committed": 350},
      "totals": {"issue_slots": 408, "committed": 350,
                 "uncommitted": 0, "idle_slots": 58},
      "nodes": [{"bundle": 0, "nid": 3, "kind": "node",
                 "used_slots": 8, "idle_slots": 0, "visits": 1,
                 "issued": 8, "committed": 8, "uncommitted": 0,
                 "idle_total": 0,
                 "by_class": {"ALU": {"used": 5, "budget": 8}, ...}},
                ...],
      "journal": {"tried": ..., "accepted": ..., "rejected": ...,
                  "by_reason": {"dependence": ..., ...}, ...},
      "top_blocked": [{"tid": 7, "op": "...", "count": 12,
                       "reason": "dependence", "by_reason": {...}}],
      "metrics": {"analysis": {...}, "journal": {...}, "stages": {...}},
      "reconcile": {"ok": true, "checks": {"slot_identity": true, ...}}
    }

Additive fields are allowed within schema 1 (same policy as
``BENCH_*.json``); :func:`validate_explain` re-derives the accounting
identities from the payload, so a hand-edited artifact that no longer
reconciles is rejected, not just malformed shapes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..machine.model import MachineConfig
from .report import InefficiencyReport, build_report

EXPLAIN_SCHEMA_VERSION = 1
EXPLAIN_KIND = "repro-explain"


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
def explain_kernel(kernel, machine: MachineConfig, *, unroll: int,
                   seed: int = 0,
                   family: str | None = None) -> InefficiencyReport:
    """Schedule + execute + reconcile one kernel (see ``build_report``)."""
    return build_report(kernel, machine, unroll=unroll, seed=seed,
                        family=family)


def to_artifact(report: InefficiencyReport) -> dict:
    """Render a reconciled report as the stable JSON payload."""
    m = report.machine
    return {
        "schema": EXPLAIN_SCHEMA_VERSION,
        "kind": EXPLAIN_KIND,
        "kernel": report.kernel,
        "family": report.family,
        "kernel_kind": report.kind,
        "fus": report.fus,
        "unroll": report.unroll,
        "seed": report.seed,
        "created": time.time(),
        "machine": {
            "fus": m.fus,
            "typed": ({c.name: v for c, v in m.typed.items()}
                      if m.typed else None),
            "latencies": ({k.name: v for k, v in m.latencies.items()}
                          if m.latencies else None),
        },
        "schedule": {
            "nodes": report.schedule_nodes,
            "ops": report.schedule_ops,
            "converged": report.converged,
            "speedup": report.speedup,
            "schedule_length": report.schedule_length,
            "spill_bundles": report.spill_bundles,
        },
        "segments": [seg.to_dict() for seg in report.segments],
        "bounds": {
            "dependence_bound": report.dependence_bound,
            "resource_bound": report.resource_bound,
            "lower_bound": report.lower_bound,
            "achieved_cycles": report.achieved_cycles,
            "efficiency": report.efficiency,
        },
        "vm": {
            "steps": report.vm_steps,
            "cycles": report.vm_cycles,
            "ops_committed": report.ops_committed,
        },
        "totals": report.totals,
        "nodes": [n.to_dict() for n in report.nodes],
        "journal": report.journal.tallies(),
        "top_blocked": report.top_blocked(),
        "metrics": report.metrics.as_dict(),
        "reconcile": {"ok": report.reconciled,
                      "checks": dict(report.reconcile)},
    }


def write_explain(report: InefficiencyReport, path: str | Path) -> Path:
    payload = to_artifact(report)
    validate_explain(payload)
    path = Path(path)
    if path.parent != Path():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# Validate
# ----------------------------------------------------------------------
_TOP_KEYS = {
    "schema": int, "kind": str, "kernel": str, "kernel_kind": str,
    "unroll": int, "seed": int, "created": (int, float),
    "machine": dict, "schedule": dict, "segments": list, "bounds": dict,
    "vm": dict, "totals": dict, "nodes": list, "journal": dict,
    "top_blocked": list, "metrics": dict, "reconcile": dict,
}
_NODE_KEYS = {
    "bundle": int, "nid": int, "kind": str, "used_slots": int,
    "idle_slots": int, "visits": int, "issued": int, "committed": int,
    "uncommitted": int, "idle_total": int, "by_class": dict,
}


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(f"invalid EXPLAIN artifact: {msg}")


def validate_explain(data: dict) -> None:
    """Check shape *and* internal consistency; raises ``ValueError``."""
    _require(isinstance(data, dict), "payload is not an object")
    _require(data.get("kind") == EXPLAIN_KIND,
             f"kind={data.get('kind')!r} (want {EXPLAIN_KIND!r})")
    _require(data.get("schema") == EXPLAIN_SCHEMA_VERSION,
             f"schema={data.get('schema')!r} "
             f"(want {EXPLAIN_SCHEMA_VERSION})")
    for key, typ in _TOP_KEYS.items():
        _require(key in data, f"missing key {key!r}")
        _require(isinstance(data[key], typ),
                 f"{key!r} has type {type(data[key]).__name__}")
    for i, node in enumerate(data["nodes"]):
        for key, typ in _NODE_KEYS.items():
            _require(isinstance(node.get(key), typ),
                     f"nodes[{i}].{key} has type "
                     f"{type(node.get(key)).__name__}")
        _require(node["issued"] == node["visits"] * node["used_slots"],
                 f"nodes[{i}]: issued != visits * used_slots")
        _require(node["uncommitted"] == node["issued"] - node["committed"],
                 f"nodes[{i}]: uncommitted != issued - committed")
        _require(node["uncommitted"] >= 0,
                 f"nodes[{i}]: negative uncommitted slots")

    vm, bounds, totals = data["vm"], data["bounds"], data["totals"]
    nodes = data["nodes"]
    _require(sum(n["visits"] for n in nodes) == vm["steps"],
             "per-node visits do not sum to vm.steps")
    _require(sum(n["committed"] for n in nodes) == vm["ops_committed"],
             "per-node commits do not sum to vm.ops_committed")
    _require(totals["committed"] == vm["ops_committed"],
             "totals.committed != vm.ops_committed")
    _require(totals["idle_slots"] == sum(n["idle_total"] for n in nodes),
             "totals.idle_slots does not sum over nodes")
    _require(totals["uncommitted"] == sum(n["uncommitted"] for n in nodes),
             "totals.uncommitted does not sum over nodes")
    fus = data.get("fus")
    if fus is not None:
        _require(totals["issue_slots"] == fus * vm["steps"],
                 "totals.issue_slots != fus * vm.steps")
        _require(totals["issue_slots"] == totals["committed"]
                 + totals["uncommitted"] + totals["idle_slots"],
                 "issue-slot identity does not hold")
    _require(bounds["achieved_cycles"] == vm["cycles"],
             "bounds.achieved_cycles != vm.cycles")
    _require(bounds["lower_bound"] == max(bounds["dependence_bound"],
                                          bounds["resource_bound"]),
             "bounds.lower_bound is not the max of its components")
    _require(bounds["lower_bound"] <= bounds["achieved_cycles"],
             "lower bound exceeds achieved cycles")
    _require(sum(s["dependence_bound"] for s in data["segments"])
             == bounds["dependence_bound"],
             "segment bounds do not sum to bounds.dependence_bound")
    _require(data["reconcile"].get("ok") is True,
             "reconcile.ok is not true")
    _require(all(data["reconcile"].get("checks", {}).values()),
             "a reconcile check failed")


def validate_explain_file(path: str | Path) -> dict:
    """Load + validate one artifact; returns the payload."""
    data = json.loads(Path(path).read_text())
    validate_explain(data)
    return data
