"""Perfect Pipelining: unwinding, pattern detection, throughput analysis."""

from .pattern import (
    PipelinePattern,
    RowSignature,
    ThroughputEstimate,
    estimate_ii,
    find_pattern,
    find_pattern_in_signatures,
    graph_throughput,
    main_chain,
    ops_signature,
    retire_rows,
    row_signature,
)
from .perfect import (
    PipelineResult,
    PostPipelineResult,
    default_unroll,
    pipeline_loop,
    pipeline_loop_post,
    schedule_loop,
)
from .program import (
    ProgramPipelineResult,
    SegmentSchedule,
    compact_while,
    pipeline_program,
    schedule_program,
)
from .unwind import UnwoundLoop, iteration_locals, unwind_counted, unwind_implicit

__all__ = [
    "PipelinePattern", "PipelineResult", "PostPipelineResult",
    "ProgramPipelineResult", "RowSignature", "SegmentSchedule",
    "ThroughputEstimate", "UnwoundLoop", "compact_while", "default_unroll",
    "estimate_ii", "find_pattern", "find_pattern_in_signatures",
    "graph_throughput", "iteration_locals", "main_chain", "ops_signature",
    "pipeline_loop", "pipeline_loop_post", "pipeline_program",
    "retire_rows", "row_signature", "schedule_loop", "schedule_program",
    "unwind_counted", "unwind_implicit",
]
