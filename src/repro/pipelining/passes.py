"""The program pass pipeline: cross-segment transforms over loop plans.

:func:`~repro.pipelining.program.schedule_program` used to be a fixed
per-segment loop; it is now staged over a normalized
:class:`~repro.ir.loops.ProgramPlan`:

1. :func:`normalize_program` -- every loop segment gets explicit
   ``pre_ops``/``post_ops`` scalar chunks (the program epilogue becomes
   the last segment's ``post_ops``), giving cross-segment transforms a
   place to put code.
2. :func:`hoist_invariants` -- loop-invariant ops migrate into the
   owning loop's pre-header.  Counted bodies are do-while shaped (the
   body runs at least once before the first exit test), so any
   invariant body op may hoist; a ``while`` tests first and may run
   zero body trips, so only invariant *condition* ops -- which execute
   at least once even at zero trips -- are eligible.
3. :func:`fuse_counted_segments` -- adjacent counted segments with
   identical ``(lo, bound, step)`` and no fusion-blocking cross-loop
   dependence merge into one loop before unwinding, so one steady
   kernel covers both bodies.
4. :func:`slack_slot_motion` -- after per-segment scheduling, scalar
   ops straddling the last segment boundary (the residual program
   epilogue) migrate backward into idle slots of the executed path of
   the neighbor segment's schedule.

Every transform is observable: it emits
:class:`~repro.obs.tracer.OpHoisted` / ``FusionApplied`` /
``FusionBlocked`` / ``SlackMove`` events with the stable reason codes
documented in :mod:`repro.obs.tracer`, and all scheduled-graph
mutations go through the graph's event-emitting methods so attached
:class:`~repro.analysis.incremental.AnalysisManager` indexes stay
exact.

Soundness notes
---------------
* Hoisting requires single-writer, not-read-before-write, non-carried
  destinations whose sources are never defined inside the loop; STOREs
  never hoist, LOADs only when no store in the loop touches their
  array.
* Fusion legality is reported through sub-codes
  (``fusion-blocked:<why>``): ``trip-mismatch``, ``scalar-dep``,
  ``mem-dep``, ``mem-unknown``, ``preheader-dep``, ``epilogue``,
  ``interleaved-scalar``, ``not-counted``.  The memory rule: for an
  access pair (a in L1, b in L2) on the same array with a write
  involved, fusion reverses the order of ``a@i`` vs ``b@j`` exactly
  for ``i > j``; with both accesses counter-affine that reversal hits
  a common cell iff ``d = affine_a - affine_b`` satisfies ``d < 0 and
  d % step == 0``, so any other affine pair is safe.
* Slack motion only moves an op that has **no dependence in either
  direction** with any op of the target segment's scheduled graph or
  with any other residual epilogue op, and only into nodes on the
  statically-known executed path (counted bounds are immediates after
  DSL lowering), so the op executes exactly once.  Capacity gating
  uses the same per-FU-class accounting the inefficiency report's
  idle-slot breakdown is built from (``machine.class_budget``), so the
  pass fills exactly the slots ``repro explain`` reports as idle.
"""

from __future__ import annotations

from ..analysis.dependence import any_dep
from ..ir.cjtree import Branch, EXIT, Leaf
from ..ir.graph import ProgramGraph
from ..ir.loops import (
    CountedLoop,
    LoopProgram,
    ProgramPlan,
    SegmentPlan,
    WhileLoop,
    build_counted_loop,
    build_while_loop,
)
from ..ir.operations import Operation, OpKind
from ..ir.registers import Imm, Reg
from ..machine.model import MachineConfig, fu_class_of
from ..obs.tracer import (
    NULL_TRACER,
    FusionApplied,
    FusionBlocked,
    OpHoisted,
    SlackMove,
    Tracer,
)

#: stable fusion-refusal sub-codes (``fusion-blocked:<why>``)
FUSION_WHYS = ("trip-mismatch", "scalar-dep", "mem-unknown", "mem-dep",
               "preheader-dep", "epilogue", "interleaved-scalar",
               "not-counted")


# ----------------------------------------------------------------------
# Pass 1: normalization
# ----------------------------------------------------------------------
def normalize_program(program: LoopProgram) -> ProgramPlan:
    """Wrap ``program`` into a :class:`ProgramPlan` of segment plans.

    Each loop becomes a :class:`SegmentPlan` with empty scalar chunks;
    the program-level epilogue becomes the *last* segment's
    ``post_ops``, which is where slack motion drains from.  The source
    program is never mutated.
    """
    plan = ProgramPlan(program=program)
    for lp in program.loops:
        plan.segments.append(SegmentPlan(loop=lp))
    if plan.segments:
        plan.segments[-1].post_ops = list(program.epilogue_ops)
    return plan


# ----------------------------------------------------------------------
# Pass 2: loop-invariant hoisting
# ----------------------------------------------------------------------
def _defined_regs(ops) -> set[Reg]:
    return {op.dest for op in ops if op.dest is not None}


def _read_before_write(ops, reg: Reg, until: Operation) -> bool:
    """Does any op before ``until`` (exclusive) read ``reg``?"""
    for op in ops:
        if op is until:
            return False
        if reg in op.uses():
            return True
    return False


def _invariant(op: Operation, iteration_ops: list[Operation],
               protected: set[Reg], hoisted_defs: set[Reg]) -> bool:
    """Is ``op`` hoistable out of a loop whose one iteration executes
    ``iteration_ops`` in order (``op`` among them)?

    ``protected`` holds registers the op must not redefine (carried
    scalars, the counter); ``hoisted_defs`` are destinations of already
    hoisted ops, which no longer count as loop-defined.
    """
    if op.kind in (OpKind.STORE, OpKind.CJUMP, OpKind.NOP):
        return False
    if op.dest is None or op.dest in protected:
        return False
    loop_defs = _defined_regs(iteration_ops) - hoisted_defs
    if op.uses() & loop_defs:
        return False
    # Single writer: another writer of dest makes the value per-path.
    writers = sum(1 for o in iteration_ops if o.dest == op.dest)
    if writers != 1:
        return False
    # Not read before the write: iteration 0 would otherwise observe
    # the pre-loop value, which hoisting replaces.
    if _read_before_write(iteration_ops, op.dest, op):
        return False
    if op.kind is OpKind.LOAD:
        array = op.mem.array
        if any(o.writes_memory and o.mem is not None
               and o.mem.array == array for o in iteration_ops):
            return False
    return True


def _hoist_counted(seg: SegmentPlan, tracer: Tracer) -> int:
    loop = seg.loop
    body = list(loop.body_ops)
    hoisted: list[Operation] = []
    hoisted_defs: set[Reg] = set()
    protected = set(loop.carried_regs) | {loop.counter}
    changed = True
    while changed:
        changed = False
        iteration_ops = body + loop.control_ops
        for op in list(body):
            if not _invariant(op, iteration_ops, protected, hoisted_defs):
                continue
            body.remove(op)
            hoisted.append(op)
            hoisted_defs.add(op.dest)
            iteration_ops = body + loop.control_ops
            changed = True
    if not hoisted:
        return 0
    seg.loop = build_counted_loop(
        loop.name, list(loop.preheader_ops) + hoisted, body, loop.counter,
        loop.bound, loop.step, carried=loop.carried_regs,
        epilogue=loop.epilogue_ops, description=loop.description,
        live_out=loop.live_out)
    if tracer.enabled:
        for op in hoisted:
            tracer.emit(OpHoisted(loop=loop.name, op=op.label, tid=op.tid,
                                  kind="counted"))
    return len(hoisted)


def _hoist_while(seg: SegmentPlan, tracer: Tracer) -> int:
    """Hoist invariant *condition* ops of a while loop.

    The body may execute zero trips, so body ops never hoist; the
    condition runs at least once even then (test-first shape), which is
    exactly what makes moving an invariant condition op to the
    pre-header -- where it also runs exactly once -- sound.
    """
    loop = seg.loop
    exit_reg = loop.cj_op.srcs[0]
    cond = list(loop.cond_ops)
    rest = [op for op in loop.all_loop_ops() if op not in loop.cond_ops]
    hoisted: list[Operation] = []
    hoisted_defs: set[Reg] = set()
    protected = set(loop.carried_regs) | {exit_reg}
    changed = True
    while changed:
        changed = False
        iteration_ops = cond + rest
        for op in list(cond):
            if not _invariant(op, iteration_ops, protected, hoisted_defs):
                continue
            cond.remove(op)
            hoisted.append(op)
            hoisted_defs.add(op.dest)
            iteration_ops = cond + rest
            changed = True
    if not hoisted:
        return 0
    seg.loop = build_while_loop(
        loop.name, list(loop.preheader_ops) + hoisted, cond, exit_reg,
        loop.body_ops, carried=loop.carried_regs,
        epilogue=loop.epilogue_ops, description=loop.description,
        live_out=loop.live_out, inner=loop.inner)
    if tracer.enabled:
        for op in hoisted:
            tracer.emit(OpHoisted(loop=loop.name, op=op.label, tid=op.tid,
                                  kind="while"))
    return len(hoisted)


def hoist_invariants(plan: ProgramPlan,
                     tracer: Tracer = NULL_TRACER) -> int:
    """Hoist invariant ops segment by segment; returns the count.

    Segments whose descriptor changes are rebuilt through the canonical
    loop builders, so the unwinder and the while compactor see a
    self-consistent graph + metadata pair.
    """
    total = 0
    for seg in plan.segments:
        if isinstance(seg.loop, CountedLoop):
            total += _hoist_counted(seg, tracer)
        elif isinstance(seg.loop, WhileLoop):
            total += _hoist_while(seg, tracer)
    return total


# ----------------------------------------------------------------------
# Pass 3: adjacent counted-segment fusion
# ----------------------------------------------------------------------
def _counter_init(loop: CountedLoop) -> int | None:
    """The counter's initial value, from the pre-header CONST."""
    for op in loop.preheader_ops:
        if op.kind is OpKind.CONST and op.dest == loop.counter:
            return op.srcs[0].value
    return None


def _is_counter_init(op: Operation, counter: Reg) -> bool:
    return op.kind is OpKind.CONST and op.dest == counter


def _same_bound(la: CountedLoop, lb: CountedLoop) -> bool:
    if isinstance(la.bound, Imm) and isinstance(lb.bound, Imm):
        return la.bound.value == lb.bound.value
    if isinstance(la.bound, Reg) and isinstance(lb.bound, Reg):
        if la.bound.name != lb.bound.name:
            return False
        # Equal trips needs the shared bound register to be stable.
        writers = _defined_regs(la.all_loop_ops() + lb.all_loop_ops()
                                + la.preheader_ops + lb.preheader_ops)
        return la.bound not in writers
    return False


def _trip_count(loop: CountedLoop) -> int:
    """Static trip count (do-while: at least one), -1 when unknown."""
    lo = _counter_init(loop)
    if lo is None or not isinstance(loop.bound, Imm):
        return -1
    span = loop.bound.value - lo
    return max(1, -(-int(span) // loop.step))


def _fusion_blocker(a: SegmentPlan, b: SegmentPlan) -> str | None:
    """The ``why`` sub-code refusing fusion of ``a`` + ``b``, or None."""
    la, lb = a.loop, b.loop
    if not (isinstance(la, CountedLoop) and isinstance(lb, CountedLoop)):
        return "not-counted"
    if a.post_ops or b.pre_ops:
        return "interleaved-scalar"
    if la.epilogue_ops or lb.epilogue_ops:
        return "epilogue"
    lo_a, lo_b = _counter_init(la), _counter_init(lb)
    if (lo_a is None or lo_b is None or lo_a != lo_b
            or la.step != lb.step or not _same_bound(la, lb)):
        return "trip-mismatch"
    ca, cb = la.counter, lb.counter
    control = {ca, cb, Reg(f"{ca.name}.exit"), Reg(f"{cb.name}.exit")}
    # L2 pre-header ops other than the counter init run before the
    # fused loop, i.e. before everything L1 does: they must be
    # independent of L1 entirely (registers and memory).
    pre_b = [op for op in lb.preheader_ops if not _is_counter_init(op, cb)]
    l1_ops = la.preheader_ops + la.all_loop_ops()
    for op in pre_b:
        if any(any_dep(o, op) or any_dep(op, o) for o in l1_ops):
            return "preheader-dep"
    # Scalar rule: any shared non-control register between the bodies
    # changes which iteration's value a read observes under fusion.
    defs_a = _defined_regs(la.body_ops) - control
    defs_b = _defined_regs(lb.body_ops) - control
    uses_a = set().union(*(op.uses() for op in la.body_ops),
                         frozenset()) - control
    uses_b = set().union(*(op.uses() for op in lb.body_ops),
                         frozenset()) - control
    if (defs_a & uses_b) or (uses_a & defs_b) or (defs_a & defs_b):
        return "scalar-dep"
    if ca != cb:
        # L2 reading/writing L1's *live* induction variable would
        # observe it mid-flight after fusion instead of at rest.
        b_touch = _defined_regs(lb.body_ops).union(
            *(op.uses() for op in lb.body_ops))
        if ca in b_touch:
            return "scalar-dep"
    # Memory rule (see module docstring for the derivation).
    mem_a = [op for op in la.body_ops if op.mem is not None]
    mem_b = [op for op in lb.body_ops if op.mem is not None]
    for x in mem_a:
        for y in mem_b:
            if x.mem.array != y.mem.array:
                continue
            if not (x.writes_memory or y.writes_memory):
                continue
            if x.mem.index is None and y.mem.index is None:
                if x.mem.offset == y.mem.offset:
                    return "mem-dep"
            elif x.mem.affine is not None and y.mem.affine is not None:
                d = x.mem.affine - y.mem.affine
                if d < 0 and d % la.step == 0:
                    return "mem-dep"
            else:
                return "mem-unknown"
    return None


def _carried_scalars(ops, exclude: set[Reg]) -> set[Reg]:
    """Registers read before being written, among those written here."""
    written = _defined_regs(ops)
    seen: set[Reg] = set()
    carried: set[Reg] = set()
    for op in ops:
        for r in op.uses():
            if r not in seen and r in written and r not in exclude:
                carried.add(r)
        if op.dest is not None:
            seen.add(op.dest)
    return carried


def _fuse(la: CountedLoop, lb: CountedLoop) -> CountedLoop:
    ca, cb = la.counter, lb.counter
    body_b = list(lb.body_ops)
    if cb != ca:
        body_b = [op.substitute_use(cb, ca) for op in body_b]
    pre_b = [op for op in lb.preheader_ops if not _is_counter_init(op, cb)]
    body = list(la.body_ops) + body_b
    carried = (_carried_scalars(body, {ca})
               | (set(la.carried_regs) | set(lb.carried_regs)) - {ca, cb})
    return build_counted_loop(
        f"{la.name}+{lb.name}", list(la.preheader_ops) + pre_b, body, ca,
        la.bound, la.step, carried=sorted(carried, key=lambda r: r.name),
        epilogue=(),
        description=f"fused: {la.name} + {lb.name}",
        live_out=sorted(la.live_out | lb.live_out, key=lambda r: r.name))


def fuse_counted_segments(plan: ProgramPlan,
                          tracer: Tracer = NULL_TRACER) -> int:
    """Fuse adjacent counted segments in place; returns fusions applied.

    After a successful merge the same position is retried, so chains of
    three or more compatible loops collapse into one segment.
    """
    fused = 0
    segs = plan.segments
    i = 0
    while i + 1 < len(segs):
        a, b = segs[i], segs[i + 1]
        why = _fusion_blocker(a, b)
        if why is not None:
            if tracer.enabled:
                tracer.emit(FusionBlocked(first=a.loop.name,
                                          second=b.loop.name, why=why))
            i += 1
            continue
        merged = _fuse(a.loop, b.loop)
        if tracer.enabled:
            tracer.emit(FusionApplied(first=a.loop.name, second=b.loop.name,
                                      trip_count=_trip_count(merged)))
        segs[i] = SegmentPlan(loop=merged, pre_ops=list(a.pre_ops),
                              post_ops=list(b.post_ops))
        del segs[i + 1]
        fused += 1
    return fused


# ----------------------------------------------------------------------
# Pass 4: slack-slot motion (post-scheduling)
# ----------------------------------------------------------------------
def _select_leaf(node, lo: int, step: int, bound: int) -> int | None:
    """Statically resolve ``node``'s CJ tree for a counted segment.

    Every conditional jump in an unwound counted segment is an exit
    test tagged with its iteration ``i``; it fires iff
    ``lo + (i+1)*step >= bound``.  Returns the selected leaf's target,
    or None when a jump cannot be resolved.
    """
    tree = node.tree
    while isinstance(tree, Branch):
        cj = node.cjs.get(tree.cj_uid)
        if cj is None or cj.iteration < 0:
            return None
        taken = lo + (cj.iteration + 1) * step >= bound
        tree = tree.on_true if taken else tree.on_false
    assert isinstance(tree, Leaf)
    return tree.target


def _executed_path(graph: ProgramGraph, lo: int, step: int,
                   bound: int) -> list[int] | None:
    """Node ids on the executed path of a scheduled counted segment.

    The unwound chain is acyclic and its branch outcomes are static
    once ``lo``/``step``/``bound`` are known, so each listed node
    executes exactly once; nodes off the path (iterations past the
    trip count) execute zero times and must not host moved code.
    """
    order: list[int] = []
    seen: set[int] = set()
    nid = graph.entry
    while nid is not None and nid != EXIT:
        if nid in seen or nid not in graph.nodes:
            return None
        seen.add(nid)
        order.append(nid)
        nid = _select_leaf(graph.nodes[nid], lo, step, bound)
    return order if nid == EXIT else None


def _class_idle(machine: MachineConfig, node, op: Operation) -> int:
    """Idle slots left for ``op``'s FU class in ``node``.

    Same accounting as the inefficiency report's per-class idle
    breakdown (:func:`repro.obs.report` ``_node_usage``): the class
    budget is ``machine.class_budget``, usage counts every resident op
    of the class.
    """
    budget = machine.class_budget(fu_class_of(op))
    if budget is None:
        return 1
    cls = fu_class_of(op)
    used = sum(1 for o in node.all_ops() if fu_class_of(o) is cls)
    return budget - used


def slack_slot_motion(plan: ProgramPlan, segments, machine: MachineConfig,
                      tracer: Tracer = NULL_TRACER) -> int:
    """Migrate residual epilogue ops into the last segment's idle slots.

    ``segments`` is the per-segment schedule list produced by
    :func:`~repro.pipelining.program.schedule_program` (duck-typed:
    ``kind``/``loop``/``graph`` attributes), aligned with
    ``plan.segments``.  A candidate moves only when it is fully
    independent of the target segment (both dependence directions,
    registers and memory) and of every other residual op, and only
    into executed-path nodes with idle capacity in its FU class --
    leftover ops simply stay in the epilogue chunk.  Mutations go
    through ``graph.add_op`` so the event journal sees them.
    """
    if not plan.segments or not segments:
        return 0
    seg_plan = plan.segments[-1]
    seg = segments[-1]
    if getattr(seg, "kind", None) != "counted" or not seg_plan.post_ops:
        return 0
    loop = seg.loop
    if not isinstance(loop.bound, Imm):
        return 0
    lo = _counter_init(loop)
    if lo is None:
        return 0
    path = _executed_path(seg.graph, lo, loop.step, int(loop.bound.value))
    if not path:
        return 0
    graph_ops = [op for _, op in seg.graph.all_operations()]
    moved = 0
    for op in list(seg_plan.post_ops):
        others = [o for o in seg_plan.post_ops if o is not op]
        if any(any_dep(g, op) or any_dep(op, g) for g in graph_ops):
            continue
        if any(any_dep(o, op) or any_dep(op, o) for o in others):
            continue
        target = None
        for nid in reversed(path):
            node = seg.graph.nodes[nid]
            if _class_idle(machine, node, op) > 0 and \
                    machine.can_accept(node, op):
                target = nid
                break
        if target is None:
            continue
        seg.graph.add_op(target, op)
        seg_plan.post_ops.remove(op)
        graph_ops.append(op)
        moved += 1
        if tracer.enabled:
            tracer.emit(SlackMove(segment=loop.name, op=op.label,
                                  tid=op.tid, nid=target))
    return moved
