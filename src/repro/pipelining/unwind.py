"""Loop unwinding for Perfect Pipelining.

"When GRiP is used for Perfect Pipelining, the loop body is unwound a
fixed number of times before scheduling" (section 3.2).  The unwinder
produces an *acyclic* chain of iteration copies, tagged with iteration
numbers, that the GRiP scheduler then compacts; the pattern detector
finds the steady state in the compacted chain.

Two front-end-style rewrites happen here, standing in for what the
paper's optimized GCC intermediate code provided:

* **induction-variable expansion** -- iteration *i* computes its own
  counter value ``k.i = k + (i+1)*step`` directly from the live-in
  counter instead of chaining through ``i`` serial increments.  Without
  this (or the equivalent strength reduction GCC performs) no schedule
  could exceed one iteration per cycle and the paper's 8-FU speedups
  would be unreachable.  Body uses read the *pre-increment* value
  (``k`` itself for iteration 0, ``k.(i-1)`` otherwise).
* **per-iteration renaming of iteration-local temporaries** -- body
  destinations that are neither live on loop entry nor carried around
  the back edge get iteration-suffixed names, so unwound copies do not
  serialize on false (anti/output) dependences.  Carried registers
  (accumulators) keep their names: their serial chains are real.

Memory references with affine annotations are rebased to absolute
iteration-normalized indices, enabling exact cross-iteration
disambiguation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..ir.builder import SequentialBuilder
from ..ir.cjtree import EXIT
from ..ir.graph import ProgramGraph
from ..ir.loops import CountedLoop
from ..ir.operations import MemRef, Operation, add, cjump, cmp_ge
from ..ir.registers import Reg


@dataclass
class UnwoundLoop:
    """An unwound, iteration-tagged, acyclic loop chain."""

    graph: ProgramGraph
    loop: CountedLoop | None
    iterations: int
    #: all iteration ops in order (ranking input for the scheduler)
    ops: list[Operation]
    #: tid -> (body index, iteration); body index is the op's position
    #: in the original body (control ops get synthetic indices).
    origin: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: per-iteration exit-branch templates (for simulation accounting)
    exit_branch_tids: list[int] = field(default_factory=list)
    #: templates that mark completion of one iteration's body
    iteration_marker_tids: list[int] = field(default_factory=list)

    @property
    def seq_cycles_per_iteration(self) -> int:
        if self.loop is not None:
            return self.loop.ops_per_iteration
        per_iter = len({self.origin[t][0] for t in self.origin})
        return per_iter


#: synthetic body indices for control operations
IV_INDEX = -2
CMP_INDEX = -3
CJ_INDEX = -4


def iteration_locals(loop: CountedLoop) -> frozenset[Reg]:
    """Body destinations safe to rename per iteration.

    A destination is iteration-local when it is written before any body
    read (no use of the entry value) and is not carried or live after
    the loop.  The counter, declared carried registers, registers the
    epilogue reads and the loop's ``live_out`` set (read by later
    segments of a :class:`~repro.ir.loops.LoopProgram`) are excluded.
    """
    carried = set(loop.carried_regs) | {loop.counter} | set(loop.live_out)
    for op in loop.epilogue_ops:
        carried |= op.uses()
    seen_defs: set[Reg] = set()
    read_before_write: set[Reg] = set()
    for op in loop.body_ops:
        for r in op.uses():
            if r not in seen_defs:
                read_before_write.add(r)
        seen_defs |= op.defs()
    out = {r for r in seen_defs
           if r not in carried and r not in read_before_write}
    return frozenset(out)


def _rename_map(locals_: frozenset[Reg], iteration: int) -> dict[Reg, Reg]:
    return {r: Reg(f"{r.name}.{iteration}") for r in locals_}


def _rewrite(op: Operation, regmap: dict[Reg, Reg], iteration: int,
             step: int, pos: int) -> Operation:
    """Iteration copy: rename registers, tag, rebase affine memory.

    The copy gets a fresh uid *and* a fresh template id: each (body op,
    iteration) pair is its own template, which the iteration-major
    ranking relies on.
    """
    srcs = tuple(regmap.get(s, s) if isinstance(s, Reg) else s
                 for s in op.srcs)
    dest = regmap.get(op.dest, op.dest) if op.dest is not None else None
    mem = op.mem
    if mem is not None:
        index = mem.index
        if isinstance(index, Reg):
            index = regmap.get(index, index)
        affine = mem.affine
        if affine is not None:
            affine = affine + iteration * step
        mem = MemRef(mem.array, index, mem.offset, affine)
    return replace(op, srcs=srcs, dest=dest, mem=mem, iteration=iteration,
                   pos=pos, uid=_fresh_uid(), tid=-1)


def _fresh_uid() -> int:
    from ..ir.operations import next_uid

    return next_uid()


def unwind_counted(loop: CountedLoop, k: int, *,
                   emit_exits: bool = True) -> UnwoundLoop:
    """Unwind ``loop`` into ``k`` tagged iteration copies.

    The result graph: preheader ops (untagged), then for each iteration
    *i* the body (counter reads substituted), the expanded IV compute,
    the exit compare and the exit jump.  The copies share one op *per
    body position per iteration* and fresh uids/tids throughout, so the
    scheduler sees distinct templates per (body op, iteration) -- which
    is what the ranking stipulation "iteration i before iteration j>i"
    needs.
    """
    builder = SequentialBuilder()
    locals_ = iteration_locals(loop)
    origin: dict[int, tuple[int, int]] = {}
    ops_out: list[Operation] = []
    exit_tids: list[int] = []
    marker_tids: list[int] = []
    cj_nodes: list[int] = []

    for op in loop.preheader_ops:
        cp = replace(op, uid=_fresh_uid(), tid=-1, iteration=-1)
        builder.append(cp)

    base = loop.counter  # pre-increment counter value for iteration 0
    pos = 0
    for i in range(k):
        regmap = _rename_map(locals_, i)
        # Body uses of the counter read the running base.
        if base != loop.counter:
            regmap = {**regmap, loop.counter: base}
        body_new: list[Operation] = []
        for b_idx, op in enumerate(loop.body_ops):
            cp = _rewrite(op, regmap, i, loop.step, pos)
            pos += 1
            builder.append(cp)
            origin[cp.tid] = (b_idx, i)
            ops_out.append(cp)
            body_new.append(cp)
        if body_new:
            marker_tids.append(body_new[-1].tid)
        # IV expansion: k.i = k + (i+1)*step.
        next_base = Reg(f"{loop.counter.name}.{i}")
        iv = add(next_base, loop.counter, (i + 1) * loop.step,
                 name=f"iv{i}", iteration=i, pos=pos)
        pos += 1
        builder.append(iv)
        origin[iv.tid] = (IV_INDEX, i)
        ops_out.append(iv)
        if emit_exits:
            cond = Reg(f"{loop.counter.name}.exit.{i}")
            cmp_ = cmp_ge(cond, next_base, loop.bound,
                          name=f"cmp{i}", iteration=i, pos=pos)
            pos += 1
            cj = cjump(cond, name=f"br{i}", iteration=i, pos=pos)
            pos += 1
            builder.append(cmp_)
            cj_node = builder.append_cjump(cj, true_target=EXIT)
            cj_nodes.append(cj_node.nid)
            origin[cmp_.tid] = (CMP_INDEX, i)
            origin[cj.tid] = (CJ_INDEX, i)
            ops_out.extend([cmp_, cj])
            exit_tids.append(cj.tid)
        base = next_base

    # Epilogue (scalar-result stores etc.): every iteration's exit jump
    # lands here, as does the fall-through after the last iteration.
    if loop.epilogue_ops:
        epi_head: int | None = None
        for op in loop.epilogue_ops:
            cp = replace(op, uid=_fresh_uid(), tid=-1, iteration=-1)
            node = builder.append(cp)
            if epi_head is None:
                epi_head = node.nid
        graph = builder.graph
        # Appending the epilogue chain already linked the last branch's
        # fall-through; every leaf still pointing at EXIT is an exit
        # side and must run the epilogue instead.
        for nid in cj_nodes:
            node = graph.nodes[nid]
            for leaf in node.leaves():
                if leaf.target == EXIT:
                    graph.retarget_leaf(nid, leaf.leaf_id, epi_head)

    return UnwoundLoop(graph=builder.graph, loop=loop, iterations=k,
                       ops=ops_out, origin=origin,
                       exit_branch_tids=exit_tids,
                       iteration_marker_tids=marker_tids)


def unwind_implicit(body_ops: list[Operation], k: int) -> UnwoundLoop:
    """Unwind a control-free loop body (the paper's worked examples).

    Registers are shared across copies; percolation's renaming handles
    the false dependences dynamically, exactly as in the paper's
    figures.
    """
    builder = SequentialBuilder()
    origin: dict[int, tuple[int, int]] = {}
    ops_out: list[Operation] = []
    marker_tids: list[int] = []
    pos = 0
    for i in range(k):
        last = None
        for b_idx, op in enumerate(body_ops):
            cp = replace(op, uid=_fresh_uid(), tid=-1, iteration=i, pos=pos)
            mem = cp.mem
            if mem is not None and mem.affine is not None:
                cp = replace(cp, mem=MemRef(mem.array, mem.index, mem.offset,
                                            mem.affine + i),
                             uid=cp.uid, tid=cp.tid)
            pos += 1
            builder.append(cp)
            origin[cp.tid] = (b_idx, i)
            ops_out.append(cp)
            last = cp
        if last is not None:
            marker_tids.append(last.tid)
    return UnwoundLoop(graph=builder.graph, loop=None, iterations=k,
                       ops=ops_out, origin=origin,
                       iteration_marker_tids=marker_tids)
