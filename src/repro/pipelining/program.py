"""Scheduling whole loop programs: counted, non-counted, sequenced.

The paper's evaluation pipelines one counted loop at a time; GRiP's
percolation framework, however, is defined over arbitrary CJ-tree
control flow.  This module extends the driver to
:class:`~repro.ir.loops.LoopProgram` shapes -- sequences of counted
(``for``) and non-counted (``while``) loops sharing scalar state --
scheduled through a staged pass pipeline
(:mod:`repro.pipelining.passes`) with one load-bearing soundness rule:

**scheduling never crosses a loop boundary; only the explicit,
individually-verified pass-pipeline transforms (invariant hoisting,
counted-segment fusion, slack-slot motion) may.**  Each loop is
scheduled as an isolated segment on its own graph and the results are
re-concatenated (:func:`~repro.ir.loops.concat_graphs`), so GRiP and
gap prevention only ever see a single loop's (acyclic, unwound) region
at a time:

* **counted segments** run the full Perfect Pipelining flow exactly as
  before -- unwind ``K`` iterations, GRiP-compact, detect the steady
  kernel -- with the segment's ``live_out`` registers pinned live at
  exit so clean-up keeps values later segments read;
* **while segments** have an *unknown trip count*: there is no static
  iteration to tag, so unwinding and pattern detection **decline**.
  Instead the condition region and the body region are each compacted
  locally by list scheduling (:func:`compact_while`), preserving the
  header's exit test before any body effect; the data-dependent back
  edge stays in the graph and the simulator/bundle VM execute it for
  however many iterations the data dictates.

Program-level measurement runs the combined scheduled graph against
the combined sequential reference on identical randomized states --
memory must agree, which makes every multi-loop data point double as a
correctness check, exactly like the Table-1 flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

from ..ir.builder import SequentialBuilder
from ..ir.cjtree import EXIT
from ..ir.graph import ProgramGraph
from ..ir.loops import (CountedLoop, LoopProgram, ProgramPlan, WhileLoop,
                        concat_graphs)
from ..machine.model import MachineConfig
from ..obs.tracer import NULL_TRACER, SegmentBegin, Tracer
from ..scheduling.grip import GRiPScheduler, ScheduleResult
from ..scheduling.listsched import list_schedule
from ..scheduling.policy import DEFAULT_POLICY, SchedulePolicy
from ..scheduling.priority import Heuristic, WeightedHeuristic
from ..simulator.check import check_equivalent, initial_state, input_registers
from ..simulator.interp import run
from .pattern import PipelinePattern, ThroughputEstimate, find_pattern, graph_throughput
from .perfect import default_unroll
from .unwind import UnwoundLoop, unwind_counted


def compact_while(loop: WhileLoop, machine: MachineConfig, *,
                  heuristic: Heuristic | None = None) -> ProgramGraph:
    """Compact one while loop within a single iteration (no unwinding).

    The trip count is unknown, so cross-iteration motion is off the
    table; what remains is packing each region into wide instructions:

    * the condition ops are list-scheduled into header rows,
    * the exit jump keeps its own node after them (its condition must
      come from instruction-entry state, and no body effect may leak
      onto the exit path),
    * the body ops are list-scheduled into rows behind the jump,
    * the back edge returns to the first header row.

    Nested while loops (``loop.inner``) are emitted recursively at
    their anchors: the body chunk before each anchor is compacted,
    then the inner loop's own condition rows / exit jump / body rows /
    back edge, and the chain resumes from the inner exit jump's open
    leaf -- mirroring :func:`repro.ir.loops.build_while_loop` exactly,
    row-packed.  Chunks never schedule across an inner-loop boundary.

    Latency maps are ignored here exactly as GRiP ignores them: the
    percolation framework is single-cycle and the bundle VM's
    scoreboard realizes multi-cycle timing afterwards.
    """
    sched_machine = (machine if machine.latencies is None
                     else dc_replace(machine, latencies=None))
    builder = SequentialBuilder()
    graph = builder.graph

    def append_row(ops) -> int | None:
        if not ops:
            return None
        node = builder.append(ops[0])
        for op in ops[1:]:
            graph.add_op(node.nid, op)
        return node.nid

    def emit_rows(ops) -> None:
        if not ops:
            return
        for row in list_schedule(list(ops), sched_machine,
                                 heuristic=heuristic).rows:
            append_row(row)

    def emit_body(body_ops, inner) -> None:
        idx = 0
        for iw in inner:
            emit_rows(body_ops[idx:iw.anchor])
            idx = iw.anchor
            emit_loop(iw, is_inner=True)
        emit_rows(body_ops[idx:])

    def emit_loop(w, *, is_inner: bool) -> None:
        header: int | None = None
        for row in list_schedule(list(w.cond_ops), sched_machine,
                                 heuristic=heuristic).rows:
            nid = append_row(row)
            if nid is not None and header is None:
                header = nid
        cj_node = builder.append_cjump(w.cj_op, true_target=EXIT)
        if header is None:
            header = cj_node.nid
        emit_body(w.body_ops, w.inner)
        builder.close_loop(header)
        if is_inner:
            # The back edge consumed the fall-through; continue the
            # host chain from this loop's still-open exit leaf.
            builder.resume(cj_node)

    for op in loop.preheader_ops:
        builder.append(op)
    emit_loop(loop, is_inner=False)
    return graph


@dataclass
class SegmentSchedule:
    """One loop of a program, scheduled in isolation."""

    loop: CountedLoop | WhileLoop
    kind: str                       # "counted" | "while"
    graph: ProgramGraph             # the scheduled segment
    unwound: UnwoundLoop | None = None
    schedule: ScheduleResult | None = None
    pattern: PipelinePattern | None = None
    throughput: ThroughputEstimate | None = None

    @property
    def converged(self) -> bool:
        """Counted: steady kernel found; while: trivially converged
        (single-iteration compaction has no steady state to find)."""
        if self.kind != "counted":
            return True
        if self.pattern is not None:
            return True
        return self.throughput is not None and self.throughput.steady

    @property
    def initiation_interval(self) -> float | None:
        if self.kind != "counted":
            return None
        if self.pattern is not None:
            return self.pattern.initiation_interval
        if self.throughput is not None and self.throughput.steady:
            return self.throughput.ii
        return None


@dataclass
class ProgramPipelineResult:
    """Everything reported about one scheduled loop program."""

    program: LoopProgram
    machine: MachineConfig
    segments: list[SegmentSchedule]
    graph: ProgramGraph             # combined scheduled graph
    measured_seq_cycles: int | None = None
    measured_par_cycles: int | None = None
    seeds: list[int] = field(default_factory=list)
    #: normalized plan the pass pipeline worked on (None: legacy path)
    plan: "ProgramPlan | None" = None
    #: program epilogue ops still running after the last segment --
    #: shrinks when slack motion migrates ops into segment idle slots;
    #: the report's epilogue bound is computed over *this* list.
    residual_epilogue: list = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return all(seg.converged for seg in self.segments)

    @property
    def periodic(self) -> bool:
        """Every counted segment found an exact periodic kernel (while
        segments have no kernel by definition and don't count against)."""
        return all(seg.pattern is not None for seg in self.segments
                   if seg.kind == "counted")

    @property
    def measured_speedup(self) -> float | None:
        if not self.measured_seq_cycles or not self.measured_par_cycles:
            return None
        return self.measured_seq_cycles / self.measured_par_cycles

    @property
    def speedup(self) -> float | None:
        """Program-level speedup: measured, whole-run (ramp included).

        Multi-loop and non-counted programs have no single analytic II,
        so the reported metric is the simulated cycle ratio over the
        full program window.
        """
        return self.measured_speedup

    def summary(self) -> str:
        lines = [f"{self.program.name} on {self.machine}: "
                 f"{len(self.segments)} segment(s)"]
        for i, seg in enumerate(self.segments):
            if seg.kind == "counted":
                ii = seg.initiation_interval
                detail = (f"II={ii:.3f}" if ii is not None
                          else "NOT CONVERGED")
                lines.append(f"  L{i} counted: {detail}")
            else:
                lines.append(
                    f"  L{i} while: compacted to "
                    f"{len(seg.graph.nodes)} rows/iteration "
                    f"(trip count unknown; pipelining declined)")
        if self.measured_speedup is not None:
            lines.append(f"  speedup (measured, whole program): "
                         f"{self.measured_speedup:.2f}")
        merged = self._merged_stats()
        if merged is not None:
            lines.append(f"  {merged.tally_line()}")
        return "\n".join(lines)

    def _merged_stats(self):
        """Move tallies summed over the counted segments (None if none)."""
        from ..percolation.moveop import PercolationStats

        scheds = [seg.schedule for seg in self.segments
                  if seg.schedule is not None]
        if not scheds:
            return None
        merged = PercolationStats()
        for s in scheds:
            merged.attempts += s.stats.attempts
            merged.moves += s.stats.moves
            for key, val in s.stats.by_reason.items():
                merged.by_reason[key] = merged.by_reason.get(key, 0) + val
        return merged


def schedule_program(program: LoopProgram, machine: MachineConfig, *,
                     unroll: int | None = None,
                     heuristic: Heuristic | None = None,
                     gap_prevention: bool = True,
                     allow_speculation: bool = True,
                     optimize: bool = True,
                     measure: bool = True,
                     verify: bool = True,
                     verify_analysis: bool = False,
                     seeds: tuple[int, ...] = (0,),
                     tracer: Tracer | None = None,
                     policy: SchedulePolicy | None = None
                     ) -> ProgramPipelineResult:
    """Schedule a whole loop program through the staged pass pipeline.

    The program is first normalized into a
    :class:`~repro.ir.loops.ProgramPlan`; with ``optimize`` (default)
    the cross-segment passes run around per-segment scheduling:
    invariant hoisting and counted-segment fusion rewrite the plan
    before any segment is unwound, slack-slot motion fills schedule
    idle slots from the residual epilogue afterwards
    (:mod:`repro.pipelining.passes`).  ``optimize=False`` is the
    legacy fixed per-segment flow -- the differential baseline the
    property suite schedules both ways and compares.

    ``verify_analysis`` attaches a verifying
    :class:`~repro.analysis.incremental.AnalysisManager` to every
    counted segment before GRiP runs (the fuzz lane's journal check).
    ``tracer`` (observe-only) receives every counted segment's GRiP
    decision stream bracketed by ``SegmentBegin`` events, plus the
    pass pipeline's transform events.  ``policy`` steers each
    segment's scheduling knobs plus the per-pass enables of the
    ``optimize`` pipeline (a pass runs only when ``optimize`` is on
    *and* the policy enables it); the default policy is
    schedule-neutral.
    """
    from .passes import (fuse_counted_segments, hoist_invariants,
                         normalize_program, slack_slot_motion)

    tracer = tracer if tracer is not None else NULL_TRACER
    pol = policy if policy is not None else DEFAULT_POLICY
    plan = normalize_program(program)
    if optimize:
        if pol.enable_hoist:
            hoist_invariants(plan, tracer)
        if pol.enable_fuse:
            fuse_counted_segments(plan, tracer)
    segments: list[SegmentSchedule] = []
    for i, seg_plan in enumerate(plan.segments):
        lp = seg_plan.loop
        if isinstance(lp, CountedLoop):
            if tracer.enabled:
                tracer.emit(SegmentBegin(index=i, kind="counted",
                                         name=lp.name))
            if unroll is not None:
                k = unroll
            elif pol.unroll is not None:
                k = pol.unroll
            else:
                k = default_unroll(machine, lp)
            unwound = unwind_counted(lp, k)
            if verify_analysis:
                from ..analysis.incremental import AnalysisManager

                AnalysisManager(unwound.graph, verify=True)
            scheduler = GRiPScheduler(
                machine, heuristic,
                gap_prevention=gap_prevention,
                allow_speculation=allow_speculation,
                tracer=tracer, policy=pol)
            sched = scheduler.schedule(unwound.graph,
                                       ranking_ops=unwound.ops,
                                       exit_live=lp.live_out)
            segments.append(SegmentSchedule(
                loop=lp, kind="counted", graph=unwound.graph,
                unwound=unwound, schedule=sched,
                pattern=find_pattern(unwound, unwound.graph),
                throughput=graph_throughput(unwound, unwound.graph)))
        else:
            if tracer.enabled:
                tracer.emit(SegmentBegin(index=i, kind="while",
                                         name=lp.name))
            segments.append(SegmentSchedule(
                loop=lp, kind="while",
                graph=compact_while(
                    lp, machine,
                    heuristic=(heuristic if heuristic is not None
                               else WeightedHeuristic(pol)))))
    if optimize and pol.enable_slack:
        slack_slot_motion(plan, segments, machine, tracer)
    parts: list = []
    for seg_plan, seg in zip(plan.segments, segments):
        parts.append(seg_plan.pre_ops)
        parts.append(seg.graph)
        parts.append(seg_plan.post_ops)
    if not plan.segments and program.epilogue_ops:
        parts.append(list(program.epilogue_ops))
    combined = concat_graphs(parts)
    result = ProgramPipelineResult(
        program=program, machine=machine, segments=segments,
        graph=combined, seeds=list(seeds), plan=plan,
        residual_epilogue=plan.residual_epilogue())
    if measure:
        _measure_program(result, verify=verify, seeds=seeds)
    return result


def pipeline_program(program: LoopProgram, machine: MachineConfig,
                     **kwargs) -> ProgramPipelineResult:
    """Deprecated alias for :func:`schedule_program`.

    Kept as a thin delegating shim for one release; new code goes
    through :func:`repro.api.schedule`, which dispatches on the
    descriptor type and can consult a schedule cache.
    """
    import warnings

    warnings.warn(
        "pipeline_program is deprecated; use repro.api.schedule (or "
        "repro.pipelining.schedule_program)", DeprecationWarning,
        stacklevel=2)
    return schedule_program(program, machine, **kwargs)


def _measure_program(result: ProgramPipelineResult, *, verify: bool,
                     seeds: tuple[int, ...]) -> None:
    """Simulate sequential vs scheduled over the whole program window.

    With ``verify`` the paired runs go through
    :func:`~repro.simulator.check.check_equivalent` -- the one shared
    memory comparator (NaN-aware) -- so every multi-loop measurement
    doubles as a correctness check, exactly like the Table-1 flow.
    """
    seq_graph = result.program.graph
    par_graph = result.graph
    per_pass = max(1, result.program.ops_per_iteration)
    iters = max((seg.unwound.iterations for seg in result.segments
                 if seg.unwound is not None), default=16)
    budget = max(200_000, 100 * per_pass * iters)
    if verify:
        report = check_equivalent(seq_graph, par_graph, seeds=seeds,
                                  max_cycles=budget)
        result.measured_seq_cycles = sum(report.cycles_a)
        result.measured_par_cycles = sum(report.cycles_b)
        return
    inputs = input_registers(seq_graph) | input_registers(par_graph)
    seq_total = par_total = 0
    for seed in seeds:
        ra = run(seq_graph, initial_state(seed, inputs), max_cycles=budget)
        rb = run(par_graph, initial_state(seed, inputs), max_cycles=budget)
        if not ra.exited or not rb.exited:
            raise RuntimeError(
                f"{result.program.name}: program measurement run did "
                f"not terminate")
        seq_total += ra.cycles
        par_total += rb.cycles
    result.measured_seq_cycles = seq_total
    result.measured_par_cycles = par_total
