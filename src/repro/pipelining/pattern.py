"""Steady-state pattern detection (paper section 2, "the cha pattern
in the middle continuously repeats").

After GRiP compacts an unwound loop, Perfect Pipelining's kernel is a
contiguous run of instruction rows whose contents repeat with a fixed
iteration shift.  A row's *signature* is the multiset of
``(body index, iteration - base)`` pairs of the operations it holds
(``base`` = the smallest iteration in the row); rows match when their
signatures agree and their bases advance uniformly.

The detector returns the earliest, shortest ``(start, period, shift)``
consistent over the observable window, which yields the initiation
interval ``II = period / shift`` in cycles per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Sequence

from ..analysis.incremental import rpo_index
from ..ir.graph import ProgramGraph
from .unwind import UnwoundLoop


@dataclass(frozen=True)
class RowSignature:
    """Normalized content signature of one instruction row."""

    items: tuple[tuple[int, int], ...]  # sorted (body index, iter delta)
    base: int                           # smallest iteration in the row
    max_iter: int                       # largest iteration in the row
    extras: int                         # untagged / unknown-origin ops

    @property
    def empty(self) -> bool:
        return not self.items and self.extras == 0

    @property
    def tagged(self) -> bool:
        """Does the row hold any iteration-tagged op?

        Rows without tagged items (empty rows, or rows of pure
        untagged/extra ops) carry the sentinel ``base=0`` -- their base
        is meaningless and must not participate in shift arithmetic.
        """
        return bool(self.items)


def ops_signature(unwound: UnwoundLoop, ops) -> RowSignature:
    """Signature of an arbitrary collection of operations."""
    tagged: list[tuple[int, int]] = []
    extras = 0
    iters: list[int] = []
    for op in ops:
        info = unwound.origin.get(op.tid)
        if info is None or op.iteration < 0:
            extras += 1
            continue
        b_idx, it = info
        tagged.append((b_idx, it))
        iters.append(it)
    if not iters:
        return RowSignature(items=(), base=0, max_iter=-1, extras=extras)
    base = min(iters)
    items = tuple(sorted((b, it - base) for b, it in tagged))
    return RowSignature(items=items, base=base, max_iter=max(iters),
                        extras=extras)


def row_signature(unwound: UnwoundLoop, graph: ProgramGraph,
                  nid: int) -> RowSignature:
    return ops_signature(unwound, graph.nodes[nid].all_ops())


def main_chain(graph: ProgramGraph) -> list[int]:
    """The fall-through spine of a compacted unwound loop.

    Exit-branch motion spins off drain stubs that merge into EXIT; the
    kernel lives on the spine.  From each node we follow the successor
    with the most forward descendants (the stub side is always a short
    tail).
    """
    # The memoized/incremental RPO map, like every other consumer: a
    # detector run right after scheduling reuses the scheduler's index
    # instead of re-running a DFS (the map iterates in RPO order).
    index = rpo_index(graph)
    order = list(index)
    weight: dict[int, int] = {}
    for nid in reversed(order):
        succ = [s for s in graph.successors(nid)
                if s in index and index[s] > index[nid]]
        weight[nid] = 1 + max((weight.get(s, 0) for s in succ), default=0)
    chain: list[int] = []
    cur = graph.entry
    seen: set[int] = set()
    while cur is not None and cur in graph.nodes and cur not in seen:
        chain.append(cur)
        seen.add(cur)
        succ = [s for s in graph.successors(cur)
                if s in index and index[s] > index[cur]]
        if not succ:
            break
        cur = max(succ, key=lambda s: weight.get(s, 0))
    return chain


@dataclass
class PipelinePattern:
    """A detected steady-state kernel."""

    start_row: int          # index into the row list
    period: int             # rows per kernel round
    shift: int              # iterations retired per kernel round
    rows: list[int]         # node ids of one kernel round
    repetitions: int        # how many full rounds were observed

    @property
    def initiation_interval(self) -> float:
        """Cycles per iteration in steady state."""
        return self.period / self.shift

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"kernel rows {self.rows} (period {self.period}, "
                f"{self.shift} iteration(s)/round, II="
                f"{self.initiation_interval:.3f})")


def find_pattern(unwound: UnwoundLoop, graph: ProgramGraph, *,
                 max_period: int = 64,
                 min_repetitions: int = 2,
                 drain_guard: int = 2) -> PipelinePattern | None:
    """Search the compacted chain for a repeating kernel.

    Only the fall-through spine is considered (exit stubs are drain
    code).  Rows touching the last ``drain_guard`` unwound iterations
    are trimmed: with no further iterations behind them they
    legitimately diverge from the steady state.
    """
    order = main_chain(graph)
    sigs = [row_signature(unwound, graph, nid) for nid in order]
    return find_pattern_in_signatures(
        sigs, unwound.iterations, row_ids=order, max_period=max_period,
        min_repetitions=min_repetitions, drain_guard=drain_guard)


def find_pattern_in_signatures(sigs: list[RowSignature], iterations: int, *,
                               row_ids: Sequence[int] | None = None,
                               max_period: int = 64,
                               min_repetitions: int = 2,
                               drain_guard: int = 2
                               ) -> PipelinePattern | None:
    """Core periodicity search over a row-signature sequence."""
    ids = list(row_ids) if row_ids is not None else list(range(len(sigs)))
    cutoff_iter = iterations - drain_guard
    limit = len(sigs)
    for i, s in enumerate(sigs):
        if not s.empty and s.max_iter >= cutoff_iter:
            limit = i
            break

    n = limit
    for period in range(1, min(max_period, max(1, n // max(min_repetitions, 1))) + 1):
        for start in range(0, n - period * min_repetitions + 1):
            shift = _derive_shift(sigs, start, period, n)
            if shift is None or shift <= 0:
                continue
            if _matches(sigs, start, period, shift, n, min_repetitions):
                reps = _count_reps(sigs, start, period, shift, n)
                return PipelinePattern(
                    start_row=start, period=period, shift=shift,
                    rows=ids[start:start + period], repetitions=reps)
    return None


def _derive_shift(sigs: Sequence[RowSignature], start: int, period: int,
                  n: int) -> int | None:
    """Base advance of the first *tagged* row pair one period apart.

    Untagged rows (empty, or holding only extras) carry the sentinel
    ``base=0``; deriving the shift from one of those silently yields a
    bogus value, so steady-state kernels containing an empty row were
    never detected.  Skip forward to the first pair whose bases are
    real; ``None`` when the window has no tagged pair.
    """
    for r in range(start, n - period):
        a, b = sigs[r], sigs[r + period]
        if a.tagged and b.tagged:
            return b.base - a.base
    return None


def _matches(sigs: Sequence[RowSignature], start: int, period: int,
             shift: int, n: int, min_reps: int) -> bool:
    """Pattern must hold from ``start`` to the window's end.

    Every row in ``[start, n - period)`` must match its successor one
    period later with a uniform base shift, and the window must cover
    at least ``min_reps`` kernel instances.
    """
    if n - start < period * min_reps:
        return False
    for r in range(start, n - period):
        a, b = sigs[r], sigs[r + period]
        if a.items != b.items or a.extras != b.extras:
            return False
        # Matching items guarantee a.tagged == b.tagged; untagged rows
        # have sentinel bases that must not be compared.
        if a.tagged and b.base - a.base != shift:
            return False
    return True


def _count_reps(sigs: Sequence[RowSignature], start: int, period: int,
                shift: int, n: int) -> int:
    return max(0, (n - start) // period)


@dataclass
class ThroughputEstimate:
    """Steady-state initiation interval measured from retirement rows.

    Exact row periodicity can fail while throughput is perfectly steady
    (greedy slot choices drift by one position without ever re-aligning).
    The estimate tracks the row in which each iteration *retires* (its
    last body operation commits) across the middle of the window:

        II = (retire_row(j2) - retire_row(j1)) / (j2 - j1)

    ``max_deviation`` is the worst absolute distance of any mid-window
    retirement from the fitted line; a pipeline counts as *steady* when
    it stays within :data:`STEADY_TOLERANCE_ROWS` (1.5 rows: one row of
    greedy slot drift plus half a row of fit rounding).
    """

    #: Worst tolerated retirement deviation, in rows, for ``steady``.
    STEADY_TOLERANCE_ROWS: ClassVar[float] = 1.5

    ii: float
    first_iter: int
    last_iter: int
    max_deviation: float

    @property
    def steady(self) -> bool:
        return self.max_deviation <= self.STEADY_TOLERANCE_ROWS


def retire_rows(unwound: UnwoundLoop,
                rows_of_ops: Sequence[Sequence]) -> dict[int, int]:
    """Iteration -> index of the row where its marker op commits."""
    markers = set(unwound.iteration_marker_tids)
    out: dict[int, int] = {}
    for idx, ops in enumerate(rows_of_ops):
        for op in ops:
            if op.tid in markers and op.iteration >= 0:
                out[op.iteration] = max(out.get(op.iteration, -1), idx)
    return out


def estimate_ii(retires: dict[int, int], iterations: int, *,
                trim: float = 0.25) -> ThroughputEstimate | None:
    """Fit the steady II over the mid-window retirements."""
    lo = int(iterations * trim)
    hi = int(iterations * (1 - trim))
    window = sorted(j for j in retires if lo <= j <= hi)
    if len(window) < 3:
        return None
    a, b = window[0], window[-1]
    if b == a or retires[b] == retires[a]:
        return None
    ii = (retires[b] - retires[a]) / (b - a)
    dev = max(abs(retires[j] - (retires[a] + (j - a) * ii))
              for j in window)
    return ThroughputEstimate(ii=ii, first_iter=a, last_iter=b,
                              max_deviation=dev)


def graph_throughput(unwound: UnwoundLoop, graph: ProgramGraph
                     ) -> ThroughputEstimate | None:
    """Throughput estimate along the fall-through spine."""
    chain = main_chain(graph)
    rows = [list(graph.nodes[nid].all_ops()) for nid in chain]
    return estimate_ii(retire_rows(unwound, rows), unwound.iterations)
