"""Perfect Pipelining driven by GRiP scheduling.

The pipeline for one counted loop:

1. unwind ``K`` iterations into an acyclic tagged chain;
2. GRiP-schedule the chain (iteration-major ranking, gap prevention);
3. detect the steady-state kernel and its initiation interval;
4. measure: simulate the scheduled chain against the sequential loop on
   identical inputs -- both the cycle counts and the *memory states*
   must agree, so every Table-1 data point doubles as a correctness
   check.

The analytic speedup is ``sequential cycles per iteration / II``; the
measured speedup over the K-iteration window includes ramp-up/drain and
approaches the analytic value from below.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.loops import CountedLoop
from ..machine.model import MachineConfig
from ..obs.tracer import NULL_TRACER, SegmentBegin, Tracer
from ..scheduling.grip import GRiPScheduler, ScheduleResult
from ..scheduling.policy import DEFAULT_POLICY, SchedulePolicy
from ..scheduling.priority import Heuristic, PaperHeuristic
from ..simulator.check import EquivalenceError, initial_state, input_registers
from ..simulator.interp import run
from .pattern import (
    PipelinePattern,
    ThroughputEstimate,
    estimate_ii,
    find_pattern,
    graph_throughput,
    retire_rows,
)
from .unwind import UnwoundLoop, unwind_counted


@dataclass
class PipelineResult:
    """Everything the benches report about one pipelined loop."""

    loop: CountedLoop
    machine: MachineConfig
    unwound: UnwoundLoop
    schedule: ScheduleResult
    pattern: PipelinePattern | None
    seq_cycles_per_iteration: int
    throughput: "ThroughputEstimate | None" = None
    measured_seq_cycles: int | None = None
    measured_par_cycles: int | None = None

    @property
    def periodic(self) -> bool:
        """Exact row periodicity was found."""
        return self.pattern is not None

    @property
    def converged(self) -> bool:
        """Periodic kernel, or steady throughput (drifting rows)."""
        if self.pattern is not None:
            return True
        return self.throughput is not None and self.throughput.steady

    @property
    def initiation_interval(self) -> float | None:
        if self.pattern is not None:
            return self.pattern.initiation_interval
        if self.throughput is not None and self.throughput.steady:
            return self.throughput.ii
        return None

    @property
    def speedup(self) -> float | None:
        """Analytic steady-state speedup (paper's Table-1 metric)."""
        ii = self.initiation_interval
        return None if ii is None else self.seq_cycles_per_iteration / ii

    @property
    def measured_speedup(self) -> float | None:
        if not self.measured_seq_cycles or not self.measured_par_cycles:
            return None
        return self.measured_seq_cycles / self.measured_par_cycles

    def summary(self) -> str:
        lines = [f"{self.loop.name} on {self.machine}:"]
        if self.pattern is not None:
            lines.append(f"  kernel: {self.pattern}")
            lines.append(f"  speedup (analytic): {self.speedup:.2f}")
        elif self.converged:
            lines.append(
                f"  steady throughput: II={self.throughput.ii:.3f} "
                f"(drift {self.throughput.max_deviation:.2f} rows)")
            lines.append(f"  speedup (analytic): {self.speedup:.2f}")
        else:
            lines.append("  NOT CONVERGED")
        if self.measured_speedup is not None:
            lines.append(f"  speedup (measured, {self.unwound.iterations} "
                         f"iters incl. ramp): {self.measured_speedup:.2f}")
        lines.append(f"  {self.schedule.stats.tally_line()}")
        return "\n".join(lines)


def default_unroll(machine: MachineConfig, loop: CountedLoop) -> int:
    """Enough iterations to expose a steady state plus ramp and drain."""
    fus = machine.fus if machine.fus is not None else 8
    return max(16, 3 * fus)


def schedule_loop(loop: CountedLoop, machine: MachineConfig, *,
                  unroll: int | None = None,
                  heuristic: Heuristic | None = None,
                  gap_prevention: bool = True,
                  allow_speculation: bool = True,
                  measure: bool = True,
                  verify: bool = True,
                  verify_analysis: bool = False,
                  seeds: tuple[int, ...] = (0,),
                  tracer: Tracer | None = None,
                  policy: SchedulePolicy | None = None) -> PipelineResult:
    """Run the full Perfect Pipelining flow on one counted loop.

    ``tracer`` (observe-only) receives the scheduler's decision stream;
    the default null tracer costs nothing.  ``verify_analysis``
    attaches a verifying
    :class:`~repro.analysis.incremental.AnalysisManager` to the
    unwound graph before GRiP runs (the fuzz lane's journal check);
    like the tracer it observes without changing the schedule.
    ``policy`` steers ranking, fill order, speculation, gap strictness
    and (absent an explicit ``unroll``) the unroll factor; the default
    policy is schedule-neutral.  An explicit ``heuristic`` overrides
    the policy's ranking axes.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    pol = policy if policy is not None else DEFAULT_POLICY
    if unroll is not None:
        k = unroll
    elif pol.unroll is not None:
        k = pol.unroll
    else:
        k = default_unroll(machine, loop)
    unwound = unwind_counted(loop, k)
    if verify_analysis:
        from ..analysis.incremental import AnalysisManager

        AnalysisManager(unwound.graph, verify=True)
    if tracer.enabled:
        tracer.emit(SegmentBegin(index=0, kind="counted", name=loop.name))
    scheduler = GRiPScheduler(
        machine, heuristic,
        gap_prevention=gap_prevention,
        allow_speculation=allow_speculation,
        tracer=tracer, policy=pol)
    schedule = scheduler.schedule(unwound.graph, ranking_ops=unwound.ops)
    pattern = find_pattern(unwound, unwound.graph)
    throughput = graph_throughput(unwound, unwound.graph)
    result = PipelineResult(
        loop=loop, machine=machine, unwound=unwound, schedule=schedule,
        pattern=pattern, throughput=throughput,
        seq_cycles_per_iteration=loop.ops_per_iteration)
    if measure:
        _measure(result, verify=verify, seeds=seeds)
    return result


def pipeline_loop(loop: CountedLoop, machine: MachineConfig,
                  **kwargs) -> PipelineResult:
    """Deprecated alias for :func:`schedule_loop`.

    Kept as a thin delegating shim for one release; new code goes
    through :func:`repro.api.schedule`, which dispatches on the
    descriptor type and can consult a schedule cache.
    """
    import warnings

    warnings.warn(
        "pipeline_loop is deprecated; use repro.api.schedule (or "
        "repro.pipelining.schedule_loop)", DeprecationWarning,
        stacklevel=2)
    return schedule_loop(loop, machine, **kwargs)


@dataclass
class PostPipelineResult:
    """POST baseline outcome for one loop (analytic measurement)."""

    loop: CountedLoop
    machine: MachineConfig
    unwound: UnwoundLoop
    pattern: PipelinePattern | None
    seq_cycles_per_iteration: int
    throughput: "ThroughputEstimate | None" = None
    phase1_nodes: int = 0
    repack_cycles: int = 0

    @property
    def periodic(self) -> bool:
        return self.pattern is not None

    @property
    def converged(self) -> bool:
        if self.pattern is not None:
            return True
        return self.throughput is not None and self.throughput.steady

    @property
    def initiation_interval(self) -> float | None:
        if self.pattern is not None:
            return self.pattern.initiation_interval
        if self.throughput is not None and self.throughput.steady:
            return self.throughput.ii
        return None

    @property
    def speedup(self) -> float | None:
        ii = self.initiation_interval
        return None if ii is None else self.seq_cycles_per_iteration / ii


def pipeline_loop_post(loop: CountedLoop, machine: MachineConfig, *,
                       unroll: int | None = None,
                       heuristic: Heuristic | None = None
                       ) -> PostPipelineResult:
    """The POST baseline flow: infinite-resource pipelining + repack.

    The repacked schedule is analytic (rows of operations); its kernel
    is found with the same signature-periodicity detector as GRiP's.
    """
    from ..scheduling.post import POSTScheduler
    from .pattern import find_pattern_in_signatures, ops_signature

    k = unroll if unroll is not None else default_unroll(machine, loop)
    unwound = unwind_counted(loop, k)
    post = POSTScheduler(machine, heuristic or PaperHeuristic())
    pr = post.schedule_ops(unwound.ops)
    sigs = [ops_signature(unwound, row) for row in pr.repacked.rows]
    pattern = find_pattern_in_signatures(sigs, unwound.iterations)
    throughput = estimate_ii(retire_rows(unwound, pr.repacked.rows),
                             unwound.iterations)
    return PostPipelineResult(
        loop=loop, machine=machine, unwound=unwound, pattern=pattern,
        throughput=throughput,
        seq_cycles_per_iteration=loop.ops_per_iteration,
        phase1_nodes=len(pr.phase1_rows),
        repack_cycles=pr.repacked.cycles)


def _measure(result: PipelineResult, *, verify: bool,
             seeds: tuple[int, ...]) -> None:
    """Simulate sequential vs pipelined for the unwound iteration count.

    The loop bound must equal the unroll factor for an apples-to-apples
    run: the unwound chain executes exactly ``K`` iterations.  Workload
    constructors parameterize the bound accordingly.
    """
    seq_graph = result.loop.graph
    par_graph = result.unwound.graph
    inputs = input_registers(seq_graph) | input_registers(par_graph)
    seq_total = par_total = 0
    budget = max(100_000, 50 * result.unwound.iterations
                 * max(1, result.seq_cycles_per_iteration))
    for seed in seeds:
        ssa = initial_state(seed, inputs)
        ssb = initial_state(seed, inputs)
        ra = run(seq_graph, ssa, max_cycles=budget)
        rb = run(par_graph, ssb, max_cycles=budget)
        if not ra.exited or not rb.exited:
            raise RuntimeError(
                f"{result.loop.name}: measurement run did not terminate")
        if verify:
            _compare_mem(result.loop.name, seed, ssa.mem, ssb.mem,
                         ssa.mem_default)
        seq_total += ra.cycles
        par_total += rb.cycles
    result.measured_seq_cycles = seq_total
    result.measured_par_cycles = par_total


def _compare_mem(name: str, seed: int, mem_a: dict, mem_b: dict,
                 default) -> None:
    from ..simulator.check import values_close

    cells = set(mem_a) | set(mem_b)
    for cell in sorted(cells):
        va = mem_a.get(cell, default(*cell))
        vb = mem_b.get(cell, default(*cell))
        if not values_close(va, vb):
            raise EquivalenceError(
                f"{name} seed {seed}: pipelined memory diverges at {cell}: "
                f"{va!r} != {vb!r}")
