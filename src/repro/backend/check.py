"""Differential checking: bundle VM vs the tree-walking simulator.

The tree-walking interpreter is the reproduction's semantic ground
truth; the bundle backend re-implements execution for speed.  This
module keeps the two honest against each other: every compiled kernel
is run through both from identical randomized initial states, and the
final observable state must match --

* **memory**: every cell either execution touched, compared with the
  same default-filling rule as
  :func:`repro.simulator.check.check_equivalent` (spill slots and other
  ``__``-internal arrays are excluded: they are backend artifacts, not
  program state);
* **registers**: any explicitly requested output registers, read back
  through the register allocation;
* **cycles**: when the program needed no spill traffic, the VM must
  execute exactly one bundle per interpreter cycle -- lowering is not
  allowed to change the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import ProgramGraph
from ..ir.registers import Reg
from ..machine.model import MachineConfig
from ..simulator.check import (EquivalenceError, _close, initial_state,
                               input_registers, values_close_rows)
from ..simulator.interp import run
from .bundles import BundleProgram, encode
from .vm import BundleVM, VMResult

#: default lane count of the batched checkers (fuzz runs 16 states per
#: case; the scalar checkers' historical default was 3 seeds)
DEFAULT_LANES = 16


class DifferentialError(AssertionError):
    """The bundle VM diverged from the tree-walking simulator."""


@dataclass
class DifferentialReport:
    """Per-seed statistics of a successful differential check."""

    seeds: list[int]
    interp_cycles: list[int] = field(default_factory=list)
    vm_steps: list[int] = field(default_factory=list)
    vm_cycles: list[int] = field(default_factory=list)
    ops_committed: list[int] = field(default_factory=list)
    program: BundleProgram | None = None

    @property
    def realized_cycles(self) -> int:
        """Realized cycles of the last seed's VM run."""
        return self.vm_cycles[-1] if self.vm_cycles else 0


def differential_check(graph: ProgramGraph,
                       machine: MachineConfig = MachineConfig(), *,
                       seeds: tuple[int, ...] = (0, 1, 2),
                       out_regs: set[str] | None = None,
                       max_cycles: int = 1_000_000,
                       program: BundleProgram | None = None,
                       vm: BundleVM | None = None) -> DifferentialReport:
    """Run ``graph`` through both executors and assert identical state.

    ``out_regs`` names registers whose final values must also agree
    (they are pinned live-at-exit for the register allocator, so their
    physical homes are never reused).  Returns cycle statistics; raises
    :class:`DifferentialError` on any divergence.
    """
    if vm is None:
        if program is None:
            exit_live = frozenset(Reg(n) for n in (out_regs or ()))
            program = encode(graph, machine, exit_live=exit_live)
        vm = BundleVM(program)
    program = vm.program
    inputs = input_registers(graph)
    report = DifferentialReport(seeds=list(seeds), program=program)
    for seed in seeds:
        st = initial_state(seed, inputs)
        init = dict(st.regs)
        ref = run(graph, st, max_cycles=max_cycles)
        res = vm.run(init_regs=init, mem_default=st.mem_default,
                     max_steps=max_cycles)
        if not ref.exited:
            raise DifferentialError(
                f"seed {seed}: tree-walker did not reach EXIT")
        if program.spill_bundles == 0 and res.steps != ref.cycles:
            raise DifferentialError(
                f"seed {seed}: VM executed {res.steps} bundles but the "
                f"tree-walker took {ref.cycles} cycles")
        _compare_memory(st.mem, res, st.mem_default, seed)
        if out_regs:
            _compare_registers(st, res, out_regs, seed)
        report.interp_cycles.append(ref.cycles)
        report.vm_steps.append(res.steps)
        report.vm_cycles.append(res.cycles)
        report.ops_committed.append(res.ops_committed)
    return report


@dataclass
class BatchedDifferentialReport:
    """Per-lane statistics of a successful batched differential check.

    ``lane_seeds[i]`` is the :func:`initial_state` seed lane ``i`` ran
    from; ``ref_seeds`` are the lanes additionally pinned against the
    tree-walker.  ``lane_checked`` is the per-lane non-vacuity mask
    (every loop header's back edge taken at least once; trivially all
    True for back-edge-free programs) and ``checked_lanes`` its count.
    """

    lane_seeds: list[int]
    ref_seeds: list[int]
    interp_cycles: list[int] = field(default_factory=list)
    vm_steps: list[int] = field(default_factory=list)
    vm_cycles: list[int] = field(default_factory=list)
    ops_committed: list[int] = field(default_factory=list)
    lane_checked: list[bool] = field(default_factory=list)
    program: BundleProgram | None = None

    @property
    def n_lanes(self) -> int:
        return len(self.lane_seeds)

    @property
    def checked_lanes(self) -> int:
        return sum(self.lane_checked)


def _lane_seeds(ref_seeds: tuple[int, ...], lanes: int) -> list[int]:
    """Reference seeds first, padded with fresh seeds up to ``lanes``."""
    out = list(dict.fromkeys(ref_seeds))
    used = set(out)
    nxt = 0
    while len(out) < lanes:
        if nxt not in used:
            out.append(nxt)
        nxt += 1
    return out


def differential_check_batched(graph: ProgramGraph,
                               machine: MachineConfig = MachineConfig(), *,
                               lanes: int = DEFAULT_LANES,
                               ref_seeds: tuple[int, ...] = (0, 1, 2),
                               out_regs: set[str] | None = None,
                               max_cycles: int = 1_000_000,
                               program: BundleProgram | None = None,
                               vm: BundleVM | None = None
                               ) -> BatchedDifferentialReport:
    """Batched analogue of :func:`differential_check`.

    Runs ``lanes`` independent initial states through the compiled
    program in ONE :class:`~repro.backend.batched.BatchedVM` pass, but
    walks the tree-walking simulator only on ``ref_seeds`` -- those
    lanes are compared cell-by-cell against the interpreter (memory,
    requested registers, and the one-bundle-per-cycle contract when no
    spill traffic exists), exactly like the scalar check.  The
    remaining lanes still execute the full program and are available
    to a VM-vs-VM equivalence pass (see :func:`batched_pair_check`);
    their per-lane cycles and vacuity land in the report.

    This is the differential layer's throughput lever: the tree-walker
    costs ~5x a VM lane per state, so pinning it at a constant number
    of reference lanes while the batched VM scales the state count is
    what buys >5x states/sec (measured in the README table).
    """
    from .batched import BatchedVM, checked_lane_mask

    if vm is None:
        if program is None:
            exit_live = frozenset(Reg(n) for n in (out_regs or ()))
            program = encode(graph, machine, exit_live=exit_live)
        vm = BundleVM(program)
    program = vm.program
    inputs = input_registers(graph)
    seeds = _lane_seeds(ref_seeds, lanes)
    states = [initial_state(s, inputs) for s in seeds]
    bres = BatchedVM(vm).run_many(
        [dict(st.regs) for st in states],
        [st.mem_default for st in states],
        max_steps=max_cycles, track_visits=True)
    report = BatchedDifferentialReport(
        lane_seeds=seeds, ref_seeds=list(ref_seeds), program=program,
        vm_steps=bres.steps.tolist(), vm_cycles=bres.cycles.tolist(),
        ops_committed=bres.ops_committed.tolist(),
        lane_checked=checked_lane_mask(bres).tolist())
    for lane, seed in enumerate(seeds):
        if seed not in ref_seeds:
            continue
        st = states[lane]
        ref = run(graph, st, max_cycles=max_cycles)
        if not ref.exited:
            raise DifferentialError(
                f"seed {seed}: tree-walker did not reach EXIT")
        if program.spill_bundles == 0 and report.vm_steps[lane] != ref.cycles:
            raise DifferentialError(
                f"seed {seed} (lane {lane}): VM executed "
                f"{report.vm_steps[lane]} bundles but the tree-walker "
                f"took {ref.cycles} cycles")
        _compare_lane_memory(st.mem, bres, lane, st.mem_default, seed)
        if out_regs:
            _compare_lane_registers(st, bres, lane, out_regs, seed)
        report.interp_cycles.append(ref.cycles)
    return report


def compare_batched_memory(res_a, res_b, *, lane_seeds: list[int],
                           label_a: str = "a", label_b: str = "b",
                           tol: float = 1e-6,
                           err: type[AssertionError] = EquivalenceError
                           ) -> None:
    """All-lane memory comparison of two batched runs, vectorized.

    Cells are the union both runs touched (``__``-internal arrays
    excluded); a cell one run never touched is filled from that run's
    own per-lane default functions -- the same rule the scalar
    checkers apply per state, applied row-wise.  Every cell compares
    all N lanes in one :func:`values_close_rows` call.
    """
    import numpy as np

    rows_a = res_a.memory_rows()
    rows_b = res_b.memory_rows()
    diffs = []
    for cell in sorted(set(rows_a) | set(rows_b)):
        ra = rows_a.get(cell)
        va = ra[0] if ra is not None else np.array(
            [d(*cell) for d in res_a.defaults])
        rb = rows_b.get(cell)
        vb = rb[0] if rb is not None else np.array(
            [d(*cell) for d in res_b.defaults])
        ok = values_close_rows(va, vb, tol)
        for lane in np.nonzero(~ok)[0].tolist():
            diffs.append(f"  lane {lane} (seed {lane_seeds[lane]}) {cell}: "
                         f"{label_a}={va[lane]!r} {label_b}={vb[lane]!r}")
    if diffs:
        raise err(
            f"batched memory diverged on {len(diffs)} lane-cell(s):\n"
            + "\n".join(diffs[:20]))


@dataclass
class BatchedPairReport:
    """Statistics of one batched seq-vs-scheduled semantic check."""

    lane_seeds: list[int]
    ref_seeds: list[int]
    interp_cycles_seq: list[int] = field(default_factory=list)
    interp_cycles_sched: list[int] = field(default_factory=list)
    vm_steps: list[int] = field(default_factory=list)
    vm_cycles: list[int] = field(default_factory=list)
    lane_checked: list[bool] = field(default_factory=list)

    @property
    def n_lanes(self) -> int:
        return len(self.lane_seeds)

    @property
    def checked_lanes(self) -> int:
        return sum(self.lane_checked)


def batched_pair_check(seq_graph: ProgramGraph, sched_graph: ProgramGraph,
                       machine: MachineConfig = MachineConfig(), *,
                       ref_seeds: tuple[int, ...] = (0, 1, 2),
                       lanes: int = DEFAULT_LANES,
                       max_cycles: int = 1_000_000) -> BatchedPairReport:
    """The fuzz lane's semantic check: N states, one pass per executor.

    Replaces the old per-seed lockstep
    (``check_equivalent`` x 3 states + ``differential_check`` x 3
    states = nine tree-walks, three VM runs, three states checked)
    with:

    1. tree-walker ground truth on ``ref_seeds`` for BOTH graphs, and
       the walker-vs-walker memory compare (the IR-level equivalence
       verdict, raising :class:`EquivalenceError` exactly as before);
    2. one batched VM run of each graph over ``lanes`` initial states
       (reference seeds occupy the first lanes);
    3. differential compare of every reference lane against its
       walker final -- memory cells plus the one-bundle-per-cycle
       contract on spill-free programs
       (:class:`DifferentialError`);
    4. a vectorized all-lane VM-vs-VM memory compare between the two
       batched runs (:class:`EquivalenceError`), extending the
       semantic verdict to every non-reference lane;
    5. per-lane vacuity from the sequential run's bundle-visit counts
       (a lane is *checked* iff every loop header's back edge was
       taken), reported, not raised.

    Six tree-walks and two batched runs check ``lanes`` states -- the
    measured >5x states/sec of the PR that introduced it.
    """
    from ..simulator.check import _compare_memory as _walker_compare
    from .batched import BatchedVM, checked_lane_mask

    inputs = input_registers(seq_graph) | input_registers(sched_graph)
    seeds = _lane_seeds(ref_seeds, lanes)
    states = [initial_state(s, inputs) for s in seeds]
    inits = [dict(st.regs) for st in states]
    defaults = [st.mem_default for st in states]

    walker_seq: dict[int, object] = {}
    walker_sched: dict[int, object] = {}
    report = BatchedPairReport(lane_seeds=seeds, ref_seeds=list(ref_seeds))
    for seed in ref_seeds:
        sa = initial_state(seed, inputs)
        sb = initial_state(seed, inputs)
        ra = run(seq_graph, sa, max_cycles=max_cycles)
        rb = run(sched_graph, sb, max_cycles=max_cycles)
        if not ra.exited or not rb.exited:
            raise EquivalenceError(
                f"seed {seed}: run did not terminate "
                f"(seq exited={ra.exited}, scheduled={rb.exited})")
        _walker_compare(sa, sb, seed)
        walker_seq[seed] = sa
        walker_sched[seed] = sb
        report.interp_cycles_seq.append(ra.cycles)
        report.interp_cycles_sched.append(rb.cycles)

    prog_seq = encode(seq_graph, machine)
    prog_sched = encode(sched_graph, machine)
    bres_seq = BatchedVM(BundleVM(prog_seq)).run_many(
        inits, defaults, max_steps=max_cycles, track_visits=True)
    bres_sched = BatchedVM(BundleVM(prog_sched)).run_many(
        inits, defaults, max_steps=max_cycles)
    report.lane_checked = checked_lane_mask(bres_seq).tolist()
    report.vm_steps = bres_sched.steps.tolist()
    report.vm_cycles = bres_sched.cycles.tolist()

    for lane, seed in enumerate(seeds):
        if seed not in ref_seeds:
            continue
        for bres, prog, walked, cyc, tag in (
                (bres_seq, prog_seq, walker_seq,
                 report.interp_cycles_seq, "seq"),
                (bres_sched, prog_sched, walker_sched,
                 report.interp_cycles_sched, "scheduled")):
            st = walked[seed]
            ref_cycles = cyc[list(ref_seeds).index(seed)]
            if prog.spill_bundles == 0 and bres.steps[lane] != ref_cycles:
                raise DifferentialError(
                    f"seed {seed} ({tag}): VM executed "
                    f"{int(bres.steps[lane])} bundles but the tree-walker "
                    f"took {ref_cycles} cycles")
            _compare_lane_memory(st.mem, bres, lane, st.mem_default, seed)
    compare_batched_memory(bres_seq, bres_sched, lane_seeds=seeds,
                           label_a="seq-vm", label_b="sched-vm")
    return report


def realized_program_pair(seq_graph: ProgramGraph,
                          sched_graph: ProgramGraph,
                          program: BundleProgram, *, seed: int = 0,
                          max_cycles: int = 2_000_000) -> tuple[int, VMResult]:
    """Sequential cycles and VM result under ONE shared initial state.

    A realized-speedup ratio must compare runs of the *same* input
    state: for programs with data-dependent trip counts (while loops)
    the state decides how many iterations execute, and the sequential
    and scheduled graphs read different register sets, so seeding each
    run from its own input set silently changes the workload.  This
    builds the state over the union input set and runs the tree-walker
    (sequential) and the bundle VM (the encoded scheduled program)
    from it.
    """
    from .vm import BundleVM

    inputs = input_registers(seq_graph) | input_registers(sched_graph)
    st = initial_state(seed, inputs)
    init = dict(st.regs)
    seq_run = run(seq_graph, st, max_cycles=max_cycles)
    vm_res = BundleVM(program).run(init_regs=init,
                                   mem_default=st.mem_default,
                                   max_steps=max_cycles)
    return seq_run.cycles, vm_res


def _compare_memory(ref_mem: dict, res: VMResult, default, seed: int) -> None:
    vm_mem = res.memory()
    cells = {c for c in ref_mem if not c[0].startswith("__")} | set(vm_mem)
    diffs = []
    for cell in sorted(cells):
        va = ref_mem.get(cell)
        if va is None:
            va = default(*cell)
        vb = vm_mem.get(cell)
        if vb is None:
            vb = default(*cell)
        if not _close(va, vb):
            diffs.append(f"  {cell}: tree-walker={va!r} vm={vb!r}")
    if diffs:
        raise DifferentialError(
            f"seed {seed}: memory diverged on {len(diffs)} cell(s):\n"
            + "\n".join(diffs[:20]))


def _compare_registers(st, res: VMResult, out_regs: set[str],
                       seed: int) -> None:
    diffs = []
    for name in sorted(out_regs):
        va = st.regs.get(name, st.reg_default)
        vb = res.register(name)
        if not _close(va, vb):
            diffs.append(f"  {name}: tree-walker={va!r} vm={vb!r}")
    if diffs:
        raise DifferentialError(
            f"seed {seed}: registers diverged:\n" + "\n".join(diffs[:20]))


def _compare_lane_memory(ref_mem: dict, bres, lane: int, default,
                         seed: int) -> None:
    """One reference lane of a batched run vs the tree-walker's memory."""
    vm_mem = bres.memory(lane)
    cells = {c for c in ref_mem if not c[0].startswith("__")} | set(vm_mem)
    diffs = []
    for cell in sorted(cells):
        va = ref_mem.get(cell)
        if va is None:
            va = default(*cell)
        vb = vm_mem.get(cell)
        if vb is None:
            vb = default(*cell)
        if not _close(va, vb):
            diffs.append(f"  {cell}: tree-walker={va!r} batched-vm={vb!r}")
    if diffs:
        raise DifferentialError(
            f"seed {seed} (lane {lane}): memory diverged on "
            f"{len(diffs)} cell(s):\n" + "\n".join(diffs[:20]))


def _compare_lane_registers(st, bres, lane: int, out_regs: set[str],
                            seed: int) -> None:
    diffs = []
    for name in sorted(out_regs):
        va = st.regs.get(name, st.reg_default)
        col = bres.register(name)
        vb = col[lane]
        vb = vb.item() if hasattr(vb, "item") else vb
        if not _close(va, vb):
            diffs.append(f"  {name}: tree-walker={va!r} batched-vm={vb!r}")
    if diffs:
        raise DifferentialError(
            f"seed {seed} (lane {lane}): registers diverged:\n"
            + "\n".join(diffs[:20]))
