"""Differential checking: bundle VM vs the tree-walking simulator.

The tree-walking interpreter is the reproduction's semantic ground
truth; the bundle backend re-implements execution for speed.  This
module keeps the two honest against each other: every compiled kernel
is run through both from identical randomized initial states, and the
final observable state must match --

* **memory**: every cell either execution touched, compared with the
  same default-filling rule as
  :func:`repro.simulator.check.check_equivalent` (spill slots and other
  ``__``-internal arrays are excluded: they are backend artifacts, not
  program state);
* **registers**: any explicitly requested output registers, read back
  through the register allocation;
* **cycles**: when the program needed no spill traffic, the VM must
  execute exactly one bundle per interpreter cycle -- lowering is not
  allowed to change the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import ProgramGraph
from ..ir.registers import Reg
from ..machine.model import MachineConfig
from ..simulator.check import _close, initial_state, input_registers
from ..simulator.interp import run
from .bundles import BundleProgram, encode
from .vm import BundleVM, VMResult


class DifferentialError(AssertionError):
    """The bundle VM diverged from the tree-walking simulator."""


@dataclass
class DifferentialReport:
    """Per-seed statistics of a successful differential check."""

    seeds: list[int]
    interp_cycles: list[int] = field(default_factory=list)
    vm_steps: list[int] = field(default_factory=list)
    vm_cycles: list[int] = field(default_factory=list)
    ops_committed: list[int] = field(default_factory=list)
    program: BundleProgram | None = None

    @property
    def realized_cycles(self) -> int:
        """Realized cycles of the last seed's VM run."""
        return self.vm_cycles[-1] if self.vm_cycles else 0


def differential_check(graph: ProgramGraph,
                       machine: MachineConfig = MachineConfig(), *,
                       seeds: tuple[int, ...] = (0, 1, 2),
                       out_regs: set[str] | None = None,
                       max_cycles: int = 1_000_000,
                       program: BundleProgram | None = None,
                       vm: BundleVM | None = None) -> DifferentialReport:
    """Run ``graph`` through both executors and assert identical state.

    ``out_regs`` names registers whose final values must also agree
    (they are pinned live-at-exit for the register allocator, so their
    physical homes are never reused).  Returns cycle statistics; raises
    :class:`DifferentialError` on any divergence.
    """
    if vm is None:
        if program is None:
            exit_live = frozenset(Reg(n) for n in (out_regs or ()))
            program = encode(graph, machine, exit_live=exit_live)
        vm = BundleVM(program)
    program = vm.program
    inputs = input_registers(graph)
    report = DifferentialReport(seeds=list(seeds), program=program)
    for seed in seeds:
        st = initial_state(seed, inputs)
        init = dict(st.regs)
        ref = run(graph, st, max_cycles=max_cycles)
        res = vm.run(init_regs=init, mem_default=st.mem_default,
                     max_steps=max_cycles)
        if not ref.exited:
            raise DifferentialError(
                f"seed {seed}: tree-walker did not reach EXIT")
        if program.spill_bundles == 0 and res.steps != ref.cycles:
            raise DifferentialError(
                f"seed {seed}: VM executed {res.steps} bundles but the "
                f"tree-walker took {ref.cycles} cycles")
        _compare_memory(st.mem, res, st.mem_default, seed)
        if out_regs:
            _compare_registers(st, res, out_regs, seed)
        report.interp_cycles.append(ref.cycles)
        report.vm_steps.append(res.steps)
        report.vm_cycles.append(res.cycles)
        report.ops_committed.append(res.ops_committed)
    return report


def realized_program_pair(seq_graph: ProgramGraph,
                          sched_graph: ProgramGraph,
                          program: BundleProgram, *, seed: int = 0,
                          max_cycles: int = 2_000_000) -> tuple[int, VMResult]:
    """Sequential cycles and VM result under ONE shared initial state.

    A realized-speedup ratio must compare runs of the *same* input
    state: for programs with data-dependent trip counts (while loops)
    the state decides how many iterations execute, and the sequential
    and scheduled graphs read different register sets, so seeding each
    run from its own input set silently changes the workload.  This
    builds the state over the union input set and runs the tree-walker
    (sequential) and the bundle VM (the encoded scheduled program)
    from it.
    """
    from .vm import BundleVM

    inputs = input_registers(seq_graph) | input_registers(sched_graph)
    st = initial_state(seed, inputs)
    init = dict(st.regs)
    seq_run = run(seq_graph, st, max_cycles=max_cycles)
    vm_res = BundleVM(program).run(init_regs=init,
                                   mem_default=st.mem_default,
                                   max_steps=max_cycles)
    return seq_run.cycles, vm_res


def _compare_memory(ref_mem: dict, res: VMResult, default, seed: int) -> None:
    vm_mem = res.memory()
    cells = {c for c in ref_mem if not c[0].startswith("__")} | set(vm_mem)
    diffs = []
    for cell in sorted(cells):
        va = ref_mem.get(cell)
        if va is None:
            va = default(*cell)
        vb = vm_mem.get(cell)
        if vb is None:
            vb = default(*cell)
        if not _close(va, vb):
            diffs.append(f"  {cell}: tree-walker={va!r} vm={vb!r}")
    if diffs:
        raise DifferentialError(
            f"seed {seed}: memory diverged on {len(diffs)} cell(s):\n"
            + "\n".join(diffs[:20]))


def _compare_registers(st, res: VMResult, out_regs: set[str],
                       seed: int) -> None:
    diffs = []
    for name in sorted(out_regs):
        va = st.regs.get(name, st.reg_default)
        vb = res.register(name)
        if not _close(va, vb):
            diffs.append(f"  {name}: tree-walker={va!r} vm={vb!r}")
    if diffs:
        raise DifferentialError(
            f"seed {seed}: registers diverged:\n" + "\n".join(diffs[:20]))
