"""Batched bundle VM: N independent initial states through one program.

The scalar :class:`~repro.backend.vm.BundleVM` runs one architectural
state at a time; every differential check and fuzz case therefore paid
one full interpreter pass *per initial state*.  This module executes a
whole cohort of states through one predecoded bundle program at once,
the way a production inference stack batches independent requests
through one compiled model:

* **state-major arrays** -- registers live in one ``[n_regs, N]``
  array (physical file + interned immediate pool, every lane is a
  column), the latency scoreboard is one ``[n_regs, N]`` ready-time
  array, and per-lane counters (``pc``, ``steps``, ``cycle``,
  ``done``, ``ops_committed``) are length-``N`` vectors;
* **per-lane program counters with active-lane masking** -- lanes
  retire independently, and data-dependent back edges (while loops
  with divergent trip counts) are handled by *cohort scheduling*:
  every outer step executes the bundle at the smallest live program
  counter over exactly the lanes parked there, so diverged lanes
  naturally regroup once the stragglers catch up.  Inside a bundle the
  CJ tree is evaluated as a masked partition -- each tree node splits
  the cohort by its condition column -- and each leaf's commit set is
  applied to that leaf's lanes only (the IBM "commit on the selected
  path" rule, per lane);
* **entry-state semantics per bundle** -- all operand reads of a
  bundle observe lane state at bundle entry: results and stores are
  staged as vectors and committed after every read, exactly like the
  scalar VM;
* **memory as value rows** -- memory stays sparse over addresses but
  dense over lanes: each touched ``(array, addr)`` cell holds one
  length-``N`` value row plus a per-lane ``touched`` mask.  Rows are
  materialized on first touch from each lane's own seeded default
  function, so untouched lanes always read their lane's default and a
  per-lane :meth:`BatchedVMResult.memory` is directly comparable with
  a scalar run of that lane.

Numeric fidelity: lanes default to ``float64`` arrays -- Python floats
*are* IEEE doubles, so vectorized ``+ - * /``, the branch-ordered
``min``/``max`` emulation (``where(b < a, b, a)``), comparisons and the
NaN/inf specials match the scalar VM bit for bit.  Programs that touch
the integer bit operations (AND/OR/XOR/NOT/SHL/SHR, which produce
arbitrary-precision Python ints the float lanes cannot represent) or
carry immediates outside float64's exact-integer range fall back to
``object``-dtype lanes computed through the scalar VM's own
``_compute`` -- slower, but exact by construction.  The equivalence
suite (``tests/backend/test_batched_vm.py``) pins per-lane steps,
realized scoreboard cycles, committed-op counts and final state
against scalar runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..simulator.state import Number, seeded_cell_default
from .bundles import BundleProgram, EXIT_BUNDLE
from .regalloc import SPILL_ARRAY
from .vm import (
    BundleVM, BundleVMError, OPC_AND, OPC_NOT, OPC_OR, OPC_SHL, OPC_SHR,
    OPC_XOR, OPC_ADD, OPC_SUB, OPC_MUL, OPC_DIV, OPC_COPY, OPC_NEG, OPC_MIN,
    OPC_MAX, OPC_ABS, OPC_CMP_EQ, OPC_CMP_NE, OPC_CMP_LT, OPC_CMP_LE,
    OPC_CMP_GT, OPC_CMP_GE, OPC_LOAD, OPC_STORE, _compute,
)

#: opcodes whose scalar semantics are arbitrary-precision Python ints;
#: their presence switches the lanes to exact object dtype.
_INT_OPCODES = frozenset(
    (OPC_AND, OPC_OR, OPC_XOR, OPC_NOT, OPC_SHL, OPC_SHR))

#: largest magnitude an int may have while float64 still holds it
#: exactly (2**53); bigger immediates force object lanes too.
_EXACT_INT = 1 << 53

#: the whole-cohort "lane set" of the lockstep fast path: basic slicing
#: yields row views where per-lane index arrays would copy.
_FULL = slice(None)

#: smallest cohort worth masked vector execution; below this the fixed
#: per-call cost of numpy fancy indexing exceeds the arithmetic and the
#: cohort's lanes step through a scalar tail instead.
_VEC_COHORT = 8


@dataclass
class BatchedVMResult:
    """Final per-lane state and counters of one batched run.

    ``steps``/``cycles``/``ops_committed`` are length-``N`` int
    vectors; ``regs`` is the ``[n_regs, N]`` lane matrix; ``mem`` maps
    each interned array id to ``addr -> (values_row, touched_row)``.
    ``visits`` (when the run tracked them) counts per-lane issues of
    every bundle -- ``visits[b, lane]``.
    """

    n_lanes: int
    steps: np.ndarray
    cycles: np.ndarray
    ops_committed: np.ndarray
    exited: bool
    regs: np.ndarray
    mem: list[dict[int, tuple[np.ndarray, np.ndarray]]]
    program: BundleProgram
    defaults: list[Callable[[str, int], Number]]
    visits: np.ndarray | None = None

    def register(self, name: str) -> np.ndarray:
        """Final per-lane values of a symbolic register."""
        asg = self.program.assignment
        if name in asg.spilled:
            aid = self.program.arrays.index(SPILL_ARRAY)
            return self.mem[aid][asg.spilled[name]][0]
        return self.regs[asg.index[name]]

    def memory_rows(self, *, include_internal: bool = False
                    ) -> dict[tuple[str, int], tuple[np.ndarray, np.ndarray]]:
        """All touched cells as ``(array, addr) -> (values, touched)``.

        A cell's value row is valid for *every* lane -- untouched lanes
        hold that lane's default -- so vectorized comparisons can use
        the rows directly; ``touched`` says which lanes would carry the
        cell in a scalar run's sparse memory.
        """
        out: dict[tuple[str, int], tuple[np.ndarray, np.ndarray]] = {}
        for aid, rows in enumerate(self.mem):
            name = self.program.arrays[aid]
            if not include_internal and name.startswith("__"):
                continue
            for addr, (vals, touched) in rows.items():
                out[(name, addr)] = (vals, touched)
        return out

    def memory(self, lane: int, *, include_internal: bool = False
               ) -> dict[tuple[str, int], Number]:
        """One lane's final memory, shaped like ``VMResult.memory()``."""
        out: dict[tuple[str, int], Number] = {}
        for cell, (vals, touched) in self.memory_rows(
                include_internal=include_internal).items():
            if touched[lane]:
                out[cell] = vals[lane].item() if hasattr(
                    vals[lane], "item") else vals[lane]
        return out


def loop_headers(program: BundleProgram) -> list[int]:
    """Bundle indices that are targets of a back edge.

    In the encoder's RPO bundle layout a loop header is any bundle
    some same-or-later bundle jumps back to.  A lane that issued a
    header at least twice took its back edge -- i.e. ran at least one
    real iteration of that loop.
    """
    heads = {t for b in program.bundles for t in b.leaf_targets
             if 0 <= t <= b.index}
    return sorted(heads)


def checked_lane_mask(result: BatchedVMResult) -> np.ndarray:
    """Per-lane non-vacuity: every loop header issued at least twice.

    Requires a run with ``track_visits=True``.  A lane where some loop
    (a ``while`` whose condition failed immediately, a counted loop
    with a zero trip count) never took its back edge exercised none of
    that loop's body semantics -- its green verdict is (partially)
    vacuous.  Programs without back edges check every lane trivially.
    """
    if result.visits is None:
        raise ValueError("run with track_visits=True to get lane vacuity")
    mask = np.ones(result.n_lanes, dtype=bool)
    for h in loop_headers(result.program):
        mask &= result.visits[h] >= 2
    return mask


class BatchedVM:
    """Run many independent initial states through one bundle program.

    Wraps (or builds) a scalar :class:`BundleVM` for its predecoded
    form -- int-coded op tuples, interned immediate pool, flattened CJ
    trees -- and re-executes that form over lane vectors.
    """

    def __init__(self, program: BundleProgram | BundleVM) -> None:
        vm = program if isinstance(program, BundleVM) else BundleVM(program)
        self._vm = vm
        self.program = vm.program
        self._n_phys = vm._n_phys
        self._pool_values = vm._pool_values
        self._aid_of = vm._aid_of
        self._decoded = vm._decoded
        self._entry = vm._entry
        self._track_latency = vm._track_latency
        self._n_regs = self._n_phys + len(self._pool_values)
        self._object_mode = self._needs_object_lanes()
        self._dtype = object if self._object_mode else np.float64
        # per-bundle stall-register index arrays (scoreboard gathers)
        self._stalls = [np.array(rec[6], dtype=np.intp)
                        for rec in self._decoded]

    def _needs_object_lanes(self) -> bool:
        for rec in self._decoded:
            for op in rec[0]:
                if op[0] in _INT_OPCODES:
                    return True
        for v in self._pool_values:
            if isinstance(v, int) and abs(v) > _EXACT_INT:
                return True
        return False

    # ------------------------------------------------------------------
    # Lane state
    # ------------------------------------------------------------------
    def _fresh_lanes(self, init_regs, mem_defaults, reg_default, n):
        asg = self.program.assignment
        regs = np.full((self._n_regs, n), reg_default, dtype=self._dtype)
        for i, v in enumerate(self._pool_values):
            regs[self._n_phys + i, :] = v
        defaults = [(d if d is not None else seeded_cell_default(0))
                    for d in (mem_defaults or [None] * n)]
        mem: list[dict[int, tuple[np.ndarray, np.ndarray]]] = [
            dict() for _ in self.program.arrays]
        if asg.spilled:
            spill_aid = self._aid_of[SPILL_ARRAY]
            for slot in asg.spilled.values():
                mem[spill_aid][slot] = (
                    np.full(n, reg_default, dtype=self._dtype),
                    np.ones(n, dtype=bool))
        for lane, lane_init in enumerate(init_regs):
            for name, val in (lane_init or {}).items():
                if name in asg.spilled:
                    mem[self._aid_of[SPILL_ARRAY]][
                        asg.spilled[name]][0][lane] = val
                elif name in asg.index:
                    regs[asg.index[name], lane] = val
        return regs, mem, defaults

    def _mem_row(self, mem, defaults, aid: int,
                 addr: int) -> tuple[np.ndarray, np.ndarray]:
        row = mem[aid].get(addr)
        if row is None:
            name = self.program.arrays[aid]
            vals = np.array([d(name, addr) for d in defaults],
                            dtype=self._dtype)
            row = (vals, np.zeros(len(defaults), dtype=bool))
            mem[aid][addr] = row
        return row

    # ------------------------------------------------------------------
    # Vectorized helpers
    # ------------------------------------------------------------------
    def _addresses(self, regs, iidx: int, ioff: int, lanes):
        """Per-lane effective addresses: one Python int when uniform
        (constant-indexed cells), else a per-lane list -- computed
        exactly like the scalar VM's ``ioff + int(reg)``."""
        if iidx < 0:
            return ioff
        col = regs[iidx] if lanes is _FULL else regs[iidx, lanes]
        if not self._object_mode:
            finite = np.isfinite(col)
            if finite.all() and (np.abs(col) < 2.0 ** 62).all():
                return [ioff + a for a in col.astype(np.int64).tolist()]
        # exact / error-faithful path: int() raises on NaN just like
        # the scalar VM's address computation does
        return [ioff + int(v) for v in col.tolist()]

    def _compute_vec(self, code: int, regs, a: int, b: int,
                     lanes) -> np.ndarray:
        """Entry-state result column of one ALU op over ``lanes``."""
        if self._object_mode:
            view = regs[:, lanes]
            return np.array(
                [_compute(code, view[:, j], a, b)
                 for j in range(len(lanes))], dtype=object)
        if lanes is _FULL:
            x = regs[a]
            y = regs[b] if b >= 0 else None
        else:
            x = regs[a, lanes]
            y = regs[b, lanes] if b >= 0 else None
        if code == OPC_ADD:
            return x + y
        if code == OPC_MUL:
            return x * y
        if code == OPC_SUB:
            return x - y
        if code == OPC_COPY:
            return x.copy()
        if code == OPC_DIV:
            with np.errstate(divide="ignore", invalid="ignore"):
                q = x / y
            return np.where(y != 0, q, 0.0)
        if code == OPC_NEG:
            return -x
        if code == OPC_ABS:
            return np.abs(x)
        if code == OPC_MIN:
            return np.where(y < x, y, x)  # Python min(): first arg on ties/NaN
        if code == OPC_MAX:
            return np.where(y > x, y, x)
        if code == OPC_CMP_EQ:
            return (x == y).astype(np.float64)
        if code == OPC_CMP_NE:
            return (x != y).astype(np.float64)
        if code == OPC_CMP_LT:
            return (x < y).astype(np.float64)
        if code == OPC_CMP_LE:
            return (x <= y).astype(np.float64)
        if code == OPC_CMP_GT:
            return (x > y).astype(np.float64)
        if code == OPC_CMP_GE:
            return (x >= y).astype(np.float64)
        # the int opcodes force object mode in __init__
        raise BundleVMError(f"opcode {code} unreachable in float lanes")

    def _truthy(self, col) -> np.ndarray:
        if self._object_mode:
            return np.array([v != 0 for v in col], dtype=bool)
        return col != 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_many(self, init_regs: Sequence[dict[str, Number] | None],
                 mem_defaults: Sequence[Callable[[str, int], Number] | None]
                 | None = None, *,
                 reg_default: Number = 0.0,
                 max_steps: int = 1_000_000,
                 track_visits: bool = False) -> BatchedVMResult:
        """Execute every lane from entry to EXIT; see the module doc.

        ``init_regs[i]`` / ``mem_defaults[i]`` seed lane ``i``.  Raises
        :class:`BundleVMError` when any lane exhausts ``max_steps``
        bundles (mirroring the scalar budget, per lane).
        """
        n = len(init_regs)
        if mem_defaults is not None and len(mem_defaults) != n:
            raise ValueError("mem_defaults must match init_regs per lane")
        regs, mem, defaults = self._fresh_lanes(
            init_regs, mem_defaults, reg_default, n)
        steps = np.zeros(n, dtype=np.int64)
        opsc = np.zeros(n, dtype=np.int64)
        visits = (np.zeros((len(self._decoded), n), dtype=np.int64)
                  if track_visits else None)
        timed = self._track_latency
        cycle = np.zeros(n, dtype=np.int64)
        done = np.zeros(n, dtype=np.int64)
        ready = (np.zeros((self._n_regs, n), dtype=np.int64)
                 if timed else None)
        pcs = np.full(n, self._entry, dtype=np.int64)
        if n == 0 or self._entry == EXIT_BUNDLE:
            return BatchedVMResult(
                n_lanes=n, steps=steps, cycles=cycle, ops_committed=opsc,
                exited=True, regs=regs, mem=mem, program=self.program,
                defaults=defaults, visits=visits)

        # Python float arithmetic produces inf/NaN silently; keep the
        # vectorized lanes just as quiet.
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            self._exec_loop(regs, mem, defaults, pcs, steps, opsc, visits,
                            cycle, done, ready, max_steps)

        cycles = np.maximum(cycle, done) if self._track_latency \
            else steps.copy()
        return BatchedVMResult(
            n_lanes=n, steps=steps, cycles=cycles, ops_committed=opsc,
            exited=True, regs=regs, mem=mem, program=self.program,
            defaults=defaults, visits=visits)

    def _exec_loop(self, regs, mem, defaults, pcs, steps, opsc, visits,
                   cycle, done, ready, max_steps):
        if not self._object_mode:
            pc = self._lockstep_loop(regs, mem, defaults, steps, opsc,
                                     visits, cycle, done, ready, max_steps)
            pcs[:] = pc
            if pc == EXIT_BUNDLE:
                return
        self._masked_loop(regs, mem, defaults, pcs, steps, opsc, visits,
                          cycle, done, ready, max_steps)

    def _lockstep_loop(self, regs, mem, defaults, steps, opsc, visits,
                       cycle, done, ready, max_steps):
        """Whole-cohort fast path: every lane shares one program counter.

        Until some CJ condition actually splits the cohort -- counted
        programs and uniformly-branching whiles never do -- control
        flow is a scalar ``pc``, bundle state updates are full-row
        views (no fancy-index gathers, no live-lane bookkeeping), and
        only the data columns are vectorized.  Returns the bundle
        index every lane is parked at when the cohort first diverges,
        or ``EXIT_BUNDLE`` when all lanes retire in lockstep.
        """
        decoded = self._decoded
        timed = self._track_latency
        pc = self._entry
        # while lanes share one path the per-lane COUNTERS are all
        # equal too (the scoreboard recurrence depends on the path, not
        # the data), so they run as Python scalars here and broadcast
        # into the lane vectors on the way out
        nsteps = 0
        opsc_s = 0
        cycle_s = 0
        done_s = 0
        ready_s = [0] * self._n_regs if timed else None
        visits_s = ([0] * len(decoded)) if visits is not None else None
        full = _FULL

        def _sync(at_pc):
            steps[:] += nsteps
            opsc[:] += opsc_s
            if visits_s is not None:
                visits[:] += np.asarray(visits_s, dtype=np.int64)[:, None]
            if timed:
                cycle[:] = cycle_s
                done[:] = done_s
                ready[:, :] = np.asarray(ready_s, dtype=np.int64)[:, None]
            return at_pc

        while True:
            if nsteps >= max_steps:
                _sync(pc)
                raise BundleVMError(
                    f"step budget {max_steps} exhausted at bundle {pc} "
                    f"(lane 0)")
            ops, tree, root, leaf_next, commits, counts, stall = decoded[pc]
            # pick the leaf jointly BEFORE touching any state: on a
            # genuine split this bundle re-runs under the masked loop
            if root < 0:
                leaf = -root - 1
            else:
                enc = root
                leaf = None
                while True:
                    if enc < 0:
                        leaf = -enc - 1
                        break
                    cond, te, fe = tree[enc]
                    t = regs[cond] != 0
                    if t.all():
                        enc = te
                    elif not t.any():
                        enc = fe
                    else:
                        break
                if leaf is None:
                    return _sync(pc)
            nsteps += 1
            if visits_s is not None:
                visits_s[pc] += 1
            if timed:
                issue = cycle_s
                for r in stall:
                    t = ready_s[r]
                    if t > issue:
                        issue = t
            writes = []
            stores = []
            for oi in commits[leaf]:
                code, dest, a, bb, aid, iidx, ioff, lat = ops[oi]
                if code == OPC_LOAD:
                    addrs = self._addresses(regs, iidx, ioff, full)
                    writes.append(
                        (dest, self._gather(mem, defaults, aid, addrs, full),
                         lat))
                elif code == OPC_STORE:
                    addrs = self._addresses(regs, iidx, ioff, full)
                    stores.append((aid, addrs, regs[a].copy(), lat))
                else:
                    writes.append(
                        (dest, self._compute_vec(code, regs, a, bb, full),
                         lat))
            for dest, vals, lat in writes:
                regs[dest] = vals
                if timed:
                    t = issue + lat
                    ready_s[dest] = t
                    if t > done_s:
                        done_s = t
            for aid, addrs, vals, lat in stores:
                self._scatter(mem, defaults, aid, addrs, vals, full)
                if timed and issue + lat > done_s:
                    done_s = issue + lat
            if timed:
                cycle_s = issue + 1
            opsc_s += counts[leaf]
            pc = leaf_next[leaf]
            if pc == EXIT_BUNDLE:
                return _sync(EXIT_BUNDLE)

    def _masked_loop(self, regs, mem, defaults, pcs, steps, opsc, visits,
                     cycle, done, ready, max_steps):
        timed = self._track_latency
        while True:
            live = np.nonzero(pcs != EXIT_BUNDLE)[0]
            if len(live) == 0:
                break
            b = int(pcs[live].min())
            lanes = live[pcs[live] == b]
            if len(lanes) < _VEC_COHORT:
                # tiny cohort: per-lane scalar stepping beats the
                # fixed cost of masked vector ops.  Each lane runs
                # until its pc reaches the next-smallest live pc (or
                # exits) -- exactly the span min-pc cohort scheduling
                # would have given it one bundle at a time -- so
                # regrouping opportunities are preserved.
                others = live[pcs[live] != b]
                horizon = int(pcs[others].min()) if len(others) else None
                for lane in lanes.tolist():
                    self._run_lane(int(lane), horizon, regs, mem, defaults,
                                   pcs, steps, opsc, visits, cycle, done,
                                   ready, max_steps)
                continue
            if int(steps[lanes].max()) >= max_steps:
                lane = int(lanes[int(steps[lanes].argmax())])
                raise BundleVMError(
                    f"step budget {max_steps} exhausted at bundle {b} "
                    f"(lane {lane})")
            ops, tree, root, leaf_next, commits, counts, _stall = \
                self._decoded[b]
            steps[lanes] += 1
            if visits is not None:
                visits[b, lanes] += 1
            for leaf, ls in self._partition(tree, root, regs, lanes):
                if timed:
                    issue = cycle[ls].copy()
                    st = self._stalls[b]
                    if len(st):
                        np.maximum(issue, ready[st[:, None], ls].max(axis=0),
                                   out=issue)
                else:
                    issue = None
                writes: list[tuple[int, np.ndarray, int]] = []
                stores: list[tuple[int, list[int], np.ndarray, int]] = []
                for oi in commits[leaf]:
                    code, dest, a, bb, aid, iidx, ioff, lat = ops[oi]
                    if code == OPC_LOAD:
                        addrs = self._addresses(regs, iidx, ioff, ls)
                        writes.append(
                            (dest, self._gather(mem, defaults, aid, addrs,
                                                ls), lat))
                    elif code == OPC_STORE:
                        addrs = self._addresses(regs, iidx, ioff, ls)
                        stores.append((aid, addrs, regs[a, ls].copy(), lat))
                    else:
                        writes.append(
                            (dest, self._compute_vec(code, regs, a, bb, ls),
                             lat))
                for dest, vals, lat in writes:
                    regs[dest, ls] = vals
                    if timed:
                        t = issue + lat
                        ready[dest, ls] = t
                        np.maximum(done[ls], t, out=t)
                        done[ls] = t
                for aid, addrs, vals, lat in stores:
                    self._scatter(mem, defaults, aid, addrs, vals, ls)
                    if timed:
                        done[ls] = np.maximum(done[ls], issue + lat)
                if timed:
                    cycle[ls] = issue + 1
                opsc[ls] += counts[leaf]
                pcs[ls] = leaf_next[leaf]

    def _run_lane(self, lane, horizon, regs, mem, defaults, pcs, steps,
                  opsc, visits, cycle, done, ready, max_steps):
        """Scalar tail: run one lane while its pc stays below ``horizon``.

        Bit-identical to the vector paths by construction -- ALU ops go
        through the scalar VM's own ``_compute`` (float64 scalars carry
        the same IEEE semantics the lanes do), loads/stores read and
        write the shared value rows, and the scoreboard math is the
        same integer recurrence on this lane's column.
        """
        decoded = self._decoded
        timed = self._track_latency
        col = regs[:, lane]
        pc = int(pcs[lane])
        while pc != EXIT_BUNDLE and (horizon is None or pc < horizon):
            if steps[lane] >= max_steps:
                raise BundleVMError(
                    f"step budget {max_steps} exhausted at bundle {pc} "
                    f"(lane {lane})")
            ops, tree, root, leaf_next, commits, counts, stall = decoded[pc]
            enc = root
            while enc >= 0:
                cond, te, fe = tree[enc]
                enc = te if col[cond] != 0 else fe
            leaf = -enc - 1
            steps[lane] += 1
            if visits is not None:
                visits[pc, lane] += 1
            if timed:
                issue = int(cycle[lane])
                for r in stall:
                    t = int(ready[r, lane])
                    if t > issue:
                        issue = t
            writes = []
            stores = []
            for oi in commits[leaf]:
                code, dest, a, bb, aid, iidx, ioff, lat = ops[oi]
                if code == OPC_LOAD:
                    addr = ioff if iidx < 0 else ioff + int(col[iidx])
                    vals, touched = self._mem_row(mem, defaults, aid, addr)
                    touched[lane] = True
                    writes.append((dest, vals[lane], lat))
                elif code == OPC_STORE:
                    addr = ioff if iidx < 0 else ioff + int(col[iidx])
                    stores.append((aid, addr, col[a], lat))
                else:
                    writes.append((dest, _compute(code, col, a, bb), lat))
            for dest, val, lat in writes:
                col[dest] = val
                if timed:
                    t = issue + lat
                    ready[dest, lane] = t
                    if t > done[lane]:
                        done[lane] = t
            for aid, addr, val, lat in stores:
                row, touched = self._mem_row(mem, defaults, aid, addr)
                row[lane] = val
                touched[lane] = True
                if timed and issue + lat > done[lane]:
                    done[lane] = issue + lat
            if timed:
                cycle[lane] = issue + 1
            opsc[lane] += counts[leaf]
            pc = leaf_next[leaf]
        pcs[lane] = pc

    def _partition(self, tree, root, regs, lanes):
        """Masked CJ-tree descent: yields ``(leaf, lane_indices)``."""
        if root < 0:
            yield -root - 1, lanes
            return
        stack = [(root, lanes)]
        while stack:
            enc, ls = stack.pop()
            if len(ls) == 0:
                continue
            if enc < 0:
                yield -enc - 1, ls
                continue
            cond, te, fe = tree[enc]
            taken = self._truthy(regs[cond, ls])
            stack.append((te, ls[taken]))
            stack.append((fe, ls[~taken]))

    def _gather(self, mem, defaults, aid: int, addrs,
                ls) -> np.ndarray:
        """Committed-load column: read (and materialize) per-lane cells."""
        if type(addrs) is int:
            vals, touched = self._mem_row(mem, defaults, aid, addrs)
            touched[ls] = True
            return vals[ls].copy()
        a0 = addrs[0]
        if all(a == a0 for a in addrs):
            vals, touched = self._mem_row(mem, defaults, aid, a0)
            touched[ls] = True
            return vals[ls].copy()
        lanes = range(len(addrs)) if ls is _FULL else ls.tolist()
        out = np.empty(len(addrs), dtype=self._dtype)
        for j, (lane, addr) in enumerate(zip(lanes, addrs)):
            vals, touched = self._mem_row(mem, defaults, aid, addr)
            touched[lane] = True
            out[j] = vals[lane]
        return out

    def _scatter(self, mem, defaults, aid: int, addrs,
                 vals: np.ndarray, ls) -> None:
        if type(addrs) is int:
            row, touched = self._mem_row(mem, defaults, aid, addrs)
            row[ls] = vals
            touched[ls] = True
            return
        a0 = addrs[0]
        if all(a == a0 for a in addrs):
            row, touched = self._mem_row(mem, defaults, aid, a0)
            row[ls] = vals
            touched[ls] = True
            return
        lanes = range(len(addrs)) if ls is _FULL else ls.tolist()
        for j, (lane, addr) in enumerate(zip(lanes, addrs)):
            row, touched = self._mem_row(mem, defaults, aid, addr)
            row[lane] = vals[j]
            touched[lane] = True
