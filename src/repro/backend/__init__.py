"""VLIW backend: bundle emission, register allocation, fast execution.

The backend turns a scheduled :class:`~repro.ir.graph.ProgramGraph`
into a concrete, executable VLIW *bundle program* and runs it fast:

* :mod:`repro.backend.bundles` -- the bundle IR and the encoder
  (per-FU-class slots, flattened CJ trees, explicit successors);
* :mod:`repro.backend.regalloc` -- linear-scan register allocation
  onto a finite physical file, with spilling;
* :mod:`repro.backend.vm` -- the flat array-based bundle interpreter
  with realized-cycle accounting;
* :mod:`repro.backend.check` -- differential checking against the
  tree-walking simulator (the semantic ground truth).
"""

from .bundles import (Bundle, BundleProgram, EncodeError, EXIT_BUNDLE, Slot,
                      encode)
from .check import DifferentialError, DifferentialReport, differential_check
from .regalloc import (Interval, RegAssignment, SPILL_ARRAY, allocate,
                       build_intervals)
from .vm import BundleVM, BundleVMError, VMResult, compile_graph

__all__ = [
    "Bundle", "BundleProgram", "BundleVM", "BundleVMError",
    "DifferentialError", "DifferentialReport", "EXIT_BUNDLE", "EncodeError",
    "Interval", "RegAssignment", "SPILL_ARRAY", "Slot", "VMResult",
    "allocate", "build_intervals", "compile_graph", "differential_check",
    "encode",
]
