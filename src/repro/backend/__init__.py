"""VLIW backend: bundle emission, register allocation, fast execution.

The backend turns a scheduled :class:`~repro.ir.graph.ProgramGraph`
into a concrete, executable VLIW *bundle program* and runs it fast:

* :mod:`repro.backend.bundles` -- the bundle IR and the encoder
  (per-FU-class slots, flattened CJ trees, explicit successors);
* :mod:`repro.backend.regalloc` -- linear-scan register allocation
  onto a finite physical file, with spilling;
* :mod:`repro.backend.vm` -- the flat array-based bundle interpreter
  with realized-cycle accounting;
* :mod:`repro.backend.batched` -- the numpy-vectorized multi-state VM
  (N initial states through one program, per-lane PCs and masking);
* :mod:`repro.backend.check` -- differential checking against the
  tree-walking simulator (the semantic ground truth), scalar and
  batched.
"""

from .batched import (BatchedVM, BatchedVMResult, checked_lane_mask,
                      loop_headers)
from .bundles import (Bundle, BundleProgram, EncodeError, EXIT_BUNDLE, Slot,
                      encode)
from .check import (BatchedDifferentialReport, BatchedPairReport,
                    DEFAULT_LANES, DifferentialError, DifferentialReport,
                    batched_pair_check, differential_check,
                    differential_check_batched)
from .regalloc import (Interval, RegAssignment, SPILL_ARRAY, allocate,
                       build_intervals)
from .vm import BundleVM, BundleVMError, VMResult, compile_graph

__all__ = [
    "BatchedDifferentialReport", "BatchedPairReport", "BatchedVM",
    "BatchedVMResult", "Bundle", "BundleProgram", "BundleVM",
    "BundleVMError", "DEFAULT_LANES", "DifferentialError",
    "DifferentialReport", "EXIT_BUNDLE", "EncodeError", "Interval",
    "RegAssignment", "SPILL_ARRAY", "Slot", "VMResult", "allocate",
    "batched_pair_check", "build_intervals", "checked_lane_mask",
    "compile_graph", "differential_check", "differential_check_batched",
    "encode", "loop_headers",
]
