"""Flat, array-based interpreter for bundle programs.

This is the fast path for executing scheduled code.  Where the
tree-walking simulator (:mod:`repro.simulator.interp`) re-derives
everything per cycle from IR objects -- dict-of-Operation iteration,
frozenset path tests, string-keyed register dicts -- the bundle VM
predecodes the whole program once:

* registers live in one flat list indexed by small ints (the physical
  file, followed by an interned immediate pool, so *every* operand read
  is ``regs[i]``);
* each bundle is decoded into int-coded operation tuples, a flattened
  branch array and, per CJ-tree leaf, the tuple of operations that
  commit on that path plus the successor bundle index;
* on top of the decoded form, each bundle is *compiled* to one
  straight-line Python function (leaf selection as nested ifs, commits
  as direct ``regs[i]`` reads/writes) -- executing a bundle is a single
  call, with no per-op dispatch left;
* memory is a list (indexed by interned array id) of int-keyed dicts
  with the same lazily-materialized seeded defaults as
  :class:`~repro.simulator.state.MachineState`.

Execution preserves VLIW entry-state semantics: every operand read in
a bundle observes the state at bundle entry (results and stores are
staged in locals and committed after all reads), and only operations
on the selected CJ-tree path retire.

Timing: one bundle is one issue cycle.  With a multi-cycle
``MachineConfig.latencies`` map the VM instead runs the decoded form
under an in-order scoreboard -- a bundle stalls until every register
it reads is ready, and results become ready ``latency`` cycles after
issue -- so ``cycles`` reports *realized* cycles (issue + stalls +
final drain) while ``steps`` stays the number of bundles executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from io import StringIO
from typing import Callable

from ..ir.operations import OpKind
from ..ir.registers import Imm, Operand, Reg
from ..simulator.state import Number, seeded_cell_default
from .bundles import Bundle, BundleProgram, EXIT_BUNDLE
from .regalloc import SPILL_ARRAY


class BundleVMError(RuntimeError):
    """Malformed program or exhausted step budget."""


# Opcode ints, in OpKind declaration order (predecode maps via _OPC).
_OPC = {kind: i for i, kind in enumerate(OpKind)}
(OPC_CONST, OPC_COPY, OPC_ADD, OPC_SUB, OPC_MUL, OPC_DIV, OPC_NEG,
 OPC_MIN, OPC_MAX, OPC_ABS, OPC_AND, OPC_OR, OPC_XOR, OPC_NOT,
 OPC_SHL, OPC_SHR, OPC_CMP_EQ, OPC_CMP_NE, OPC_CMP_LT, OPC_CMP_LE,
 OPC_CMP_GT, OPC_CMP_GE, OPC_LOAD, OPC_STORE, OPC_CJUMP, OPC_NOP
 ) = (_OPC[k] for k in OpKind)

_MISS = object()

#: opcode -> expression template over entry-state reads ``regs[i]``.
_EXPR = {
    OPC_COPY: "regs[{a}]",
    OPC_ADD: "regs[{a}] + regs[{b}]",
    OPC_SUB: "regs[{a}] - regs[{b}]",
    OPC_MUL: "regs[{a}] * regs[{b}]",
    OPC_DIV: "(regs[{a}] / regs[{b}]) if regs[{b}] != 0 else 0.0",
    OPC_NEG: "-regs[{a}]",
    OPC_MIN: "min(regs[{a}], regs[{b}])",
    OPC_MAX: "max(regs[{a}], regs[{b}])",
    OPC_ABS: "abs(regs[{a}])",
    OPC_AND: "int(regs[{a}]) & int(regs[{b}])",
    OPC_OR: "int(regs[{a}]) | int(regs[{b}])",
    OPC_XOR: "int(regs[{a}]) ^ int(regs[{b}])",
    OPC_NOT: "~int(regs[{a}])",
    OPC_SHL: "int(regs[{a}]) << (int(regs[{b}]) & 63)",
    OPC_SHR: "int(regs[{a}]) >> (int(regs[{b}]) & 63)",
    OPC_CMP_EQ: "1 if regs[{a}] == regs[{b}] else 0",
    OPC_CMP_NE: "1 if regs[{a}] != regs[{b}] else 0",
    OPC_CMP_LT: "1 if regs[{a}] < regs[{b}] else 0",
    OPC_CMP_LE: "1 if regs[{a}] <= regs[{b}] else 0",
    OPC_CMP_GT: "1 if regs[{a}] > regs[{b}] else 0",
    OPC_CMP_GE: "1 if regs[{a}] >= regs[{b}] else 0",
}


@dataclass
class VMResult:
    """Final state and counters of one VM run."""

    steps: int                 # bundles executed
    cycles: int                # realized cycles (== steps for 1-cycle ops)
    ops_committed: int
    exited: bool
    regs: list[Number]
    mem: list[dict[int, Number]]
    program: BundleProgram

    def register(self, name: str) -> Number:
        """Final value of a symbolic register (physical or spilled)."""
        asg = self.program.assignment
        if name in asg.spilled:
            aid = self.program.arrays.index(SPILL_ARRAY)
            return self.mem[aid][asg.spilled[name]]
        return self.regs[asg.index[name]]

    def memory(self, *, include_internal: bool = False
               ) -> dict[tuple[str, int], Number]:
        """Final memory as ``(array, index) -> value`` cells.

        Internal arrays (spill slots) are excluded by default so the
        result is directly comparable with the tree-walker's
        :class:`~repro.simulator.state.MachineState` memory.
        """
        out: dict[tuple[str, int], Number] = {}
        for aid, cells in enumerate(self.mem):
            name = self.program.arrays[aid]
            if not include_internal and name.startswith("__"):
                continue
            for idx, val in cells.items():
                out[(name, idx)] = val
        return out


class BundleVM:
    """A predecoded, pre-compiled bundle program, ready to run often."""

    def __init__(self, program: BundleProgram) -> None:
        self.program = program
        asg = program.assignment
        self._n_phys = asg.n_phys
        self._pool_index: dict[tuple[str, float | int], int] = {}
        self._pool_values: list[Number] = []
        self._aid_of = {name: i for i, name in enumerate(program.arrays)}
        lat_map = program.machine.latencies or {}
        self._track_latency = any(v > 1 for v in lat_map.values())
        self._decoded = [self._decode(b) for b in program.bundles]
        self._entry = program.entry
        self._fns_cache: list[Callable] | None = None

    @property
    def _fns(self) -> list[Callable]:
        # Compiled lazily: the exec-based fast path serves scalar
        # run()s only, and consumers that never take it -- the batched
        # VM re-executes `_decoded` over lane vectors -- should not pay
        # the bytecode compile on construction.
        if self._fns_cache is None:
            self._fns_cache = self._compile()
        return self._fns_cache

    # ------------------------------------------------------------------
    # Predecode: bundle -> int-coded tuples
    # ------------------------------------------------------------------
    def _operand(self, operand: Operand) -> int:
        if isinstance(operand, Imm):
            key = (type(operand.value).__name__, operand.value)
            idx = self._pool_index.get(key)
            if idx is None:
                idx = len(self._pool_values)  # rebased by n_phys later
                self._pool_index[key] = idx
                self._pool_values.append(operand.value)
            return self._n_phys + idx
        assert isinstance(operand, Reg)
        return self.program.assignment.index[operand.name]

    def _decode(self, b: Bundle) -> tuple:
        ops: list[tuple] = []
        slot_list = list(b.all_slots())
        lat_of = self.program.machine.latency
        for slot in slot_list:
            op = slot.op
            code = _OPC[op.kind]
            dest = -1 if op.dest is None else self._operand(op.dest)
            a = bb = aid = iidx = -1
            ioff = 0
            if op.mem is not None:
                aid = self._aid_of[op.mem.array]
                ioff = op.mem.offset
                if op.mem.index is not None:
                    iidx = self._operand(op.mem.index)
            if op.srcs:
                a = self._operand(op.srcs[0])
            if len(op.srcs) > 1:
                bb = self._operand(op.srcs[1])
            if code == OPC_CONST:
                code = OPC_COPY  # the immediate is interned in the pool
            ops.append((code, dest, a, bb, aid, iidx, ioff, lat_of(op)))
        tree = tuple((self._operand(cond), te, fe)
                     for cond, te, fe in b.tree)
        commits = tuple(
            tuple(i for i, slot in enumerate(slot_list) if leaf in slot.paths)
            for leaf in range(b.n_leaves))
        counts = tuple(len(commits[leaf]) + b.leaf_cj_counts[leaf]
                       for leaf in range(b.n_leaves))
        stall: set[int] = {c for c, _, _ in tree}
        for code, dest, a, bb, aid, iidx, ioff, lat in ops:
            stall.update(r for r in (a, bb, iidx) if r >= 0)
        return (tuple(ops), tree, b.root, tuple(b.leaf_targets),
                commits, counts, tuple(sorted(stall)))

    # ------------------------------------------------------------------
    # Compile: bundle -> one straight-line Python function
    # ------------------------------------------------------------------
    def _compile(self) -> list[Callable]:
        src = StringIO()
        for idx, rec in enumerate(self._decoded):
            self._emit_bundle(src, idx, rec)
        glb = {"_MISS": _MISS}
        exec(compile(src.getvalue(), "<bundle-program>", "exec"), glb)
        return [glb[f"_b{idx}"] for idx in range(len(self._decoded))]

    def _emit_bundle(self, out: StringIO, idx: int, rec: tuple) -> None:
        ops, tree, root, leaf_next, commits, counts, _stall = rec
        arrays = self.program.arrays
        out.write(f"def _b{idx}(regs, mem, default, ctr):\n")

        def emit_leaf(leaf: int, ind: str) -> None:
            reads: list[str] = []
            writes: list[str] = []
            for oi in commits[leaf]:
                code, dest, a, b, aid, iidx, ioff, _lat = ops[oi]
                addr = str(ioff) if iidx < 0 else (
                    f"{ioff} + int(regs[{iidx}])" if ioff else
                    f"int(regs[{iidx}])")
                if code == OPC_LOAD:
                    reads += [
                        f"_a{oi} = {addr}",
                        f"_m{oi} = mem[{aid}]",
                        f"t{oi} = _m{oi}.get(_a{oi}, _MISS)",
                        f"if t{oi} is _MISS:",
                        f"    t{oi} = default({arrays[aid]!r}, _a{oi})",
                        f"    _m{oi}[_a{oi}] = t{oi}",
                    ]
                    writes.append(f"regs[{dest}] = t{oi}")
                elif code == OPC_STORE:
                    reads += [f"_a{oi} = {addr}", f"_v{oi} = regs[{a}]"]
                    writes.append(f"mem[{aid}][_a{oi}] = _v{oi}")
                else:
                    expr = _EXPR[code].format(a=a, b=b)
                    reads.append(f"t{oi} = {expr}")
                    writes.append(f"regs[{dest}] = t{oi}")
            for line in reads + writes:
                out.write(ind + line + "\n")
            if counts[leaf]:
                out.write(ind + f"ctr[0] += {counts[leaf]}\n")
            out.write(ind + f"return {leaf_next[leaf]}\n")

        def emit(enc: int, ind: str) -> None:
            if enc < 0:
                emit_leaf(-enc - 1, ind)
                return
            cond, te, fe = tree[enc]
            out.write(ind + f"if regs[{cond}] != 0:\n")
            emit(te, ind + "    ")
            out.write(ind + "else:\n")
            emit(fe, ind + "    ")

        emit(root, "    ")
        out.write("\n")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _fresh_state(self, init_regs, mem_default, reg_default):
        asg = self.program.assignment
        regs: list[Number] = [reg_default] * self._n_phys + self._pool_values
        mem: list[dict[int, Number]] = [dict() for _ in self.program.arrays]
        default = (mem_default if mem_default is not None
                   else seeded_cell_default(0))
        if asg.spilled:
            spill_aid = self._aid_of[SPILL_ARRAY]
            for name, slot in asg.spilled.items():
                mem[spill_aid][slot] = reg_default
        if init_regs:
            for name, val in init_regs.items():
                if name in asg.spilled:
                    mem[self._aid_of[SPILL_ARRAY]][asg.spilled[name]] = val
                elif name in asg.index:
                    regs[asg.index[name]] = val
        return regs, mem, default

    def run(self, init_regs: dict[str, Number] | None = None,
            mem_default: Callable[[str, int], Number] | None = None, *,
            reg_default: Number = 0.0,
            max_steps: int = 1_000_000) -> VMResult:
        """Execute from the entry bundle until exit.

        Raises :class:`BundleVMError` when ``max_steps`` bundles execute
        without reaching EXIT (mirroring the tree-walker's budget).
        """
        regs, mem, default = self._fresh_state(init_regs, mem_default,
                                               reg_default)
        if self._entry == EXIT_BUNDLE:
            return VMResult(0, 0, 0, True, regs, mem, self.program)
        if self._track_latency:
            return self._run_timed(regs, mem, default, max_steps)
        fns = self._fns
        ctr = [0]
        b = self._entry
        steps = 0
        while b >= 0:
            if steps >= max_steps:
                raise BundleVMError(
                    f"step budget {max_steps} exhausted at bundle {b}")
            b = fns[b](regs, mem, default, ctr)
            steps += 1
        return VMResult(steps=steps, cycles=steps, ops_committed=ctr[0],
                        exited=True, regs=regs, mem=mem,
                        program=self.program)

    def run_profiled(self, init_regs: dict[str, Number] | None = None,
                     mem_default: Callable[[str, int], Number] | None = None,
                     *, reg_default: Number = 0.0,
                     max_steps: int = 1_000_000
                     ) -> tuple[VMResult, list[int], list[int]]:
        """Execute with a per-bundle profile: ``(result, visits, committed)``.

        ``visits[i]`` counts how often bundle ``i`` issued and
        ``committed[i]`` how many operations it retired over the run
        (taken-path CJs included, matching ``ops_committed``).  The
        profiled run goes through the decoded-tuple scoreboard
        interpreter -- with single-cycle latencies its timing
        degenerates to one cycle per bundle, so ``steps``, ``cycles``
        and ``ops_committed`` must match :meth:`run` exactly (the
        inefficiency report asserts this, which doubles as a
        compiled-vs-interpreted differential check).
        """
        regs, mem, default = self._fresh_state(init_regs, mem_default,
                                               reg_default)
        visits = [0] * len(self._decoded)
        committed = [0] * len(self._decoded)
        if self._entry == EXIT_BUNDLE:
            return (VMResult(0, 0, 0, True, regs, mem, self.program),
                    visits, committed)
        res = self._run_timed(regs, mem, default, max_steps,
                              visits=visits, committed=committed)
        return res, visits, committed

    # ------------------------------------------------------------------
    # Scoreboard path: realized cycles under multi-cycle latencies
    # ------------------------------------------------------------------
    def _run_timed(self, regs, mem, default, max_steps, *,
                   visits: list[int] | None = None,
                   committed: list[int] | None = None) -> VMResult:
        arrays = self.program.arrays
        decoded = self._decoded
        profiling = visits is not None
        ready = [0] * len(regs)
        b = self._entry
        steps = cycle = done = opsc = 0
        while b >= 0:
            if steps >= max_steps:
                raise BundleVMError(
                    f"step budget {max_steps} exhausted at bundle {b}")
            ops, tree, root, leaf_next, commits, counts, stall = decoded[b]
            e = root
            while e >= 0:
                c, te, fe = tree[e]
                e = te if regs[c] != 0 else fe
            leaf = -1 - e
            issue = cycle
            for r in stall:
                rr = ready[r]
                if rr > issue:
                    issue = rr
            writes: list = []
            stores: list = []
            for oi in commits[leaf]:
                code, dest, a, bb, aid, iidx, ioff, lat = ops[oi]
                if code == OPC_LOAD:
                    addr = ioff if iidx < 0 else ioff + int(regs[iidx])
                    m = mem[aid]
                    v = m.get(addr, _MISS)
                    if v is _MISS:
                        v = default(arrays[aid], addr)
                        m[addr] = v
                elif code == OPC_STORE:
                    addr = ioff if iidx < 0 else ioff + int(regs[iidx])
                    stores.append((aid, addr, regs[a], lat))
                    continue
                else:
                    v = _compute(code, regs, a, bb)
                writes.append((dest, v, lat))
            for dest, v, lat in writes:
                regs[dest] = v
                t = issue + lat
                ready[dest] = t
                if t > done:
                    done = t
            for aid, addr, v, lat in stores:
                mem[aid][addr] = v
                if issue + lat > done:
                    done = issue + lat
            cycle = issue + 1
            steps += 1
            opsc += counts[leaf]
            if profiling:
                visits[b] += 1
                committed[b] += counts[leaf]
            b = leaf_next[leaf]
        return VMResult(steps=steps, cycles=max(cycle, done),
                        ops_committed=opsc, exited=True, regs=regs,
                        mem=mem, program=self.program)


def _compute(code: int, regs: list, a: int, b: int) -> Number:
    """Decoded-tuple evaluation (scoreboard path only)."""
    if code == OPC_ADD:
        return regs[a] + regs[b]
    if code == OPC_MUL:
        return regs[a] * regs[b]
    if code == OPC_SUB:
        return regs[a] - regs[b]
    if code == OPC_COPY:
        return regs[a]
    if code == OPC_DIV:
        d = regs[b]
        return regs[a] / d if d != 0 else 0.0
    if code == OPC_NEG:
        return -regs[a]
    if code == OPC_MIN:
        return min(regs[a], regs[b])
    if code == OPC_MAX:
        return max(regs[a], regs[b])
    if code == OPC_ABS:
        return abs(regs[a])
    if code == OPC_AND:
        return int(regs[a]) & int(regs[b])
    if code == OPC_OR:
        return int(regs[a]) | int(regs[b])
    if code == OPC_XOR:
        return int(regs[a]) ^ int(regs[b])
    if code == OPC_NOT:
        return ~int(regs[a])
    if code == OPC_SHL:
        return int(regs[a]) << (int(regs[b]) & 63)
    if code == OPC_SHR:
        return int(regs[a]) >> (int(regs[b]) & 63)
    if code == OPC_CMP_EQ:
        return 1 if regs[a] == regs[b] else 0
    if code == OPC_CMP_NE:
        return 1 if regs[a] != regs[b] else 0
    if code == OPC_CMP_LT:
        return 1 if regs[a] < regs[b] else 0
    if code == OPC_CMP_LE:
        return 1 if regs[a] <= regs[b] else 0
    if code == OPC_CMP_GT:
        return 1 if regs[a] > regs[b] else 0
    if code == OPC_CMP_GE:
        return 1 if regs[a] >= regs[b] else 0
    raise BundleVMError(f"undecodable opcode {code}")


def compile_graph(graph, machine=None, **kw) -> BundleVM:
    """Encode + predecode + compile in one call (caller convenience)."""
    from ..machine.model import MachineConfig
    from .bundles import encode

    return BundleVM(encode(graph, machine or MachineConfig(), **kw))
