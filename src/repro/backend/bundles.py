"""Bundle IR: an executable lowering of scheduled program graphs.

A *bundle* is one cycle of a concrete VLIW target: per-functional-unit
slot lists (:class:`~repro.machine.model.FUClass`), a flattened
conditional-jump tree, and explicit successor bundle indices per tree
leaf.  :func:`encode` lowers a (scheduled) :class:`ProgramGraph` into a
:class:`BundleProgram`:

* one bundle per reachable graph node, laid out in RPO, validated
  against the machine's total and per-class slot budgets;
* symbolic registers mapped onto the physical file by
  :mod:`repro.backend.regalloc`; spilled registers materialize as
  *reload* bundles (before the using bundle) and *spill-store* bundles
  (on the outgoing edges of the defining bundle), staged through the
  allocator's scratch registers;
* each operation keeps its path set, translated to local leaf indices,
  so the IBM "commit only on the selected path" semantics survive
  lowering.

The bundle program stays symbolic enough to read (slots hold
:class:`~repro.ir.operations.Operation` records); the flat array
interpreter in :mod:`repro.backend.vm` predecodes it into int-indexed
tuples for execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO
from typing import Iterator

from ..ir.cjtree import CJTree, EXIT, Leaf
from ..ir.graph import ProgramGraph
from ..ir.instruction import Instruction
from ..ir.operations import Operation, OpKind, load, store
from ..ir.registers import Operand, Reg
from ..machine.model import FUClass, MachineConfig, fu_class_of
from .regalloc import RegAssignment, SPILL_ARRAY, allocate

#: Successor sentinel: leaving the program.
EXIT_BUNDLE = -1


class EncodeError(RuntimeError):
    """Raised when a graph cannot be lowered onto the target machine."""


@dataclass(frozen=True)
class Slot:
    """One occupied issue slot: an operation plus its commit paths.

    ``paths`` are *local* leaf indices (0..n_leaves-1 of the owning
    bundle), not the graph's global leaf ids.
    """

    op: Operation
    paths: tuple[int, ...]


@dataclass
class Bundle:
    """One VLIW bundle (= one issue cycle).

    ``tree`` is the flattened CJ tree: entry ``(cond, on_true,
    on_false)`` where an encoding ``>= 0`` names another tree entry and
    ``< 0`` names local leaf ``-enc - 1``.  ``root`` uses the same
    encoding (a branch-free bundle has an empty tree and root ``-1``).
    ``leaf_targets`` maps local leaves to successor bundle indices
    (:data:`EXIT_BUNDLE` for program exit).
    """

    index: int
    nid: int  # source graph node, or -1 for synthetic spill traffic
    slots: dict[FUClass, list[Slot]] = field(
        default_factory=lambda: {c: [] for c in FUClass})
    tree: list[tuple[Operand, int, int]] = field(default_factory=list)
    root: int = -1
    leaf_targets: list[int] = field(default_factory=lambda: [EXIT_BUNDLE])
    leaf_cj_counts: list[int] = field(default_factory=lambda: [0])
    kind: str = "node"  # "node" | "reload" | "spill"

    def all_slots(self) -> Iterator[Slot]:
        for cls in FUClass:
            yield from self.slots[cls]

    def op_count(self) -> int:
        return sum(len(v) for v in self.slots.values())

    @property
    def n_leaves(self) -> int:
        return len(self.leaf_targets)

    def add_slot(self, op: Operation, paths: tuple[int, ...]) -> None:
        self.slots[fu_class_of(op)].append(Slot(op, paths))


@dataclass
class BundleProgram:
    """An executable bundle program plus its lowering metadata."""

    bundles: list[Bundle]
    entry: int
    machine: MachineConfig
    assignment: RegAssignment
    arrays: list[str]
    source_nodes: int = 0

    @property
    def schedule_length(self) -> int:
        """Bundles lowered from graph nodes (the schedule's cycles)."""
        return sum(1 for b in self.bundles if b.kind == "node")

    @property
    def spill_bundles(self) -> int:
        return sum(1 for b in self.bundles if b.kind != "node")

    def op_count(self) -> int:
        return sum(b.op_count() for b in self.bundles)

    def summary(self) -> str:
        return (f"{len(self.bundles)} bundles ({self.schedule_length} "
                f"scheduled + {self.spill_bundles} spill), "
                f"{self.op_count()} slots, {self.assignment.summary()}")

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Assembly-style listing of the whole program."""
        out = StringIO()
        for b in self.bundles:
            src = f"n{b.nid}" if b.kind == "node" else f"{b.kind} n{b.nid}"
            out.write(f"b{b.index} ({src}): -> {self._render_tree(b)}\n")
            for cls in FUClass:
                for slot in b.slots[cls]:
                    suffix = ""
                    if b.n_leaves > 1 and len(slot.paths) < b.n_leaves:
                        suffix = f"  @paths{list(slot.paths)}"
                    out.write(f"  {cls.name:6s} {slot.op!r}{suffix}\n")
        return out.getvalue()

    def _render_tree(self, b: Bundle) -> str:
        def tgt(leaf: int) -> str:
            t = b.leaf_targets[leaf]
            return "EXIT" if t == EXIT_BUNDLE else f"b{t}"

        def rec(enc: int) -> str:
            if enc < 0:
                return tgt(-enc - 1)
            cond, te, fe = b.tree[enc]
            return f"({cond!r}? {rec(te)} : {rec(fe)})"

        return rec(b.root)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _mem_chunk(machine: MachineConfig) -> int:
    """Spill traffic per synthetic bundle (respects MEM/total budgets)."""
    budget = machine.class_budget(FUClass.MEM)
    return 1 << 30 if budget is None else max(1, budget)


def _subst(operand: Operand, scratch_map: dict[str, Reg]) -> Operand:
    if isinstance(operand, Reg) and operand.name in scratch_map:
        return scratch_map[operand.name]
    return operand


def encode(graph: ProgramGraph, machine: MachineConfig = MachineConfig(), *,
           exit_live: frozenset[Reg] = frozenset(),
           assignment: RegAssignment | None = None) -> BundleProgram:
    """Lower ``graph`` to a bundle program for ``machine``.

    Raises :class:`EncodeError` when a node exceeds the machine's slot
    budgets -- encoding validates the scheduler's contract rather than
    fixing it up.  Unreachable nodes are not emitted.
    """
    order = graph.rpo()
    if not order:
        return BundleProgram([], EXIT_BUNDLE, machine,
                             assignment or RegAssignment(n_phys=0), [])
    for nid in order:
        node = graph.nodes[nid]
        if not machine.fits(node):
            raise EncodeError(
                f"node {nid} needs {machine.slots_used(node)} slots; "
                f"over budget for {machine}")
    if assignment is None:
        assignment = allocate(graph, order, phys_regs=machine.phys_regs,
                              exit_live=exit_live)
    spilled = assignment.spilled
    arrays: list[str] = []
    seen_arrays: set[str] = set()

    def intern_array(name: str) -> None:
        if name not in seen_arrays:
            seen_arrays.add(name)
            arrays.append(name)

    for nid in order:
        for op in graph.nodes[nid].all_ops():
            if op.mem is not None:
                intern_array(op.mem.array)
    if spilled:
        intern_array(SPILL_ARRAY)

    bundles: list[Bundle] = []
    entry_idx: dict[int, int] = {}
    mains: list[tuple[Bundle, list[int], list[Operation] | None]] = []
    chunk = _mem_chunk(machine)

    # Pass A: reload bundles + main bundle per node; record leaf node
    # targets and pending spill stores for pass B.
    for nid in order:
        node = graph.nodes[nid]
        touched = _spilled_touched(node, spilled)
        scratch_map = {name: Reg(assignment.scratch[j])
                       for j, name in enumerate(touched)}
        reload_ops = [load(scratch_map[name], SPILL_ARRAY,
                           offset=spilled[name], name=f"rld.{name}")
                      for name in touched if name in _spilled_uses(node, spilled)]
        store_ops = [store(SPILL_ARRAY, scratch_map[name],
                           offset=spilled[name], name=f"spl.{name}")
                     for name in touched
                     if name in _spilled_defs(node, spilled)]
        for i in range(0, len(reload_ops), chunk):
            rb = Bundle(index=len(bundles), nid=nid, kind="reload")
            for op in reload_ops[i:i + chunk]:
                rb.add_slot(op, (0,))
            rb.leaf_targets = [len(bundles) + 1]  # fall through the chain
            bundles.append(rb)
        main, leaf_nodes = _encode_node(node, len(bundles), scratch_map)
        entry_idx[nid] = main.index - _n_chunks(len(reload_ops), chunk)
        bundles.append(main)
        mains.append((main, leaf_nodes, store_ops or None))

    # Pass B: resolve main-bundle leaf targets, inserting spill-store
    # chains on outgoing edges where the node defined spilled registers.
    store_chains: dict[tuple[int, int], int] = {}
    for main, leaf_nodes, store_ops in mains:
        for leaf, target_nid in enumerate(leaf_nodes):
            target = (EXIT_BUNDLE if target_nid == EXIT
                      else entry_idx[target_nid])
            if store_ops:
                key = (main.index, target)
                if key not in store_chains:
                    store_chains[key] = _append_store_chain(
                        bundles, store_ops, target, chunk, main.nid)
                target = store_chains[key]
            main.leaf_targets[leaf] = target

    return BundleProgram(bundles=bundles, entry=entry_idx[order[0]],
                         machine=machine, assignment=assignment,
                         arrays=arrays, source_nodes=len(order))


def _n_chunks(n: int, chunk: int) -> int:
    return (n + chunk - 1) // chunk if n else 0


def _spilled_uses(node: Instruction, spilled: dict[str, int]) -> set[str]:
    out: set[str] = set()
    for op in node.all_ops():
        out |= {r.name for r in op.uses() if r.name in spilled}
    return out


def _spilled_defs(node: Instruction, spilled: dict[str, int]) -> set[str]:
    out: set[str] = set()
    for op in node.ops.values():
        if op.dest is not None and op.dest.name in spilled:
            if node.paths[op.uid] != node.all_paths:
                raise EncodeError(
                    f"spilled register {op.dest.name} has a "
                    f"partially-committing def in node {node.nid}")
            out.add(op.dest.name)
    return out


def _spilled_touched(node: Instruction, spilled: dict[str, int]) -> list[str]:
    if not spilled:
        return []
    return sorted(_spilled_uses(node, spilled) | _spilled_defs(node, spilled))


def _append_store_chain(bundles: list[Bundle], store_ops: list[Operation],
                        target: int, chunk: int, nid: int) -> int:
    """Append a spill-store chain ending at ``target``; returns its head."""
    head = len(bundles)
    chunks = [store_ops[i:i + chunk] for i in range(0, len(store_ops), chunk)]
    for j, ops in enumerate(chunks):
        sb = Bundle(index=len(bundles), nid=nid, kind="spill")
        for op in ops:
            sb.add_slot(op, (0,))
        last = j == len(chunks) - 1
        sb.leaf_targets = [target if last else len(bundles) + 1]
        bundles.append(sb)
    return head


def _encode_node(node: Instruction, index: int,
                 scratch_map: dict[str, Reg]
                 ) -> tuple[Bundle, list[int]]:
    """Lower one graph node; returns (bundle, per-leaf target node ids)."""
    leaves = node.leaves()
    local = {leaf.leaf_id: i for i, leaf in enumerate(leaves)}
    b = Bundle(index=index, nid=node.nid)
    b.leaf_targets = [0] * len(leaves)  # filled by pass B
    b.leaf_cj_counts = [0] * len(leaves)

    tree: list[tuple[Operand, int, int]] = []

    def enc(t: CJTree, depth: int) -> int:
        if isinstance(t, Leaf):
            b.leaf_cj_counts[local[t.leaf_id]] = depth
            return -local[t.leaf_id] - 1
        cond = _subst(node.cjs[t.cj_uid].srcs[0], scratch_map)
        row = len(tree)
        tree.append((cond, 0, 0))
        te = enc(t.on_true, depth + 1)
        fe = enc(t.on_false, depth + 1)
        tree[row] = (cond, te, fe)
        return row

    b.root = enc(node.tree, 0)
    b.tree = tree

    for op in sorted(node.ops.values(), key=lambda o: o.uid):
        if op.kind is OpKind.NOP:
            continue  # no architectural effect; bundles don't carry them
        paths = tuple(sorted(local[l] for l in node.paths[op.uid]))
        b.add_slot(_rewrite_op(op, scratch_map), paths)
    return b, [leaf.target for leaf in leaves]


def _rewrite_op(op: Operation, scratch_map: dict[str, Reg]) -> Operation:
    """Route spilled registers of one op through scratch registers."""
    if not scratch_map:
        return op
    for name in sorted({r.name for r in op.uses()} & scratch_map.keys()):
        op = op.substitute_use(Reg(name), scratch_map[name])
    if op.dest is not None and op.dest.name in scratch_map:
        op = op.with_dest(scratch_map[op.dest.name])
    return op
