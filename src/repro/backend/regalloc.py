"""Linear-scan register allocation for bundle programs.

The scheduler works over an unbounded *symbolic* register namespace
(:mod:`repro.ir.registers`); a concrete VLIW target has a finite
physical register file.  This module maps every symbolic register that
a program graph touches onto a physical index, using the classic
Poletto-Sarkar linear scan over the bundle linearization (the graph's
RPO, which is exactly the order :func:`repro.backend.bundles.encode`
lays bundles out in).

Live intervals come from :mod:`repro.analysis.liveness`: a register's
interval spans every bundle position where it is live at entry, used,
or defined.  Loops are handled conservatively -- a register live
around a back edge is live across the whole loop span, so lifetime
holes inside a loop are never reused.

Spilling
--------
When the file is too small, the interval with the furthest end is
spilled to a slot in a dedicated ``__spill__`` memory array.  The
encoder materializes slots as reload bundles (before a use) and store
bundles (after a def), staging values through *scratch* registers
reserved at the top of the file.  Two restrictions keep spill code
sound under the IBM path-sensitive commit model:

* only registers whose every definition commits on **all** paths of
  its node are spill candidates (a partially-committing def would need
  per-path stores), and
* the scratch pool must cover the largest number of distinct spilled
  registers any single node touches; the allocator grows the pool and
  re-runs until the allocation is self-consistent.

Exceeding both budgets raises
:class:`~repro.ir.registers.RegisterPressureError`, mirroring what a
real machine with no free register would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.liveness import liveness
from ..ir.graph import ProgramGraph
from ..ir.registers import Reg, RegisterPressureError

#: Memory array backing spill slots (filtered out of differential
#: memory comparisons; see :mod:`repro.backend.check`).
SPILL_ARRAY = "__spill__"
#: Name prefix of scratch registers staging spilled values.
SCRATCH_PREFIX = "%sp"


@dataclass(frozen=True)
class Interval:
    """One symbolic register's live span over bundle positions."""

    name: str
    start: int
    end: int
    spillable: bool = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "" if self.spillable else " pinned"
        return f"<{self.name} [{self.start},{self.end}]{tag}>"


@dataclass
class RegAssignment:
    """The allocator's output: symbolic name -> physical index / slot.

    ``index`` covers every non-spilled symbolic register plus the
    scratch registers; ``spilled`` maps spilled names to slot numbers
    in :data:`SPILL_ARRAY`.  ``n_phys`` is the size of the physical
    file the VM must materialize (scratch included).
    """

    n_phys: int
    index: dict[str, int] = field(default_factory=dict)
    spilled: dict[str, int] = field(default_factory=dict)
    scratch: list[str] = field(default_factory=list)
    intervals: dict[str, Interval] = field(default_factory=dict)

    @property
    def spill_count(self) -> int:
        return len(self.spilled)

    def phys_of(self, name: str) -> int:
        return self.index[name]

    def is_spilled(self, name: str) -> bool:
        return name in self.spilled

    def summary(self) -> str:
        return (f"{len(self.index) - len(self.scratch)} regs -> "
                f"{self.n_phys} physical, {len(self.spilled)} spilled, "
                f"{len(self.scratch)} scratch")


# ----------------------------------------------------------------------
# Interval construction
# ----------------------------------------------------------------------
def node_uses(node) -> set[str]:
    out: set[str] = set()
    for op in node.all_ops():
        out |= {r.name for r in op.uses()}
    return out


def node_defs(node) -> set[str]:
    return {op.dest.name for op in node.ops.values() if op.dest is not None}


def build_intervals(graph: ProgramGraph, order: list[int], *,
                    exit_live: frozenset[Reg] = frozenset()
                    ) -> list[Interval]:
    """Live intervals over the ``order`` linearization.

    ``exit_live`` registers are observable after the program and get
    their intervals pinned to the last position (and marked
    unspillable: their final value must sit in a physical register).
    """
    live = liveness(graph, exit_live)
    lo: dict[str, int] = {}
    hi: dict[str, int] = {}
    unspillable: set[str] = set()

    def touch(name: str, p: int) -> None:
        if name not in lo or p < lo[name]:
            lo[name] = p
        if name not in hi or p > hi[name]:
            hi[name] = p

    for p, nid in enumerate(order):
        node = graph.nodes[nid]
        for name in node_uses(node) | node_defs(node):
            touch(name, p)
        for r in live.live_at_entry(nid):
            touch(r.name, p)
        all_paths = node.all_paths
        for op in node.ops.values():
            if op.dest is not None and node.paths[op.uid] != all_paths:
                # Partially-committing def: per-path spill stores would
                # be needed, so pin the register (see module docstring).
                unspillable.add(op.dest.name)
    last = len(order) - 1
    for r in exit_live:
        if r.name in lo:
            touch(r.name, last)
        unspillable.add(r.name)
    out = [Interval(name, lo[name], hi[name], name not in unspillable)
           for name in lo]
    out.sort(key=lambda iv: (iv.start, iv.end, iv.name))
    return out


def max_spilled_per_node(graph: ProgramGraph, order: list[int],
                         spilled: set[str]) -> int:
    """Largest number of distinct spilled registers one node touches."""
    worst = 0
    for nid in order:
        node = graph.nodes[nid]
        touched = (node_uses(node) | node_defs(node)) & spilled
        worst = max(worst, len(touched))
    return worst


# ----------------------------------------------------------------------
# Linear scan
# ----------------------------------------------------------------------
def _scan(intervals: list[Interval], available: int
          ) -> tuple[dict[str, int], dict[str, int]]:
    """One linear-scan pass; returns (phys index map, spill slot map)."""
    index: dict[str, int] = {}
    slots: dict[str, int] = {}
    free = list(range(available - 1, -1, -1))  # pop() yields 0,1,2,...
    active: list[Interval] = []  # sorted by end asc

    def insert_active(iv: Interval) -> None:
        k = 0
        while k < len(active) and active[k].end <= iv.end:
            k += 1
        active.insert(k, iv)

    for iv in intervals:
        while active and active[0].end < iv.start:
            free.append(index[active.pop(0).name])
        if free:
            index[iv.name] = free.pop()
            insert_active(iv)
            continue
        # No free register: spill the furthest-ending spillable interval.
        victim = None
        for cand in reversed(active):
            if cand.spillable:
                victim = cand
                break
        if iv.spillable and (victim is None or victim.end <= iv.end):
            victim = iv
        if victim is None:
            raise RegisterPressureError(
                f"cannot allocate {iv.name}: {available} registers, "
                f"every active interval is unspillable")
        slots[victim.name] = len(slots)
        if victim is not iv:
            active.remove(victim)
            index[iv.name] = index.pop(victim.name)
            insert_active(iv)
    return index, slots


def allocate(graph: ProgramGraph, order: list[int] | None = None, *,
             phys_regs: int | None = None,
             exit_live: frozenset[Reg] = frozenset()) -> RegAssignment:
    """Allocate every symbolic register of ``graph`` to a physical index.

    ``phys_regs=None`` models an unbounded file: each register gets its
    own index (the VM's register array simply grows to fit) and nothing
    spills.  Otherwise a linear scan with iterative scratch reservation
    runs as described in the module docstring.
    """
    if order is None:
        order = graph.rpo()
    if phys_regs is None:
        names = sorted({n for nid in order
                        for n in (node_uses(graph.nodes[nid])
                                  | node_defs(graph.nodes[nid]))})
        return RegAssignment(n_phys=len(names),
                             index={n: i for i, n in enumerate(names)})

    intervals = build_intervals(graph, order, exit_live=exit_live)
    by_name = {iv.name: iv for iv in intervals}
    scratch_n = 0
    while True:
        available = phys_regs - scratch_n
        if available < 1:
            raise RegisterPressureError(
                f"physical file of {phys_regs} cannot host "
                f"{scratch_n} scratch registers plus live values")
        index, slots = _scan(intervals, available)
        if not slots:
            break
        need = max_spilled_per_node(graph, order, set(slots))
        if need <= scratch_n:
            break
        scratch_n = need
    scratch = [f"{SCRATCH_PREFIX}{j}" for j in range(scratch_n)]
    for j, name in enumerate(scratch):
        index[name] = phys_regs - scratch_n + j
    return RegAssignment(n_phys=phys_regs, index=index, spilled=slots,
                         scratch=scratch, intervals=by_name)
