"""Command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro table1 [--fus 2 4 8] [--unroll-scale 3]
        Regenerate the paper's Table 1 (GRiP vs POST over LL1-LL14).

    python -m repro pipeline <LLk|dsl-file> [--fus N] [--unroll K]
        Pipeline one kernel and print its kernel/summary.

    python -m repro kernels
        List the built-in Livermore kernels.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def cmd_table1(args: argparse.Namespace) -> int:
    from .machine import MachineConfig
    from .pipelining import pipeline_loop, pipeline_loop_post
    from .reporting import SpeedupTable
    from .workloads import livermore

    t = SpeedupTable(fu_configs=tuple(args.fus), systems=("GRiP", "POST"))
    for name in livermore.kernel_names():
        for fus in args.fus:
            unroll = max(12, args.unroll_scale * fus)
            g = pipeline_loop(livermore.kernel(name, unroll),
                              MachineConfig(fus=fus), unroll=unroll,
                              measure=False)
            p = pipeline_loop_post(livermore.kernel(name, unroll),
                                   MachineConfig(fus=fus), unroll=unroll)
            w = livermore.kernel(name, 4).ops_per_iteration
            t.add(name, fus, "GRiP", g.speedup, weight=w)
            t.add(name, fus, "POST", p.speedup, weight=w)
        print(f"{name} done", file=sys.stderr)
    print(t.render("Table 1: Observed Speed-up (reproduction)"))
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    from .frontend import compile_dsl
    from .ir.render import schedule_table
    from .machine import MachineConfig
    from .pipelining import main_chain, pipeline_loop
    from .workloads import livermore

    unroll = args.unroll
    if args.kernel.upper() in livermore.kernel_names():
        loop = livermore.kernel(args.kernel, unroll)
    else:
        src = Path(args.kernel).read_text()
        loop = compile_dsl(src, unroll, name=Path(args.kernel).stem)
    res = pipeline_loop(loop, MachineConfig(fus=args.fus), unroll=unroll)
    print(res.summary())
    print()
    print(schedule_table(res.unwound.graph,
                         order=main_chain(res.unwound.graph)))
    return 0


def cmd_kernels(_: argparse.Namespace) -> int:
    from .workloads import livermore

    for name in livermore.kernel_names():
        loop = livermore.kernel(name, 4)
        print(f"{name:6s} {loop.ops_per_iteration:2d} ops/iter  "
              f"{loop.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p1 = sub.add_parser("table1", help="regenerate Table 1")
    p1.add_argument("--fus", nargs="+", type=int, default=[2, 4, 8])
    p1.add_argument("--unroll-scale", type=int, default=3)
    p1.set_defaults(fn=cmd_table1)

    p2 = sub.add_parser("pipeline", help="pipeline one kernel")
    p2.add_argument("kernel", help="LLk name or a DSL source file")
    p2.add_argument("--fus", type=int, default=4)
    p2.add_argument("--unroll", type=int, default=12)
    p2.set_defaults(fn=cmd_pipeline)

    p3 = sub.add_parser("kernels", help="list Livermore kernels")
    p3.set_defaults(fn=cmd_kernels)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
