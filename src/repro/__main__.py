"""Command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro table1 [--fus 2 4 8] [--unroll-scale 3]
        Regenerate the paper's Table 1 (GRiP vs POST over LL1-LL14).

    python -m repro pipeline <LLk|dsl-file> [--fus N] [--unroll K]
                    [--backend tree|vm]
        Pipeline one kernel and print its kernel/summary.  With
        ``--backend vm`` the scheduled chain is additionally lowered to
        a bundle program, executed on the bundle VM, differentially
        checked against the tree-walking simulator, and reported with
        realized-cycle columns.

    python -m repro emit <LLk|dsl-file> [--fus N] [--unroll K] [--seq]
                    [--phys-regs N] [--run]
        Lower a kernel to a VLIW bundle program and print the listing.
        ``--seq`` emits the sequential (unscheduled) loop; ``--run``
        also executes it on the bundle VM with a differential check.

    python -m repro kernels
        List the built-in kernels (Livermore + curated synthetic).

    python -m repro explain <LLk|SYN*|dsl-file> [--fus N] [--unroll K]
                    [--seed S] [--out EXPLAIN.json]
        Schedule one kernel with a decision journal attached, execute
        it on the bundle VM (normal + profiled), and print the
        inefficiency report: achieved cycles vs the dependence/resource
        lower bound, idle slots per bundle, decision tallies, top
        blocked candidates.  Writes a stable-schema EXPLAIN_*.json
        artifact; every count is reconciled against the VM scoreboard
        (a mismatch is an error, never a warning).

    python -m repro bench [--family ll synth] [--kernels LL1 ...]
                    [--fus 2 4 8] [--backends grip post vm] [--jobs N]
                    [--smoke] [--profile] [--cache DIR] [--serve ADDR]
                    [--out BENCH.json]
                    [--diff PREV.json] [--diff-subset] [--tol 0.05]
        Run the benchmark sweep (kernels x fu-configs x backends) over a
        multiprocessing pool and write a machine-readable BENCH_*.json
        artifact.  ``--diff`` compares against a previous artifact and
        exits non-zero on speedup regressions beyond ``--tol``;
        ``--diff-subset`` gates only the cells this sweep ran (how a
        smoke sweep diffs against the committed full-table baseline).
        ``--profile`` attaches a decision journal to every GRiP cell
        and embeds its tallies into the records (observe-only:
        speedups are bit-identical, only wall-clock moves).

    python -m repro fuzz [--budget N] [--seed S] [--jobs N]
                    [--verify-every N] [--out-dir DIR]
                    [--replay FUZZ_<seed>.json] [--tamper drop-store]
        Differential fuzzing over the synthetic scenario space: each
        seed pins a generated kernel + machine shape, which is GRiP-
        scheduled, equivalence-checked against the sequential loop,
        and differentially executed on the bundle VM; every
        ``--verify-every``-th seed also runs under a verifying
        AnalysisManager.  Failures are shrunk to minimized
        FUZZ_<seed>.json repro artifacts, replayable with ``--replay``.

    python -m repro serve [--tcp HOST:PORT] [--jobs N] [--cache DIR]
                    [--selftest]
        Batch scheduling front: accepts JSON-lines batches of jobs
        (schedule / bench / fuzz kinds) over stdio (default) or TCP,
        fans them out across a worker pool sharing one schedule cache,
        and streams per-job results plus a batch summary with cache
        hit rates.  ``--selftest`` starts an ephemeral server, submits
        the same 6-program batch twice and asserts the second pass is
        answered from the cache with identical results (the CI smoke).

    python -m repro tune [--kernels LL1 LL3 LL5] [--fus 2 4]
                    [--budget N] [--seed S] [--jobs N] [--cache DIR]
                    [--out TUNED.json] [--smoke] [--check TUNED.json]
        Per-(kernel, fu-config) schedule-policy autotuner: seeded
        multi-start random search + greedy coordinate descent over the
        SchedulePolicy axes, objective = realized VM cycles of the
        differentially-checked schedule.  Decision-journal
        ``top_blocked`` reason codes steer which axis is perturbed
        first.  Writes a schema-versioned TUNED_*.json artifact
        recording, per cell, the winning policy + fingerprint, its
        cycles, the default-policy cycles and the search budget.
        ``--check`` re-executes a stored artifact and demands exact
        cycle reproduction; ``--smoke`` is the CI lane (tiny budget,
        LL3 + one synthetic kernel, artifact schema-validated from
        disk).

Schedule cache: ``pipeline``, ``emit``, ``bench`` and ``fuzz`` accept
``--cache DIR``, a content-addressed on-disk schedule cache keyed on
the canonical (alpha-renamed) program text, the machine fingerprint
and the scheduler version + options.  Warm results are bit-identical
to cold runs; only the schedule-stage wall-clock changes.  ``bench``
and ``fuzz`` also accept ``--serve HOST:PORT`` to route their cells /
seeds through a running ``repro serve`` front instead of a local
pool.

Exit codes (bench, fuzz, serve --selftest): 0 = clean, 1 = regression
/ mismatch found, 2 = usage error (argparse errors included).  This
contract predates the ``repro.api`` facade and is unchanged by it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import NoReturn


def _usage(msg: str) -> NoReturn:
    """Reject a bad invocation: message on stderr, exit code 2."""
    print(msg, file=sys.stderr)
    raise SystemExit(2)


#: tamper choices (mirrors repro.bench.fuzz.TAMPERS, kept literal so
#: building the arg parser doesn't import the scheduling stack)
TAMPER_NAMES = ("drop-store",)
#: default states/case of the batched fuzz check (bench.fuzz.DEFAULT_LANES,
#: duplicated so --help never imports the fuzz machinery)
FUZZ_LANES = 16


def cmd_table1(args: argparse.Namespace) -> int:
    from .machine import MachineConfig
    from .pipelining import pipeline_loop_post, schedule_loop
    from .reporting import SpeedupTable
    from .workloads import livermore

    t = SpeedupTable(fu_configs=tuple(args.fus), systems=("GRiP", "POST"))
    for name in livermore.kernel_names():
        for fus in args.fus:
            unroll = max(12, args.unroll_scale * fus)
            loop = livermore.kernel(name, unroll)
            g = schedule_loop(loop, MachineConfig(fus=fus), unroll=unroll,
                              measure=False)
            p = pipeline_loop_post(loop, MachineConfig(fus=fus),
                                   unroll=unroll)
            t.add(name, fus, "GRiP", g.speedup,
                  weight=loop.ops_per_iteration)
            t.add(name, fus, "POST", p.speedup,
                  weight=loop.ops_per_iteration)
        print(f"{name} done", file=sys.stderr)
    print(t.render("Table 1: Observed Speed-up (reproduction)"))
    return 0


def _load_kernel(spec: str, unroll: int):
    from . import api

    try:
        return api.load_kernel(spec, unroll)
    except api.KernelSpecError as exc:
        _usage(f"repro: {exc}")


def _cli_cache(args: argparse.Namespace):
    """The ``--cache DIR`` schedule cache of a subcommand, if any."""
    if getattr(args, "cache", None) is None:
        return None
    from .cache import ScheduleCache

    return ScheduleCache(args.cache)


def cmd_pipeline(args: argparse.Namespace) -> int:
    from . import api
    from .ir.loops import LoopProgram
    from .ir.render import schedule_table
    from .machine import MachineConfig
    from .pipelining import main_chain

    loop = _load_kernel(args.kernel, args.unroll)
    machine = MachineConfig(fus=args.fus)
    if isinstance(loop, LoopProgram):
        return _cmd_pipeline_program(args, loop, machine)
    res = api.schedule(loop, machine,
                       options=api.ScheduleOptions(unroll=args.unroll),
                       cache=_cli_cache(args))
    print(res.summary())
    print()
    print(schedule_table(res.unwound.graph,
                         order=main_chain(res.unwound.graph)))
    if args.backend == "vm":
        from .backend import differential_check
        from .reporting import RealizedRow, realized_cycles_table

        rep = differential_check(res.unwound.graph, machine)
        prog = rep.program
        seq = res.measured_seq_cycles
        row = RealizedRow(
            kernel=loop.name, machine=str(machine),
            schedule_length=prog.schedule_length,
            interp_cycles=rep.interp_cycles[-1],
            vm_steps=rep.vm_steps[-1],
            realized_cycles=rep.realized_cycles,
            sched_speedup=res.speedup,
            realized_speedup=(seq / rep.realized_cycles
                              if seq and rep.realized_cycles else None))
        print(realized_cycles_table([row]))
        print(f"differential check ok ({len(rep.seeds)} seeds); "
              f"{prog.summary()}")
    return 0


def _cmd_pipeline_program(args: argparse.Namespace, program,
                          machine) -> int:
    """``repro pipeline`` over a while/multi-loop program kernel."""
    from . import api
    from .ir.render import schedule_table
    from .pipelining import main_chain

    res = api.schedule(program, machine,
                       options=api.ScheduleOptions(unroll=args.unroll),
                       cache=_cli_cache(args))
    print(res.summary())
    print()
    print(schedule_table(res.graph, order=main_chain(res.graph)))
    if args.backend == "vm":
        from .backend import differential_check
        from .backend.check import realized_program_pair
        from .reporting import RealizedRow, realized_cycles_table

        rep = differential_check(res.graph, machine)
        prog = rep.program
        # While trips are data-dependent: pair sequential and VM runs
        # of the SAME initial state for the realized-speedup ratio.
        seq_cycles, vm_res = realized_program_pair(
            program.graph, res.graph, prog)
        row = RealizedRow(
            kernel=program.name, machine=str(machine),
            schedule_length=prog.schedule_length,
            interp_cycles=rep.interp_cycles[-1],
            vm_steps=vm_res.steps,
            realized_cycles=vm_res.cycles,
            sched_speedup=res.speedup,
            realized_speedup=(seq_cycles / vm_res.cycles
                              if vm_res.cycles else None))
        print(realized_cycles_table([row]))
        print(f"differential check ok ({len(rep.seeds)} seeds); "
              f"{prog.summary()}")
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    from . import api
    from .machine import MachineConfig

    loop = _load_kernel(args.kernel, args.unroll)
    machine = MachineConfig(fus=args.fus, phys_regs=args.phys_regs)
    if args.seq:
        graph = loop.graph
    else:
        res = api.schedule(
            loop, MachineConfig(fus=args.fus),
            options=api.ScheduleOptions(unroll=args.unroll, measure=False),
            cache=_cli_cache(args))
        graph = api.scheduled_graph(res)
    from .backend import EncodeError, encode
    from .ir.registers import RegisterPressureError

    try:
        prog = encode(graph, machine)
    except (EncodeError, RegisterPressureError) as exc:
        raise SystemExit(f"repro emit: {exc}")
    print(prog.render())
    print(prog.summary())
    if args.run:
        if args.lanes and args.lanes > 1:
            brep = api.run(graph, machine, lanes=args.lanes, program=prog)
            print(f"batched differential check ok ({brep.n_lanes} lanes, "
                  f"{len(brep.ref_seeds)} tree-walker-pinned): "
                  f"{brep.vm_steps[-1]} bundles, "
                  f"{brep.vm_cycles[-1]} realized cycles vs "
                  f"{brep.interp_cycles[-1]} tree-walker cycles; "
                  f"{brep.checked_lanes}/{brep.n_lanes} lanes non-vacuous")
        else:
            rep = api.run(graph, machine, program=prog)
            print(f"differential check ok ({len(rep.seeds)} seeds): "
                  f"{rep.vm_steps[-1]} bundles, "
                  f"{rep.realized_cycles} realized cycles vs "
                  f"{rep.interp_cycles[-1]} tree-walker cycles")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from .machine import MachineConfig
    from .obs import ReconcileError, build_report, write_explain
    from .workloads import family_of

    unroll = (args.unroll if args.unroll is not None
              else max(12, 3 * args.fus))
    loop = _load_kernel(args.kernel, unroll)
    machine = MachineConfig(fus=args.fus)
    try:
        report = build_report(loop, machine, unroll=unroll, seed=args.seed,
                              family=family_of(args.kernel))
    except ReconcileError as exc:
        print(f"repro explain: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    out = (Path(args.out) if args.out
           else Path(f"EXPLAIN_{loop.name}_fus{args.fus}.json"))
    write_explain(report, out)
    print(f"\nwrote {out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        BenchArtifact,
        diff_artifacts,
        make_jobs,
        run_bench,
        smoke_jobs,
    )
    from .workloads import family_names, family_of

    if args.diff_subset and not args.diff:
        # Reject before the (expensive) sweep: a silently ignored gate
        # flag would green-light regressions.
        _usage("repro bench: --diff-subset requires --diff "
               "(nothing to gate against)")
    if args.smoke:
        # --smoke pins the sweep cells; a silently ignored selection
        # flag would stamp misleading metadata into the artifact.
        if args.kernels is not None or args.fus != [2, 4, 8] \
                or args.backends != ["grip", "post"] \
                or args.family != ["ll"]:
            _usage(
                "repro bench: --smoke fixes "
                "--kernels/--fus/--backends/--family; drop --smoke to "
                "run a custom sweep")
        jobs = smoke_jobs(args.unroll_scale, profile=args.profile,
                          cache=args.cache)
    elif args.kernels is not None:
        for name in args.kernels:
            if family_of(name) is None:
                _usage(f"repro bench: unknown kernel {name!r}")
        jobs = make_jobs([k.upper() for k in args.kernels], args.fus,
                         args.backends, unroll_scale=args.unroll_scale,
                         profile=args.profile, cache=args.cache)
    else:
        kernels = [name for fam in args.family for name in family_names(fam)]
        jobs = make_jobs(kernels, args.fus, args.backends,
                         unroll_scale=args.unroll_scale,
                         profile=args.profile, cache=args.cache)
    name = "smoke" if args.smoke else args.name
    config = {"unroll_scale": args.unroll_scale, "smoke": args.smoke,
              "profile": args.profile}
    if args.serve:
        import time

        from .bench.runner import artifact_from_records
        from .serve.client import ServeProtocolError, submit_bench_jobs

        print(f"bench: {len(jobs)} jobs via serve front {args.serve}",
              file=sys.stderr)
        t0 = time.perf_counter()
        try:
            records, summary = submit_bench_jobs(args.serve, jobs)
        except (OSError, ServeProtocolError) as exc:
            _usage(f"repro bench: serve front {args.serve}: {exc}")
        art = artifact_from_records(
            jobs, records, name=name, processes=args.jobs,
            wall_seconds=time.perf_counter() - t0,
            config={**config, "serve": args.serve})
        print(f"serve batch: {summary.get('cache_hits', 0)} cache hits / "
              f"{summary.get('cache_misses', 0)} misses",
              file=sys.stderr)
    else:
        print(f"bench: {len(jobs)} jobs on {args.jobs} worker(s)",
              file=sys.stderr)
        art = run_bench(jobs, name=name, processes=args.jobs, config=config)

    out = Path(args.out) if args.out else Path("results") / f"BENCH_{name}.json"
    art.write(out)
    print(art.speedup_table().render(
        f"Bench sweep '{name}' ({art.wall_seconds:.1f}s wall)"))
    totals = art.stage_totals()
    if totals:
        print("stage totals: " + "  ".join(
            f"{stage}={secs:.2f}s" for stage, secs in sorted(totals.items())))
    print(f"wrote {out}")

    if args.diff:
        prev = BenchArtifact.read(args.diff)
        diff = diff_artifacts(prev, art, rel_tol=args.tol,
                              subset=args.diff_subset)
        print(diff.render())
        if not diff.ok:
            print("repro bench: regression gate FAILED", file=sys.stderr)
            return 1
        print("regression gate ok")
    return 0


def cmd_kernels(_: argparse.Namespace) -> int:
    from .workloads import FAMILIES, build_kernel

    for family, names in FAMILIES.items():
        for name in names():
            loop = build_kernel(name, 4)
            print(f"{name:6s} [{family}] {loop.ops_per_iteration:2d} "
                  f"ops/iter  {loop.description}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .bench.fuzz import replay, run_fuzz
    from .obs import DecisionJournal

    if args.replay:
        if args.tamper:
            _usage("repro fuzz: --replay reruns the artifact's own "
                   "checks (including its recorded tamper); --tamper "
                   "cannot be combined with it")
        journal = DecisionJournal(keep_events=False)
        try:
            failure = replay(args.replay, tracer=journal)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # TypeError covers wrong-shaped schema-1 fields (e.g. a
            # hand-edited scenario dict): still a usage error, not a
            # reproduced failure.
            _usage(f"repro fuzz: cannot replay {args.replay}: {exc}")
        if failure is not None:
            print(f"replay {args.replay}: failure reproduces "
                  f"[{failure.stage}]\n{failure.message}")
            print(journal.summary_line())
            return 1
        print(f"replay {args.replay}: clean (bug no longer reproduces)")
        print(journal.summary_line())
        return 0

    if args.budget < 1:
        _usage("repro fuzz: --budget must be >= 1")
    if args.verify_every < 0:
        _usage("repro fuzz: --verify-every must be >= 0 (0 disables)")
    if args.lanes < 1:
        _usage("repro fuzz: --lanes must be >= 1")
    report = run_fuzz(
        args.budget, args.seed, jobs=args.jobs,
        verify_every=args.verify_every, out_dir=args.out_dir,
        tamper=args.tamper, stratify=args.stratify, lanes=args.lanes,
        cache_dir=args.cache, serve=args.serve)
    print(report.render())
    if not report.ok:
        print("repro fuzz: FAILURES found (repro artifacts written)",
              file=sys.stderr)
        return 1
    return 0


#: the ``tune --smoke`` lane: one Livermore + one synthetic counted
#: kernel at one fu-config, a budget just big enough to exercise both
#: search phases
TUNE_SMOKE_KERNELS = ("LL3", "SYNRED")
TUNE_SMOKE_FUS = (4,)
TUNE_SMOKE_BUDGET = 6


def cmd_tune(args: argparse.Namespace) -> int:
    from .tune import run_tune, validate_tuned_file, verify_tuned, write_tuned
    from .workloads import family_of

    def log(msg: str) -> None:
        print(msg, file=sys.stderr)

    if args.check:
        try:
            mismatches = verify_tuned(args.check, cache_dir=args.cache,
                                      log=log)
        except (OSError, ValueError) as exc:
            _usage(f"repro tune: cannot check {args.check}: {exc}")
        if mismatches:
            for m in mismatches:
                print(f"repro tune: {m}", file=sys.stderr)
            print("repro tune: check FAILED (stored cycles do not "
                  "reproduce)", file=sys.stderr)
            return 1
        print(f"check {args.check}: ok (every stored policy reproduces "
              f"its recorded cycles exactly)")
        return 0

    if args.smoke:
        # --smoke pins the cells and the budget; a silently ignored
        # flag would stamp misleading metadata into the artifact.
        if args.kernels is not None or args.fus != [2, 4] \
                or args.budget is not None:
            _usage("repro tune: --smoke fixes --kernels/--fus/--budget; "
                   "drop --smoke to run a custom search")
        kernels, fus = list(TUNE_SMOKE_KERNELS), list(TUNE_SMOKE_FUS)
        budget = TUNE_SMOKE_BUDGET
        name = "smoke"
    else:
        kernels = args.kernels if args.kernels is not None \
            else ["LL1", "LL3", "LL5"]
        kernels = [k.upper() for k in kernels]
        for kernel in kernels:
            if family_of(kernel) is None:
                _usage(f"repro tune: unknown kernel {kernel!r}")
        fus = args.fus
        budget = args.budget if args.budget is not None else 24
        name = args.name
    if budget < 1:
        _usage("repro tune: --budget must be >= 1")

    print(f"tune: {len(kernels) * len(fus)} cells, budget {budget} "
          f"evals/cell, {args.jobs} worker(s)", file=sys.stderr)
    report = run_tune(kernels, fus, budget=budget, seed=args.seed,
                      jobs=args.jobs, cache_dir=args.cache, log=log)
    out = (Path(args.out) if args.out
           else Path("results") / f"TUNED_{name}.json")
    write_tuned(report, out, name=name)

    for e in report.entries:
        verdict = (f"tuned {e.cycles} < default {e.default_cycles} "
                   f"[{e.policy.fingerprint()}]" if e.improved
                   else f"default best ({e.default_cycles} cycles)")
        print(f"{e.kernel:8s} fus={e.fus} unroll={e.unroll:3d}  {verdict}")
    print(f"tune '{name}': {report.improved}/{len(report.entries)} cells "
          f"improved ({report.wall_seconds:.1f}s wall)")
    print(f"wrote {out}")

    if args.smoke:
        # The CI lane's contract: the artifact schema-validates back
        # from disk and no cell regressed past the default (the
        # default is always in the candidate set, so a violation means
        # the search or the artifact writer is broken).
        payload = validate_tuned_file(out)
        bad = [e for e in payload["entries"]
               if e["cycles"] > e["default_cycles"]]
        if bad:
            for e in bad:
                print(f"repro tune: smoke cell {e['kernel']} "
                      f"fus={e['fus']} tuned {e['cycles']} > default "
                      f"{e['default_cycles']}", file=sys.stderr)
            return 1
        print(f"tune smoke ok: {len(payload['entries'])} cells, "
              "artifact schema-validated from disk")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import selftest, serve_stdio, serve_tcp

    if args.jobs < 1:
        _usage("repro serve: --jobs must be >= 1")
    if args.selftest:
        if args.tcp:
            _usage("repro serve: --selftest starts its own ephemeral "
                   "TCP server; --tcp cannot be combined with it")
        return selftest(jobs=args.jobs)
    if args.tcp:
        from .serve.client import parse_addr

        try:
            host, port = parse_addr(args.tcp)
        except ValueError as exc:
            _usage(f"repro serve: {exc}")
        return serve_tcp(host, port, jobs=args.jobs, cache_dir=args.cache)
    return serve_stdio(jobs=args.jobs, cache_dir=args.cache)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p1 = sub.add_parser("table1", help="regenerate Table 1")
    p1.add_argument("--fus", nargs="+", type=int, default=[2, 4, 8])
    p1.add_argument("--unroll-scale", type=int, default=3)
    p1.set_defaults(fn=cmd_table1)

    p2 = sub.add_parser("pipeline", help="pipeline one kernel")
    p2.add_argument("kernel", help="LLk name or a DSL source file")
    p2.add_argument("--fus", type=int, default=4)
    p2.add_argument("--unroll", type=int, default=12)
    p2.add_argument("--backend", choices=("tree", "vm"), default="tree",
                    help="also execute on the bundle VM with a "
                         "differential check (vm)")
    p2.add_argument("--cache", default=None, metavar="DIR",
                    help="content-addressed schedule cache directory "
                         "(warm hits replay the stored schedule)")
    p2.set_defaults(fn=cmd_pipeline)

    p3 = sub.add_parser("kernels", help="list Livermore kernels")
    p3.set_defaults(fn=cmd_kernels)

    p4 = sub.add_parser("emit", help="lower a kernel to VLIW bundles")
    p4.add_argument("kernel", help="LLk name or a DSL source file")
    p4.add_argument("--fus", type=int, default=4)
    p4.add_argument("--unroll", type=int, default=8)
    p4.add_argument("--phys-regs", type=int, default=None,
                    help="physical register file size (default unbounded)")
    p4.add_argument("--seq", action="store_true",
                    help="emit the sequential loop instead of the "
                         "pipelined schedule")
    p4.add_argument("--run", action="store_true",
                    help="execute on the bundle VM + differential check")
    p4.add_argument("--lanes", type=int, default=1,
                    help="with --run: initial states to execute in one "
                         "batched-VM pass (1 = scalar check; default 1)")
    p4.add_argument("--cache", default=None, metavar="DIR",
                    help="content-addressed schedule cache directory")
    p4.set_defaults(fn=cmd_emit)

    p7 = sub.add_parser(
        "explain", help="inefficiency report for one kernel -> "
                        "EXPLAIN_*.json")
    p7.add_argument("kernel", help="kernel name (any family) or a DSL "
                                   "source file")
    p7.add_argument("--fus", type=int, default=4)
    p7.add_argument("--unroll", type=int, default=None,
                    help="unwound iterations (default: max(12, 3*fus), "
                         "the Table-1 policy)")
    p7.add_argument("--seed", type=int, default=0,
                    help="initial-state seed for the VM runs (default 0)")
    p7.add_argument("--out", default=None,
                    help="artifact path (default "
                         "EXPLAIN_<kernel>_fus<N>.json)")
    p7.set_defaults(fn=cmd_explain)

    p5 = sub.add_parser("bench", help="benchmark sweep -> BENCH_*.json")
    p5.add_argument("--family", nargs="+", choices=("ll", "synth"),
                    default=["ll"],
                    help="kernel families to sweep when --kernels is "
                         "not given (default: ll)")
    p5.add_argument("--kernels", nargs="+", default=None,
                    help="explicit kernels to sweep, any family "
                         "(default: every kernel of --family)")
    p5.add_argument("--fus", nargs="+", type=int, default=[2, 4, 8])
    p5.add_argument("--backends", nargs="+",
                    choices=("grip", "post", "vm"),
                    default=["grip", "post"])
    p5.add_argument("--jobs", type=int, default=1,
                    help="worker processes (default 1 = sequential)")
    p5.add_argument("--unroll-scale", type=int, default=3)
    p5.add_argument("--smoke", action="store_true",
                    help="fast fixed subset exercising every backend")
    p5.add_argument("--profile", action="store_true",
                    help="attach a decision journal to every GRiP cell "
                         "and embed its tallies into the records "
                         "(observe-only; combinable with --smoke)")
    p5.add_argument("--name", default="table1",
                    help="artifact name (BENCH_<name>.json)")
    p5.add_argument("--out", default=None,
                    help="output path (default results/BENCH_<name>.json)")
    p5.add_argument("--diff", default=None, metavar="PREV_JSON",
                    help="previous artifact to gate against")
    p5.add_argument("--diff-subset", action="store_true",
                    help="gate only the cells this sweep ran (smoke vs "
                         "full-table baseline); absent cells are not "
                         "treated as missing coverage")
    p5.add_argument("--tol", type=float, default=0.05,
                    help="relative speedup tolerance for --diff")
    p5.add_argument("--cache", default=None, metavar="DIR",
                    help="content-addressed schedule cache directory "
                         "(warm cells replay stored schedules; "
                         "bit-identical records, faster schedule stage)")
    p5.add_argument("--serve", default=None, metavar="HOST:PORT",
                    help="route the sweep through a running "
                         "'repro serve' front instead of a local pool")
    p5.set_defaults(fn=cmd_bench)

    p6 = sub.add_parser(
        "fuzz", help="differential fuzzing over the synth kernel space")
    p6.add_argument("--budget", type=int, default=50,
                    help="number of consecutive seeds to run (default 50)")
    p6.add_argument("--seed", type=int, default=0,
                    help="first seed of the range (default 0)")
    p6.add_argument("--jobs", type=int, default=1,
                    help="worker processes (default 1 = sequential)")
    p6.add_argument("--verify-every", type=int, default=10,
                    help="run every Nth seed under a verifying "
                         "AnalysisManager (0 disables; default 10)")
    p6.add_argument("--out-dir", default=".",
                    help="directory for FUZZ_<seed>.json repro "
                         "artifacts (default: cwd)")
    p6.add_argument("--replay", default=None, metavar="FUZZ_JSON",
                    help="re-run the checks of a repro artifact instead "
                         "of fuzzing")
    p6.add_argument("--tamper", choices=sorted(TAMPER_NAMES), default=None,
                    help="inject a known scheduler-shaped bug (tests "
                         "the lane: the tamper must be caught + shrunk)")
    p6.add_argument("--stratify", action="store_true",
                    help="balance the seed budget across scenario "
                         "strata (body patterns + while / multi-loop "
                         "program shapes) instead of running "
                         "consecutive seeds")
    p6.add_argument("--lanes", type=int, default=FUZZ_LANES,
                    help="initial states per case for the batched "
                         f"semantic check (default {FUZZ_LANES}; the "
                         "first 3 are also tree-walker-pinned)")
    p6.add_argument("--cache", default=None, metavar="DIR",
                    help="content-addressed schedule cache directory "
                         "(alpha-equivalent cases reuse one schedule; "
                         "every warm result is still fully re-checked)")
    p6.add_argument("--serve", default=None, metavar="HOST:PORT",
                    help="route the seeds through a running "
                         "'repro serve' front instead of a local pool")
    p6.set_defaults(fn=cmd_fuzz)

    p9 = sub.add_parser(
        "tune", help="schedule-policy autotuner -> TUNED_*.json")
    p9.add_argument("--kernels", nargs="+", default=None,
                    help="kernels to tune, any family "
                         "(default: LL1 LL3 LL5)")
    p9.add_argument("--fus", nargs="+", type=int, default=[2, 4])
    p9.add_argument("--budget", type=int, default=None,
                    help="schedule evaluations per cell, including the "
                         "default policy (default 24)")
    p9.add_argument("--seed", type=int, default=0,
                    help="search seed (default 0; the whole run is "
                         "deterministic per seed)")
    p9.add_argument("--jobs", type=int, default=1,
                    help="worker processes for candidate batches "
                         "(default 1 = sequential)")
    p9.add_argument("--name", default="table1",
                    help="artifact name (TUNED_<name>.json)")
    p9.add_argument("--out", default=None,
                    help="output path (default results/TUNED_<name>.json)")
    p9.add_argument("--cache", default=None, metavar="DIR",
                    help="schedule cache directory shared by the "
                         "workers (revisited policies replay their "
                         "stored schedules)")
    p9.add_argument("--smoke", action="store_true",
                    help="CI lane: tiny budget over LL3 + one synthetic "
                         "kernel; asserts tuned <= default and "
                         "schema-validates the artifact from disk")
    p9.add_argument("--check", default=None, metavar="TUNED_JSON",
                    help="re-execute a stored artifact instead of "
                         "searching; exits 1 unless every recorded "
                         "cycle count reproduces exactly")
    p9.set_defaults(fn=cmd_tune)

    p8 = sub.add_parser(
        "serve", help="batch scheduling front (stdio or TCP)")
    p8.add_argument("--tcp", default=None, metavar="HOST:PORT",
                    help="listen on TCP instead of stdio "
                         "(port 0 = ephemeral)")
    p8.add_argument("--jobs", type=int, default=2,
                    help="worker processes (default 2)")
    p8.add_argument("--cache", default=None, metavar="DIR",
                    help="schedule cache directory shared by the "
                         "workers (enables per-batch cache hit rates)")
    p8.add_argument("--selftest", action="store_true",
                    help="submit the same 6-program batch twice to an "
                         "ephemeral server and assert the second pass "
                         "is answered from the cache (CI smoke)")
    p8.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
