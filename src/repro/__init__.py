"""repro -- reproduction of GRiP scheduling (Nicolau & Novack, 1992).

A complete implementation of Global Resource-constrained Percolation
(GRiP) scheduling and its surrounding system: the VLIW program-graph IR,
Percolation Scheduling core transformations, Perfect Pipelining, the
Unifiable-ops and POST baseline schedulers, a cycle-level VLIW
simulator, a small loop-language front end, and the Livermore-loop
workloads of the paper's evaluation.
"""

import sys as _sys

# Percolation walks unwound loop bodies recursively; deep unwindings
# need more headroom than CPython's default 1000 frames.
_sys.setrecursionlimit(max(_sys.getrecursionlimit(), 100_000))

__version__ = "0.1.0"
