"""Workloads: the Livermore kernels, the paper's worked examples, and
random program generators for property testing."""

from . import livermore, paper_examples, synthetic
from .livermore import all_kernels, kernel, kernel_names

__all__ = ["all_kernels", "kernel", "kernel_names", "livermore",
           "paper_examples", "synthetic"]
