"""Workloads: the Livermore kernels, the paper's worked examples, the
seeded synthetic-kernel generator, and random program generators for
property testing.

Bench families (``repro bench --family``):

``ll``
    The fourteen Livermore loops of the paper's Table 1.
``synth``
    The curated, seed-pinned synthetic kernels
    (:data:`repro.workloads.synth.CURATED`), one per scenario axis.
"""

from . import livermore, paper_examples, synth, synthetic
from .livermore import all_kernels, kernel, kernel_names

#: family name -> callable returning that family's kernel names
FAMILIES = {
    "ll": livermore.kernel_names,
    "synth": synth.kernel_names,
}


def family_names(family: str) -> list[str]:
    """Kernel names of one bench family (raises KeyError on unknown)."""
    return FAMILIES[family]()


def family_of(name: str) -> str | None:
    """Which family a kernel name belongs to (None when unknown)."""
    upper = name.upper()
    for family, names in FAMILIES.items():
        if upper in names():
            return family
    return None


def build_kernel(name: str, n: int = 16):
    """Build a kernel from any family by name with trip count ``n``."""
    family = family_of(name)
    if family is None:
        raise KeyError(f"unknown kernel {name!r}")
    if family == "ll":
        return livermore.kernel(name, n)
    return synth.kernel(name, n)


__all__ = ["FAMILIES", "all_kernels", "build_kernel", "family_names",
           "family_of", "kernel", "kernel_names", "livermore",
           "paper_examples", "synth", "synthetic"]
