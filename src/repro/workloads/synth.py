"""Seeded synthetic workloads: the scenario space beyond Table 1.

The paper's evaluation is a closed set of fourteen Livermore loops;
everything downstream (bench, the equivalence suites, the trajectory
baseline) was pinned to those same shapes.  This module opens the
kernel space: a **seeded, parameterized random-program generator** that
emits frontend-level DSL source -- every generated kernel round-trips
through the existing lexer/parser/lower pipeline exactly like a
hand-written Livermore transcription, never hand-built IR.

The declared scenario space (one :class:`Scenario` per point):

``pattern``
    The memory-dependence family of the loop body:

    * ``stream``     -- disjoint-array updates ``d[k] = f(reads)``
      (vectorizable, LL1/LL7-like);
    * ``reduction``  -- carried scalar accumulation ``acc = acc + e``
      (LL3/LL11-like; the scalar is a declared param, so the front
      end's epilogue makes it observable through memory);
    * ``recurrence`` -- cross-iteration array recurrences
      ``r[k+d] = r[k] op e`` with distance ``d`` (LL4/LL6-like);
    * ``indirect``   -- non-affine gathers ``b[ix[k]]`` and
      read-modify-write scatters ``h[ix[k]] = h[ix[k]] + e``
      (LL13/LL14-like, serializing);
    * ``mixed``      -- each statement draws its own family.

``depth`` / ``inner_trip``
    Loop-nest depth.  The DSL deliberately supports a single counted
    loop (the paper's evaluation shape), so a depth-2 nest with a
    constant inner trip is expanded by the *generator*: the same
    statement template is instantiated once per inner iteration ``j``
    with all affine offsets shifted by ``j``, which preserves the
    nest's overlapping cross-iteration dependence structure.

``stmts``, ``cond_density``, ``mem_ratio``, ``opmix``, ``step``
    Body size; fraction of eligible statements wrapped in ``if/else``
    (lowered by if-conversion); probability that an expression leaf is
    an array read rather than a scalar (the ALU/MEM op-class mix seen
    by typed :class:`~repro.machine.model.MachineConfig` budgets); the
    arithmetic operator alphabet; and the loop step (stride-2 sweeps
    like LL2).

``n_loops`` / ``while_density``
    Program shape beyond the single counted loop: ``n_loops`` top-level
    loops are emitted in sequence (sharing arrays and reduction
    scalars, so cross-loop memory and scalar dependences are real);
    each loop is a non-counted ``while`` with probability
    ``while_density``.  Generated whiles always terminate: the
    condition is ``w < limit`` over a dedicated counter param that the
    loop's (non-droppable) tail statement advances by 1, with a
    read-only param as the limit -- but the *compiler* sees only an
    opaque data-dependent exit, so the whole trip-count-unknown
    pipeline is exercised.

``hoist_density`` / ``fuse_density`` / ``nest_density``
    Program pass-pipeline shapes: per-loop probability of a hoistable
    loop-invariant scalar update (reads only read-only params and
    literals); probability a would-be ``while`` loop is forced counted
    so adjacent loops share one trip count (the fusion pass's positive
    shapes); per-loop probability of a self-contained nested inner
    ``while`` (the while-in-for / while-in-while frontend paths).

``special_density``
    Probability that an expression leaf is a float-special generator:
    ``1e308`` literals and doubly-scaled array reads that overflow to
    ``inf`` at run time, and differences of two overflows that produce
    ``NaN`` -- auditing the executors' (and checkers') IEEE-special
    behavior.  Specials never reach index positions or divisors.

**Seed-reproducibility contract.**  Generation is a pure function of
the :class:`Scenario`: ``generate(sc).source()`` depends only on the
dataclass fields, via ``random.Random`` seeded with a string (stable
across CPython versions and platforms).  ``scenario_from_seed(seed)``
is likewise pure, so a fuzz seed alone pins the whole program.  The
seed string renders new axes only at non-default values
(:meth:`Scenario.seed_key`), and every new axis draws from the rng
only when enabled, so scenarios predating an axis generate the same
program after the axis lands.

Division is only ever emitted with a *read-only* declared param or a
positive literal as the divisor: initial states give params values in
``[0.125, 10.125]`` (:func:`repro.simulator.state.seeded_cell_default`)
and loop-mutated params (reduction accumulators, which could cancel to
0.0) are excluded, so generated programs cannot raise
``ZeroDivisionError``.

A curated, seed-pinned subset is registered as the ``synth`` bench
family (:data:`CURATED`): one kernel per scenario axis, swept by
``repro bench --family synth`` next to the Livermore table.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace

PATTERNS = ("stream", "reduction", "recurrence", "indirect", "mixed")

#: Operator alphabet a scenario's ``opmix`` draws from.
OP_ALPHABET = ("+", "-", "*", "/", "min", "max")

#: Literal pool for scalar expression leaves.
_LITERALS = ("2", "3", "0.5", "1.5")


@dataclass(frozen=True)
class Scenario:
    """One point of the synthetic scenario space (program shape only).

    Machine shape (FU count, typed budgets, latency map) and unroll
    factor are run axes, not program axes; the fuzz lane derives them
    separately per seed (:func:`repro.bench.fuzz.case_from_seed`).
    """

    seed: int = 0
    pattern: str = "stream"
    stmts: int = 2
    depth: int = 1
    inner_trip: int = 1
    cond_density: float = 0.0
    mem_ratio: float = 0.5
    opmix: tuple[str, ...] = ("+", "*")
    step: int = 1
    #: probability each top-level loop is a non-counted ``while``
    while_density: float = 0.0
    #: top-level loops emitted in sequence
    n_loops: int = 1
    #: probability an expression leaf generates a float special
    special_density: float = 0.0
    #: probability each loop body carries a hoistable invariant update
    hoist_density: float = 0.0
    #: probability a would-be ``while`` loop is forced counted (adjacent
    #: same-trip ``for`` loops: the fusion pass's positive shapes)
    fuse_density: float = 0.0
    #: probability each top-level loop body nests an inner ``while``
    nest_density: float = 0.0

    def seed_key(self) -> str:
        """The rng seed string: stable across scenario-space growth.

        Renders the original fields in dataclass-repr form and appends
        newer axes only at non-default values, so a scenario that
        predates an axis keeps generating byte-identical programs.
        """
        base = (
            f"Scenario(seed={self.seed!r}, pattern={self.pattern!r}, "
            f"stmts={self.stmts!r}, depth={self.depth!r}, "
            f"inner_trip={self.inner_trip!r}, "
            f"cond_density={self.cond_density!r}, "
            f"mem_ratio={self.mem_ratio!r}, opmix={self.opmix!r}, "
            f"step={self.step!r}"
        )
        extras = []
        if self.while_density:
            extras.append(f"while_density={self.while_density!r}")
        if self.n_loops != 1:
            extras.append(f"n_loops={self.n_loops!r}")
        if self.special_density:
            extras.append(f"special_density={self.special_density!r}")
        if self.hoist_density:
            extras.append(f"hoist_density={self.hoist_density!r}")
        if self.fuse_density:
            extras.append(f"fuse_density={self.fuse_density!r}")
        if self.nest_density:
            extras.append(f"nest_density={self.nest_density!r}")
        if extras:
            base += ", " + ", ".join(extras)
        return base + ")"

    def to_dict(self) -> dict:
        d = asdict(self)
        d["opmix"] = list(self.opmix)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Build from a dict; fields absent in old artifacts default."""
        data = dict(data)
        data["opmix"] = tuple(data.get("opmix", ("+", "*")))
        return cls(**data)


@dataclass(frozen=True)
class SynthLoop:
    """One rendered top-level loop of a generated program.

    ``statements`` is the droppable payload; ``tail`` holds statements
    that must survive shrinking for the loop to stay well-formed (a
    while loop's counter advance -- dropping it would produce a
    non-terminating program).
    """

    kind: str                       # "for" | "while"
    header: str                     # e.g. "for k = 0 to n step 2"
    statements: tuple[str, ...]
    tail: tuple[str, ...] = ()


@dataclass(frozen=True)
class SynthProgram:
    """A generated program: declarations plus rendered DSL loops.

    The flat statement list (payloads of every loop, in order) is the
    shrink granularity of the fuzz lane: each entry is one
    self-contained DSL statement (an assignment or a one-line
    ``if/else`` block), so dropping entries always leaves a parseable
    program.  A loop whose payload empties is dropped wholesale.
    Declarations stay fixed -- the front end only validates *used*
    names, so unused decls are harmless.
    """

    scenario: Scenario
    params: tuple[str, ...]
    arrays: tuple[str, ...]
    loops: tuple[SynthLoop, ...]

    @property
    def statements(self) -> tuple[str, ...]:
        """Droppable statements of every loop, flattened in order."""
        return tuple(s for lp in self.loops for s in lp.statements)

    @property
    def n_statements(self) -> int:
        return sum(len(lp.statements) for lp in self.loops)

    def with_statements(self, statements: tuple[str, ...]) -> "SynthProgram":
        """Replace the payload of a *single-loop* program (legacy API)."""
        if len(self.loops) != 1:
            raise ValueError("with_statements is single-loop only; use drop_statement")
        lp = replace(self.loops[0], statements=tuple(statements))
        return replace(self, loops=(lp,))

    def drop_statement(self, i: int) -> "SynthProgram":
        """Program without flat statement ``i``; empty loops vanish."""
        out: list[SynthLoop] = []
        seen = 0
        for lp in self.loops:
            n = len(lp.statements)
            if seen <= i < seen + n:
                stmts = lp.statements[: i - seen] + lp.statements[i - seen + 1 :]
                if stmts:
                    out.append(replace(lp, statements=stmts))
            else:
                out.append(lp)
            seen += n
        if not out:
            raise ValueError("cannot drop the last remaining statement")
        return replace(self, loops=tuple(out))

    def source(self) -> str:
        """Render the program as loop-DSL source text."""
        lines = [f"# synth seed={self.scenario.seed} pattern={self.scenario.pattern}"]
        if self.params:
            lines.append("param " + ", ".join(self.params) + ";")
        if self.arrays:
            lines.append("array " + ", ".join(self.arrays) + ";")
        for lp in self.loops:
            lines.append(f"{lp.header} {{")
            for stmt in lp.statements:
                lines.append("    " + stmt)
            for stmt in lp.tail:
                lines.append("    " + stmt)
            lines.append("}")
        return "\n".join(lines) + "\n"


def scenario_from_seed(seed: int) -> Scenario:
    """Derive one scenario-space point from a fuzz seed (pure)."""
    rng = random.Random(f"grip-synth-scenario:{seed}")
    pattern = rng.choice(PATTERNS)
    depth = 2 if rng.random() < 0.2 else 1
    return Scenario(
        seed=seed,
        pattern=pattern,
        stmts=rng.randint(1, 4),
        depth=depth,
        inner_trip=rng.randint(2, 3) if depth > 1 else 1,
        cond_density=rng.choice((0.0, 0.0, 0.35, 0.7)),
        mem_ratio=rng.choice((0.25, 0.5, 0.75)),
        opmix=_sample_opmix(rng),
        step=2 if rng.random() < 0.15 else 1,
        while_density=rng.choice((0.0, 0.0, 0.0, 0.5, 1.0)),
        n_loops=rng.choice((1, 1, 1, 1, 2, 2, 3)),
        special_density=rng.choice((0.0, 0.0, 0.0, 0.2)),
        # Pass-pipeline axes (drawn after every older axis, so the old
        # axes of an existing seed keep their values).
        hoist_density=rng.choice((0.0, 0.0, 0.0, 0.6)),
        fuse_density=rng.choice((0.0, 0.0, 0.0, 0.7)),
        nest_density=rng.choice((0.0, 0.0, 0.0, 0.4)),
    )


def _sample_opmix(rng: random.Random) -> tuple[str, ...]:
    """A canonical operator subset: always ``+``/``*``, extras sampled."""
    extra = [op for op in ("-", "/", "min", "max") if rng.random() < 0.4]
    chosen = {"+", "*", *extra}
    return tuple(op for op in OP_ALPHABET if op in chosen)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
@dataclass
class _Gen:
    """Mutable generation state: rng, declarations, statements."""

    rng: random.Random
    sc: Scenario
    params: list[str] = field(default_factory=list)
    arrays: list[str] = field(default_factory=list)
    statements: list[str] = field(default_factory=list)
    #: params the loop body writes (reduction accumulators, while counters)
    written: set[str] = field(default_factory=set)
    #: index variable of the loop being generated ("k", or a while counter)
    ivar: str = "k"

    # -- declarations ---------------------------------------------------
    def param(self, name: str) -> str:
        if name not in self.params:
            self.params.append(name)
        return name

    def array(self, name: str) -> str:
        if name not in self.arrays:
            self.arrays.append(name)
        return name

    # -- expression leaves ----------------------------------------------
    def idx(self, offset: int) -> str:
        """The current loop's index expression ``ivar + offset``."""
        return _index(offset, self.ivar)

    def read(self, j: int) -> str:
        """An affine array read ``s?[k+c]`` shifted by the nest copy."""
        arr = self.rng.choice(self.arrays[: self._n_sources()])
        off = self.rng.choice((-1, 0, 0, 1, 2, 3)) + j
        return f"{arr}[{self.idx(off)}]"

    def scalar(self) -> str:
        if self.rng.random() < 0.5:
            return self.rng.choice([p for p in self.params if p != "n"])
        return self.rng.choice(_LITERALS)

    def special(self, j: int) -> str:
        """A float-special generator (inf/NaN at run time).

        Initial array/param values sit in ``[0.125, 10.125]``, so one
        ``* 1e308`` scaling lands near the overflow boundary and a
        second overflows to ``inf``; subtracting two overflows yields
        ``NaN``.  Kept out of index and divisor positions by
        construction (only :meth:`leaf` calls this).
        """
        pick = self.rng.random()
        if pick < 0.3:
            return "1e308"
        scaled = f"(({self.read(j)} * 1e308) * 1e308)"
        if pick < 0.7:
            return scaled  # -> +inf at run time
        other = f"(({self.read(j)} * 1e308) * 1e308)"
        return f"({scaled} - {other})"  # inf - inf -> NaN

    def leaf(self, j: int) -> str:
        if self.sc.special_density > 0 and self.rng.random() < self.sc.special_density:
            return self.special(j)
        if self.rng.random() < self.sc.mem_ratio:
            return self.read(j)
        return self.scalar()

    def divisor(self) -> str:
        """Divisors stay provably nonzero: *read-only* params (initial
        states give them positive values) or positive literals.
        Reduction accumulators are loop-mutated -- with ``-`` in the
        opmix they can cancel to exactly 0.0 -- so they are excluded.
        """
        if self.rng.random() < 0.5:
            ro = [p for p in self.params if p != "n" and p not in self.written]
            if ro:
                return self.rng.choice(ro)
        return self.rng.choice(_LITERALS)

    def expr(self, j: int, depth: int = 2) -> str:
        if depth <= 0 or self.rng.random() < 0.3:
            return self.leaf(j)
        op = self.rng.choice(self.sc.opmix)
        a = self.expr(j, depth - 1)
        b = self.divisor() if op == "/" else self.expr(j, depth - 1)
        return _apply(op, a, b)

    def combiner(self) -> str:
        """A carried-update operator (division excluded: values may hit 0)."""
        safe = [op for op in self.sc.opmix if op != "/"]
        return self.rng.choice(safe or ["+"])

    def _n_sources(self) -> int:
        return max(2, self.sc.stmts)

    # -- statements ------------------------------------------------------
    def maybe_conditional(self, j: int, target: str, value: str) -> str:
        """Wrap an array assignment in ``if/else`` per ``cond_density``."""
        if self.rng.random() >= self.sc.cond_density:
            return f"{target} = {value};"
        rel = self.rng.choice(("<", "<=", ">", ">="))
        cond = f"{self.read(j)} {rel} {self.leaf(j)}"
        other = self.expr(j)
        return (
            f"if ({cond}) {{ {target} = {value}; }} "
            f"else {{ {target} = {other}; }}"
        )

    def stmt_stream(self, s: int, j: int) -> None:
        dst = self.array(f"d{s}")
        target = f"{dst}[{self.idx(j)}]"
        value = self.expr(j)
        if self.rng.random() < 0.3:
            temp = f"u{s}_{j}"
            self.statements.append(f"{temp} = {value};")
            value = _apply(self.combiner(), temp, self.leaf(j))
        self.statements.append(self.maybe_conditional(j, target, value))

    def stmt_reduction(self, s: int, j: int) -> None:
        acc = self.param(f"acc{s}")
        self.written.add(acc)
        op = self.combiner()
        value = self.expr(j)
        if op in ("min", "max"):
            self.statements.append(f"{acc} = {op}({acc}, {value});")
        else:
            self.statements.append(f"{acc} = ({acc} {op} {value});")
        if self.rng.random() < 0.5:
            dst = self.array(f"d{s}")
            self.statements.append(f"{dst}[{self.idx(j)}] = {acc};")

    def stmt_recurrence(self, s: int, j: int) -> None:
        rec = self.array(f"r{s}")
        dist = self.rng.choice((1, 2))
        target = f"{rec}[{self.idx(dist + j)}]"
        value = _apply(self.combiner(), f"{rec}[{self.idx(j)}]", self.expr(j, 1))
        self.statements.append(f"{target} = {value};")

    def stmt_indirect(self, s: int, j: int) -> None:
        ix = self.array("ix")
        # Alternate gather / scatter by statement index so both shapes
        # are guaranteed whenever the body has two indirect statements.
        if s % 2 == 0:
            base = self.array(f"b{s}")
            dst = self.array(f"g{s}")
            value = _apply(
                self.combiner(), f"{base}[ix[{self.idx(j)}]]", self.leaf(j)
            )
            self.statements.append(
                self.maybe_conditional(j, f"{dst}[{self.idx(j)}]", value)
            )
        else:
            hst = self.array(f"h{s}")
            cell = f"{hst}[{ix}[{self.idx(j)}]]"
            self.statements.append(f"{cell} = ({cell} + {self.scalar()});")

    def stmt_invariant(self, li: int) -> None:
        """A loop-invariant scalar update: reads only read-only params
        and literals, so the pass pipeline's hoisting stage can lift it
        into the segment pre-header (counted bodies; a while body keeps
        it in place -- the trip count may be zero)."""
        hv = self.param(f"hv{li}")
        self.written.add(hv)
        op = self.combiner()
        a = self.rng.choice(("p0", "p1"))
        b = self.rng.choice(_LITERALS)
        self.statements.append(f"{hv} = {_apply(op, a, b)};")

    def stmt_nested_while(self, li: int) -> None:
        """A self-contained inner ``while`` nested in the current loop.

        One flat statement entry (droppable as a unit by the shrinker);
        terminating by the same construction as top-level whiles: a
        dedicated counter param advanced inside, a read-only limit.
        The counter start draws from ``[0.125, 10.125]`` against a
        ``limit + 4`` bound, so most initial states run a few trips and
        rare ones run zero -- the zero-trip hoisting hazard's shape.
        """
        ctr = self.param(f"v{li}")
        self.written.add(ctr)
        limit = self.rng.choice(("p0", "p1"))
        arr = self.rng.choice(self.arrays[: self._n_sources()])
        cell = f"{arr}[{ctr}]"
        upd = f"{cell} = ({cell} + {self.scalar()});"
        self.statements.append(
            f"while ({ctr} < {limit} + 4) {{ {upd} {ctr} = {ctr} + 1; }}"
        )

    def stmt(self, kind: str, s: int, j: int) -> None:
        builder = {
            "stream": self.stmt_stream,
            "reduction": self.stmt_reduction,
            "recurrence": self.stmt_recurrence,
            "indirect": self.stmt_indirect,
        }[kind]
        builder(s, j)


def _apply(op: str, a: str, b: str) -> str:
    """Render one binary application (min/max are call syntax)."""
    if op in ("min", "max"):
        return f"{op}({a}, {b})"
    return f"({a} {op} {b})"


def _index(offset: int, var: str = "k") -> str:
    """Render the index ``var + offset``."""
    if offset == 0:
        return var
    if offset > 0:
        return f"{var}+{offset}"
    return f"{var}-{-offset}"


def generate(sc: Scenario) -> SynthProgram:
    """Generate the program for one scenario point (pure in ``sc``).

    Rng draws for newer axes (``while_density``, ``special_density``)
    only happen when the axis is enabled, and the seed string omits
    default-valued new fields, so legacy scenarios keep generating
    byte-identical programs (the curated bench cells are pinned on
    this).
    """
    if sc.pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {sc.pattern!r} (want {PATTERNS})")
    if sc.stmts < 1 or sc.depth < 1 or sc.step < 1 or sc.n_loops < 1:
        raise ValueError(f"degenerate scenario {sc!r}")
    for density in (sc.while_density, sc.special_density, sc.hoist_density,
                    sc.fuse_density, sc.nest_density):
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"degenerate scenario {sc!r}")
    rng = random.Random(f"grip-synth-program:{sc.seed_key()}")
    g = _Gen(rng=rng, sc=sc)
    g.param("p0")
    g.param("p1")
    g.param("n")
    for s in range(max(2, sc.stmts)):
        g.array(f"s{s}")
    copies = sc.inner_trip if sc.depth > 1 else 1
    loops: list[SynthLoop] = []
    for li in range(sc.n_loops):
        is_while = sc.while_density > 0 and rng.random() < sc.while_density
        if is_while and sc.fuse_density > 0 and rng.random() < sc.fuse_density:
            # Fusable shape: force the loop counted, so adjacent loops
            # share the ``for k = 0 to n`` trip and the fusion pass has
            # legality to decide (not a trivial not-counted refusal).
            is_while = False
        tail: tuple[str, ...] = ()
        if is_while:
            # A dedicated counter param (seeded start in [0.125,
            # 10.125]) advanced by the non-droppable tail; the limit is
            # a read-only param, so the loop always terminates -- but
            # only the *generator* knows that.  The +8 headroom keeps
            # the data-dependent trip count usually positive (counter
            # and limit draw from the same [0.125, 10.125] range;
            # without it half of all initial states run the loop zero
            # times and the semantic checks see nothing), while still
            # leaving rare zero-trip states to exercise the
            # immediate-exit path.
            ctr = g.param(f"w{li}")
            g.written.add(ctr)
            limit = rng.choice(("p0", "p1"))
            g.ivar = ctr
            header = f"while ({ctr} < {limit} + 8)"
            tail = (f"{ctr} = {ctr} + 1;",)
        else:
            g.ivar = "k"
            step = f" step {sc.step}" if sc.step != 1 else ""
            header = f"for k = 0 to n{step}"
        g.statements = []
        for s in range(sc.stmts):
            if sc.pattern == "mixed":
                kind = rng.choice(("stream", "reduction", "recurrence", "indirect"))
            else:
                kind = sc.pattern
            # A depth-2 nest: the same statement template instantiated
            # per inner iteration j (rng state reset so only the
            # j-shift of the affine offsets differs between copies).
            template_state = rng.getstate()
            for j in range(copies):
                rng.setstate(template_state)
                g.stmt(kind, s, j)
        if sc.hoist_density > 0 and rng.random() < sc.hoist_density:
            g.stmt_invariant(li)
        if sc.nest_density > 0 and rng.random() < sc.nest_density:
            g.stmt_nested_while(li)
        loops.append(
            SynthLoop(
                kind="while" if is_while else "for",
                header=header,
                statements=tuple(g.statements),
                tail=tail,
            )
        )
    return SynthProgram(
        scenario=sc,
        params=tuple(g.params),
        arrays=tuple(g.arrays),
        loops=tuple(loops),
    )


def source_for_seed(seed: int) -> str:
    """DSL source of the fuzz-seed program (the one-call convenience)."""
    return generate(scenario_from_seed(seed)).source()


# ----------------------------------------------------------------------
# The curated bench family
# ----------------------------------------------------------------------
#: Seed-pinned scenarios registered as the ``synth`` bench family.  One
#: kernel per scenario axis; sources are committed nowhere -- the
#: Scenario *is* the source (see the seed-reproducibility contract).
CURATED: dict[str, Scenario] = {
    "SYNSTR": Scenario(
        seed=201, pattern="stream", stmts=3, mem_ratio=0.7, opmix=("+", "-", "*")
    ),
    "SYNRED": Scenario(
        seed=202, pattern="reduction", stmts=2, mem_ratio=0.5, opmix=("+", "*")
    ),
    "SYNREC": Scenario(
        seed=203, pattern="recurrence", stmts=2, mem_ratio=0.5, opmix=("+", "-", "*")
    ),
    "SYNIND": Scenario(
        seed=204, pattern="indirect", stmts=2, mem_ratio=0.5, opmix=("+", "*")
    ),
    "SYNCND": Scenario(
        seed=205,
        pattern="stream",
        stmts=2,
        cond_density=1.0,
        mem_ratio=0.5,
        opmix=("+", "-", "*", "min"),
    ),
    "SYNNST": Scenario(
        seed=206,
        pattern="mixed",
        stmts=2,
        depth=2,
        inner_trip=2,
        mem_ratio=0.5,
        opmix=("+", "*", "max"),
    ),
    # Non-counted / multi-loop shapes (compile to LoopProgram, bench
    # reports the measured whole-program speedup; POST has no program
    # flow, so these sweep grip+vm only).
    "SYNWHL": Scenario(
        seed=207,
        pattern="stream",
        stmts=2,
        mem_ratio=0.5,
        opmix=("+", "-", "*"),
        while_density=1.0,
    ),
    "SYNSEQ": Scenario(
        seed=208,
        pattern="mixed",
        stmts=2,
        mem_ratio=0.5,
        opmix=("+", "*"),
        n_loops=3,
        while_density=0.35,
    ),
    # Pass-pipeline shapes (PR 7): while-in-for nests plus hoistable
    # invariants, and adjacent same-trip counted loops for fusion.
    "SYNNEST": Scenario(
        seed=209,
        pattern="stream",
        stmts=2,
        mem_ratio=0.5,
        opmix=("+", "*"),
        hoist_density=1.0,
        nest_density=1.0,
    ),
    "SYNFUS": Scenario(
        seed=210,
        pattern="stream",
        stmts=2,
        mem_ratio=0.5,
        opmix=("+", "-", "*"),
        n_loops=3,
        while_density=1.0,
        fuse_density=1.0,
        hoist_density=1.0,
    ),
}

#: curated kernels whose scenario emits a LoopProgram (no analytic II,
#: no POST baseline); consult before crossing with backends.
PROGRAM_KERNELS = frozenset(
    name for name, sc in CURATED.items()
    if sc.n_loops > 1 or sc.while_density > 0 or sc.nest_density > 0
)


def is_program_kernel(name: str) -> bool:
    """Does this curated kernel compile to a multi-segment LoopProgram?"""
    return name.upper() in PROGRAM_KERNELS


def kernel_names() -> list[str]:
    """The curated ``synth`` family, in registration order."""
    return list(CURATED)


def kernel(name: str, n: int = 16):
    """Build one curated synthetic kernel with trip count ``n``.

    Returns a :class:`CountedLoop` for classic single-counted-loop
    scenarios, a :class:`~repro.ir.loops.LoopProgram` for while/multi-
    loop scenarios (``SYNWHL``/``SYNSEQ``).
    """
    from ..frontend.lower import compile_dsl

    sc = CURATED[name.upper()]
    return compile_dsl(generate(sc).source(), n, name=name.lower())
