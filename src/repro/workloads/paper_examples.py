"""The paper's worked examples (Figures 5, 6, 8, 9, 11, 13).

Two loops appear throughout the paper:

* **The A,B,C loop** (Figures 5-6): "a loop containing the operations
  A,B,C where each operation depends on the preceding one and A also
  has a loop-carried dependency on itself."  Simple pipelining of four
  unwound iterations yields speedup 2; Perfect Pipelining converges to
  the repeating ``c b a`` row with speedup 3.  Fully specified by the
  text; reproduced exactly.

* **The A..G example** (Figures 8, 9, 11, 13).  The paper's figure
  shows a 7-operation loop body whose dependence graph includes
  loop-carried dependencies (curved lines), but the scanned figure is
  not machine-readable.  We *reconstruct* a graph consistent with every
  textual constraint:

  - seven ops ``a..g``, alphabetical scheduling priority;
  - unconstrained dependence-only motion produces gaps that grow with
    the iteration index (section 3.1 / Figure 9), which requires two
    recurrence cycles of different slopes;
  - with gap prevention the pipeline converges to a two-row kernel
    ("making nodes 4 and 5 the new loop body", Figure 13).

  Our reconstruction: chains ``a -> b -> c`` and ``f -> g`` with
  ``a_i <- a_{i-1}`` and ``f_i <- f_{i-1}`` (slope-1 recurrences), plus
  the slope-2 cycle ``d_i <- e_{i-1}``, ``e_i <- d_i``.  Iteration i's
  a-family ops settle around row i while the d/e family needs two rows
  per iteration -- dependence-only scheduling therefore drifts them
  apart (growing gaps), and gap prevention locks the kernel at two rows
  per iteration.
"""

from __future__ import annotations

from ..ir.builder import LoopNest, simple_loop
from ..ir.operations import Operation, OpKind
from ..ir.registers import Reg


def _op(name: str, dest: str, *srcs: str, pos: int) -> Operation:
    """A named single-cycle op ``dest <- add(srcs...)`` (shape only)."""
    if len(srcs) == 1:
        return Operation(OpKind.ADD, Reg(dest), (Reg(srcs[0]), Reg(srcs[0])),
                         name=name, pos=pos)
    return Operation(OpKind.ADD, Reg(dest), tuple(Reg(s) for s in srcs),
                     name=name, pos=pos)


def abc_loop() -> LoopNest:
    """Figure 5's loop: chain a -> b -> c with a self-carried.

    ``a`` reads its own previous value (carried), ``b`` reads ``a``,
    ``c`` reads ``b``.
    """
    ops = [
        _op("a", "ra", "ra", pos=0),
        _op("b", "rb", "ra", pos=1),
        _op("c", "rc", "rb", pos=2),
    ]
    return simple_loop(ops)


def abc_body() -> list[Operation]:
    """The A,B,C loop body as a bare op list (for unwind_implicit)."""
    return abc_loop().body_ops


def ag_body() -> list[Operation]:
    """The reconstructed A..G loop body (see module docstring).

    Dependences:
      a_i <- a_{i-1}          (slope-1 recurrence)
      b_i <- a_i
      c_i <- b_i
      d_i <- e_{i-1}          (half of the slope-2 cycle)
      e_i <- d_i              (other half)
      f_i <- f_{i-1}          (slope-1 recurrence)
      g_i <- f_i
    """
    return [
        _op("a", "ra", "ra", pos=0),
        _op("b", "rb", "ra", pos=1),
        _op("c", "rc", "rb", pos=2),
        _op("d", "rd", "re", pos=3),
        _op("e", "re", "rd", pos=4),
        _op("f", "rf", "rf", pos=5),
        _op("g", "rg", "rf", pos=6),
    ]


def ag_loop() -> LoopNest:
    """The A..G loop as an implicit loop nest."""
    return simple_loop(ag_body())
