"""Synthetic program generators for property-based testing and ablations.

* :func:`random_straightline` -- random dependence DAGs realized as
  three-address code: the workhorse of the "scheduling preserves
  semantics" property tests.
* :func:`random_counted_loop` -- random loop bodies (streams, constants
  and optional reductions) for end-to-end pipelining properties.
* :func:`chain_body` / :func:`wide_body` -- extreme shapes (one long
  chain; fully parallel ops) whose optimal schedules are known in
  closed form, used as oracle tests.
* :func:`branchy_program` -- diamonds for conditional-jump motion
  tests and the speculation ablation.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..ir.builder import SequentialBuilder, straightline_graph
from ..ir.cjtree import EXIT
from ..ir.graph import ProgramGraph
from ..ir.loops import CountedLoop, build_counted_loop
from ..ir.operations import (
    Operation,
    OpKind,
    add,
    cjump,
    cmp_lt,
    const,
    load,
    store,
    sub,
)
from ..ir.registers import Reg

_ARITH = (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.MIN, OpKind.MAX)


def random_straightline(rng: random.Random, n_ops: int = 12, *,
                        n_inputs: int = 4, store_every: int = 4,
                        arrays: Sequence[str] = ("out",)) -> ProgramGraph:
    """A random DAG as a chain of one-op nodes.

    Each op reads registers produced earlier (or inputs) and writes a
    fresh temp; every ``store_every`` ops the current value is stored,
    so results are observable through memory.
    """
    inputs = [Reg(f"in{i}") for i in range(n_inputs)]
    avail: list[Reg] = list(inputs)
    ops: list[Operation] = []
    slot = 0
    for i in range(n_ops):
        kind = rng.choice(_ARITH)
        a = rng.choice(avail)
        b = rng.choice(avail)
        dest = Reg(f"v{i}")
        ops.append(Operation(kind, dest, (a, b), name=f"o{i}", pos=i))
        avail.append(dest)
        if (i + 1) % store_every == 0:
            arr = arrays[slot % len(arrays)]
            ops.append(store(arr, dest, offset=slot, name=f"s{slot}",
                             pos=i))
            slot += 1
    if not any(op.writes_memory for op in ops):
        ops.append(store(arrays[0], avail[-1], offset=0, name="s_end",
                         pos=n_ops))
    return straightline_graph(ops)


def random_counted_loop(rng: random.Random, *, name: str = "rand",
                        n_stmts: int = 4, trip: int = 8,
                        reduction: bool = False) -> CountedLoop:
    """A random but well-formed counted loop.

    Statements are stream updates ``dst[k] = f(src1[k+c1], src2[k+c2])``
    over disjoint arrays (vectorizable); with ``reduction=True`` a
    carried scalar accumulation is appended.
    """
    body: list[Operation] = []
    temp = 0
    pos = 0
    n_arrays = max(2, n_stmts + 1)
    arrays = [f"arr{i}" for i in range(n_arrays)]
    for s in range(n_stmts):
        src1 = arrays[rng.randrange(len(arrays))]
        src2 = arrays[rng.randrange(len(arrays))]
        dst = f"dst{s}"
        off1 = rng.randrange(0, 3)
        off2 = rng.randrange(0, 3)
        t1, t2, t3 = f"t{temp}", f"t{temp+1}", f"t{temp+2}"
        temp += 3
        body.append(load(t1, src1, index="k", offset=off1, affine=off1,
                         name=f"ld{pos}", pos=pos))
        pos += 1
        body.append(load(t2, src2, index="k", offset=off2, affine=off2,
                         name=f"ld{pos}", pos=pos))
        pos += 1
        kind = rng.choice(_ARITH)
        body.append(Operation(kind, Reg(t3), (Reg(t1), Reg(t2)),
                              name=f"op{pos}", pos=pos))
        pos += 1
        body.append(store(dst, t3, index="k", affine=0,
                          name=f"st{pos}", pos=pos))
        pos += 1
    carried: list[str] = []
    epilogue: list[Operation] = []
    if reduction:
        body.append(add("acc", "acc", Reg(f"t{temp-1}"),
                        name="red", pos=pos))
        pos += 1
        carried.append("acc")
        epilogue.append(store("_scalars", "acc", offset=0, name="out_acc"))
    return build_counted_loop(
        name, [const("k", 0, name="init")], body, "k", trip,
        carried=carried, epilogue=epilogue)


def chain_body(length: int) -> list[Operation]:
    """One serial dependence chain (optimal schedule = length cycles)."""
    ops = [add("c0", "x", 1, name="c0", pos=0)]
    for i in range(1, length):
        ops.append(add(f"c{i}", f"c{i-1}", 1, name=f"c{i}", pos=i))
    ops.append(store("out", f"c{length-1}", offset=0, name="sink",
                     pos=length))
    return ops


def wide_body(width: int) -> list[Operation]:
    """Fully independent ops (optimal = ceil(width/fus) cycles + stores)."""
    ops: list[Operation] = []
    for i in range(width):
        ops.append(add(f"w{i}", f"x{i}", 1, name=f"w{i}", pos=i))
    for i in range(width):
        ops.append(store("out", f"w{i}", offset=i, name=f"s{i}",
                         pos=width + i))
    return ops


def branchy_program(rng: random.Random | None = None, *,
                    depth: int = 1) -> ProgramGraph:
    """Nested diamonds: compare, branch, per-side work, merged store.

    Used by move-cj tests and the speculation ablation.  ``depth``
    stacks diamonds sequentially.
    """
    rng = rng or random.Random(0)
    b = SequentialBuilder()
    g = b.graph
    prev_tail: list[tuple[int, int]] = []  # (node, leaf) edges to wire
    pos = 0
    first = None
    for d in range(depth):
        n_cmp = g.new_node()
        n_cmp.add_op(cmp_lt(f"c{d}", f"a{d}", f"b{d}", name=f"k{d}", pos=pos))
        pos += 1
        if first is None:
            first = n_cmp.nid
            g.set_entry(n_cmp.nid)
        for node, leaf in prev_tail:
            g.retarget_leaf(node, leaf, n_cmp.nid)
        prev_tail = []
        cj = cjump(f"c{d}", name=f"j{d}", pos=pos)
        pos += 1
        n_cj = g.new_node()
        from ..ir.cjtree import Branch, make_leaf

        tl, fl = make_leaf(EXIT), make_leaf(EXIT)
        n_cj.tree = Branch(cj.uid, tl, fl)
        n_cj.cjs[cj.uid] = cj
        g.note_tree_change(n_cj.nid)
        g.retarget_leaf(n_cmp.nid, n_cmp.leaves()[0].leaf_id, n_cj.nid)
        # Then/else sides.
        n_t = g.new_node()
        n_t.add_op(add(f"v{d}", f"a{d}", 1, name=f"t{d}", pos=pos))
        pos += 1
        n_e = g.new_node()
        n_e.add_op(sub(f"v{d}", f"b{d}", 1, name=f"e{d}", pos=pos))
        pos += 1
        g.retarget_leaf(n_cj.nid, tl.leaf_id, n_t.nid)
        g.retarget_leaf(n_cj.nid, fl.leaf_id, n_e.nid)
        n_s = g.new_node()
        n_s.add_op(store("out", f"v{d}", offset=d, name=f"s{d}", pos=pos))
        pos += 1
        g.retarget_leaf(n_t.nid, n_t.leaves()[0].leaf_id, n_s.nid)
        g.retarget_leaf(n_e.nid, n_e.leaves()[0].leaf_id, n_s.nid)
        prev_tail = [(n_s.nid, n_s.leaves()[0].leaf_id)]
    g.check()
    return g
