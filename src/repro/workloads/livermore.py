"""The fourteen Livermore Loops of the paper's Table 1.

Each kernel is written in the loop DSL and lowered by the front end,
exactly as the paper's loops passed through GCC into the UCI VLIW
compiler.  What we preserve from the original McMahon FORTRAN is the
property that determines scheduling behaviour -- the **dependence
structure**:

==== ========================== ==========================================
LL   kernel                     structure preserved
==== ========================== ==========================================
1    hydro fragment             vectorizable, medium body
2    ICCG inner step            stride-2 sweep; reads interleave writes
3    inner product              scalar reduction (carried ``q``)
4    banded linear equations    distance-5 recurrence (5 iters in flight)
5    tri-diagonal elimination   tight carried scalar recurrence
6    general linear recurrence  2-op carried recurrence (hard cap)
7    equation of state          vectorizable, large body
8    ADI integration            vectorizable, wide 2-output body
9    integrate predictors       vectorizable polynomial predictor
10   difference predictors      vectorizable, very deep dependence chain
11   first sum                  prefix sum via carried scalar (1-op rec.)
12   first difference           vectorizable, tiny body
13   2-D particle in cell       indirection: non-affine gather+scatter
14   1-D particle in cell       indirection mixed with affine traffic
==== ========================== ==========================================

Bodies are simplified transcriptions (scalar constants folded, outer
loops dropped); absolute operation counts therefore differ from the
paper's intermediate code, which is why EXPERIMENTS.md compares speedup
*shapes* rather than absolute Table-1 entries.

Every builder takes ``n`` -- the trip count, which doubles as the
unroll factor in measured runs -- and returns a
:class:`~repro.ir.loops.CountedLoop`.
"""

from __future__ import annotations

from typing import Callable

from ..frontend.lower import compile_dsl
from ..ir.loops import CountedLoop

LL1_SRC = """
# Hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
param q, r, t, n; array x, y, z;
for k = 0 to n {
    x[k] = q + y[k] * (r * z[k+10] + t * z[k+11]);
}
"""

LL2_SRC = """
# ICCG (incomplete Cholesky conjugate gradient), one inner sweep.
# Stride-2: stores hit even cells, reads hit odd cells.
param n; array x, v;
for k = 0 to n step 2 {
    x[k] = x[k] - v[k] * x[k+1] - v[k+1] * x[k+3];
}
"""

LL3_SRC = """
# Inner product: q += z[k]*x[k]  (scalar reduction)
param q, n; array x, z;
for k = 0 to n {
    q = q + z[k] * x[k];
}
"""

LL4_SRC = """
# Banded linear equations: distance-5 recurrence through xs
param n; array xs, y;
for k = 0 to n {
    xs[k+5] = xs[k+5] - xs[k] * y[k];
}
"""

LL5_SRC = """
# Tri-diagonal elimination, below diagonal: carried scalar xp
param xp, n; array x, y, z;
for k = 0 to n {
    xp = z[k] * (y[k] - xp);
    x[k] = xp;
}
"""

LL6_SRC = """
# General linear recurrence equations (simplified to its carried core)
param w, n; array b, ww;
for k = 0 to n {
    w = 0.0100 + b[k] * w;
    ww[k] = w;
}
"""

LL7_SRC = """
# Equation of state fragment: large vectorizable expression
param q, r, t, n; array x, u, y, z;
for k = 0 to n {
    x[k] = u[k] + r * (z[k] + r * y[k])
         + t * (u[k+3] + r * (u[k+2] + r * u[k+1])
              + t * (u[k+6] + r * (u[k+5] + r * u[k+4])));
}
"""

LL8_SRC = """
# ADI integration fragment: two coupled updates, forward reads
param a11, a12, a21, a22, n; array u1, u2, du1, du2;
for k = 0 to n {
    d1 = u1[k+1] - u1[k+2];
    d2 = u2[k+1] - u2[k+2];
    du1[k] = d1;
    du2[k] = d2;
    u1[k] = u1[k] + a11 * d1 + a12 * d2;
    u2[k] = u2[k] + a21 * d1 + a22 * d2;
}
"""

LL9_SRC = """
# Integrate predictors: polynomial predictor, vectorizable
param c0, c1, c2, c3, c4, c5, n; array px, py, pz;
for k = 0 to n {
    px[k] = c0 + c1*py[k] + c2*pz[k] + c3*py[k+1] + c4*pz[k+1]
          + c5*py[k+2];
}
"""

LL10_SRC = """
# Difference predictors: cascade of partial differences (deep chain)
param n; array cx, px0, px1, px2, px3, px4, px5;
for k = 0 to n {
    t1 = cx[k] - px0[k];
    t2 = t1 - px0[k+1];
    t3 = t2 - px0[k+2];
    t4 = t3 - px0[k+3];
    t5 = t4 - px0[k+4];
    px1[k] = t1;
    px2[k] = t2;
    px3[k] = t3;
    px4[k] = t4;
    px5[k] = t5;
    px0[k] = cx[k];
}
"""

LL11_SRC = """
# First sum (prefix sum) via a carried scalar
param s, n; array x, y;
for k = 0 to n {
    s = s + y[k];
    x[k] = s;
}
"""

LL12_SRC = """
# First difference: x[k] = y[k+1] - y[k]
param n; array x, y;
for k = 0 to n {
    x[k] = y[k+1] - y[k];
}
"""

LL13_SRC = """
# 2-D particle in cell (core): indirect gather and scatter
param n; array p, b, c, y, h;
for k = 0 to n {
    y[k] = p[k] + b[p[k]] + c[p[k]];
    h[p[k]] = h[p[k]] + 1;
}
"""

LL14_SRC = """
# 1-D particle in cell (core): affine streams plus an indirect
# (non-affine) read-modify-write scatter, which serializes.
param flx, dex, n; array ex, xi, vx, ir;
for k = 0 to n {
    vx[k] = vx[k] + ex[ir[k]] + flx * xi[k];
    xi[k] = xi[k] + vx[k];
    ex[ir[k]] = ex[ir[k]] + dex;
}
"""

_SOURCES: dict[str, str] = {
    "LL1": LL1_SRC, "LL2": LL2_SRC, "LL3": LL3_SRC, "LL4": LL4_SRC,
    "LL5": LL5_SRC, "LL6": LL6_SRC, "LL7": LL7_SRC, "LL8": LL8_SRC,
    "LL9": LL9_SRC, "LL10": LL10_SRC, "LL11": LL11_SRC, "LL12": LL12_SRC,
    "LL13": LL13_SRC, "LL14": LL14_SRC,
}


def kernel(name: str, n: int = 16) -> CountedLoop:
    """Build one Livermore kernel with trip count ``n``."""
    src = _SOURCES[name.upper()]
    return compile_dsl(src, n, name=name.lower())


def kernel_names() -> list[str]:
    """Table-1 order."""
    return [f"LL{i}" for i in range(1, 15)]


def all_kernels(n: int = 16) -> dict[str, CountedLoop]:
    return {name: kernel(name, n) for name in kernel_names()}


def _make(name: str) -> Callable[[int], CountedLoop]:
    def build(n: int = 16) -> CountedLoop:
        return kernel(name, n)

    build.__name__ = name.lower()
    build.__doc__ = f"Livermore loop {name} with trip count ``n``."
    return build


ll1 = _make("LL1")
ll2 = _make("LL2")
ll3 = _make("LL3")
ll4 = _make("LL4")
ll5 = _make("LL5")
ll6 = _make("LL6")
ll7 = _make("LL7")
ll8 = _make("LL8")
ll9 = _make("LL9")
ll10 = _make("LL10")
ll11 = _make("LL11")
ll12 = _make("LL12")
ll13 = _make("LL13")
ll14 = _make("LL14")
