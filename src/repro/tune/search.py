"""Per-cell policy search: seeded multi-start + coordinate descent.

One *cell* is a (kernel, fu-config) pair at the bench sweep's Table-1
unroll.  The unroll is held fixed across every candidate -- realized
cycles scale with the unroll factor, so comparing policies only makes
sense at one K (tuning the unroll itself is a separate axis the bench
sweep already covers).

The objective is realized VM cycles of the differentially-checked
schedule: every candidate policy's schedule is lowered to bundles,
executed on the VM and checked against the sequential reference, so a
policy can only "win" with a schedule that is provably equivalent.  A
candidate whose evaluation fails (invalid schedule, check mismatch,
resource violation) is simply skipped -- the search treats it as an
infinitely-bad point, never as an error.

Search shape per cell, within an evaluation ``budget``:

1. evaluate ``DEFAULT_POLICY`` (the incumbent -- always in the
   candidate set, so "tuned <= default" holds by construction);
2. profile one default run under a :class:`DecisionJournal` and take
   the ``top_blocked`` reason codes;
3. multi-start seeded random sampling (about half the budget);
4. greedy coordinate descent from the best point, perturbing one
   policy axis at a time -- axes named by the blocked reasons first
   (``resource`` -> fill order / term weights, ``gap-veto`` -> gap
   mode, ``speculation`` -> speculate, ...), then the rest.

Candidates are deduplicated by policy fingerprint and fanned through a
``multiprocessing`` pool; workers share the schedule cache directory,
so re-visiting a policy across cells or runs replays its schedule.
"""

from __future__ import annotations

import itertools
import multiprocessing
import random
import time
from dataclasses import dataclass, field, replace

from ..scheduling.policy import (
    DEFAULT_POLICY,
    FILL_ORDERS,
    GAP_MODES,
    RANK_TERMS,
    SchedulePolicy,
)

DEFAULT_BUDGET = 24

#: DecisionJournal reason code -> the policy axes most likely to move
#: that bottleneck.  Unknown reasons steer nothing (descent still
#: sweeps every axis, just later).
REASON_AXES: dict[str, tuple[str, ...]] = {
    "resource": ("fill_order", "chain_weight", "dep_weight"),
    "typed-slots": ("fill_order", "rank_terms"),
    "gap-veto": ("gap_mode",),
    "speculation": ("speculate",),
    "dependence": ("rank_terms", "chain_weight", "dep_weight"),
    "unify-fail": ("fill_order", "rank_terms"),
    "loop-boundary": ("iteration_major",),
}

#: Every axis the coordinate descent sweeps, with its value menu.
#: ``unroll`` is deliberately absent (held fixed per cell, see module
#: docstring).
AXIS_CHOICES: dict[str, tuple] = {
    "fill_order": FILL_ORDERS,
    "chain_weight": (0.5, 1.0, 2.0, 4.0),
    "dep_weight": (0.25, 0.5, 1.0, 2.0),
    "rank_terms": tuple(itertools.permutations(RANK_TERMS)),
    "iteration_major": (True, False),
    "speculate": (True, False),
    "gap_mode": GAP_MODES,
    "enable_hoist": (True, False),
    "enable_fuse": (True, False),
    "enable_slack": (True, False),
}

ALL_AXES = tuple(AXIS_CHOICES)


def random_policy(rng: random.Random, *,
                  allow_gap_off: bool = False) -> SchedulePolicy:
    """One valid policy drawn from ``rng`` (deterministic per seed).

    The draw leans toward the default on axes where most of the mass
    of *good* policies sits (iteration-major on, speculation on, gap
    prevention strict-ish) while still exploring every choice.  The
    fuzz harness passes ``allow_gap_off=True`` to reach the gap-off
    corner too; the tuner keeps gap prevention on in random starts
    (descent can still turn it off deliberately).

    ``unroll`` stays ``None``: both callers pin the unroll externally.
    """
    terms = list(RANK_TERMS)
    rng.shuffle(terms)
    gap_menu = GAP_MODES if allow_gap_off else ("strict", "strict", "local")
    return SchedulePolicy(
        rank_terms=tuple(terms),
        chain_weight=rng.choice((0.5, 1.0, 1.0, 2.0, 4.0)),
        dep_weight=rng.choice((0.25, 0.5, 1.0, 1.0, 2.0)),
        iteration_major=rng.random() < 0.85,
        fill_order=rng.choice(FILL_ORDERS),
        speculate=rng.random() < 0.8,
        gap_mode=rng.choice(gap_menu),
        enable_hoist=rng.random() < 0.8,
        enable_fuse=rng.random() < 0.8,
        enable_slack=rng.random() < 0.8,
    )


# ----------------------------------------------------------------------
# Objective


def evaluate_policy(kernel: str, fus: int, policy: SchedulePolicy | None,
                    *, unroll: int | None = None, cache=None) -> int:
    """Realized VM cycles of ``kernel`` scheduled under ``policy``.

    Mirrors the bench runner's ``vm`` backend exactly: counted loops
    report :func:`differential_check`'s realized cycles over the
    unwound graph; program-shaped kernels pair a sequential and a VM
    run of the same initial state.  Raises whatever the scheduler or
    the check raises -- callers decide whether that kills the run
    (default policy) or just the candidate (search points).
    """
    from .. import api
    from ..backend import differential_check
    from ..bench.runner import default_unroll
    from ..ir.loops import LoopProgram
    from ..machine import MachineConfig

    if unroll is None:
        unroll = default_unroll(fus)
    machine = MachineConfig(fus=fus)
    program = api.load_kernel(kernel, unroll)
    res = api.schedule(
        program, machine,
        options=api.ScheduleOptions(unroll=unroll, measure=False,
                                    policy=policy),
        cache=cache)
    if isinstance(program, LoopProgram):
        from ..backend.check import realized_program_pair

        rep = differential_check(res.graph, machine)
        _, vm_res = realized_program_pair(program.graph, res.graph,
                                          rep.program)
        return vm_res.cycles
    rep = differential_check(res.unwound.graph, machine)
    return rep.realized_cycles


def _eval_task(task) -> tuple[int | None, str | None]:
    """Pool-picklable objective: ``(cycles, None)`` or ``(None, error)``.

    ``task`` is ``(kernel, fus, unroll, policy_dict, cache_dir)`` with
    the policy as a plain dict (keeps the task JSON/pickle-trivial).
    """
    kernel, fus, unroll, policy_dict, cache_dir = task
    from ..bench.runner import _cache_for

    try:
        policy = SchedulePolicy.from_dict(policy_dict)
        cycles = evaluate_policy(kernel, fus, policy, unroll=unroll,
                                 cache=_cache_for(cache_dir))
        return cycles, None
    except Exception as exc:  # noqa: BLE001 - candidate skipped, not fatal
        return None, f"{type(exc).__name__}: {exc}"


def _blocked_reasons(kernel: str, fus: int, unroll: int) -> list[str]:
    """Distinct ``top_blocked`` reason codes of one profiled default run."""
    from .. import api
    from ..machine import MachineConfig
    from ..obs import DecisionJournal

    journal = DecisionJournal(keep_events=False)
    program = api.load_kernel(kernel, unroll)
    api.schedule(program, MachineConfig(fus=fus),
                 options=api.ScheduleOptions(unroll=unroll, measure=False),
                 tracer=journal)
    reasons: list[str] = []
    for entry in journal.top_blocked(8):
        if entry["reason"] not in reasons:
            reasons.append(entry["reason"])
    return reasons


def _axis_order(reasons: list[str]) -> tuple[str, ...]:
    """Descent axis order: reason-steered axes first, then the rest."""
    order: list[str] = []
    for reason in reasons:
        for axis in REASON_AXES.get(reason, ()):
            if axis not in order:
                order.append(axis)
    for axis in ALL_AXES:
        if axis not in order:
            order.append(axis)
    return tuple(order)


# ----------------------------------------------------------------------
# Per-cell search


@dataclass
class TuneEntry:
    """The outcome of one (kernel, fus) cell."""

    kernel: str
    fus: int
    unroll: int
    policy: SchedulePolicy
    cycles: int
    default_cycles: int
    evals: int
    reasons: list[str] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.cycles < self.default_cycles


@dataclass
class TuneReport:
    """All cells of one ``repro tune`` run."""

    entries: list[TuneEntry]
    budget: int
    seed: int
    wall_seconds: float

    @property
    def improved(self) -> int:
        return sum(1 for e in self.entries if e.improved)


def tune_cell(kernel: str, fus: int, *, budget: int = DEFAULT_BUDGET,
              seed: int = 0, unroll: int | None = None,
              cache_dir: str | None = None, pool=None,
              log=None) -> TuneEntry:
    """Search one cell; see the module docstring for the shape."""
    from ..bench.runner import _cache_for, default_unroll

    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if unroll is None:
        unroll = default_unroll(fus)
    rng = random.Random(f"grip-tune:{kernel}:{fus}:{seed}")

    # The incumbent must evaluate cleanly -- a failure here is a real
    # error, not a skippable candidate.
    default_cycles = evaluate_policy(kernel, fus, None, unroll=unroll,
                                     cache=_cache_for(cache_dir))
    evals = 1
    best, best_cycles = DEFAULT_POLICY, default_cycles
    seen = {DEFAULT_POLICY.fingerprint()}
    reasons = _blocked_reasons(kernel, fus, unroll)

    def run_batch(policies) -> bool:
        """Evaluate fresh candidates (within budget); True on improvement."""
        nonlocal evals, best, best_cycles
        fresh = []
        for pol in policies:
            fp = pol.fingerprint()
            if fp in seen:
                continue
            seen.add(fp)
            fresh.append(pol)
        fresh = fresh[:max(0, budget - evals)]
        if not fresh:
            return False
        tasks = [(kernel, fus, unroll, pol.to_dict(), cache_dir)
                 for pol in fresh]
        results = (pool.map(_eval_task, tasks) if pool is not None
                   else [_eval_task(t) for t in tasks])
        evals += len(fresh)
        moved = False
        for pol, (cycles, err) in zip(fresh, results):
            if cycles is None:
                if log:
                    log(f"    skip {pol.fingerprint()}: {err}")
                continue
            if cycles < best_cycles:
                best, best_cycles = pol, cycles
                moved = True
        return moved

    # Phase 1: seeded multi-start random sampling (about half the
    # budget).  Draw with a retry margin so fingerprint-duplicate draws
    # don't silently shrink the phase.
    n_random = max(1, (budget - 1) // 2)
    starts, attempts = [], 0
    while len(starts) < n_random and attempts < 4 * n_random:
        attempts += 1
        pol = random_policy(rng)
        if pol.fingerprint() not in seen and pol not in starts:
            starts.append(pol)
    run_batch(starts)

    # Phase 2: greedy coordinate descent from the best point, axes in
    # reason-steered order; stop on a full no-improvement sweep.
    axes = _axis_order(reasons)
    moved = True
    while moved and evals < budget:
        moved = False
        for axis in axes:
            if evals >= budget:
                break
            current = getattr(best, axis)
            cands = [replace(best, **{axis: value})
                     for value in AXIS_CHOICES[axis] if value != current]
            if run_batch(cands):
                moved = True

    if log:
        verdict = (f"improved {default_cycles} -> {best_cycles}"
                   if best_cycles < default_cycles
                   else f"default best at {default_cycles}")
        log(f"  {kernel} fus={fus} unroll={unroll}: {verdict} "
            f"({evals} evals, blocked: {', '.join(reasons) or 'none'})")
    return TuneEntry(kernel=kernel, fus=fus, unroll=unroll, policy=best,
                     cycles=best_cycles, default_cycles=default_cycles,
                     evals=evals, reasons=reasons)


def run_tune(kernels, fu_configs, *, budget: int = DEFAULT_BUDGET,
             seed: int = 0, jobs: int = 1, cache_dir: str | None = None,
             log=None) -> TuneReport:
    """Tune every (kernel, fus) cell; candidate batches fan over a pool."""
    t0 = time.perf_counter()
    pool = None
    entries: list[TuneEntry] = []
    try:
        if jobs > 1:
            pool = multiprocessing.Pool(processes=jobs)
        for kernel in kernels:
            for fus in fu_configs:
                entries.append(tune_cell(
                    kernel, fus, budget=budget, seed=seed,
                    cache_dir=cache_dir, pool=pool, log=log))
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    return TuneReport(entries=entries, budget=budget, seed=seed,
                      wall_seconds=time.perf_counter() - t0)


# ----------------------------------------------------------------------
# Verification


def verify_tuned(path, *, cache_dir: str | None = None,
                 log=None) -> list[str]:
    """Re-execute a TUNED artifact; return exact-cycle mismatches.

    For every entry the stored policy is rebuilt with
    :meth:`SchedulePolicy.from_dict` and pushed back through
    ``repro.api.schedule`` + the differential check; both the tuned
    and the default cycle counts must reproduce *exactly*.  An empty
    return means the artifact is live.
    """
    from ..bench.runner import _cache_for

    from .artifact import validate_tuned_file

    payload = validate_tuned_file(path)
    cache = _cache_for(cache_dir)
    mismatches: list[str] = []
    for entry in payload["entries"]:
        cell = f"{entry['kernel']} fus={entry['fus']}"
        policy = SchedulePolicy.from_dict(entry["policy"])
        got = evaluate_policy(entry["kernel"], entry["fus"], policy,
                              unroll=entry["unroll"], cache=cache)
        if got != entry["cycles"]:
            mismatches.append(
                f"{cell}: tuned cycles {entry['cycles']} != replayed {got}")
        got_default = evaluate_policy(entry["kernel"], entry["fus"], None,
                                      unroll=entry["unroll"], cache=cache)
        if got_default != entry["default_cycles"]:
            mismatches.append(
                f"{cell}: default cycles {entry['default_cycles']} != "
                f"replayed {got_default}")
        if log:
            status = "ok" if not any(m.startswith(cell) for m in mismatches) \
                else "MISMATCH"
            log(f"  {cell}: {status}")
    return mismatches
