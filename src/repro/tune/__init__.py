"""``repro tune``: searching the schedule-policy space per kernel.

The policy surface (:mod:`repro.scheduling.policy`) exposes every
schedule-shaping knob as one fingerprinted value; this package
searches it.  Per (kernel, fu-config) cell the tuner runs seeded
multi-start random sampling followed by greedy coordinate descent,
with the objective being *realized VM cycles* of the
differentially-checked schedule -- so a "better" policy is better by
the same measurement that validates correctness.  The decision
journal's ``top_blocked`` reason codes steer which policy axis the
descent perturbs first.  Results persist as a schema-versioned
``TUNED_*.json`` artifact that records, for every cell, the winning
policy, its cycles, the default-policy cycles and the search budget --
and that :func:`verify_tuned` can re-execute for exact-cycle
reproduction.
"""

from .artifact import (
    TUNED_KIND,
    TUNED_SCHEMA,
    read_tuned,
    validate_tuned_file,
    write_tuned,
)
from .search import (
    DEFAULT_BUDGET,
    TuneEntry,
    TuneReport,
    evaluate_policy,
    random_policy,
    run_tune,
    verify_tuned,
)

__all__ = [
    "DEFAULT_BUDGET", "TUNED_KIND", "TUNED_SCHEMA", "TuneEntry",
    "TuneReport", "evaluate_policy", "random_policy", "read_tuned",
    "run_tune", "validate_tuned_file", "verify_tuned", "write_tuned",
]
