"""The ``TUNED_*.json`` artifact: persisted policy-search results.

Schema (version ``TUNED_SCHEMA``)::

    {
      "schema": 1, "kind": "repro-tuned", "name": "table1",
      "created": <epoch seconds>,
      "budget": {"evals_per_cell": N, "seed": N, "wall_seconds": F},
      "entries": [
        {"kernel": "LL3", "fus": 4, "unroll": 12,
         "policy": {<SchedulePolicy.to_dict()>},
         "policy_fingerprint": "<16 hex>",
         "cycles": N, "default_cycles": N,
         "evals": N, "improved": bool,
         "blocked_reasons": ["resource", ...]},
        ...
      ]
    }

Everything needed to *re-execute* an entry is inside it: the policy
dict round-trips through ``SchedulePolicy.from_dict`` and the unroll
pins the cell, so :func:`repro.tune.verify_tuned` can replay any
artifact from disk and demand exact cycle reproduction.  The
``improved`` flag is redundant with ``cycles < default_cycles`` by
design -- :func:`validate_tuned_file` cross-checks it, so a
hand-edited artifact can't quietly lie about a win.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..scheduling.policy import SchedulePolicy

TUNED_SCHEMA = 1
TUNED_KIND = "repro-tuned"


def tuned_payload(report, *, name: str = "table1") -> dict:
    """Wrap a :class:`~repro.tune.search.TuneReport` for JSON."""
    return {
        "schema": TUNED_SCHEMA,
        "kind": TUNED_KIND,
        "name": name,
        "created": time.time(),
        "budget": {
            "evals_per_cell": report.budget,
            "seed": report.seed,
            "wall_seconds": report.wall_seconds,
        },
        "entries": [
            {
                "kernel": e.kernel,
                "fus": e.fus,
                "unroll": e.unroll,
                "policy": e.policy.to_dict(),
                "policy_fingerprint": e.policy.fingerprint(),
                "cycles": e.cycles,
                "default_cycles": e.default_cycles,
                "evals": e.evals,
                "improved": e.improved,
                "blocked_reasons": list(e.reasons),
            }
            for e in report.entries
        ],
    }


def write_tuned(report, path, *, name: str = "table1") -> dict:
    """Persist a report; returns the payload that was written."""
    payload = tuned_payload(report, name=name)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def read_tuned(path) -> dict:
    return json.loads(Path(path).read_text())


_ENTRY_KEYS = ("kernel", "fus", "unroll", "policy", "policy_fingerprint",
               "cycles", "default_cycles", "evals", "improved")


def validate_tuned_file(path) -> dict:
    """Load + structurally validate a TUNED artifact from disk.

    Raises :class:`ValueError` describing the first problem; returns
    the payload when it is well-formed.  Validation includes semantic
    cross-checks: the policy dict must rebuild to a valid
    :class:`SchedulePolicy` whose fingerprint matches the recorded
    one, and ``improved`` must equal ``cycles < default_cycles``.
    """
    payload = read_tuned(path)
    if payload.get("schema") != TUNED_SCHEMA:
        raise ValueError(
            f"{path}: schema {payload.get('schema')!r} != {TUNED_SCHEMA}")
    if payload.get("kind") != TUNED_KIND:
        raise ValueError(
            f"{path}: kind {payload.get('kind')!r} != {TUNED_KIND!r}")
    entries = payload.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: entries must be a non-empty list")
    budget = payload.get("budget")
    if not isinstance(budget, dict) or "evals_per_cell" not in budget:
        raise ValueError(f"{path}: budget block missing evals_per_cell")
    for i, entry in enumerate(entries):
        where = f"{path}: entries[{i}]"
        missing = [k for k in _ENTRY_KEYS if k not in entry]
        if missing:
            raise ValueError(f"{where}: missing keys {missing}")
        for key in ("fus", "unroll", "cycles", "default_cycles", "evals"):
            value = entry[key]
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{where}: {key} must be a positive int, "
                    f"got {value!r}")
        try:
            policy = SchedulePolicy.from_dict(entry["policy"])
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{where}: bad policy: {exc}") from exc
        if policy.fingerprint() != entry["policy_fingerprint"]:
            raise ValueError(
                f"{where}: policy fingerprint {entry['policy_fingerprint']}"
                f" does not match the policy dict "
                f"({policy.fingerprint()})")
        if entry["improved"] != (entry["cycles"] < entry["default_cycles"]):
            raise ValueError(
                f"{where}: improved={entry['improved']} inconsistent with "
                f"cycles={entry['cycles']} vs "
                f"default_cycles={entry['default_cycles']}")
    return payload
