"""Statistics used by the paper's Table 1.

The table reports per-loop speedups plus two aggregate rows: the
arithmetic **Mean** and the **WHM** (weighted harmonic mean).  The
harmonic mean is the right average for speedups of equal-work loops;
the weighted variant weights each loop by its sequential cycle count,
which is the convention of the Livermore suite.
"""

from __future__ import annotations

import math
from typing import Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v is not None]
    return sum(vals) / len(vals) if vals else math.nan


def harmonic_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v]
    if not vals:
        return math.nan
    return len(vals) / sum(1.0 / v for v in vals)


def weighted_harmonic_mean(values: Sequence[float],
                           weights: Sequence[float] | None = None) -> float:
    """WHM = sum(w) / sum(w/v); equal weights reduce to the plain HM."""
    vals = list(values)
    if weights is None:
        weights = [1.0] * len(vals)
    num = 0.0
    den = 0.0
    for v, w in zip(vals, weights):
        if not v:
            continue
        num += w
        den += w / v
    return num / den if den else math.nan


def geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v and v > 0]
    if not vals:
        return math.nan
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
