"""Result tables and the aggregate statistics of Table 1."""

from .stats import arithmetic_mean, geometric_mean, harmonic_mean, weighted_harmonic_mean
from .tables import (RealizedRow, SpeedupTable, comparison_table,
                     realized_cycles_table)

__all__ = ["RealizedRow", "SpeedupTable", "arithmetic_mean",
           "comparison_table", "geometric_mean", "harmonic_mean",
           "realized_cycles_table", "weighted_harmonic_mean"]
