"""Result tables and the aggregate statistics of Table 1."""

from .stats import arithmetic_mean, geometric_mean, harmonic_mean, weighted_harmonic_mean
from .tables import SpeedupTable, comparison_table

__all__ = ["SpeedupTable", "arithmetic_mean", "comparison_table",
           "geometric_mean", "harmonic_mean", "weighted_harmonic_mean"]
