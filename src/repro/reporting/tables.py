"""Rendering of result tables in the paper's layout."""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO
from typing import Sequence

from .stats import arithmetic_mean, weighted_harmonic_mean


@dataclass
class SpeedupTable:
    """The Table-1 layout: loops x (FU configs x {GRiP, POST}).

    ``cells[loop][(fus, system)] = speedup`` (None = did not converge).
    ``weights[loop]`` is the sequential cycles/iteration, used by the
    WHM row.
    """

    fu_configs: Sequence[int] = (2, 4, 8)
    systems: Sequence[str] = ("GRiP", "POST")
    cells: dict[str, dict[tuple[int, str], float | None]] = field(
        default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)

    def add(self, loop: str, fus: int, system: str,
            speedup: float | None, weight: float = 1.0) -> None:
        self.cells.setdefault(loop, {})[(fus, system)] = speedup
        self.weights[loop] = weight

    def column(self, fus: int, system: str) -> list[float | None]:
        return [self.cells[name].get((fus, system))
                for name in self.cells]

    def render(self, title: str = "Observed Speed-up") -> str:
        out = StringIO()
        headers = ["Loop"]
        for fus in self.fu_configs:
            for system in self.systems:
                headers.append(f"{system}@{fus}")
        rows: list[list[str]] = []
        for name, row in self.cells.items():
            cells = [name]
            for fus in self.fu_configs:
                for system in self.systems:
                    v = row.get((fus, system))
                    cells.append(f"{v:.1f}" if v is not None else "n/c")
            rows.append(cells)
        # Aggregate rows.
        mean_row = ["Mean"]
        whm_row = ["WHM"]
        for fus in self.fu_configs:
            for system in self.systems:
                col = [v for v in self.column(fus, system) if v is not None]
                w = [self.weights[name] for name in self.cells
                     if self.cells[name].get((fus, system)) is not None]
                mean_row.append(f"{arithmetic_mean(col):.1f}" if col else "-")
                whm_row.append(
                    f"{weighted_harmonic_mean(col, w):.1f}" if col else "-")
        rows.append(mean_row)
        rows.append(whm_row)

        widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
                  for i in range(len(headers))]
        out.write(title + "\n")
        out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
        for r in rows:
            out.write("  ".join(c.rjust(w) for c, w in zip(r, widths)) + "\n")
        return out.getvalue()


    # -- JSON serialization (bench artifacts) --------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation (tuple cell keys become strings)."""
        return {
            "fu_configs": list(self.fu_configs),
            "systems": list(self.systems),
            "cells": {
                loop: {f"{fus}/{system}": v
                       for (fus, system), v in row.items()}
                for loop, row in self.cells.items()
            },
            "weights": dict(self.weights),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpeedupTable":
        t = cls(fu_configs=tuple(data["fu_configs"]),
                systems=tuple(data["systems"]))
        for loop, row in data["cells"].items():
            for key, v in row.items():
                fus, system = key.split("/", 1)
                t.cells.setdefault(loop, {})[(int(fus), system)] = v
        t.weights.update(data.get("weights", {}))
        return t


@dataclass
class RealizedRow:
    """One kernel's schedule-length vs realized-cycle measurements.

    ``sched_speedup`` is the paper's analytic metric (sequential cycles
    per iteration over the initiation interval); ``realized_speedup``
    divides actually-executed sequential cycles by the bundle VM's
    realized cycles, so stalls from multi-cycle latencies and spill
    traffic show up side by side with the schedule-length claim.
    """

    kernel: str
    machine: str
    schedule_length: int        # bundles lowered from graph nodes
    interp_cycles: int          # tree-walking simulator cycles
    vm_steps: int               # bundles the VM executed (incl. spill)
    realized_cycles: int        # VM cycles incl. latency stalls
    sched_speedup: float | None = None
    realized_speedup: float | None = None


def realized_cycles_table(rows: Sequence[RealizedRow],
                          title: str = "Realized cycles (bundle VM)") -> str:
    """Render realized-cycle columns next to schedule-length speedups."""
    headers = ["Kernel", "Machine", "Bundles", "TreeCyc", "VMSteps",
               "Realized", "Sched x", "Real x"]
    body = [[r.kernel, r.machine, r.schedule_length, r.interp_cycles,
             r.vm_steps, r.realized_cycles, r.sched_speedup,
             r.realized_speedup] for r in rows]
    return comparison_table(headers, body, title)


def comparison_table(headers: Sequence[str],
                     rows: Sequence[Sequence[object]],
                     title: str = "") -> str:
    """Generic right-aligned text table."""
    srows = [[("" if c is None else
               (f"{c:.2f}" if isinstance(c, float) else str(c)))
              for c in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in srows))
              if srows else len(headers[i]) for i in range(len(headers))]
    out = StringIO()
    if title:
        out.write(title + "\n")
    out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
    for r in srows:
        out.write("  ".join(c.rjust(w) for c, w in zip(r, widths)) + "\n")
    return out.getvalue()
