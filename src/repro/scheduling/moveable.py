"""Moveable-ops bookkeeping (paper section 3.2).

"Initially, the Moveable-ops set at a node n contains all operations on
the subgraph dominated by n.  As scheduling progresses, operations
become unmoveable and are removed ... if [they have] moved into or
above the node currently being scheduled or if [they are] prevented
from moving by a strict data dependency on an operation that is itself
unmoveable."

The sets are "trivially maintainable" -- this module realizes them as a
view over the graph: the moveable candidates at ``n`` are the templates
with a live instance strictly below ``n``, minus those proven stuck for
the current node.  Stuck marks are operational (a migrate produced no
motion) and are cleared whenever anything moves, which reproduces the
dependence-transitivity rule without bookkeeping dependence chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import ProgramGraph
from ..ir.operations import OpKind
from ..percolation.migrate import region_below
from .priority import Ranking, ranked_templates


@dataclass
class MoveableOps:
    """Candidate tracker for one scheduling pass."""

    graph: ProgramGraph
    ranking: Ranking
    include_copies: bool = True
    #: templates that failed to move at all for the current node
    stuck: set[int] = field(default_factory=set)
    #: templates scheduled (landed in / above the current node)
    scheduled: set[int] = field(default_factory=set)
    #: cost counter: how many candidate-set constructions were done
    set_builds: int = 0

    def begin_node(self) -> None:
        """Reset per-node state when the scheduler advances."""
        self.stuck.clear()
        self.scheduled.clear()

    def note_motion(self) -> None:
        """Anything moved: previously stuck ops may be free again."""
        self.stuck.clear()

    def unstick(self, tids: set[int]) -> None:
        """Clear stuck marks for specific templates (rule-2 retries)."""
        self.stuck -= tids

    def mark_stuck(self, tid: int) -> None:
        self.stuck.add(tid)

    def mark_scheduled(self, tid: int) -> None:
        self.scheduled.add(tid)

    def candidates(self, n: int) -> list[int]:
        """Ranked templates with an instance strictly below ``n``."""
        self.set_builds += 1
        region = region_below(self.graph, n)
        tids: list[int] = []
        seen: set[int] = set()
        for nid in region:
            if nid == n or nid not in self.graph.nodes:
                continue
            for op in self.graph.nodes[nid].all_ops():
                if op.kind is OpKind.NOP:
                    continue
                if not self.include_copies and op.is_copy:
                    continue
                if op.tid in seen or op.tid in self.stuck \
                        or op.tid in self.scheduled:
                    continue
                seen.add(op.tid)
                tids.append(op.tid)
        return ranked_templates(self.ranking, tids)

    def instance_in_or_above(self, n: int, tid: int) -> bool:
        """Did some instance of ``tid`` reach node ``n`` or higher?"""
        region = set(region_below(self.graph, n)) - {n}
        for nid, _ in self.graph.ops_by_template(tid):
            if nid not in region:
                return True
        return False
