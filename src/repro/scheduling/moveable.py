"""Moveable-ops bookkeeping (paper section 3.2).

"Initially, the Moveable-ops set at a node n contains all operations on
the subgraph dominated by n.  As scheduling progresses, operations
become unmoveable and are removed ... if [they have] moved into or
above the node currently being scheduled or if [they are] prevented
from moving by a strict data dependency on an operation that is itself
unmoveable."

The sets are "trivially maintainable" -- this module realizes them as a
view over the graph: the moveable candidates at ``n`` are the templates
with a live instance strictly below ``n``, minus those proven stuck for
the current node.  Stuck marks are operational (a migrate produced no
motion) and are cleared whenever anything moves, which reproduces the
dependence-transitivity rule without bookkeeping dependence chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.incremental import region_below
from ..ir.graph import ProgramGraph
from ..ir.operations import OpKind
from ..obs.tracer import NULL_TRACER, CandidateSetBuilt, Tracer
from .priority import Ranking, ranked_templates


def _apply_fill_order(ranked: list[int], fill_order: str) -> list[int]:
    """Permute a rank-sorted template list per the policy's fill order."""
    if fill_order == "ranked":
        return ranked
    if fill_order == "reversed":
        return ranked[::-1]
    if fill_order == "alternate":
        out: list[int] = []
        lo, hi = 0, len(ranked) - 1
        while lo <= hi:
            out.append(ranked[lo])
            if lo != hi:
                out.append(ranked[hi])
            lo += 1
            hi -= 1
        return out
    raise ValueError(f"unknown fill order {fill_order!r}")


@dataclass
class MoveableOps:
    """Candidate tracker for one scheduling pass.

    With ``memoize`` on (the default), the region walk and the ranked
    template list for a node are cached keyed on ``graph.version``:
    failed move attempts never mutate the graph, so the repeated
    candidate requests of a stuck scheduling round are pure re-reads.
    The per-call ``stuck``/``scheduled`` filter is applied *after* the
    cached ranking, which commutes with the (stable) rank sort, so the
    produced candidate order is identical to an uncached rebuild --
    ``tests/integration/test_schedule_equivalence.py`` pins this down
    differentially.  ``memoize=False`` preserves the original
    rebuild-every-call behavior for such comparisons.
    """

    graph: ProgramGraph
    ranking: Ranking
    include_copies: bool = True
    memoize: bool = True
    #: decision tracer (observe-only; NULL_TRACER costs nothing)
    tracer: Tracer = NULL_TRACER
    #: candidate iteration order at each node: "ranked" walks the sort
    #: order (the paper), "reversed" walks it back-to-front,
    #: "alternate" interleaves best/worst ends.  A pure permutation of
    #: the ranked list, applied before the stuck/scheduled filter on
    #: both the memoized and rebuild paths -- so the fill order, like
    #: the ranking itself, is memoization-neutral.
    fill_order: str = "ranked"
    #: templates that failed to move at all for the current node
    stuck: set[int] = field(default_factory=set)
    #: templates scheduled (landed in / above the current node)
    scheduled: set[int] = field(default_factory=set)
    #: cost counter: how many candidate-set constructions were done
    #: (cache hits are not builds)
    set_builds: int = 0
    _ranked_key: tuple[int, int] | None = field(default=None, repr=False)
    _ranked: list[int] = field(default_factory=list, repr=False)
    _region_key: tuple[int, int] | None = field(default=None, repr=False)
    _region_set: frozenset[int] = field(default=frozenset(), repr=False)

    def begin_node(self) -> None:
        """Reset per-node state when the scheduler advances."""
        self.stuck.clear()
        self.scheduled.clear()

    def note_motion(self) -> None:
        """Anything moved: previously stuck ops may be free again."""
        self.stuck.clear()

    def unstick(self, tids: set[int]) -> None:
        """Clear stuck marks for specific templates (rule-2 retries)."""
        self.stuck -= tids

    def mark_stuck(self, tid: int) -> None:
        self.stuck.add(tid)

    def mark_scheduled(self, tid: int) -> None:
        self.scheduled.add(tid)

    def candidates(self, n: int) -> list[int]:
        """Ranked templates with an instance strictly below ``n``."""
        ranked = self._ranked_below(n)
        if not self.stuck and not self.scheduled:
            return list(ranked)
        return [t for t in ranked
                if t not in self.stuck and t not in self.scheduled]

    def _ranked_below(self, n: int) -> list[int]:
        """All distinct rankable templates strictly below ``n``, sorted.

        The stuck/scheduled filter is deliberately *not* part of this
        list: ``ranked_templates`` sorts stably, so filtering after the
        sort equals sorting the filtered set, and the unfiltered list is
        reusable across every round at one node until the graph mutates.
        """
        key = (self.graph.version, n)
        if self.memoize and self._ranked_key == key:
            return self._ranked
        self.set_builds += 1
        tids: list[int] = []
        seen: set[int] = set()
        for nid in region_below(self.graph, n):
            if nid == n or nid not in self.graph.nodes:
                continue
            for op in self.graph.nodes[nid].all_ops():
                if op.kind is OpKind.NOP:
                    continue
                if not self.include_copies and op.is_copy:
                    continue
                if op.tid in seen:
                    continue
                seen.add(op.tid)
                tids.append(op.tid)
        ranked = _apply_fill_order(ranked_templates(self.ranking, tids),
                                   self.fill_order)
        if self.tracer.enabled:
            self.tracer.emit(CandidateSetBuilt(nid=n, size=len(ranked)))
        if self.memoize:
            self._ranked_key = key
            self._ranked = ranked
        return ranked

    def _region_below_set(self, n: int) -> frozenset[int]:
        key = (self.graph.version, n)
        if self.memoize and self._region_key == key:
            return self._region_set
        region = frozenset(region_below(self.graph, n)) - {n}
        if self.memoize:
            self._region_key = key
            self._region_set = region
        return region

    def instance_in_or_above(self, n: int, tid: int) -> bool:
        """Did some instance of ``tid`` reach node ``n`` or higher?"""
        region = self._region_below_set(n)
        for nid, _ in self.graph.ops_by_template(tid):
            if nid not in region:
                return True
        return False
