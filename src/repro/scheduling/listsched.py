"""Classic list scheduling over a dependence DAG.

A reference baseline and the donor of the section 3.4 heuristic ("a
reasonable heuristic would be based on list scheduling"): operations
are placed cycle by cycle; each cycle takes the highest-priority ready
operations that fit the machine.  Supports the multi-cycle latency
extension of the machine model ([Po91]); Percolation Scheduling itself
stays single-cycle, as in the paper.

This scheduler is *local* (one basic block / straight-line region); the
comparison against GRiP on loop bodies quantifies what global motion
buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.dependence import DepKind, build_dag
from ..ir.operations import Operation
from ..machine.model import MachineConfig
from .priority import Heuristic, PaperHeuristic


@dataclass
class ListSchedule:
    """Rows of operations plus placement metadata."""

    rows: list[list[Operation]]
    slot_of: dict[int, int] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return len(self.rows)


def list_schedule(ops: Sequence[Operation], machine: MachineConfig, *,
                  heuristic: Heuristic | None = None) -> ListSchedule:
    """Schedule a straight-line op sequence under the machine budget.

    True dependences impose ``finish(producer) <= start(consumer)``;
    anti dependences allow same-cycle placement (VLIW operand fetch
    precedes result store); output dependences impose strict order.
    """
    heuristic = heuristic or PaperHeuristic()
    dag = build_dag(ops)
    ranking = heuristic.rank(ops, dag)
    cap = machine.fus if machine.fus is not None else 1 << 30

    remaining = {op.uid: op for op in ops}
    placed_at: dict[int, int] = {}
    rows: list[list[Operation]] = []
    cycle = 0
    guard = 0
    while remaining:
        guard += 1
        if guard > 10 * len(ops) + 100:  # pragma: no cover - defensive
            raise RuntimeError("list scheduler failed to converge")
        row: list[Operation] = []
        # Fixed point within the cycle: placing an op can make its
        # anti-dependents ready for the *same* cycle (VLIW operand
        # fetch precedes result store).
        changed = True
        while changed and len(row) < cap:
            changed = False
            ready: list[Operation] = []
            for op in remaining.values():
                ok = True
                for e in dag.preds[op.uid]:
                    if e.src in remaining:
                        ok = False
                        break
                    src_cycle = placed_at[e.src]
                    src_op = dag.ops[e.src]
                    if e.kind is DepKind.TRUE:
                        need = src_cycle + machine.latency(src_op)
                    elif e.kind is DepKind.OUTPUT:
                        need = src_cycle + 1
                    else:  # ANTI: same cycle legal
                        need = src_cycle
                    if cycle < need:
                        ok = False
                        break
                if ok:
                    ready.append(op)
            ready.sort(key=lambda o: ranking.get(o.tid, (1 << 30,)))
            for op in ready:
                if len(row) >= cap:
                    break
                if not machine.can_accept_ops(row, op):
                    continue
                row.append(op)
                placed_at[op.uid] = cycle
                del remaining[op.uid]
                changed = True
        rows.append(row)
        cycle += 1
    while rows and not rows[-1]:
        rows.pop()
    return ListSchedule(rows=rows, slot_of=placed_at)
