"""The GRiP scheduler (paper section 3, Figures 10 and 12).

GRiP = Global Resource-constrained Percolation scheduling:

1. rank all operations with a global heuristic (section 3.4);
2. keep Moveable-ops sets -- operations on the dominated subgraph that
   have not become unmoveable;
3. walk the program top-down; at each node, migrate the best moveable
   operations into it until resources run out, letting compaction
   happen *everywhere below* along the way (this is the difference from
   Unifiable-ops scheduling, and resource barriers are the price);
4. under Perfect Pipelining, enforce the gap-prevention rules through
   :class:`~repro.scheduling.gaps.GapPreventionPolicy`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.dependence import build_dag
from ..analysis.incremental import rpo_index
from ..ir.graph import ProgramGraph
from ..ir.operations import Operation
from ..ir.registers import Reg, RegisterFile
from ..machine.model import MachineConfig
from ..obs.tracer import NULL_TRACER, NodeBegin, NodeEnd, Tracer
from ..percolation.cleanup import cleanup
from ..percolation.migrate import MigrateContext, migrate
from ..percolation.moveop import PercolationStats
from .gaps import GapPreventionPolicy
from .moveable import MoveableOps
from .policy import DEFAULT_POLICY, SchedulePolicy
from .priority import Heuristic, Ranking, WeightedHeuristic


@dataclass
class ScheduleResult:
    """Outcome of one scheduling run."""

    graph: ProgramGraph
    stats: PercolationStats
    ranking: Ranking
    nodes_processed: int = 0
    seconds: float = 0.0
    gap_policy: GapPreventionPolicy | None = None
    candidate_builds: int = 0
    #: AnalysisManager rebuild/patch counters, as per-run deltas
    analysis_counters: dict[str, int] = field(default_factory=dict)

    @property
    def resource_barrier_events(self) -> int:
        """Resource-blocked hops at intermediate nodes (section 3.2)."""
        return self.stats.resource_blocks

    def summary(self) -> str:
        g = self.graph
        lines = [
            f"nodes: {len(g.nodes)} (processed {self.nodes_processed})",
            f"ops:   {g.op_count()}",
            f"moves: {self.stats.moves} (renames {self.stats.renames}, "
            f"unifications {self.stats.unifications}, "
            f"cj-moves {self.stats.cj_moves}, splits {self.stats.splits})",
            f"blocks: {self.stats.dependence_blocks} dependence, "
            f"{self.stats.resource_blocks} resource",
            self.stats.tally_line(),
        ]
        if self.gap_policy is not None and self.gap_policy.enabled:
            lines.append(
                f"gaps: {self.gap_policy.suspensions} suspensions, "
                f"{self.gap_policy.gapless_checks} gapless checks")
        return "\n".join(lines)


@dataclass
class GRiPScheduler:
    """Configurable GRiP scheduling pass.

    Parameters
    ----------
    machine:
        Resource budget (use :data:`~repro.machine.INFINITE_RESOURCES`
        for unconstrained percolation).
    heuristic:
        Operation-ranking heuristic; ``None`` (the default) derives a
        :class:`~repro.scheduling.priority.WeightedHeuristic` from the
        policy -- which under :data:`DEFAULT_POLICY` ranks identically
        to the paper's heuristic.
    gap_prevention:
        Enforce section 3.3's rules (needed for Perfect Pipelining
        convergence; harmless elsewhere).  ANDed with the policy's
        ``gap_mode`` ("off" disables regardless of this flag).
    allow_speculation:
        Permit hoisting of ops guarded by conditionals ("GRiP always
        allows speculative scheduling"); off for the ablation study.
        ANDed with the policy's ``speculate`` axis.
    cleanup_interval:
        Run the incremental clean-up passes after this many processed
        nodes (0 disables in-pass cleanup).
    memoize:
        Reuse the RPO worklist and the Moveable-ops region/candidate
        sets across the rounds of one node while the graph is unchanged
        (``graph.version``-keyed).  Schedules are bitwise-identical
        either way; ``False`` rebuilds the worklist and candidate sets
        on every request for differential testing.  Note both modes
        share the event-maintained analysis indexes
        (:mod:`repro.analysis.incremental`); to differentially pin
        *those*, attach ``AnalysisManager(graph, verify=True)`` before
        scheduling -- every index query then cross-checks against a
        from-scratch computation.
    """

    machine: MachineConfig
    heuristic: Heuristic | None = None
    gap_prevention: bool = True
    allow_speculation: bool = True
    cleanup_interval: int = 0
    max_rounds_per_node: int = 10_000
    memoize: bool = True
    #: decision tracer threaded through Moveable-ops, gap prevention
    #: and every migrate hop.  Observe-only by contract: schedules are
    #: bit-identical with any tracer attached, and the NULL_TRACER
    #: default costs one attribute read per decision point.
    tracer: Tracer = NULL_TRACER
    #: the policy steering ranking/fill/speculation/gap strictness;
    #: DEFAULT_POLICY is schedule-neutral (the equivalence-suite pin)
    policy: SchedulePolicy = DEFAULT_POLICY

    def schedule(self, graph: ProgramGraph, *,
                 ranking_ops: Sequence[Operation] | None = None,
                 ranking: Ranking | None = None,
                 regfile: RegisterFile | None = None,
                 exit_live: frozenset[Reg] = frozenset()) -> ScheduleResult:
        """Schedule ``graph`` in place and return the result record.

        ``ranking_ops`` (default: all ops in position order) feed the
        heuristic; pass the unwound body operations when pipelining so
        priorities follow iteration tags.  A precomputed ``ranking``
        overrides the heuristic entirely.
        """
        t0 = time.perf_counter()
        counters_before = (dict(graph._analysis.counters)
                           if graph._analysis is not None else {})
        if ranking is None:
            if ranking_ops is None:
                ranking_ops = [op for _, op in sorted(
                    graph.all_operations(),
                    key=lambda pair: (pair[1].iteration, pair[1].pos,
                                      pair[1].uid))]
            dag = build_dag(ranking_ops)
            heuristic = (self.heuristic if self.heuristic is not None
                         else WeightedHeuristic(self.policy))
            ranking = heuristic.rank(ranking_ops, dag)

        regfile = regfile if regfile is not None else RegisterFile()
        policy = GapPreventionPolicy(
            graph, self.machine,
            enabled=self.gap_prevention and self.policy.gap_mode != "off",
            mode=self.policy.gap_mode,
            tracer=self.tracer)
        ctx = MigrateContext(
            graph=graph, machine=self.machine, regfile=regfile,
            policy=policy, exit_live=exit_live,
            allow_speculation=(self.allow_speculation
                               and self.policy.speculate),
            tracer=self.tracer)
        moveable = MoveableOps(graph, ranking, memoize=self.memoize,
                               tracer=self.tracer,
                               fill_order=self.policy.fill_order)

        visited: set[int] = set()
        processed = 0
        while True:
            nxt = self._next_node(graph, visited)
            if nxt is None:
                break
            self._schedule_node(ctx, moveable, policy, nxt)
            visited.add(nxt)
            processed += 1
            if self.cleanup_interval and processed % self.cleanup_interval == 0:
                cleanup(graph, exit_live)

        cleanup(graph, exit_live)
        return ScheduleResult(
            graph=graph, stats=ctx.stats, ranking=ranking,
            nodes_processed=processed,
            seconds=time.perf_counter() - t0,
            gap_policy=policy,
            candidate_builds=moveable.set_builds,
            # Read, don't create: scheduling normally attaches a manager
            # via migrate's first index query, but if this run never did
            # (e.g. an empty graph), {} says so more honestly than a
            # freshly subscribed manager's all-zero counters would.
            # Reported as per-run deltas so a pre-warmed graph (second
            # schedule, earlier percolation passes) doesn't inflate them.
            analysis_counters=(
                {k: v - counters_before.get(k, 0)
                 for k, v in graph._analysis.counters.items()}
                if graph._analysis is not None else {}))

    # ------------------------------------------------------------------
    def _next_node(self, graph: ProgramGraph, visited: set[int]) -> int | None:
        """First unvisited node in RPO.

        The worklist is the event-maintained RPO map shared with the
        migrate sweeps (:mod:`repro.analysis.incremental`), so the
        per-node global walk re-runs a DFS only when control flow
        genuinely changed since the last query.
        """
        order = rpo_index(graph) if self.memoize else graph.rpo()
        for nid in order:
            if nid not in visited:
                return nid
        return None

    def _schedule_node(self, ctx: MigrateContext, moveable: MoveableOps,
                       policy: GapPreventionPolicy, n: int) -> None:
        """Fill node ``n``: Figure 10's schedule(n) with Figure 12's rules."""
        graph = ctx.graph
        moveable.begin_node()
        policy.begin_node()
        if self.tracer.enabled:
            self.tracer.emit(NodeBegin(nid=n))
        rounds = 0
        retried = False
        while n in graph.nodes and ctx.machine.has_headroom(graph.nodes[n]):
            rounds += 1
            if rounds > self.max_rounds_per_node:  # pragma: no cover
                raise RuntimeError(f"schedule({n}) failed to converge")
            progress = False
            for tid in moveable.candidates(n):
                moved = migrate(ctx, n, tid)
                if moved:
                    progress = True
                    if policy.moved_while_suspended or policy.suspended \
                            or policy.vetoed_tids:
                        # Rule 2: unsuspend and resume in ranked order;
                        # ops held back by the suspension regime retry.
                        moveable.unstick(policy.unsuspend_all())
                    if moveable.instance_in_or_above(n, tid):
                        moveable.mark_scheduled(tid)
                    break
                moveable.mark_stuck(tid)
            if progress:
                retried = False
                continue
            # Stuck marks persist across successes as an attempt filter;
            # before giving up on the node, grant one clean retry round
            # in case earlier motion unblocked a stuck op.
            if not retried and moveable.stuck:
                moveable.note_motion()
                retried = True
                continue
            break
        if self.tracer.enabled:
            self.tracer.emit(NodeEnd(nid=n, rounds=rounds))
