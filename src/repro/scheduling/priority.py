"""Operation ranking heuristics (paper section 3.4).

The paper's heuristic gives operation A priority over B when

1. the longest data-dependence chain rooted at A is longer, or
2. chains tie but A has more dependents;

and, when scheduling for Perfect Pipelining, "all operations from
iteration *i* have higher priority than all operations from iteration
*j > i*".  Textual position breaks remaining ties (the paper leans on
"important operations tend to occur textually before less important
ones").

Rankings are dictionaries mapping *template id* to a sort key; lower
keys rank higher.  They are computed once, before scheduling, from a
dependence DAG of the code in sequential order -- which is exactly the
"fixed" ranking footnote 5 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..analysis.chains import chain_lengths, dependent_counts
from ..analysis.dependence import DependenceDAG, build_dag
from ..ir.operations import Operation
from .policy import DEFAULT_POLICY, SchedulePolicy

RankKey = tuple
Ranking = dict[int, RankKey]


class Heuristic(Protocol):
    """Computes a ranking for a sequence of operations."""

    def rank(self, ops: Sequence[Operation],
             dag: DependenceDAG | None = None) -> Ranking:
        ...


@dataclass(frozen=True)
class PaperHeuristic:
    """The section 3.4 heuristic.

    ``iteration_major`` enables the Perfect Pipelining stipulation; it
    should be on whenever the operations carry iteration tags.
    """

    iteration_major: bool = True

    def rank(self, ops: Sequence[Operation],
             dag: DependenceDAG | None = None) -> Ranking:
        if dag is None:
            dag = build_dag(ops)
        chains = chain_lengths(dag)
        deps = dependent_counts(dag)
        ranking: Ranking = {}
        for op in ops:
            it = op.iteration if (self.iteration_major and op.iteration >= 0) else -1
            ranking[op.tid] = (it, -chains[op.uid], -deps[op.uid], op.pos)
        return ranking


@dataclass(frozen=True)
class WeightedHeuristic:
    """The section 3.4 heuristic, generalized over a
    :class:`~repro.scheduling.policy.SchedulePolicy`.

    The policy chooses the ranking term *order* and the weights on the
    chain-length and dependent-count terms.  With
    :data:`~repro.scheduling.policy.DEFAULT_POLICY` the produced rank
    keys are tuple-for-tuple identical to :class:`PaperHeuristic`'s:
    a weight of exactly 1.0 keeps the raw integer term (no float
    multiplication), so default rankings compare as the same exact
    values -- the bit-identity contract the equivalence suite pins.
    """

    policy: SchedulePolicy = DEFAULT_POLICY

    def rank(self, ops: Sequence[Operation],
             dag: DependenceDAG | None = None) -> Ranking:
        if dag is None:
            dag = build_dag(ops)
        chains = chain_lengths(dag)
        deps = dependent_counts(dag)
        p = self.policy
        cw, dw = p.chain_weight, p.dep_weight
        ranking: Ranking = {}
        for op in ops:
            it = op.iteration if (p.iteration_major and op.iteration >= 0) else -1
            terms = {
                "chain": (-chains[op.uid] if cw == 1.0
                          else -(cw * chains[op.uid])),
                "deps": (-deps[op.uid] if dw == 1.0
                         else -(dw * deps[op.uid])),
                "pos": op.pos,
            }
            ranking[op.tid] = (it, *(terms[t] for t in p.rank_terms))
        return ranking


@dataclass(frozen=True)
class AlphabeticalHeuristic:
    """Rank by operation name -- the ordering used in the paper's worked
    examples ("scheduling priority is alphabetical order"), still with
    the iteration-major stipulation."""

    iteration_major: bool = True

    def rank(self, ops: Sequence[Operation],
             dag: DependenceDAG | None = None) -> Ranking:
        ranking: Ranking = {}
        for op in ops:
            it = op.iteration if (self.iteration_major and op.iteration >= 0) else -1
            ranking[op.tid] = (it, op.name or op.label, op.pos)
        return ranking


@dataclass(frozen=True)
class SourceOrderHeuristic:
    """Rank strictly by textual position (a deliberately naive baseline)."""

    iteration_major: bool = True

    def rank(self, ops: Sequence[Operation],
             dag: DependenceDAG | None = None) -> Ranking:
        ranking: Ranking = {}
        for op in ops:
            it = op.iteration if (self.iteration_major and op.iteration >= 0) else -1
            ranking[op.tid] = (it, op.pos)
        return ranking


def ranked_templates(ranking: Ranking, tids: Sequence[int]) -> list[int]:
    """Sort template ids by their rank keys (unknown templates last).

    Unknown templates arise from renaming copies born during
    scheduling; they inherit the lowest priority, matching their role
    as cheap artifacts.
    """
    sentinel = (1 << 30,)
    return sorted(tids, key=lambda t: ranking.get(t, sentinel))
