"""Gap prediction and prevention (paper section 3.3).

When GRiP drives Perfect Pipelining, permanent inter-iteration *gaps*
(instructions that an iteration's operations skip over, growing with
the iteration index) would destroy convergence.  The paper prevents
them with a localized ``Gapless-move`` test plus three scheduling
rules.  Definitions implemented here, verbatim from the paper:

``Gapless-move(From, To, Op)`` holds if one of:

1. Op is the only operation scheduled at From (From dies when Op goes);
2. another operation of Op's iteration is scheduled at From;
3. Op is the last operation of its iteration (nothing from the
   iteration exists below From);
4. some successor S of From contains an operation X of Op's iteration
   that would be moveable from S to From once Op vacated, with
   ``Gapless-move(S, From, X)`` true -- a size-1 temporary gap that is
   certain to be filled (Theorem 1).

Scheduling rules (enforced by :class:`GapPreventionPolicy`):

1. a move is allowed only when Gapless-move holds; otherwise the op is
   *suspended*;
2. after any successful move, all ops are unsuspended and ranked order
   resumes;
3. while suspensions exist, only operations strictly below the lowest
   suspended operation may move (and Figure 12's migrate performs at
   most one step per sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.incremental import iterations_below, rpo_index
from ..ir.graph import ProgramGraph
from ..ir.operations import Operation
from ..machine.model import MachineConfig
from ..obs.tracer import (
    NULL_TRACER,
    MoveRejected,
    Reason,
    Suspended,
    Tracer,
)
from ..percolation.conflicts import analyse_cj_move, analyse_move
from ..percolation.migrate import MoveOutcome


def _iterations_below(graph: ProgramGraph) -> dict[int, set[int]]:
    """For every node: the iterations with an op strictly below it.

    Thin shim over the incremental analysis layer: the per-node sets
    are patched exactly on op motion by the graph's
    :class:`~repro.analysis.incremental.AnalysisManager` (an upward
    membership propagation per hop) and rebuilt bottom-up over forward
    edges only when control flow changes.  Exactness matters: the sets
    feed Gapless-move, whose verdicts decide suspensions, so any
    conservative slack would change schedules between the incremental
    and from-scratch paths.  Stored sets must be treated as immutable.
    The ``_would_be_moveable`` probe lifts an op out without emitting
    events, which leaves the op counted as present -- the careful (and
    restored-before-anyone-queries) direction, exactly as before.
    """
    return iterations_below(graph)


def _iteration_ops_below(graph: ProgramGraph, nid: int, iteration: int) -> bool:
    """Does any op of ``iteration`` live strictly below ``nid``?"""
    sets = _iterations_below(graph)
    its = sets.get(nid)
    return its is not None and iteration in its


def _would_be_moveable(graph: ProgramGraph, s_nid: int, from_nid: int,
                       x_uid: int, vacated_uid: int,
                       machine: MachineConfig) -> bool:
    """Could X hop S -> From if ``vacated_uid`` had already left From?

    Implemented by briefly lifting the vacating op out of From, running
    the ordinary conflict analysis plus resource check, and restoring
    the op.  The graph version is untouched (the probe is state-
    neutral), so analysis caches stay valid.
    """
    from_node = graph.nodes[from_nid]
    s_node = graph.nodes.get(s_nid)
    if s_node is None or not s_node.has_op(x_uid):
        return False

    restore = None
    if vacated_uid in from_node.ops:
        paths = from_node.paths[vacated_uid]
        op = from_node.remove_op(vacated_uid)
        restore = (op, paths)
    try:
        x = s_node.get_op(x_uid)
        if x.is_cjump:
            report = analyse_cj_move(graph, s_nid, from_nid, x_uid)
            ok = report.ok and machine.room(from_node) >= len(
                from_node.leaves_to(s_nid))
        else:
            report = analyse_move(graph, s_nid, from_nid, x_uid)
            ok = report.ok and machine.can_accept(from_node, x)
        return ok
    finally:
        if restore is not None:
            op, paths = restore
            from_node.add_op(op, paths)


def gapless_move(graph: ProgramGraph, from_nid: int, to_nid: int, uid: int,
                 machine: MachineConfig, *, probe: bool = True,
                 _visiting: frozenset[tuple[int, int]] = frozenset()) -> bool:
    """The paper's Gapless-move(From, To, Op) test.

    ``probe=False`` skips condition 4 (the recursive would-be-moveable
    probe into successors): only the purely local conditions 1-3 may
    grant the move.  That verdict is *stricter* than the full test --
    every ``local`` pass is also a ``strict`` pass -- so it stays sound
    (more suspensions, never more gaps); the ``gap_mode="local"``
    policy axis trades schedule quality for cheaper checks.
    """
    node = graph.nodes[from_nid]
    op = node.get_op(uid)
    if op.iteration < 0:
        return True  # untagged code cannot form iteration gaps

    # Condition 1: Op is alone in From.
    if node.op_count() == 1:
        return True

    # Condition 2: a sibling of the same iteration stays behind.
    for other in node.all_ops():
        if other.uid != uid and other.iteration == op.iteration:
            return True

    # Condition 3: nothing of this iteration lives below From.
    if not _iteration_ops_below(graph, from_nid, op.iteration):
        return True

    # Condition 4: some same-iteration X in a successor S could slide
    # into From and itself satisfy Gapless-move(S, From, X).
    if not probe:
        return False
    key = (from_nid, uid)
    if key in _visiting:
        return False
    visiting = _visiting | {key}
    for s_nid in graph.successors(from_nid):
        if s_nid not in graph.nodes:
            continue
        for x in list(graph.nodes[s_nid].all_ops()):
            if x.iteration != op.iteration:
                continue
            if not _would_be_moveable(graph, s_nid, from_nid, x.uid, uid,
                                      machine):
                continue
            if gapless_move(graph, s_nid, from_nid, x.uid, machine,
                            _visiting=visiting):
                return True
    return False


@dataclass
class GapPreventionPolicy:
    """MovePolicy implementing rules 1-3 for the GRiP scheduler."""

    graph: ProgramGraph
    machine: MachineConfig
    enabled: bool = True
    #: "strict" runs the full Gapless-move test; "local" skips the
    #: condition-4 probe (sound: strictly fewer grants).  "off" is
    #: expressed as ``enabled=False`` by the scheduler.
    mode: str = "strict"
    #: decision tracer (observe-only; NULL_TRACER costs nothing)
    tracer: Tracer = NULL_TRACER
    #: suspended template -> depth (RPO position) at suspension time
    suspended: dict[int, int] = field(default_factory=dict)
    moved_while_suspended: bool = False
    #: templates whose moves this policy vetoed since the last reset
    #: (suspension itself, or rule 3's below-the-lowest restriction);
    #: these deserve a retry once rule 2 unsuspends everything.
    vetoed_tids: set[int] = field(default_factory=set)
    #: statistics
    suspensions: int = 0
    vetoes: int = 0
    gapless_checks: int = 0

    # -- MovePolicy interface ------------------------------------------
    def allow_move(self, graph: ProgramGraph, from_nid: int, to_nid: int,
                   op: Operation) -> bool:
        if not self.enabled or op.iteration < 0:
            return True
        if op.tid in self.suspended:
            self.vetoes += 1
            self.vetoed_tids.add(op.tid)
            self._trace_veto(op, from_nid, to_nid, "template is suspended")
            return False
        if self.suspended:
            # Rule 3: only ops strictly below the lowest suspended one move.
            index = rpo_index(graph)
            lowest = max(self.suspended.values())
            if index.get(from_nid, -1) <= lowest:
                self.vetoes += 1
                self.vetoed_tids.add(op.tid)
                self._trace_veto(op, from_nid, to_nid,
                                 "rule 3: not below the lowest suspension")
                return False
        self.gapless_checks += 1
        uid = self._uid_of(graph, from_nid, op)
        if uid is None:
            return False
        if gapless_move(graph, from_nid, to_nid, uid, self.machine,
                        probe=self.mode != "local"):
            return True
        # Rule 1: suspend.
        index = rpo_index(graph)
        self.suspended[op.tid] = index.get(from_nid, 0)
        self.suspensions += 1
        self.vetoes += 1
        self.vetoed_tids.add(op.tid)
        if self.tracer.enabled:
            self.tracer.emit(Suspended(tid=op.tid, op=op.label,
                                       nid=from_nid))
        self._trace_veto(op, from_nid, to_nid,
                         "rule 1: Gapless-move failed, suspended")
        return False

    def _trace_veto(self, op: Operation, from_nid: int, to_nid: int,
                    detail: str) -> None:
        if self.tracer.enabled:
            self.tracer.emit(MoveRejected(
                tid=op.tid, op=op.label, from_nid=from_nid,
                to_nid=to_nid, reason=Reason.GAP_VETO, detail=detail))

    def after_move(self, graph: ProgramGraph, outcome: MoveOutcome,
                   op: Operation) -> None:
        if self.suspended:
            self.moved_while_suspended = True

    def stop_sweep(self) -> bool:
        # Figure 12: while suspensions exist, at most one step per sweep.
        return self.moved_while_suspended

    # -- scheduler hooks ------------------------------------------------
    def begin_node(self) -> None:
        self.suspended.clear()
        self.vetoed_tids.clear()
        self.moved_while_suspended = False

    def unsuspend_all(self) -> set[int]:
        """Rule 2: after a successful move, suspended ops retry.

        Returns the templates that were held back by the suspension
        regime (so the scheduler can clear their stuck marks without
        resetting dependence-blocked ops).
        """
        retry = set(self.suspended) | self.vetoed_tids
        self.suspended.clear()
        self.vetoed_tids.clear()
        self.moved_while_suspended = False
        return retry

    @staticmethod
    def _uid_of(graph: ProgramGraph, nid: int, op: Operation) -> int | None:
        node = graph.nodes.get(nid)
        if node is None:
            return None
        if node.has_op(op.uid):
            return op.uid
        for cand in node.all_ops():  # instance may have been re-created
            if cand.tid == op.tid:
                return cand.uid
        return None
