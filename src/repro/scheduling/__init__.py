"""Schedulers: GRiP and the baselines it is evaluated against."""

from .gaps import GapPreventionPolicy, gapless_move
from .grip import GRiPScheduler, ScheduleResult
from .listsched import ListSchedule, list_schedule
from .moveable import MoveableOps
from .policy import DEFAULT_POLICY, POLICY_SCHEMA, SchedulePolicy
from .post import POSTScheduler, PostResult, RepackedSchedule, asap_pipeline_rows, repack
from .priority import (
    AlphabeticalHeuristic,
    Heuristic,
    PaperHeuristic,
    Ranking,
    SourceOrderHeuristic,
    WeightedHeuristic,
    ranked_templates,
)
from .unifiable import UnifiableOpsScheduler, UnifiableStats

__all__ = [
    "AlphabeticalHeuristic", "DEFAULT_POLICY", "GRiPScheduler",
    "GapPreventionPolicy", "Heuristic", "ListSchedule", "MoveableOps",
    "POLICY_SCHEMA", "POSTScheduler", "PaperHeuristic", "PostResult",
    "Ranking", "RepackedSchedule", "SchedulePolicy", "ScheduleResult",
    "SourceOrderHeuristic", "UnifiableOpsScheduler", "UnifiableStats",
    "WeightedHeuristic", "asap_pipeline_rows", "gapless_move",
    "list_schedule", "ranked_templates", "repack",
]
