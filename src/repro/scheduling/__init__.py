"""Schedulers: GRiP and the baselines it is evaluated against."""

from .gaps import GapPreventionPolicy, gapless_move
from .grip import GRiPScheduler, ScheduleResult
from .listsched import ListSchedule, list_schedule
from .moveable import MoveableOps
from .post import POSTScheduler, PostResult, RepackedSchedule, asap_pipeline_rows, repack
from .priority import (
    AlphabeticalHeuristic,
    Heuristic,
    PaperHeuristic,
    Ranking,
    SourceOrderHeuristic,
    ranked_templates,
)
from .unifiable import UnifiableOpsScheduler, UnifiableStats

__all__ = [
    "AlphabeticalHeuristic", "GRiPScheduler", "GapPreventionPolicy",
    "Heuristic", "ListSchedule", "MoveableOps", "POSTScheduler",
    "PaperHeuristic", "PostResult", "Ranking", "RepackedSchedule",
    "ScheduleResult", "SourceOrderHeuristic", "UnifiableOpsScheduler",
    "UnifiableStats", "asap_pipeline_rows", "gapless_move",
    "list_schedule", "ranked_templates", "repack",
]
