"""The Unifiable-ops scheduler (paper section 3.1, Figures 7-8).

The predecessor technique GRiP approximates [EbNi89]: at each node
``n``, only operations *guaranteed* to reach ``n`` may move -- "the set
of all operations on the subgraph dominated by n that are not on the
same data dependency chain as any operation currently in n".  This
guarantees maximal travel and prevents resource barriers, at the price
the paper's section 3.1 itemizes:

1. computing and maintaining the Unifiable-ops sets is expensive
   (transitive dependence closures against the current op placement);
2. no compaction happens below the node being scheduled, so travel
   distances are maximal;
3. with Perfect Pipelining it moves operations "too far", creating the
   growing gaps of Figure 9.

The implementation deliberately preserves these costs (they are the
point of the comparison) while instrumenting them: ``set_builds``,
``closure_ops`` and travel distances feed the cost-ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.dependence import DependenceDAG, build_dag
from ..analysis.incremental import region_below, rpo_index
from ..ir.graph import ProgramGraph
from ..ir.operations import Operation
from ..ir.registers import Reg, RegisterFile
from ..machine.model import MachineConfig
from ..percolation.cleanup import cleanup
from ..percolation.migrate import MigrateContext, migrate
from .grip import ScheduleResult
from .priority import Heuristic, PaperHeuristic, Ranking, ranked_templates


@dataclass
class UnifiableStats:
    """Cost counters particular to the Unifiable-ops technique."""

    set_builds: int = 0
    closure_ops: int = 0        # ancestor-set element touches
    travel_rows: int = 0        # rows traversed by migrated operations
    scheduled_ops: int = 0


@dataclass
class UnifiableOpsScheduler:
    """Top-down Unifiable-ops scheduling (Figure 7)."""

    machine: MachineConfig
    heuristic: Heuristic = field(default_factory=PaperHeuristic)
    allow_speculation: bool = True

    def schedule(self, graph: ProgramGraph, *,
                 ranking_ops: Sequence[Operation] | None = None,
                 regfile: RegisterFile | None = None,
                 exit_live: frozenset[Reg] = frozenset()) -> ScheduleResult:
        t0 = time.perf_counter()
        if ranking_ops is None:
            ranking_ops = [op for _, op in sorted(
                graph.all_operations(),
                key=lambda pair: (pair[1].iteration, pair[1].pos,
                                  pair[1].uid))]
        dag = build_dag(ranking_ops)
        ranking = self.heuristic.rank(ranking_ops, dag)
        ancestors = _true_ancestors(dag)
        # Map template -> DAG uid (ranking ops are the original instances).
        tid_to_uid = {op.tid: op.uid for op in ranking_ops}

        regfile = regfile if regfile is not None else RegisterFile()
        ctx = MigrateContext(graph=graph, machine=self.machine,
                             regfile=regfile, exit_live=exit_live,
                             allow_speculation=self.allow_speculation)
        ustats = UnifiableStats()

        visited: set[int] = set()
        processed = 0
        while True:
            nxt = self._next_node(graph, visited)
            if nxt is None:
                break
            self._schedule_node(ctx, nxt, ranking, ancestors, tid_to_uid,
                                ustats)
            visited.add(nxt)
            processed += 1

        cleanup(graph, exit_live)
        result = ScheduleResult(
            graph=graph, stats=ctx.stats, ranking=ranking,
            nodes_processed=processed,
            seconds=time.perf_counter() - t0)
        result.unifiable_stats = ustats  # type: ignore[attr-defined]
        return result

    @staticmethod
    def _next_node(graph: ProgramGraph, visited: set[int]) -> int | None:
        # rpo_index iterates in RPO order and is version-memoized.
        for nid in rpo_index(graph):
            if nid not in visited:
                return nid
        return None

    def _schedule_node(self, ctx: MigrateContext, n: int, ranking: Ranking,
                       ancestors: dict[int, frozenset[int]],
                       tid_to_uid: dict[int, int],
                       ustats: UnifiableStats) -> None:
        graph = ctx.graph
        tried: set[int] = set()
        while n in graph.nodes and ctx.machine.has_headroom(graph.nodes[n]):
            cands = self._unifiable(graph, n, ancestors, tid_to_uid, ustats)
            cands = [t for t in ranked_templates(ranking, cands)
                     if t not in tried]
            if not cands:
                break
            tid = cands[0]
            start_depth = _template_depth(graph, tid)
            moved = migrate(ctx, n, tid)
            if moved:
                end_depth = _template_depth(graph, tid)
                if start_depth is not None and end_depth is not None:
                    ustats.travel_rows += max(0, start_depth - end_depth)
                ustats.scheduled_ops += 1
                tried.discard(tid)
            else:
                tried.add(tid)

    def _unifiable(self, graph: ProgramGraph, n: int,
                   ancestors: dict[int, frozenset[int]],
                   tid_to_uid: dict[int, int],
                   ustats: UnifiableStats) -> list[int]:
        """Templates below ``n`` with no true-dep ancestor at/below ``n``.

        Recomputed from scratch at every request: the paper's point is
        that keeping these sets consistent is the dominant cost of the
        technique.  (The original maintains them incrementally, which
        is cheaper per query but forces the rigid top-down fill order;
        our from-scratch variant has the same asymptotics per node.)
        """
        ustats.set_builds += 1
        region = region_below(graph, n)
        below = set(region) - {n}
        # Location of every template at/below n.
        here_or_below: set[int] = set()
        candidates: dict[int, Operation] = {}
        for nid in region:
            node = graph.nodes.get(nid)
            if node is None:
                continue
            for op in node.all_ops():
                here_or_below.add(op.tid)
                if nid in below and op.tid not in candidates:
                    candidates[op.tid] = op
        out: list[int] = []
        for tid, op in candidates.items():
            uid = tid_to_uid.get(tid)
            if uid is None:
                continue  # renaming artifacts are not ranked; skip
            anc = ancestors.get(uid, frozenset())
            ustats.closure_ops += len(anc)
            blocked = any(ancestor_tid in here_or_below for ancestor_tid in anc)
            if not blocked:
                out.append(tid)
        return out


def _true_ancestors(dag: DependenceDAG) -> dict[int, frozenset[int]]:
    """Transitive true-dependence ancestors (as template ids)."""
    memo: dict[int, frozenset[int]] = {}

    def closure(uid: int) -> frozenset[int]:
        if uid in memo:
            return memo[uid]
        memo[uid] = frozenset()  # cycle guard
        out: set[int] = set()
        for p in dag.true_preds(uid, carried=False):
            out.add(dag.ops[p].tid)
            out |= closure(p)
        memo[uid] = frozenset(out)
        return memo[uid]

    return {uid: closure(uid) for uid in dag.order}


def _template_depth(graph: ProgramGraph, tid: int) -> int | None:
    index = rpo_index(graph)
    depths = [index[nid] for nid, _ in graph.ops_by_template(tid)
              if nid in index]
    return min(depths) if depths else None
