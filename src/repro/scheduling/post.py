"""The POST baseline: resource constraints as a post-processing phase.

Section 4 of the paper describes the comparison system:

    "POST works in two phases.  First, GRiP scheduling is applied with
    infinite resources to obtain a pipelined loop.  Second, POST
    applies resource constraints by breaking apart nodes that contain
    too many operations and allowing further percolation to fill any
    nodes that have become underutilized as a result of the breaking."

Reconstruction notes ([Po91] is not reproduced in the paper; we model
its two phases explicitly):

* **Phase 1 -- unconstrained pipelined loop.**  Section 1 explains the
  behaviour of resource-unconstrained pipelining: "unconstrained
  pipelining techniques typically limit the parallelism at the
  throughput level to the equivalent of one sequential iteration per
  pipelined iteration (i.e. one iteration per cycle)".  We model that
  steady state directly: operation *op* of iteration *i* is placed at
  row ``max(i, earliest dependence slot)`` -- an ASAP schedule with an
  iteration-entry ramp of one iteration per cycle.  The steady-state
  kernel row then carries one operation per pipeline stage (the classic
  Perfect Pipelining pattern of the paper's Figure 5).
* **Phase 2 -- break + refill.**  The phase-1 rows are repacked under
  the real budget: rows are processed top-down, each operation landing
  in the earliest row compatible with its dependences on already-placed
  ops and with a free slot.  Oversized rows spill into successor rows
  (node breaking); holes are filled by later operations whose
  dependences allow (the refill percolation).

The decisive property of the paper's comparison is preserved: POST's
kernel admits iterations in the *unconstrained* pattern -- one per
kernel row -- so under a finite budget the broken kernel retires one
iteration per ``~ceil(W/k)`` cycles (W = ops/iteration), while GRiP
packs the kernel optimally during scheduling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.dependence import DepKind, anti_dep, build_dag, output_dep, true_dep
from ..ir.operations import Operation
from ..machine.model import MachineConfig
from .priority import Heuristic, PaperHeuristic


@dataclass
class RepackedSchedule:
    """Phase-2 output: rows of operations under the real budget."""

    rows: list[list[Operation]]
    spilled_ops: int = 0        # ops displaced past their earliest row
    refilled_ops: int = 0       # ops that landed beside earlier-row ops

    @property
    def cycles(self) -> int:
        return len(self.rows)


@dataclass
class PostResult:
    """Outcome of the two POST phases."""

    phase1_rows: list[list[Operation]]
    repacked: RepackedSchedule
    machine: MachineConfig
    seconds: float = 0.0


def asap_pipeline_rows(ops: Sequence[Operation],
                       iterations_of: dict[int, int] | None = None
                       ) -> list[list[Operation]]:
    """Phase 1: unconstrained pipelined schedule, one iteration/cycle.

    ``row(op) = max(iteration(op), max over true preds(row(pred) + 1))``.

    The iteration ramp models the natural convergence throttle of
    unconstrained software pipelining; dependence edges come from the
    unwound operation list (intra-iteration and carried alike, since
    the unwound chain materializes both).
    """
    dag = build_dag(ops)
    slot: dict[int, int] = {}
    by_uid = {op.uid: op for op in ops}
    for op in ops:  # ops arrive in program order: preds precede uses
        it = op.iteration if op.iteration >= 0 else 0
        if iterations_of is not None:
            it = iterations_of.get(op.uid, it)
        earliest = it
        for e in dag.preds[op.uid]:
            if e.kind is not DepKind.TRUE:
                continue
            p = slot.get(e.src)
            if p is not None:
                earliest = max(earliest, p + 1)
        slot[op.uid] = earliest
    height = max(slot.values(), default=-1) + 1
    rows: list[list[Operation]] = [[] for _ in range(height)]
    for op in ops:
        rows[slot[op.uid]].append(op)
    return [row for row in rows if row]


def repack(rows: Sequence[Sequence[Operation]],
           machine: MachineConfig) -> RepackedSchedule:
    """Break oversized rows and refill holes (POST phase 2).

    The phase-1 kernel admits **one iteration per row**; breaking it
    under a finite budget stretches each round over several rows, and
    the refill percolation can pull a following round's operations into
    the *boundary* row's holes ("fill nodes that have become
    underutilized") -- but it cannot re-pipeline: re-admitting several
    iterations into one kernel row would be a new global schedule, which
    is exactly what a post-pass does not do.  Constraints per round
    (= unwound iteration) ``r``:

    * ``start(r) >= start(r-1) + max(1, ceil(W(r-1)/k))`` -- the broken
      kernel needs that many instructions per admitted iteration, and
      at most one iteration enters per instruction.  This is the
      paper's own section 1 arithmetic: a 5-op loop on 4 units becomes
      "5 operations every 2 instructions" after post-hoc constraints.
    * within the window: earliest row respecting true/anti/output
      dependences against already-placed ops, with a free slot
      (refill percolation for underutilized rows).
    """
    placed_ops: list[tuple[Operation, int]] = []
    out_rows: list[list[Operation]] = []
    spilled = 0
    refilled = 0
    cap = machine.fus if machine.fus is not None else 1 << 30

    def row_has_space(r: int) -> bool:
        while r >= len(out_rows):
            out_rows.append([])
        return len(out_rows[r]) < cap

    # Rounds = iterations, in phase-1 (ASAP row-major) encounter order.
    round_of: dict[int, int] = {}
    order: list[Operation] = []
    per_round: dict[int, int] = {}
    for src_row in rows:
        for op in src_row:
            order.append(op)
            rnd = op.iteration if op.iteration >= 0 else 0
            round_of[op.uid] = rnd
            per_round[rnd] = per_round.get(rnd, 0) + 1
    # Kernel advance per round: the broken kernel spends this many
    # instructions per admitted iteration.
    window_start: dict[int, int] = {}
    cursor = 0
    for rnd in sorted(per_round):
        window_start[rnd] = cursor
        cursor += max(1, -(-per_round[rnd] // cap))  # ceil division

    for op in sorted(order, key=lambda o: (round_of[o.uid],)):
        rnd = round_of[op.uid]
        earliest = window_start[rnd]
        for prev, prow in placed_ops:
            if true_dep(prev, op) or output_dep(prev, op):
                if prow + 1 > earliest:
                    earliest = prow + 1
            elif anti_dep(prev, op):
                if prow > earliest:
                    earliest = prow
        r = earliest
        while not row_has_space(r):
            r += 1
        if r > earliest:
            spilled += 1
        elif out_rows[r]:
            refilled += 1
        out_rows[r].append(op)
        placed_ops.append((op, r))
    out_rows = [row for row in out_rows if row]
    return RepackedSchedule(rows=out_rows, spilled_ops=spilled,
                            refilled_ops=refilled)


@dataclass
class POSTScheduler:
    """The two-phase POST baseline over an unwound operation list."""

    machine: MachineConfig
    heuristic: Heuristic = field(default_factory=PaperHeuristic)

    def schedule_ops(self, ops: Sequence[Operation]) -> PostResult:
        t0 = time.perf_counter()
        rows = asap_pipeline_rows(ops)
        repacked = repack(rows, self.machine)
        return PostResult(phase1_rows=rows, repacked=repacked,
                          machine=self.machine,
                          seconds=time.perf_counter() - t0)
