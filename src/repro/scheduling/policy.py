"""One frozen, fingerprinted value for every scheduling knob.

Before this module the knobs steering a schedule were scattered: the
section 3.4 ranking lived hard-coded in
:class:`~repro.scheduling.priority.PaperHeuristic`, speculation and
gap prevention were loose booleans on
:class:`~repro.scheduling.grip.GRiPScheduler`, the unroll factor was a
keyword with a per-call default, and the program pass pipeline had no
per-pass switches at all.  :class:`SchedulePolicy` folds them into one
hashable dataclass that travels the whole stack -- heuristic, GRiP,
``schedule_loop`` / ``schedule_program``, ``api.ScheduleOptions``, the
cache key, serve job payloads and bench records -- and that the
``repro tune`` lane can search over.

Contracts:

* **Default neutrality.**  :data:`DEFAULT_POLICY` reproduces today's
  schedules bit-identically (the memoization/tracer-neutrality
  precedent); ``tests/integration/test_schedule_equivalence.py`` pins
  this differentially.
* **Fingerprint stability.**  :meth:`SchedulePolicy.fingerprint` is a
  pure function of the field values plus :data:`POLICY_SCHEMA`; it is
  folded into the schedule-cache key, recorded on bench records (cells
  with differing fingerprints diff as INCOMPARABLE), and used by the
  tuner to deduplicate candidates.  Bump :data:`POLICY_SCHEMA`
  whenever a policy field changes *meaning* for the same rendered
  value -- every cache entry and cross-artifact comparison is then
  invalidated at once.
* **JSON round-trip.**  :meth:`to_dict` / :meth:`from_dict` carry
  policies through serve job payloads, ``TUNED_*.json`` and
  ``FUZZ_*.json`` artifacts losslessly.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, fields

#: bump when a policy field changes meaning for the same rendered value
POLICY_SCHEMA = 1

#: the section 3.4 ranking terms, in the paper's order
RANK_TERMS = ("chain", "deps", "pos")
#: candidate fill orders at each node (see ``moveable.MoveableOps``)
FILL_ORDERS = ("ranked", "reversed", "alternate")
#: gap-prevention strictness (see ``gaps.GapPreventionPolicy``)
GAP_MODES = ("strict", "local", "off")


@dataclass(frozen=True)
class SchedulePolicy:
    """Every schedule-shaping knob, in one frozen value.

    The defaults reproduce the paper's configuration exactly; see the
    module docstring for the neutrality contract.
    """

    #: ranking term order -- a permutation of :data:`RANK_TERMS`
    rank_terms: tuple[str, ...] = RANK_TERMS
    #: weight on the chain-length term (1.0 keeps exact integer keys)
    chain_weight: float = 1.0
    #: weight on the dependent-count term
    dep_weight: float = 1.0
    #: Perfect Pipelining's iteration-major stipulation
    iteration_major: bool = True
    #: candidate fill order at each node (:data:`FILL_ORDERS`)
    fill_order: str = "ranked"
    #: permit speculative hoisting past conditionals
    speculate: bool = True
    #: unroll factor override (None: the caller/machine default)
    unroll: int | None = None
    #: gap-prevention strictness (:data:`GAP_MODES`): ``strict`` runs
    #: the full Gapless-move test (conditions 1-4), ``local`` skips the
    #: recursive condition-4 probe (stricter verdicts, cheaper checks),
    #: ``off`` disables gap prevention entirely
    gap_mode: str = "strict"
    #: per-pass enables for the program pass pipeline
    enable_hoist: bool = True
    enable_fuse: bool = True
    enable_slack: bool = True

    def __post_init__(self) -> None:
        if tuple(sorted(self.rank_terms)) != tuple(sorted(RANK_TERMS)):
            raise ValueError(
                f"rank_terms must be a permutation of {RANK_TERMS}, "
                f"got {self.rank_terms!r}")
        for name in ("chain_weight", "dep_weight"):
            w = getattr(self, name)
            if not (isinstance(w, (int, float)) and math.isfinite(w)
                    and w > 0):
                raise ValueError(f"{name} must be a positive finite "
                                 f"number, got {w!r}")
        if self.fill_order not in FILL_ORDERS:
            raise ValueError(f"fill_order must be one of {FILL_ORDERS}, "
                             f"got {self.fill_order!r}")
        if self.gap_mode not in GAP_MODES:
            raise ValueError(f"gap_mode must be one of {GAP_MODES}, "
                             f"got {self.gap_mode!r}")
        if self.unroll is not None and (not isinstance(self.unroll, int)
                                        or self.unroll < 2):
            raise ValueError(f"unroll must be None or an int >= 2, "
                             f"got {self.unroll!r}")
        # tuples may arrive as lists through from_dict callers
        if not isinstance(self.rank_terms, tuple):
            object.__setattr__(self, "rank_terms", tuple(self.rank_terms))

    # ------------------------------------------------------------------
    @property
    def is_default(self) -> bool:
        return self == DEFAULT_POLICY

    def render(self) -> str:
        """Canonical one-line rendering (the fingerprint preimage)."""
        return (f"schema={POLICY_SCHEMA} "
                f"terms={','.join(self.rank_terms)} "
                f"cw={self.chain_weight!r} dw={self.dep_weight!r} "
                f"itmaj={self.iteration_major} fill={self.fill_order} "
                f"spec={self.speculate} unroll={self.unroll} "
                f"gap={self.gap_mode} hoist={self.enable_hoist} "
                f"fuse={self.enable_fuse} slack={self.enable_slack}")

    def fingerprint(self) -> str:
        """Short stable digest of the policy (cache keys, artifacts)."""
        h = hashlib.blake2b(self.render().encode(), digest_size=8)
        return h.hexdigest()

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> dict:
        return {
            "rank_terms": list(self.rank_terms),
            "chain_weight": self.chain_weight,
            "dep_weight": self.dep_weight,
            "iteration_major": self.iteration_major,
            "fill_order": self.fill_order,
            "speculate": self.speculate,
            "unroll": self.unroll,
            "gap_mode": self.gap_mode,
            "enable_hoist": self.enable_hoist,
            "enable_fuse": self.enable_fuse,
            "enable_slack": self.enable_slack,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SchedulePolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown policy fields {sorted(unknown)}; "
                             f"accepted: {sorted(known)}")
        kwargs = dict(data)
        if "rank_terms" in kwargs:
            kwargs["rank_terms"] = tuple(kwargs["rank_terms"])
        return cls(**kwargs)


#: the neutral policy: reproduces pre-policy schedules bit-identically
DEFAULT_POLICY = SchedulePolicy()
