"""Cycle-level VLIW simulator and semantic-equivalence checking."""

from .check import EquivalenceError, EquivalenceReport, check_equivalent, initial_state
from .interp import RunResult, SimulationError, StepResult, run, run_iterations, step
from .state import MachineState, seeded_cell_default

__all__ = [
    "EquivalenceError", "EquivalenceReport", "MachineState", "RunResult",
    "SimulationError", "StepResult", "check_equivalent", "initial_state",
    "run", "run_iterations", "seeded_cell_default", "step",
]
