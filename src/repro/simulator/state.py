"""Architectural state for the VLIW interpreter.

Registers hold Python numbers; memory is a sparse map from
``(array, index)`` cells to numbers.  Uninitialized cells read a
deterministic pseudo-random value derived from a seed and the cell
coordinates, so two runs with the same seed observe identical initial
memory without materializing arrays.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterable

from ..ir.registers import Imm, Operand, Reg

Number = float | int


@lru_cache(maxsize=1 << 18)
def _cell_value(seed: int, array: str, index: int) -> float:
    h = hashlib.blake2b(f"{seed}:{array}:{index}".encode(),
                        digest_size=8).digest()
    (raw,) = struct.unpack("<Q", h)
    # Map to a friendly range avoiding huge magnitudes and zeros.
    return 0.125 + (raw % 10_000) / 1_000.0


def seeded_cell_default(seed: int) -> Callable[[str, int], float]:
    """A deterministic initial-memory function for ``seed``.

    The hash is memoized process-wide: a differential check reads the
    same ``(seed, array, index)`` cell from the walker, the sequential
    VM and the scheduled VM, and a batched run reads it once per lane
    -- all of which resolve to one blake2b evaluation.
    """

    def default(array: str, index: int) -> float:
        return _cell_value(seed, array, index)

    return default


@dataclass
class MachineState:
    """Registers + memory + commit log."""

    regs: dict[str, Number] = field(default_factory=dict)
    mem: dict[tuple[str, int], Number] = field(default_factory=dict)
    mem_default: Callable[[str, int], Number] = field(
        default_factory=lambda: seeded_cell_default(0))
    reg_default: Number = 0.0
    #: chronological (array, index, value) log of committed stores
    store_log: list[tuple[str, int, Number]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def read_reg(self, reg: Reg) -> Number:
        return self.regs.get(reg.name, self.reg_default)

    def write_reg(self, reg: Reg, value: Number) -> None:
        self.regs[reg.name] = value

    def read_operand(self, operand: Operand) -> Number:
        if isinstance(operand, Imm):
            return operand.value
        return self.read_reg(operand)

    def read_mem(self, array: str, index: int) -> Number:
        key = (array, int(index))
        if key not in self.mem:
            self.mem[key] = self.mem_default(array, int(index))
        return self.mem[key]

    def write_mem(self, array: str, index: int, value: Number) -> None:
        self.mem[(array, int(index))] = value
        self.store_log.append((array, int(index), value))

    # ------------------------------------------------------------------
    def snapshot_mem(self) -> dict[tuple[str, int], Number]:
        return dict(self.mem)

    def snapshot_regs(self, names: Iterable[str] | None = None) -> dict[str, Number]:
        if names is None:
            return dict(self.regs)
        return {n: self.regs.get(n, self.reg_default) for n in names}

    def clone(self) -> "MachineState":
        s = MachineState(regs=dict(self.regs), mem=dict(self.mem),
                         mem_default=self.mem_default,
                         reg_default=self.reg_default)
        return s
