"""Cycle-level interpreter for VLIW program graphs.

Implements the execution semantics of the paper's section 2:

1. operands of *all* operations are fetched from the instruction-entry
   state;
2. all results are computed; the "result" of a conditional is to select
   a branch in the CJ tree;
3. results are stored -- IBM VLIW variant: only operations on the path
   selected by the conditionals commit;
4. the next instruction is the target of the selected tree leaf.

The interpreter also keeps per-template commit counts and an execution
trace, which the pipelining speedup measurements and the equivalence
checker consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir.cjtree import Branch, CJTree, EXIT, Leaf
from ..ir.graph import ProgramGraph
from ..ir.instruction import Instruction
from ..ir.operations import Operation, OpKind
from .state import MachineState, Number


class SimulationError(RuntimeError):
    """Raised on malformed programs or exhausted cycle budgets."""


def _to_int(x: Number) -> int:
    return int(x)


def compute(op: Operation, state: MachineState) -> Number | None:
    """Phase-2 result of an operation read against ``state``.

    Returns ``None`` for operations without a register result.
    Division by zero yields 0.0 (a deterministic total semantics keeps
    randomized equivalence testing meaningful).
    """
    k = op.kind
    rd = state.read_operand
    if k is OpKind.CONST or k is OpKind.COPY:
        return rd(op.srcs[0])
    if k is OpKind.ADD:
        return rd(op.srcs[0]) + rd(op.srcs[1])
    if k is OpKind.SUB:
        return rd(op.srcs[0]) - rd(op.srcs[1])
    if k is OpKind.MUL:
        return rd(op.srcs[0]) * rd(op.srcs[1])
    if k is OpKind.DIV:
        d = rd(op.srcs[1])
        return rd(op.srcs[0]) / d if d != 0 else 0.0
    if k is OpKind.NEG:
        return -rd(op.srcs[0])
    if k is OpKind.MIN:
        return min(rd(op.srcs[0]), rd(op.srcs[1]))
    if k is OpKind.MAX:
        return max(rd(op.srcs[0]), rd(op.srcs[1]))
    if k is OpKind.ABS:
        return abs(rd(op.srcs[0]))
    if k is OpKind.AND:
        return _to_int(rd(op.srcs[0])) & _to_int(rd(op.srcs[1]))
    if k is OpKind.OR:
        return _to_int(rd(op.srcs[0])) | _to_int(rd(op.srcs[1]))
    if k is OpKind.XOR:
        return _to_int(rd(op.srcs[0])) ^ _to_int(rd(op.srcs[1]))
    if k is OpKind.NOT:
        return ~_to_int(rd(op.srcs[0]))
    if k is OpKind.SHL:
        return _to_int(rd(op.srcs[0])) << (_to_int(rd(op.srcs[1])) & 63)
    if k is OpKind.SHR:
        return _to_int(rd(op.srcs[0])) >> (_to_int(rd(op.srcs[1])) & 63)
    if k is OpKind.CMP_EQ:
        return 1 if rd(op.srcs[0]) == rd(op.srcs[1]) else 0
    if k is OpKind.CMP_NE:
        return 1 if rd(op.srcs[0]) != rd(op.srcs[1]) else 0
    if k is OpKind.CMP_LT:
        return 1 if rd(op.srcs[0]) < rd(op.srcs[1]) else 0
    if k is OpKind.CMP_LE:
        return 1 if rd(op.srcs[0]) <= rd(op.srcs[1]) else 0
    if k is OpKind.CMP_GT:
        return 1 if rd(op.srcs[0]) > rd(op.srcs[1]) else 0
    if k is OpKind.CMP_GE:
        return 1 if rd(op.srcs[0]) >= rd(op.srcs[1]) else 0
    if k is OpKind.LOAD:
        idx = op.mem.offset
        if op.mem.index is not None:
            idx += _to_int(rd(op.mem.index))
        return state.read_mem(op.mem.array, idx)
    if k in (OpKind.STORE, OpKind.CJUMP, OpKind.NOP):
        return None
    raise SimulationError(f"unknown op kind {k}")


@dataclass
class StepResult:
    """Outcome of executing one instruction."""

    nid: int
    leaf_id: int
    next_nid: int
    committed: list[Operation]


@dataclass
class RunResult:
    """Outcome of a program run."""

    cycles: int
    exited: bool
    trace: list[StepResult] = field(default_factory=list)
    template_commits: dict[int, int] = field(default_factory=dict)
    ops_committed: int = 0

    def commits_of(self, tid: int) -> int:
        return self.template_commits.get(tid, 0)


def select_leaf(node: Instruction, state: MachineState) -> Leaf:
    """Walk the CJ tree using phase-1 operand values."""
    t: CJTree = node.tree
    while isinstance(t, Branch):
        cj = node.cjs[t.cj_uid]
        cond = state.read_operand(cj.srcs[0])
        t = t.on_true if cond != 0 else t.on_false
    return t


def step(graph: ProgramGraph, nid: int, state: MachineState) -> StepResult:
    """Execute one VLIW instruction; returns commit info and successor."""
    node = graph.nodes[nid]
    # Phase 1+2: compute every operation's result against entry state.
    results: dict[int, Number | None] = {}
    store_cells: dict[int, tuple[str, int, Number]] = {}
    for op in node.ops.values():
        if op.kind is OpKind.STORE:
            idx = op.mem.offset
            if op.mem.index is not None:
                idx += _to_int(state.read_operand(op.mem.index))
            store_cells[op.uid] = (op.mem.array, idx,
                                   state.read_operand(op.srcs[0]))
        else:
            results[op.uid] = compute(op, state)
    # Phase 2 for conditionals: select the branch/leaf.
    leaf = select_leaf(node, state)
    # Phase 3: commit results on the selected path (IBM VLIW).
    committed: list[Operation] = []
    for op in node.ops.values():
        if leaf.leaf_id not in node.paths[op.uid]:
            continue
        committed.append(op)
        if op.kind is OpKind.STORE:
            arr, idx, val = store_cells[op.uid]
            state.write_mem(arr, idx, val)
        elif op.dest is not None:
            state.write_reg(op.dest, results[op.uid])
    # Conditionals on the selected path also count as executed work.
    committed.extend(node.cjs_on(leaf.leaf_id))
    return StepResult(nid, leaf.leaf_id, leaf.target, committed)


def run(graph: ProgramGraph, state: MachineState | None = None, *,
        max_cycles: int = 1_000_000, start: int | None = None,
        keep_trace: bool = False,
        until: Callable[[RunResult], bool] | None = None) -> RunResult:
    """Run from the entry until EXIT, ``until`` fires, or the budget ends.

    ``until`` is consulted after every instruction with the running
    :class:`RunResult`; returning True stops execution (used to stop an
    implicit loop after N committed iterations).
    """
    if state is None:
        state = MachineState()
    nid = graph.entry if start is None else start
    if nid is None:
        return RunResult(cycles=0, exited=True)
    result = RunResult(cycles=0, exited=False)
    while nid != EXIT:
        if result.cycles >= max_cycles:
            if until is None:
                raise SimulationError(
                    f"cycle budget {max_cycles} exhausted at node {nid}")
            break
        sr = step(graph, nid, state)
        result.cycles += 1
        result.ops_committed += len(sr.committed)
        for op in sr.committed:
            result.template_commits[op.tid] = \
                result.template_commits.get(op.tid, 0) + 1
        if keep_trace:
            result.trace.append(sr)
        nid = sr.next_nid
        if until is not None and until(result):
            break
    result.exited = nid == EXIT
    return result


def run_iterations(graph: ProgramGraph, templates: list[int], n: int,
                   state: MachineState | None = None, *,
                   max_cycles: int = 2_000_000) -> RunResult:
    """Run an implicit (non-exiting) loop until every template in
    ``templates`` has committed at least ``n`` times."""
    want = set(templates)

    def done(r: RunResult) -> bool:
        return all(r.template_commits.get(t, 0) >= n for t in want)

    return run(graph, state, max_cycles=max_cycles, until=done)
