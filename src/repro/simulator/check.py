"""Semantic-equivalence checking between program graphs.

The reproduction's correctness ground truth: a transformed graph must
be observationally equivalent to the original.  We compare

* final memory contents (every cell either graph touched), and
* final values of a chosen set of registers (defaults to the
  registers live at exit of the *original* graph),

after running both graphs to EXIT from identical randomized initial
states.  Several seeds are tried; any divergence raises
:class:`EquivalenceError` with a diff.

This applies to terminating graphs (straight-line code and loops with
explicit control); the paper's implicit-loop illustrations are checked
with structural invariants instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ir.graph import ProgramGraph
from .interp import run
from .state import MachineState, Number, seeded_cell_default


class EquivalenceError(AssertionError):
    """Two graphs diverged on some input."""


@dataclass
class EquivalenceReport:
    """Summary of a successful equivalence check."""

    seeds: list[int]
    cycles_a: list[int]
    cycles_b: list[int]

    @property
    def mean_speedup(self) -> float:
        tot_a, tot_b = sum(self.cycles_a), sum(self.cycles_b)
        return tot_a / tot_b if tot_b else math.nan


def _close(a: Number, b: Number, tol: float = 1e-6) -> bool:
    """Tolerant value comparison, total over the float specials.

    ``math.isclose(nan, nan)`` is False, so before this grew NaN
    handling two executors that *agreed* on a NaN result (inf - inf,
    0 * inf, comparisons feeding selects) were reported as divergent --
    the equivalence and differential checkers could not audit any
    kernel whose data hit the specials.  NaN now matches NaN (payloads
    are not distinguished; no operation here produces signalling NaNs)
    and infinities match by sign via ``isclose`` as before.
    """
    if isinstance(a, float) or isinstance(b, float):
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        return math.isclose(fa, fb, rel_tol=tol, abs_tol=tol)
    return a == b


#: public name for the NaN-aware comparison (other checkers reuse it)
values_close = _close


def values_close_rows(a, b, tol: float = 1e-6):
    """Vectorized :func:`values_close` over two equal-length rows.

    The one comparison kernel both checkers share: the scalar
    differential compares single cells through :func:`values_close`,
    the batched differential compares whole lane rows through this --
    and the two must agree per element, which the regression tests in
    ``tests/simulator/test_values_close_rows.py`` pin column by
    column (NaN/inf specials included).

    Accepts any array-likes; returns a boolean numpy array.  Semantics
    per element, mirroring the scalar kernel exactly:

    * both integers (no float involved): exact ``==``;
    * any float: NaN matches NaN only, and otherwise
      ``math.isclose(rel_tol=tol, abs_tol=tol)`` -- i.e.
      ``|a-b| <= max(tol * max(|a|, |b|), tol)`` with the difference
      required to be *finite*.  Same-sign infinities match through the
      ``a == b`` fast path; opposite-sign or inf-vs-finite pairs have
      an infinite difference and never sneak past the threshold test
      (a naive ``diff <= thresh`` would wave ``inf`` vs ``-inf``
      through whenever ``thresh`` is also ``inf``).

    Rows of ``object`` dtype (the batched VM's exact integer mode)
    fall back to the scalar kernel element-wise.
    """
    import numpy as np

    ra = np.asarray(a)
    rb = np.asarray(b)
    if ra.dtype == object or rb.dtype == object:
        return np.array([_close(x, y, tol)
                         for x, y in zip(ra.tolist(), rb.tolist())],
                        dtype=bool)
    if (np.issubdtype(ra.dtype, np.integer)
            and np.issubdtype(rb.dtype, np.integer)):
        return ra == rb
    fa = ra.astype(np.float64)
    fb = rb.astype(np.float64)
    with np.errstate(invalid="ignore", over="ignore"):
        exact = fa == fb  # covers same-sign inf; False for any NaN
        both_nan = np.isnan(fa) & np.isnan(fb)
        diff = np.abs(fa - fb)
        thresh = np.maximum(tol * np.maximum(np.abs(fa), np.abs(fb)), tol)
        near = (diff <= thresh) & np.isfinite(diff)
    return exact | both_nan | near


def initial_state(seed: int, regs: set[str]) -> MachineState:
    """Deterministic random-ish state: registers get small positive values."""
    default = seeded_cell_default(seed)
    st = MachineState(mem_default=default)
    for i, name in enumerate(sorted(regs)):
        st.regs[name] = default("__regs__", i)
    return st


def input_registers(graph: ProgramGraph) -> set[str]:
    """Registers read anywhere in the graph (superset of true live-ins)."""
    used: set[str] = set()
    for _, op in graph.all_operations():
        used |= {r.name for r in op.uses()}
    return used


def check_equivalent(original: ProgramGraph, transformed: ProgramGraph, *,
                     seeds: tuple[int, ...] = (0, 1, 2),
                     out_regs: set[str] | None = None,
                     max_cycles: int = 1_000_000) -> EquivalenceReport:
    """Assert observational equivalence; returns cycle statistics.

    Memory is always compared.  Registers are compared only when
    ``out_regs`` names them explicitly: speculative scheduling is
    allowed to clobber registers that are dead in the original program
    (their protection is exactly what the write-live check plus
    renaming provide for *live* ones), so "all registers" is not an
    observable set.  Kernels with scalar results store them to memory,
    which the front end arranges.
    """
    inputs = input_registers(original) | input_registers(transformed)
    cycles_a: list[int] = []
    cycles_b: list[int] = []
    for seed in seeds:
        sa = initial_state(seed, inputs)
        sb = initial_state(seed, inputs)
        ra = run(original, sa, max_cycles=max_cycles)
        rb = run(transformed, sb, max_cycles=max_cycles)
        if not ra.exited or not rb.exited:
            raise EquivalenceError(
                f"seed {seed}: run did not terminate "
                f"(orig exited={ra.exited}, transformed={rb.exited})")
        _compare_memory(sa, sb, seed)
        if out_regs:
            _compare_registers(sa, sb, out_regs, seed)
        cycles_a.append(ra.cycles)
        cycles_b.append(rb.cycles)
    return EquivalenceReport(list(seeds), cycles_a, cycles_b)


def _compare_memory(sa: MachineState, sb: MachineState, seed: int) -> None:
    cells = set(sa.mem) | set(sb.mem)
    diffs = []
    for cell in sorted(cells):
        va = sa.mem.get(cell, sa.mem_default(*cell))
        vb = sb.mem.get(cell, sb.mem_default(*cell))
        if not _close(va, vb):
            diffs.append(f"  {cell}: original={va!r} transformed={vb!r}")
    if diffs:
        raise EquivalenceError(
            f"seed {seed}: memory diverged on {len(diffs)} cell(s):\n"
            + "\n".join(diffs[:20]))


def _compare_registers(sa: MachineState, sb: MachineState,
                       out_regs: set[str], seed: int) -> None:
    diffs = []
    for name in sorted(out_regs):
        va = sa.regs.get(name, sa.reg_default)
        vb = sb.regs.get(name, sb.reg_default)
        if not _close(va, vb):
            diffs.append(f"  {name}: original={va!r} transformed={vb!r}")
    if diffs:
        raise EquivalenceError(
            f"seed {seed}: registers diverged:\n" + "\n".join(diffs[:20]))
