"""Content-addressed schedule cache.

Scheduling is deterministic, so a schedule computed once for a given
(program, machine, options) triple can be replayed for any later
request with the same content key.  The key is a blake2b digest over:

* the canonical alpha-renamed lowered program (:mod:`.canon`),
* the machine-configuration fingerprint,
* the scheduler / pass-pipeline version constants and the resolved
  scheduling options (:mod:`.keys`).

Entries live in a sharded on-disk store with atomic writes plus an
in-memory LRU front (:mod:`.store`); payloads are pickled snapshots of
the scheduled graphs in canonical register space, renamed back into
the requester's register space on a hit (:mod:`.codec`).
"""

from .canon import CanonicalForm, canonical_form, rename_graph, rename_ops
from .keys import (CACHE_SCHEMA, PASS_PIPELINE_VERSION, SCHEDULER_VERSION,
                   cache_key, machine_fingerprint, options_fingerprint)
from .store import ScheduleCache

__all__ = [
    "CACHE_SCHEMA",
    "PASS_PIPELINE_VERSION",
    "SCHEDULER_VERSION",
    "CanonicalForm",
    "ScheduleCache",
    "cache_key",
    "canonical_form",
    "machine_fingerprint",
    "options_fingerprint",
    "rename_graph",
    "rename_ops",
]
