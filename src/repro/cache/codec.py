"""Cache payloads: canonical-space snapshots of scheduled results.

A payload is *not* a pickled result object.  ``ScheduleResult`` holds
live helpers (ranking closures, the gap policy) that neither pickle
nor belong in a cache; program results hold the requester's descriptor
objects.  Instead the codec stores the minimal replayable snapshot:

* scheduled graphs, cloned (drops analysis observers) and renamed
  into canonical register space;
* the plain-dataclass analysis products (pattern, throughput,
  percolation stats) and the measured cycle counts;
* the maximum op uid / leaf id in the snapshot, so replay can advance
  the process-global counters past them and freshly created ops can
  never collide with replayed ones.

Replay renames everything back into the requester's register space
and rebuilds result objects whose consumers (bench records, summary
lines, realized-cycle backends) see bit-identical data to a cold run.
The stand-in for ``ScheduleResult`` is :class:`CachedScheduleSummary`:
same observable fields, no live helpers.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field

from ..ir import cjtree as _cjtree
from ..ir import operations as _operations
from ..ir.cjtree import iter_leaves
from ..ir.graph import ProgramGraph
from ..ir.loops import CountedLoop, LoopProgram
from ..machine.model import MachineConfig
from ..percolation.moveop import PercolationStats
from ..pipelining.perfect import PipelineResult
from ..pipelining.program import ProgramPipelineResult, SegmentSchedule
from ..pipelining.unwind import UnwoundLoop
from .canon import CanonicalForm, rename_graph, rename_ops
from .keys import CACHE_SCHEMA


class CacheDecodeError(Exception):
    """Entry is unreadable or from another schema; recompute."""


@dataclass
class CachedScheduleSummary:
    """Duck-typed stand-in for ``ScheduleResult`` on warm hits.

    Carries exactly the fields warm-path consumers read (bench
    records, ``summary()`` tally lines); ``ranking``/``gap_policy``
    are scheduler-internal helpers with no post-hoc consumers and are
    deliberately absent.  ``seconds`` is stamped with the *lookup*
    wall-clock by the store, not the producer's schedule time.
    """

    graph: ProgramGraph | None = None
    stats: PercolationStats = field(default_factory=PercolationStats)
    seconds: float = 0.0
    nodes_processed: int = 0
    candidate_builds: int = 0
    analysis_counters: dict = field(default_factory=dict)


def _graph_maxima(graph: ProgramGraph) -> tuple[int, int]:
    max_uid = 0
    max_leaf = 0
    for node in graph.nodes.values():
        for op in node.all_ops():
            max_uid = max(max_uid, op.uid, op.tid)
        for leaf in iter_leaves(node.tree):
            max_leaf = max(max_leaf, leaf.leaf_id)
    return max_uid, max_leaf


def _advance_counters(max_uid: int, max_leaf: int) -> None:
    """Push the process-global id counters past a replayed snapshot."""
    cur_uid = next(_operations._uid_counter)
    _operations._uid_counter = itertools.count(max(cur_uid, max_uid) + 1)
    cur_leaf = next(_cjtree._leaf_counter)
    _cjtree._leaf_counter = itertools.count(max(cur_leaf, max_leaf) + 1)


def _summary_payload(schedule) -> dict:
    return {
        "stats": schedule.stats,
        "nodes_processed": schedule.nodes_processed,
        "candidate_builds": schedule.candidate_builds,
        "analysis_counters": dict(schedule.analysis_counters),
    }


def _summary_from(payload: dict, graph: ProgramGraph | None
                  ) -> CachedScheduleSummary:
    return CachedScheduleSummary(
        graph=graph, stats=payload["stats"],
        nodes_processed=payload["nodes_processed"],
        candidate_builds=payload["candidate_builds"],
        analysis_counters=dict(payload["analysis_counters"]))


# ----------------------------------------------------------------------
# Encode (result -> canonical-space payload bytes)
# ----------------------------------------------------------------------
def _encode_counted(result: PipelineResult, form: CanonicalForm) -> dict:
    unwound = result.unwound
    max_uid, max_leaf = _graph_maxima(unwound.graph)
    return {
        "kind": "counted",
        "graph": rename_graph(unwound.graph, form.reg_map, form.array_map),
        "ops": rename_ops(unwound.ops, form.reg_map, form.array_map),
        "iterations": unwound.iterations,
        "origin": dict(unwound.origin),
        "exit_branch_tids": list(unwound.exit_branch_tids),
        "iteration_marker_tids": list(unwound.iteration_marker_tids),
        "schedule": _summary_payload(result.schedule),
        "pattern": result.pattern,
        "throughput": result.throughput,
        "seq_cycles_per_iteration": result.seq_cycles_per_iteration,
        "measured_seq_cycles": result.measured_seq_cycles,
        "measured_par_cycles": result.measured_par_cycles,
        "max_uid": max_uid,
        "max_leaf": max_leaf,
    }


def _encode_program(result: ProgramPipelineResult,
                    form: CanonicalForm) -> dict:
    max_uid, max_leaf = _graph_maxima(result.graph)
    segments = []
    for seg in result.segments:
        segments.append({
            "kind": seg.kind,
            "n_rows": len(seg.graph.nodes),
            "pattern": seg.pattern,
            "throughput": seg.throughput,
            "schedule": (_summary_payload(seg.schedule)
                         if seg.schedule is not None else None),
        })
    return {
        "kind": "program",
        "graph": rename_graph(result.graph, form.reg_map, form.array_map),
        "residual_epilogue": rename_ops(result.residual_epilogue,
                                        form.reg_map, form.array_map),
        "segments": segments,
        "measured_seq_cycles": result.measured_seq_cycles,
        "measured_par_cycles": result.measured_par_cycles,
        "seeds": list(result.seeds),
        "max_uid": max_uid,
        "max_leaf": max_leaf,
    }


def encode_result(result, form: CanonicalForm) -> bytes:
    if isinstance(result, PipelineResult):
        payload = _encode_counted(result, form)
    elif isinstance(result, ProgramPipelineResult):
        payload = _encode_program(result, form)
    else:
        raise TypeError(f"cannot cache {type(result).__name__}")
    return pickle.dumps({"schema": CACHE_SCHEMA, "payload": payload},
                        protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Decode (payload bytes -> requester-space result)
# ----------------------------------------------------------------------
class _RowStub:
    """Graph stand-in for warm program segments.

    Warm consumers only read ``len(seg.graph.nodes)`` (the summary's
    rows-per-iteration line); the scheduled rows themselves live in
    the combined program graph.
    """

    __slots__ = ("nodes",)

    def __init__(self, n_rows: int) -> None:
        self.nodes = dict.fromkeys(range(n_rows))

    def __len__(self) -> int:  # pragma: no cover - debugging nicety
        return len(self.nodes)


def _decode_counted(payload: dict, loop: CountedLoop,
                    machine: MachineConfig, reg_inv: dict[str, str],
                    array_inv: dict[str, str]) -> PipelineResult:
    graph = rename_graph(payload["graph"], reg_inv, array_inv)
    ops = rename_ops(payload["ops"], reg_inv, array_inv)
    unwound = UnwoundLoop(
        graph=graph, loop=loop, iterations=payload["iterations"], ops=ops,
        origin=dict(payload["origin"]),
        exit_branch_tids=list(payload["exit_branch_tids"]),
        iteration_marker_tids=list(payload["iteration_marker_tids"]))
    return PipelineResult(
        loop=loop, machine=machine, unwound=unwound,
        schedule=_summary_from(payload["schedule"], graph),
        pattern=payload["pattern"],
        seq_cycles_per_iteration=payload["seq_cycles_per_iteration"],
        throughput=payload["throughput"],
        measured_seq_cycles=payload["measured_seq_cycles"],
        measured_par_cycles=payload["measured_par_cycles"])


def _decode_program(payload: dict, program: LoopProgram,
                    machine: MachineConfig, reg_inv: dict[str, str],
                    array_inv: dict[str, str]) -> ProgramPipelineResult:
    graph = rename_graph(payload["graph"], reg_inv, array_inv)
    # The pass pipeline may fuse member loops, so stored segments need
    # not map 1:1 onto ``program.loops``; warm consumers never read
    # ``seg.loop`` (only explain does, and explain never hits the
    # cache), so the stand-in segment carries no descriptor.
    segments = []
    for seg in payload["segments"]:
        sched = seg["schedule"]
        segments.append(SegmentSchedule(
            loop=None, kind=seg["kind"], graph=_RowStub(seg["n_rows"]),
            unwound=None,
            schedule=(_summary_from(sched, None)
                      if sched is not None else None),
            pattern=seg["pattern"], throughput=seg["throughput"]))
    return ProgramPipelineResult(
        program=program, machine=machine, segments=segments, graph=graph,
        measured_seq_cycles=payload["measured_seq_cycles"],
        measured_par_cycles=payload["measured_par_cycles"],
        seeds=list(payload["seeds"]), plan=None,
        residual_epilogue=rename_ops(payload["residual_epilogue"],
                                     reg_inv, array_inv))


def decode_result(data: bytes, program: CountedLoop | LoopProgram,
                  machine: MachineConfig, form: CanonicalForm):
    """Replay one payload into the requester's register space."""
    try:
        envelope = pickle.loads(data)
    except Exception as exc:
        raise CacheDecodeError(f"unreadable entry: {exc}") from exc
    if (not isinstance(envelope, dict)
            or envelope.get("schema") != CACHE_SCHEMA):
        raise CacheDecodeError("entry from another cache schema")
    payload = envelope["payload"]
    reg_inv, array_inv = form.inverse()
    try:
        if payload["kind"] == "counted":
            if not isinstance(program, CountedLoop):
                raise CacheDecodeError("entry kind mismatch")
            result = _decode_counted(payload, program, machine,
                                     reg_inv, array_inv)
        elif payload["kind"] == "program":
            if not isinstance(program, LoopProgram):
                raise CacheDecodeError("entry kind mismatch")
            result = _decode_program(payload, program, machine,
                                     reg_inv, array_inv)
        else:
            raise CacheDecodeError(f"unknown kind {payload['kind']!r}")
    except CacheDecodeError:
        raise
    except Exception as exc:
        raise CacheDecodeError(f"malformed entry: {exc}") from exc
    _advance_counters(payload.get("max_uid", 0), payload.get("max_leaf", 0))
    return result
