"""Canonical alpha-renaming of lowered loop programs.

Two programs that differ only in register and array *names* schedule
identically (the scheduler keys every decision off graph structure,
op kinds, positions and latencies -- never off spellings), so the
cache keys programs by a canonical renaming: walking the descriptor's
operations in definition order, the first occurrence of each register
is assigned ``r0, r1, ...`` and each array ``a0, a1, ...``.  Derived
names the pipeline manufactures later (``k.exit.3`` from unwinding,
``acc.2`` from per-iteration renaming) follow their base register via
a prefix rule: ``base.suffix`` renames to ``map[base].suffix``.
Scheduler-fresh physical names (``%rN``) pass through unchanged --
the register file guarantees they never collide with source names.

The same maps run in both directions: forward to put a scheduled
result into canonical register space before storing it, inverse to
rename a cached payload into the requester's register space on a hit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from ..ir.graph import ProgramGraph
from ..ir.loops import CountedLoop, InnerWhile, LoopProgram, WhileLoop
from ..ir.operations import Operation
from ..ir.registers import Imm, Reg


@dataclass(frozen=True)
class CanonicalForm:
    """Canonical rendering plus the bijective maps that produced it."""

    #: deterministic text rendering; the key material for hashing
    text: str
    #: source register name -> canonical name (``r<N>``)
    reg_map: dict[str, str]
    #: source array name -> canonical name (``a<N>``)
    array_map: dict[str, str]

    def inverse(self) -> tuple[dict[str, str], dict[str, str]]:
        """Canonical -> source maps (the stored-payload replay direction)."""
        return ({v: k for k, v in self.reg_map.items()},
                {v: k for k, v in self.array_map.items()})


def rename(name: str, mapping: dict[str, str]) -> str:
    """Rename one register name through a canonical map.

    Exact entries win; otherwise a derived name ``base.suffix`` follows
    its base register; names with no mapped base (``%rN`` physicals)
    pass through unchanged.
    """
    hit = mapping.get(name)
    if hit is not None:
        return hit
    base, sep, suffix = name.partition(".")
    if sep:
        hit = mapping.get(base)
        if hit is not None:
            return f"{hit}.{suffix}"
    return name


def rename_op(op: Operation, reg_map: dict[str, str],
              array_map: dict[str, str]) -> Operation:
    """Rebuild one operation with renamed registers/arrays.

    Identity (uid, tid, iteration, pos, name) is preserved: renaming
    changes spellings only, so a replayed graph is bit-identical to the
    producer's output modulo the register map.
    """
    dest = Reg(rename(op.dest.name, reg_map)) if op.dest is not None else None
    srcs = tuple(Reg(rename(s.name, reg_map)) if isinstance(s, Reg) else s
                 for s in op.srcs)
    mem = op.mem
    if mem is not None:
        index = mem.index
        if isinstance(index, Reg):
            index = Reg(rename(index.name, reg_map))
        mem = replace(mem, array=array_map.get(mem.array, mem.array),
                      index=index)
    return replace(op, dest=dest, srcs=srcs, mem=mem)


def rename_ops(ops: Iterable[Operation], reg_map: dict[str, str],
               array_map: dict[str, str]) -> list[Operation]:
    return [rename_op(op, reg_map, array_map) for op in ops]


def rename_graph(graph: ProgramGraph, reg_map: dict[str, str],
                 array_map: dict[str, str]) -> ProgramGraph:
    """Return an observer-free renamed clone of ``graph``.

    Node ids, op uids/tids, path sets and branch trees are untouched;
    only the register/array spellings inside each operation change.
    """
    g = graph.clone()
    for node in g.nodes.values():
        node.ops = {uid: rename_op(op, reg_map, array_map)
                    for uid, op in node.ops.items()}
        node.cjs = {uid: rename_op(op, reg_map, array_map)
                    for uid, op in node.cjs.items()}
    return g


# ----------------------------------------------------------------------
# Canonical map construction + text rendering
# ----------------------------------------------------------------------
class _Canonicalizer:
    def __init__(self) -> None:
        self.reg_map: dict[str, str] = {}
        self.array_map: dict[str, str] = {}
        self.lines: list[str] = []

    # -- first-occurrence assignment ----------------------------------
    def _reg(self, name: str) -> str:
        hit = self.reg_map.get(name)
        if hit is None:
            hit = f"r{len(self.reg_map)}"
            self.reg_map[name] = hit
        return hit

    def _array(self, name: str) -> str:
        hit = self.array_map.get(name)
        if hit is None:
            hit = f"a{len(self.array_map)}"
            self.array_map[name] = hit
        return hit

    def _operand(self, operand: object) -> str:
        if isinstance(operand, Reg):
            return self._reg(operand.name)
        if isinstance(operand, Imm):
            return f"imm:{operand.value}"
        return repr(operand)  # pragma: no cover - no other operand kinds

    def _op(self, op: Operation) -> str:
        parts = [op.kind.name]
        parts.append(self._reg(op.dest.name) if op.dest is not None else "_")
        parts.append(",".join(self._operand(s) for s in op.srcs) or "_")
        mem = op.mem
        if mem is not None:
            index = (self._reg(mem.index.name)
                     if isinstance(mem.index, Reg)
                     else "imm:%d" % mem.index.value
                     if isinstance(mem.index, Imm) else "_")
            parts.append("%s[%s+%d@%s]" % (self._array(mem.array), index,
                                           mem.offset, mem.affine))
        else:
            parts.append("_")
        parts.append(str(op.pos))
        return " ".join(parts)

    def block(self, label: str, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.lines.append(f"{label} {self._op(op)}")

    # -- descriptors --------------------------------------------------
    def counted(self, loop: CountedLoop) -> None:
        self.block("pre", loop.preheader_ops)
        self.block("body", loop.body_ops)
        self.block("ctrl", loop.control_ops)
        self.block("epi", loop.epilogue_ops)
        bound = self._operand(loop.bound)
        carried = ",".join(sorted(self._reg(r.name)
                                  for r in loop.carried_regs))
        live = ",".join(sorted(self._reg(r.name) for r in loop.live_out))
        self.lines.append(
            f"counted counter={self._reg(loop.counter.name)} bound={bound} "
            f"step={loop.step} carried={carried} live_out={live}")

    def _inner(self, spec: InnerWhile, depth: int) -> None:
        self.block(f"icond{depth}", spec.cond_ops)
        self.block(f"ibody{depth}", spec.body_ops)
        for sub in spec.inner:
            self._inner(sub, depth + 1)
        self.lines.append(
            f"inner{depth} anchor={spec.anchor} "
            f"exit={self._reg(spec.exit_reg.name)}")

    def while_(self, loop: WhileLoop) -> None:
        self.block("pre", loop.preheader_ops)
        self.block("cond", loop.cond_ops)
        self.block("cj", [loop.cj_op])
        self.block("body", loop.body_ops)
        for spec in loop.inner:
            self._inner(spec, 1)
        self.block("epi", loop.epilogue_ops)
        carried = ",".join(sorted(self._reg(r.name)
                                  for r in loop.carried_regs))
        live = ",".join(sorted(self._reg(r.name) for r in loop.live_out))
        self.lines.append(f"while carried={carried} live_out={live}")

    def program(self, program: LoopProgram) -> None:
        for i, loop in enumerate(program.loops):
            self.lines.append(f"segment {i}")
            if isinstance(loop, CountedLoop):
                self.counted(loop)
            else:
                self.while_(loop)
        self.block("progepi", program.epilogue_ops)

    def form(self) -> CanonicalForm:
        text = "canon=1\n" + "\n".join(self.lines) + "\n"
        return CanonicalForm(text=text, reg_map=self.reg_map,
                             array_map=self.array_map)


def canonical_form(program: CountedLoop | LoopProgram) -> CanonicalForm:
    """Canonicalize a lowered descriptor.

    Kernel/loop names and descriptions are deliberately excluded: two
    programs that differ only in labels (fuzz cases across seeds, or a
    renamed copy of a kernel) collide on the same canonical form.
    """
    canon = _Canonicalizer()
    if isinstance(program, CountedLoop):
        canon.lines.append("top counted")
        canon.counted(program)
    elif isinstance(program, LoopProgram):
        canon.lines.append("top program")
        canon.program(program)
    else:
        raise TypeError(
            f"cannot canonicalize {type(program).__name__}; expected "
            "CountedLoop or LoopProgram")
    return canon.form()
