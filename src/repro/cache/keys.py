"""Content keys: blake2b over program, machine, versions and options.

A key must change whenever *anything* that could change the scheduled
output changes.  The ingredients:

* canonical program text (:func:`repro.cache.canon.canonical_form`);
* the machine fingerprint (fus, typed budgets, latency map,
  count_nops, phys_regs);
* :data:`SCHEDULER_VERSION` and :data:`PASS_PIPELINE_VERSION` --
  bump these whenever the scheduler or the program pass pipeline
  changes output for the same input, and every existing entry is
  silently invalidated;
* the scheduling options fingerprint (unroll, gap prevention,
  speculation, program optimization, measurement settings, heuristic
  class, and the schedule policy's own fingerprint -- which already
  folds in ``POLICY_SCHEMA``, so a policy-semantics bump invalidates
  entries exactly like a scheduler-version bump).

One subtlety: measured cycle counts are *name-dependent* -- the
differential checker seeds register values by sorted-name index, so
two alpha-equivalent programs can measure differently.  When the
options request measurement the key therefore also folds in the
concrete register/array names; purely structural (``measure=False``)
requests share entries across alpha-equivalent programs.
"""

from __future__ import annotations

import hashlib

from ..ir.loops import CountedLoop, LoopProgram
from ..machine.model import MachineConfig
from .canon import CanonicalForm, canonical_form

#: on-disk payload schema; entries with another schema are ignored
CACHE_SCHEMA = 1
#: bump when GRiP scheduling output changes for identical input
SCHEDULER_VERSION = 1
#: bump when the program pass pipeline (normalize/hoist/fuse/slack)
#: changes output for identical input
PASS_PIPELINE_VERSION = 1


def machine_fingerprint(machine: MachineConfig) -> str:
    typed = "-"
    if machine.typed is not None:
        typed = ",".join(f"{cls.name}:{n}" for cls, n in
                         sorted(machine.typed.items(),
                                key=lambda kv: kv[0].name))
    lats = "-"
    if machine.latencies is not None:
        lats = ",".join(f"{kind.name}:{n}" for kind, n in
                        sorted(machine.latencies.items(),
                               key=lambda kv: kv[0].name))
    return (f"fus={machine.fus} typed={typed} lat={lats} "
            f"nops={machine.count_nops} phys={machine.phys_regs}")


def options_fingerprint(options, form: CanonicalForm) -> str:
    """Render the schedule-relevant options (see ``repro.api``).

    ``tracer`` and ``verify_analysis`` are excluded: both observe the
    computation without changing its output.  (A warm hit therefore
    emits no tracer events -- ``repro explain`` never uses the cache.)
    """
    from ..scheduling.policy import DEFAULT_POLICY

    heuristic = options.heuristic
    hname = type(heuristic).__name__ if heuristic is not None else "default"
    policy = getattr(options, "policy", None)
    if policy is None:
        policy = DEFAULT_POLICY
    parts = [
        f"unroll={options.unroll}",
        f"gap={options.gap_prevention}",
        f"spec={options.allow_speculation}",
        f"opt={options.optimize}",
        f"measure={options.measure}",
        f"verify={options.verify}",
        f"seeds={tuple(options.seeds)}",
        f"heuristic={hname}",
        f"policy={policy.fingerprint()}",
    ]
    if options.measure:
        names = ";".join(f"{k}={v}" for k, v in
                         sorted(form.reg_map.items()))
        arrays = ";".join(f"{k}={v}" for k, v in
                          sorted(form.array_map.items()))
        parts.append(f"names={names}|{arrays}")
    return " ".join(parts)


def cache_key(program: CountedLoop | LoopProgram, machine: MachineConfig,
              options) -> tuple[str, CanonicalForm]:
    """Digest + canonical form for one schedule request."""
    form = canonical_form(program)
    h = hashlib.blake2b(digest_size=20)
    h.update(form.text.encode())
    h.update(b"\x00")
    h.update(machine_fingerprint(machine).encode())
    h.update(b"\x00")
    h.update(f"sched={SCHEDULER_VERSION} pass={PASS_PIPELINE_VERSION} "
             f"schema={CACHE_SCHEMA}".encode())
    h.update(b"\x00")
    h.update(options_fingerprint(options, form).encode())
    return h.hexdigest(), form
