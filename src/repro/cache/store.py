"""Sharded on-disk schedule store with an in-memory LRU front.

Layout: ``<root>/<digest[:2]>/<digest>.pkl`` -- 256 shards keep any
one directory small under heavy fuzz traffic.  Writes go to a
temporary file in the destination shard and land via ``os.replace``,
so readers never observe a torn entry and concurrent writers of the
same key are idempotent (last rename wins, contents identical).

The LRU front holds raw payload *bytes*, not decoded objects: every
hit decodes a fresh copy, so callers that mutate a returned graph
(the fuzz tamper stage does) can never poison later hits.

Counters land in a :class:`~repro.obs.metrics.MetricsRegistry` under
group ``cache``: hits / misses / stores / evictions / corrupt, plus
``disk_evictions`` (max-entries cap) and ``expired`` (TTL cap).

Beyond the bytes-LRU front, two optional *disk* caps bound a cache
directory under many-policy churn (the ``repro tune`` search loop
writes one entry per candidate policy):

* ``max_entries`` -- after every store, the oldest entries (by file
  mtime) are unlinked until at most this many remain;
* ``ttl_seconds`` -- entries older than this are treated as misses at
  fetch time and unlinked.

Both caps are best-effort under concurrent writers (counts are
re-scanned, never trusted across processes), which is exactly the
semantics a shared tune/fuzz cache needs: stale or evicted entries
just recompute.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from pathlib import Path

from ..ir.loops import CountedLoop, LoopProgram
from ..machine.model import MachineConfig
from ..obs.metrics import MetricsRegistry
from .codec import CacheDecodeError, decode_result, encode_result
from .keys import cache_key

DEFAULT_LRU_CAPACITY = 64


class ScheduleCache:
    """Content-addressed schedule cache rooted at a directory."""

    def __init__(self, root: str | Path, *,
                 lru_capacity: int = DEFAULT_LRU_CAPACITY,
                 max_entries: int | None = None,
                 ttl_seconds: float | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lru_capacity = lru_capacity
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lru: OrderedDict[str, bytes] = OrderedDict()
        #: entry birth times mirrored beside the LRU front, so TTL
        #: verdicts for front hits don't need a stat() per fetch
        self._stamps: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def _remember(self, digest: str, data: bytes,
                  stamp: float | None = None) -> None:
        self._lru[digest] = data
        self._lru.move_to_end(digest)
        if self.ttl_seconds is not None:
            self._stamps[digest] = stamp if stamp is not None else time.time()
        while len(self._lru) > self.lru_capacity:
            evicted, _ = self._lru.popitem(last=False)
            self._stamps.pop(evicted, None)
            self.metrics.increment("cache", "evictions")

    def _expired(self, digest: str, stamp: float | None) -> bool:
        """TTL verdict (False when no TTL or no birth time is known)."""
        if self.ttl_seconds is None or stamp is None:
            return False
        return time.time() - stamp > self.ttl_seconds

    def _read(self, digest: str) -> bytes | None:
        data = self._lru.get(digest)
        if data is not None:
            if self._expired(digest, self._stamps.get(digest)):
                self._drop(digest)
                self.metrics.increment("cache", "expired")
                return None
            self._lru.move_to_end(digest)
            return data
        path = self._path(digest)
        try:
            stamp = path.stat().st_mtime
            if self._expired(digest, stamp):
                self._drop(digest)
                self.metrics.increment("cache", "expired")
                return None
            data = path.read_bytes()
        except OSError:
            return None
        self._remember(digest, data, stamp=stamp)
        return data

    def _drop(self, digest: str) -> None:
        self._lru.pop(digest, None)
        self._stamps.pop(digest, None)
        try:
            self._path(digest).unlink()
        except OSError:
            pass

    def _enforce_entry_cap(self) -> None:
        """Unlink the oldest on-disk entries beyond ``max_entries``.

        Ages come from file mtimes, so the cap composes with other
        writers of the same directory; a racing unlink is ignored (the
        entry is gone either way).
        """
        if self.max_entries is None:
            return
        entries = list(self.root.glob("??/*.pkl"))
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0
        entries.sort(key=mtime)
        for path in entries[:excess]:
            self._lru.pop(path.stem, None)
            self._stamps.pop(path.stem, None)
            try:
                path.unlink()
            except OSError:
                continue
            self.metrics.increment("cache", "disk_evictions")

    # ------------------------------------------------------------------
    def fetch(self, program: CountedLoop | LoopProgram,
              machine: MachineConfig, options):
        """Replay a cached result, or ``None`` on miss.

        On a hit the result's ``schedule.seconds`` is stamped with the
        actual lookup+replay wall-clock, so bench schedule-stage
        timings reflect warm cost, not the producer's cold cost.
        """
        t0 = time.perf_counter()
        digest, form = cache_key(program, machine, options)
        data = self._read(digest)
        if data is None:
            self.metrics.increment("cache", "misses")
            return None
        try:
            result = decode_result(data, program, machine, form)
        except CacheDecodeError:
            self.metrics.increment("cache", "corrupt")
            self.metrics.increment("cache", "misses")
            self._drop(digest)
            return None
        self.metrics.increment("cache", "hits")
        self._stamp_seconds(result, time.perf_counter() - t0)
        return result

    def put(self, program: CountedLoop | LoopProgram,
            machine: MachineConfig, options, result) -> str:
        """Store one freshly computed result; returns its digest."""
        digest, form = cache_key(program, machine, options)
        data = encode_result(result, form)
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self._remember(digest, data)
        self.metrics.increment("cache", "stores")
        self._enforce_entry_cap()
        return digest

    # ------------------------------------------------------------------
    @staticmethod
    def _stamp_seconds(result, elapsed: float) -> None:
        schedule = getattr(result, "schedule", None)
        if schedule is not None:           # counted result
            schedule.seconds = elapsed
            return
        first = True                       # program result
        for seg in result.segments:
            if seg.schedule is not None:
                seg.schedule.seconds = elapsed if first else 0.0
                first = False

    def counters(self) -> dict[str, float]:
        return self.metrics.group("cache")

    @property
    def hits(self) -> int:
        return int(self.metrics.get("cache", "hits") or 0)

    @property
    def misses(self) -> int:
        return int(self.metrics.get("cache", "misses") or 0)
