"""Sharded on-disk schedule store with an in-memory LRU front.

Layout: ``<root>/<digest[:2]>/<digest>.pkl`` -- 256 shards keep any
one directory small under heavy fuzz traffic.  Writes go to a
temporary file in the destination shard and land via ``os.replace``,
so readers never observe a torn entry and concurrent writers of the
same key are idempotent (last rename wins, contents identical).

The LRU front holds raw payload *bytes*, not decoded objects: every
hit decodes a fresh copy, so callers that mutate a returned graph
(the fuzz tamper stage does) can never poison later hits.

Counters land in a :class:`~repro.obs.metrics.MetricsRegistry` under
group ``cache``: hits / misses / stores / evictions / corrupt.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from pathlib import Path

from ..ir.loops import CountedLoop, LoopProgram
from ..machine.model import MachineConfig
from ..obs.metrics import MetricsRegistry
from .codec import CacheDecodeError, decode_result, encode_result
from .keys import cache_key

DEFAULT_LRU_CAPACITY = 64


class ScheduleCache:
    """Content-addressed schedule cache rooted at a directory."""

    def __init__(self, root: str | Path, *,
                 lru_capacity: int = DEFAULT_LRU_CAPACITY,
                 metrics: MetricsRegistry | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.lru_capacity = lru_capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lru: OrderedDict[str, bytes] = OrderedDict()

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def _remember(self, digest: str, data: bytes) -> None:
        self._lru[digest] = data
        self._lru.move_to_end(digest)
        while len(self._lru) > self.lru_capacity:
            self._lru.popitem(last=False)
            self.metrics.increment("cache", "evictions")

    def _read(self, digest: str) -> bytes | None:
        data = self._lru.get(digest)
        if data is not None:
            self._lru.move_to_end(digest)
            return data
        path = self._path(digest)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        self._remember(digest, data)
        return data

    def _drop(self, digest: str) -> None:
        self._lru.pop(digest, None)
        try:
            self._path(digest).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def fetch(self, program: CountedLoop | LoopProgram,
              machine: MachineConfig, options):
        """Replay a cached result, or ``None`` on miss.

        On a hit the result's ``schedule.seconds`` is stamped with the
        actual lookup+replay wall-clock, so bench schedule-stage
        timings reflect warm cost, not the producer's cold cost.
        """
        t0 = time.perf_counter()
        digest, form = cache_key(program, machine, options)
        data = self._read(digest)
        if data is None:
            self.metrics.increment("cache", "misses")
            return None
        try:
            result = decode_result(data, program, machine, form)
        except CacheDecodeError:
            self.metrics.increment("cache", "corrupt")
            self.metrics.increment("cache", "misses")
            self._drop(digest)
            return None
        self.metrics.increment("cache", "hits")
        self._stamp_seconds(result, time.perf_counter() - t0)
        return result

    def put(self, program: CountedLoop | LoopProgram,
            machine: MachineConfig, options, result) -> str:
        """Store one freshly computed result; returns its digest."""
        digest, form = cache_key(program, machine, options)
        data = encode_result(result, form)
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self._remember(digest, data)
        self.metrics.increment("cache", "stores")
        return digest

    # ------------------------------------------------------------------
    @staticmethod
    def _stamp_seconds(result, elapsed: float) -> None:
        schedule = getattr(result, "schedule", None)
        if schedule is not None:           # counted result
            schedule.seconds = elapsed
            return
        first = True                       # program result
        for seg in result.segments:
            if seg.schedule is not None:
                seg.schedule.seconds = elapsed if first else 0.0
                first = False

    def counters(self) -> dict[str, float]:
        return self.metrics.group("cache")

    @property
    def hits(self) -> int:
        return int(self.metrics.get("cache", "hits") or 0)

    @property
    def misses(self) -> int:
        return int(self.metrics.get("cache", "misses") or 0)
