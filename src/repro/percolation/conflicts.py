"""Conflict analysis for the core PS transformations.

Given a candidate move of operation ``op`` from node ``From`` into its
predecessor ``To`` (along the To-leaves that target From), classify the
obstacles:

* **true dependence** -- ``op`` reads a register written in To on a
  relevant path, or loads memory a To-store may write.  Fatal, except
  that reads satisfied by COPY operations are *substituted through*
  ("change the use of B into a use of X"), which is what keeps renaming
  artifacts from blocking motion.
* **move-past-read** -- another operation (or conditional) in From
  reads ``op``'s destination; moving the write above From would clobber
  the value those readers fetch at From's entry.  Curable by renaming.
* **write-live** -- ``op`` commits on only a subset of From's paths and
  its destination is live along the others; hoisting would clobber the
  value flowing on those paths.  Curable by renaming.
* **output dependence** -- an op in To already writes ``op``'s
  destination on a relevant path; two same-path writers of one register
  inside one instruction are ill-formed.  Curable by renaming.
* **memory ordering** -- store/store to conflicting cells in one
  instruction is ill-formed; store above a conflicting load is fine
  *within* the same instruction (operands fetch before stores commit)
  but a LOAD may not move into an instruction whose STORE feeds it.
* **store speculation** -- a STORE may only leave From when it commits
  on *all* of From's paths: memory writes cannot be renamed, so they
  must never become control-speculative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.livequery import reg_live_out_via
from ..analysis.memory import mem_conflict
from ..ir.graph import ProgramGraph
from ..ir.instruction import Instruction
from ..ir.operations import Operation
from ..ir.registers import Operand, Reg


@dataclass
class ConflictReport:
    """Outcome of analysing one candidate move."""

    fatal: str | None = None          # reason the move is impossible
    needs_rename: bool = False        # move-past-read / write-live / output
    substitutions: dict[Reg, Operand] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.fatal is None


def _writers_on_leaves(node: Instruction, reg: Reg,
                       leaves: frozenset[int]) -> list[Operation]:
    """Ops in ``node`` writing ``reg`` whose commit paths meet ``leaves``."""
    return [op for uid, op in node.ops.items()
            if op.dest == reg and node.paths[uid] & leaves]


def resolve_copy_substitutions(to_node: Instruction, op: Operation,
                               leaves: frozenset[int]) -> ConflictReport:
    """Check true dependences of ``op`` against ``to_node``.

    Returns substitutions that bypass COPY producers, or a fatal report
    when a non-copy producer (or an ambiguous set of producers) blocks.
    """
    report = ConflictReport()
    for reg in sorted(op.uses(), key=lambda r: r.name):
        writers = _writers_on_leaves(to_node, reg, leaves)
        if not writers:
            continue
        if len(writers) > 1:
            report.fatal = f"true-dep: multiple writers of {reg} in n{to_node.nid}"
            return report
        w = writers[0]
        if not w.is_copy:
            report.fatal = (f"true-dep: {reg} written by {w.label} "
                            f"in n{to_node.nid}")
            return report
        if not _copy_covers(w, to_node, leaves):
            report.fatal = (f"true-dep: copy {w.label} does not cover all "
                            f"paths to the source node")
            return report
        source = w.srcs[0]
        # The substituted source must itself be clean in To.
        if isinstance(source, Reg):
            inner = _writers_on_leaves(to_node, source, leaves)
            if inner:
                report.fatal = (f"true-dep: copy source {source} also "
                                f"written in n{to_node.nid}")
                return report
        report.substitutions[reg] = source
    return report


def _copy_covers(op: Operation, node: Instruction,
                 leaves: frozenset[int]) -> bool:
    """Does the copy commit on every path that reaches the source node?"""
    return leaves <= node.paths[op.uid]


def analyse_move(graph: ProgramGraph, from_nid: int, to_nid: int,
                 uid: int,
                 exit_live: frozenset[Reg] = frozenset()) -> ConflictReport:
    """Full conflict analysis for moving op ``uid`` From -> To."""
    from_node = graph.nodes[from_nid]
    to_node = graph.nodes[to_nid]
    op = from_node.ops[uid]
    leaves = to_node.leaves_to(from_nid)
    if not leaves:
        return ConflictReport(fatal=f"n{to_nid} is not a predecessor of n{from_nid}")

    # Store speculation guard.
    if op.writes_memory and from_node.paths[uid] != from_node.all_paths:
        return ConflictReport(fatal="store-speculation: STORE guarded inside source node")

    # True dependences (registers, through copies).
    report = resolve_copy_substitutions(to_node, op, leaves)
    if not report.ok:
        return report

    # Memory true dependence: LOAD moving beside a conflicting STORE.
    if op.reads_memory:
        for other_uid, other in to_node.ops.items():
            if other.writes_memory and to_node.paths[other_uid] & leaves \
                    and mem_conflict(other.mem, op.mem):
                report.fatal = (f"mem-true-dep: load {op.label} vs store "
                                f"{other.label} in n{to_nid}")
                return report

    # Memory output dependence: STORE/STORE same cell in one instruction.
    if op.writes_memory:
        for other_uid, other in to_node.ops.items():
            if other.writes_memory and to_node.paths[other_uid] & leaves \
                    and mem_conflict(other.mem, op.mem):
                report.fatal = (f"mem-output-dep: stores {op.label} and "
                                f"{other.label} would share an instruction")
                return report

    if op.dest is None:
        return report  # stores have no register hazards below

    # Output dependence in To.
    if _writers_on_leaves(to_node, op.dest, leaves):
        report.needs_rename = True

    # Move-past-read: other readers of op.dest inside From.
    for other in from_node.all_ops():
        if other.uid == uid:
            continue
        if op.dest in other.uses():
            report.needs_rename = True
            break

    # Write-live: op guarded inside From with dest live on the other paths.
    op_paths = from_node.paths[uid]
    if op_paths != from_node.all_paths:
        for leaf in from_node.leaves():
            if leaf.leaf_id in op_paths:
                continue
            if reg_live_out_via(graph, from_nid, leaf.leaf_id, op.dest,
                                exit_live):
                report.needs_rename = True
                break

    return report


def analyse_cj_move(graph: ProgramGraph, from_nid: int, to_nid: int,
                    cj_uid: int) -> ConflictReport:
    """Conflict analysis for moving a conditional jump From -> To.

    The jump must sit at the root of From's tree (inner jumps percolate
    to the root first as their ancestors move away), and its condition
    must be computable at To's entry.
    """
    from ..ir.cjtree import Branch

    from_node = graph.nodes[from_nid]
    to_node = graph.nodes[to_nid]
    if cj_uid not in from_node.cjs:
        return ConflictReport(fatal=f"cj {cj_uid} not in n{from_nid}")
    if not isinstance(from_node.tree, Branch) or from_node.tree.cj_uid != cj_uid:
        return ConflictReport(fatal="cj-not-root: jump is nested below another jump")
    leaves = to_node.leaves_to(from_nid)
    if not leaves:
        return ConflictReport(fatal=f"n{to_nid} is not a predecessor of n{from_nid}")
    cj = from_node.cjs[cj_uid]
    return resolve_copy_substitutions(to_node, cj, leaves)
