"""The migrate transformation (paper Figures 4 and 12).

``migrate(n, op)`` moves all reachable instances of an operation
template as high as possible on the subgraph dominated by ``n``:
compaction first happens recursively below, then instances hop from
successors into ``n`` itself.

The implementation is iterative (bottom-up over the dominated region)
but preserves the recursive definition's semantics: one ``migrate``
call carries an instance from arbitrarily deep up to ``n`` when nothing
blocks it.

A :class:`MovePolicy` hook lets the GRiP scheduler impose the
gap-prevention rules of Figure 12: a policy may *veto* a single hop
("suspend"), and may request early termination of the sweep after a
successful move while suspensions exist (rule 2's "operations may move
at most one step").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..analysis import incremental
from ..ir.graph import ProgramGraph
from ..ir.operations import Operation
from ..ir.registers import Reg, RegisterFile
from ..machine.model import MachineConfig
from ..obs.tracer import (
    NULL_TRACER,
    BoundarySkipped,
    MoveAccepted,
    MoveRejected,
    Reason,
    Tracer,
    classify_failure,
)
from .moveop import MoveOutcome, PercolationStats, move_op
from .movecj import move_cj


class MovePolicy(Protocol):
    """Scheduler hook consulted around every hop."""

    def allow_move(self, graph: ProgramGraph, from_nid: int, to_nid: int,
                   op: Operation) -> bool:
        """May this hop be attempted?  Returning False = suspend/veto."""
        ...

    def after_move(self, graph: ProgramGraph, outcome: MoveOutcome,
                   op: Operation) -> None:
        """Notification after a successful hop."""
        ...

    def stop_sweep(self) -> bool:
        """Figure 12: abort the sweep (one-step motion while suspended)."""
        ...


class FreePolicy:
    """Default policy: every legal hop is allowed."""

    def allow_move(self, graph, from_nid, to_nid, op) -> bool:  # noqa: D401
        return True

    def after_move(self, graph, outcome, op) -> None:
        pass

    def stop_sweep(self) -> bool:
        return False


@dataclass
class MigrateContext:
    """Bundled environment for migrate sweeps."""

    graph: ProgramGraph
    machine: MachineConfig
    regfile: RegisterFile
    stats: PercolationStats = field(default_factory=PercolationStats)
    policy: MovePolicy = field(default_factory=FreePolicy)
    exit_live: frozenset[Reg] = frozenset()
    allow_speculation: bool = True
    split_shared: bool = True
    tracer: Tracer = NULL_TRACER

    def hop(self, from_nid: int, to_nid: int, uid: int) -> MoveOutcome:
        """One guarded hop of op instance ``uid`` From -> To."""
        node = self.graph.nodes[from_nid]
        if uid in node.cjs:
            op = node.cjs[uid]
        elif uid in node.ops:
            op = node.ops[uid]
        else:
            return MoveOutcome(False, reason="no-op: vanished")
        if not self.policy.allow_move(self.graph, from_nid, to_nid, op):
            # A vetoing policy (gap prevention) reports its own rejection
            # event with the suspend/rule-3 detail only it knows.
            return MoveOutcome(False, reason="policy-veto")
        if op.is_cjump:
            out = move_cj(self.graph, from_nid, to_nid, uid,
                          machine=self.machine, regfile=self.regfile,
                          stats=self.stats)
        else:
            out = move_op(self.graph, from_nid, to_nid, uid,
                          machine=self.machine, regfile=self.regfile,
                          stats=self.stats, exit_live=self.exit_live,
                          allow_speculation=self.allow_speculation,
                          split_shared=self.split_shared)
        if out.moved:
            self.policy.after_move(self.graph, out, op)
        if self.tracer.enabled:
            self._trace_hop(op, from_nid, to_nid, out)
        return out

    def _trace_hop(self, op: Operation, from_nid: int, to_nid: int,
                   out: MoveOutcome) -> None:
        if out.moved:
            self.tracer.emit(MoveAccepted(
                tid=op.tid, op=op.label, from_nid=from_nid, to_nid=to_nid,
                renamed=out.renamed, unified=out.unified,
                split=out.split_nid is not None))
            return
        typed_starved = False
        if out.resource_blocked and self.machine.typed \
                and self.machine.fus is not None:
            to_node = self.graph.nodes.get(to_nid)
            typed_starved = (
                to_node is not None
                and self.machine.fus - self.machine.slots_used(to_node) > 0)
        self.tracer.emit(MoveRejected(
            tid=op.tid, op=op.label, from_nid=from_nid, to_nid=to_nid,
            reason=classify_failure(out.reason,
                                    resource_blocked=out.resource_blocked,
                                    typed_starved=typed_starved),
            detail=out.reason))


def region_below(graph: ProgramGraph, n: int) -> list[int]:
    """Nodes of the scheduling region of ``n``, bottom-up (deepest first).

    Thin shim over the incremental analysis layer (kept here for
    external callers): the region lists are owned by the graph's
    :class:`~repro.analysis.incremental.AnalysisManager` and stay valid
    across pure op motion -- only genuine control-flow changes trigger
    a rebuild, and empty-node bypasses are spliced in place.  Callers
    must treat the returned list as immutable.
    """
    return incremental.manager_for(graph).region_below(n)


def migrate(ctx: MigrateContext, n: int, tid: int) -> bool:
    """Move all instances of template ``tid`` as high as possible toward
    ``n``.  Returns True when at least one hop succeeded.

    Semantically equivalent to the paper's recursive definition
    (compaction below happens first because each instance is pushed as
    far as it can go before the next is considered), but implemented by
    walking instances up their predecessor chains directly, which keeps
    a migrate call proportional to the distance travelled rather than
    to the region size.
    """
    graph = ctx.graph
    analysis = incremental.manager_for(graph)
    moved_any = False
    guard = 0
    progress = True
    while progress:
        progress = False
        guard += 1
        if guard > 10_000:  # pragma: no cover - defensive
            raise RuntimeError("migrate failed to converge")
        index = analysis.rpo_index()
        n_idx = index.get(n)
        if n_idx is None:
            return moved_any
        # Deepest instances first: carrying the lowest copy up first
        # mirrors the recursive migrate's post-order.
        instances = sorted(
            ((nid, op.uid) for nid, op in graph.ops_by_template(tid)
             if nid in index and index[nid] > n_idx),
            key=lambda pair: -index[pair[0]])
        for nid, uid in instances:
            cur_nid, cur_uid = nid, uid
            while True:
                if cur_nid not in graph.nodes or \
                        not graph.nodes[cur_nid].has_op(cur_uid):
                    break  # vanished (unified / re-split); rescan
                index = analysis.rpo_index()
                if index.get(cur_nid, -1) <= index.get(n, -1):
                    break  # reached the target level
                hopped = False
                attempted = 0
                boundary = 0
                for pred in sorted(graph.predecessors(cur_nid),
                                   key=lambda p: index.get(p, 1 << 30)):
                    if index.get(pred, -1) < index.get(n, 0):
                        continue  # above the scheduling target
                    if _is_back_edge(graph, pred, cur_nid):
                        boundary += 1
                        if ctx.tracer.enabled:
                            op0 = graph.nodes[cur_nid].get_op(cur_uid)
                            ctx.tracer.emit(BoundarySkipped(
                                tid=op0.tid, nid=cur_nid, pred=pred))
                        continue
                    attempted += 1
                    out = ctx.hop(cur_nid, pred, cur_uid)
                    if out.moved:
                        moved_any = True
                        progress = True
                        if out.new_uid is not None:
                            cur_nid, cur_uid = pred, out.new_uid
                        hopped = True
                        break
                if not hopped:
                    if ctx.tracer.enabled and not attempted and boundary:
                        # Nothing upward was even attemptable: every
                        # remaining path crosses a loop back edge.
                        op0 = graph.nodes[cur_nid].get_op(cur_uid)
                        ctx.tracer.emit(MoveRejected(
                            tid=op0.tid, op=op0.label, from_nid=cur_nid,
                            to_nid=n, reason=Reason.LOOP_BOUNDARY,
                            detail="all upward paths cross a back edge"))
                    break
                if ctx.policy.stop_sweep():
                    return moved_any
            if ctx.policy.stop_sweep():
                return moved_any
    return moved_any


def rpo_index(graph: ProgramGraph) -> dict[int, int]:
    """Maintained node -> RPO position map (iterates in RPO order).

    Thin shim over the incremental analysis layer (kept here for
    external callers): the map is patched from the graph's mutation
    events rather than rebuilt per version, so the hot scheduling loop
    pays a DFS only when control flow genuinely changes.
    """
    return incremental.manager_for(graph).rpo_index()


def _is_back_edge(graph: ProgramGraph, pred: int, nid: int) -> bool:
    """Back-edge test: pred at or below nid in RPO order."""
    index = rpo_index(graph)
    if pred not in index or nid not in index:
        return True
    return index[pred] >= index[nid]
