"""The move-cj core transformation (paper Figure 3).

Moving a conditional jump from node ``From`` one step up into a
predecessor ``To``:

* the jump must be the *root* of From's tree (jumps below other jumps
  wait until their ancestors move),
* its condition must be readable at To's entry (true-dependence check,
  with substitution through copies),
* every To-leaf that reached From is replaced by a branch on the (fresh
  duplicate of the) jump, whose sides point at two new nodes holding
  From's true-side and false-side residue respectively.

Empty residue nodes are bypassed, which is how diamonds re-converge and
how whole conditionals eventually evaporate upward.
"""

from __future__ import annotations

from ..ir.cjtree import Branch, Leaf
from ..ir.graph import ProgramGraph
from ..ir.instruction import Instruction
from ..ir.registers import RegisterFile
from ..machine.model import MachineConfig
from .conflicts import analyse_cj_move
from .moveop import MoveOutcome, PercolationStats, _fail


def _residue(graph: ProgramGraph, from_node: Instruction, side_true: bool
             ) -> int:
    """Build the node holding one side of ``from_node`` minus its root cj.

    Returns the node id control should flow to: a fresh node with the
    side's content, or -- when the side is empty -- the side's direct
    target.
    """
    assert isinstance(from_node.tree, Branch)
    sub = from_node.tree.on_true if side_true else from_node.tree.on_false
    side_leaves = frozenset(l.leaf_id for l in _leaves(sub))
    ops = [(op, from_node.paths[op.uid] & side_leaves)
           for op in from_node.ops.values()
           if from_node.paths[op.uid] & side_leaves]
    if isinstance(sub, Leaf) and not ops:
        return sub.target  # empty residue: bypass

    node = graph.new_node()
    # Rebuild the subtree with fresh leaf ids (graph-wide uniqueness)
    # and fresh cj duplicates.
    from ..ir import cjtree as cjt

    tree, leaf_map = cjt.refresh_leaf_ids(sub)
    cj_map: dict[int, int] = {}

    def remap(t):
        if isinstance(t, Leaf):
            return t
        dup = from_node.cjs[t.cj_uid].duplicate()
        cj_map[t.cj_uid] = dup.uid
        node.cjs[dup.uid] = dup
        return Branch(dup.uid, remap(t.on_true), remap(t.on_false))

    node.tree = remap(tree)
    for op, paths in ops:
        dup = op.duplicate()
        node.ops[dup.uid] = dup
        node.paths[dup.uid] = frozenset(leaf_map[p] for p in paths)
    graph.note_tree_change(node.nid)
    return node.nid


def _leaves(tree):
    from ..ir.cjtree import iter_leaves

    return iter_leaves(tree)


def move_cj(graph: ProgramGraph, from_nid: int, to_nid: int, cj_uid: int, *,
            machine: MachineConfig, regfile: RegisterFile,
            stats: PercolationStats | None = None,
            delete_emptied: bool = True) -> MoveOutcome:
    """Attempt to move the root conditional jump of ``from_nid`` into
    ``to_nid``."""
    stats = stats if stats is not None else PercolationStats()
    stats.attempts += 1

    report = analyse_cj_move(graph, from_nid, to_nid, cj_uid)
    if not report.ok:
        stats.dependence_blocks += 1
        return _fail(stats, report.fatal or "blocked")

    from_node = graph.nodes[from_nid]
    to_node = graph.nodes[to_nid]
    cj = from_node.cjs[cj_uid]
    leaves = to_node.leaves_to(from_nid)

    for reg, source in report.substitutions.items():
        cj = cj.substitute_use(reg, source)

    # One cj instance is grafted per To-leaf reaching From; all of them
    # must fit within the budget.
    if machine.room(to_node) < len(leaves):
        stats.resource_blocks += 1
        out = _fail(stats, f"resources: n{to_nid} is full")
        out.resource_blocked = True
        return out

    # Residue nodes for the two sides.
    true_target = _residue(graph, from_node, side_true=True)
    false_target = _residue(graph, from_node, side_true=False)

    # Graft a branch at every To-leaf that reached From.  Each graft
    # gets a *fresh duplicate*: From may survive (shared by other
    # predecessors) and keep its own instance, and a tree may not
    # repeat uids.
    grafted_uid = None
    for leaf_id in sorted(leaves):
        inst = cj.duplicate()
        if grafted_uid is None:
            grafted_uid = inst.uid
        to_node.graft_branch(leaf_id, inst, true_target, false_target)
    graph.note_tree_change(to_node.nid)

    # From is no longer reached from To; if nothing else reaches it,
    # remove it (its content lives on in the residue nodes).
    if not graph.predecessors(from_nid):
        graph.remove_node(from_nid)

    stats.moves += 1
    stats.cj_moves += 1
    return MoveOutcome(True, new_uid=grafted_uid, from_nid=from_nid)
