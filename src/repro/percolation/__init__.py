"""Percolation Scheduling core transformations (paper section 2)."""

from .cleanup import cleanup, delete_empty_nodes, eliminate_dead_ops, propagate_copies, strip_nops
from .conflicts import ConflictReport, analyse_cj_move, analyse_move
from .migrate import FreePolicy, MigrateContext, MovePolicy, migrate, region_below, rpo_index
from .movecj import move_cj
from .moveop import MoveOutcome, PercolationStats, move_op, split_if_shared

__all__ = [
    "ConflictReport", "FreePolicy", "MigrateContext", "MoveOutcome",
    "MovePolicy", "PercolationStats", "analyse_cj_move", "analyse_move",
    "cleanup", "delete_empty_nodes", "eliminate_dead_ops", "migrate",
    "move_cj", "move_op", "propagate_copies", "region_below", "rpo_index",
    "split_if_shared", "strip_nops",
]
