"""Clean-up passes running alongside percolation.

The paper notes that "as a result of compaction, some operations in the
original code become redundant and are removed ... best performed
incrementally as part of the scheduling process in order to ensure that
unnecessary operations do not compete with useful operations for
resources."  These passes provide exactly that:

* **dead-op elimination** -- removes operations whose destination is
  dead past their node (renaming copies whose value was substituted
  through are the main customers; any side-effect-free op qualifies);
* **copy propagation** -- rewrites uses of ``B`` into uses of ``X``
  within a node that also receives ``B <- X`` from above (single-pred
  chains), further starving dead copies;
* **empty-node deletion** -- unlinks nodes left without operations;
* **nop stripping** -- drops NOPs.
"""

from __future__ import annotations

from ..analysis.liveness import liveness
from ..ir.cjtree import EXIT
from ..ir.graph import ProgramGraph
from ..ir.operations import OpKind
from ..ir.registers import Reg


def eliminate_dead_ops(graph: ProgramGraph,
                       exit_live: frozenset[Reg] = frozenset(),
                       copies_only: bool = True) -> int:
    """Remove side-effect-free ops whose destination is dead.

    Returns the number of removed operations.  ``copies_only`` limits
    removal to COPY artifacts, which is the conservative in-scheduling
    mode (the paper's redundancy removal); full DCE is used by the front
    end's clean-up pipeline.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        live = liveness(graph, exit_live)
        for nid in list(graph.nodes):
            node = graph.nodes[nid]
            for uid in list(node.ops):
                op = node.ops[uid]
                if op.has_side_effect or op.dest is None:
                    continue
                if copies_only and not op.is_copy:
                    continue
                if live.dest_dead_after(nid, uid):
                    graph.remove_op(nid, uid)
                    removed += 1
                    changed = True
    return removed


def propagate_copies(graph: ProgramGraph) -> int:
    """Forward-substitute copies along unique-predecessor edges.

    When node P commits ``B <- X`` on every path into its unique
    successor N (and nothing else writes B or X in between), uses of B
    in N can read X directly.  Returns the number of rewritten ops.
    """
    rewritten = 0
    for pid in list(graph.nodes):
        pnode = graph.nodes.get(pid)
        if pnode is None:
            continue
        for uid in list(pnode.ops):
            cp = pnode.ops.get(uid)
            if cp is None or not cp.is_copy:
                continue
            b, x = cp.dest, cp.srcs[0]
            if not isinstance(x, Reg):
                continue
            for leaf in pnode.leaves():
                if leaf.leaf_id not in pnode.paths[uid]:
                    continue
                succ = leaf.target
                if succ == EXIT or succ not in graph.nodes:
                    continue
                # The copy must cover every edge into succ: unique pred
                # and every P-leaf into succ carries the copy.
                if graph.predecessors(succ) != frozenset({pid}):
                    continue
                if not pnode.leaves_to(succ) <= pnode.paths[uid]:
                    continue
                # x must not be redefined by P on those paths.
                if any(o.dest == x and o.uid != uid
                       and pnode.paths[o.uid] & pnode.leaves_to(succ)
                       for o in pnode.ops.values()):
                    continue
                snode = graph.nodes[succ]
                for suid in list(snode.ops):
                    sop = snode.ops[suid]
                    if b in sop.uses():
                        graph.replace_op(succ, suid, sop.substitute_use(b, x))
                        rewritten += 1
                for suid in list(snode.cjs):
                    scj = snode.cjs[suid]
                    if b in scj.uses():
                        new = scj.substitute_use(b, x)
                        # CJ substitution must rewrite tree references.
                        _swap_cj(graph, succ, suid, new)
                        rewritten += 1
    return rewritten


def _swap_cj(graph: ProgramGraph, nid: int, old_uid: int, new_cj) -> None:
    from ..ir.cjtree import Branch, Leaf

    node = graph.nodes[nid]

    def rec(t):
        if isinstance(t, Leaf):
            return t
        return Branch(new_cj.uid if t.cj_uid == old_uid else t.cj_uid,
                      rec(t.on_true), rec(t.on_false))

    node.tree = rec(node.tree)
    del node.cjs[old_uid]
    node.cjs[new_cj.uid] = new_cj
    # Same leaves, new cj uid: announce the tree surgery so observers
    # (the template index tracks cj instances too) rescan the node.
    graph.note_tree_change(nid)


def strip_nops(graph: ProgramGraph) -> int:
    removed = 0
    for node in graph.nodes.values():
        for uid in list(node.ops):
            if node.ops[uid].kind is OpKind.NOP:
                graph.remove_op(node.nid, uid)
                removed += 1
    return removed


def delete_empty_nodes(graph: ProgramGraph) -> int:
    """Bypass all empty single-leaf nodes; returns how many died."""
    deleted = 0
    changed = True
    while changed:
        changed = False
        for nid in list(graph.nodes):
            if graph.delete_empty_node(nid):
                deleted += 1
                changed = True
    return deleted


def cleanup(graph: ProgramGraph, exit_live: frozenset[Reg] = frozenset(),
            aggressive: bool = False) -> dict[str, int]:
    """Run the full clean-up pipeline; returns per-pass counts."""
    counts = {
        "copies_propagated": propagate_copies(graph),
        "dead_removed": eliminate_dead_ops(
            graph, exit_live, copies_only=not aggressive),
        "nops": strip_nops(graph),
        "empty_nodes": delete_empty_nodes(graph),
    }
    return counts
