"""The move-op core transformation (paper Figure 2).

``move_op`` moves one operation from node ``From`` one step up into a
predecessor ``To``, preserving semantics:

1. If From has predecessors besides To, From is *split*: To gets a
   private copy and the motion happens there (other predecessors keep
   the original, op included).
2. True dependences against To block the move -- except reads satisfied
   by COPY operations, which are substituted through.
3. Move-past-read / write-live / output conflicts are removed by
   *renaming*: the moved op writes a fresh register and a COPY of it
   into the original destination stays in From on the op's paths.
4. If To already contains a syntactically identical operation, the two
   *unify*: the existing op's path set widens and no resource is
   consumed (the engine of the paper's "redundant operation removal").
5. The op commits in To exactly on the leaves that reach From, so the
   motion is speculation-safe under IBM VLIW semantics.

Every outcome is reported in a :class:`MoveOutcome`; failures carry the
blocking reason, which the schedulers use for Moveable-ops bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import ProgramGraph
from ..ir.operations import Operation, OpKind
from ..ir.registers import Reg, RegisterFile, RegisterPressureError
from ..machine.model import MachineConfig
from .conflicts import analyse_move


@dataclass
class MoveOutcome:
    """Result of one move attempt."""

    moved: bool
    reason: str = ""
    renamed: bool = False
    unified: bool = False
    split_nid: int | None = None      # private copy created by node splitting
    new_uid: int | None = None        # uid of the op instance now in To
    deleted_from: bool = False        # the source node became empty and died
    from_nid: int | None = None       # source node actually moved from
    resource_blocked: bool = False    # failed only because To was full

    def __bool__(self) -> bool:
        return self.moved


@dataclass
class PercolationStats:
    """Counters across a scheduling run."""

    attempts: int = 0
    moves: int = 0
    renames: int = 0
    unifications: int = 0
    splits: int = 0
    resource_blocks: int = 0
    dependence_blocks: int = 0
    cj_moves: int = 0
    deleted_nodes: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)

    def record_failure(self, reason: str) -> None:
        key = reason.split(":")[0]
        self.by_reason[key] = self.by_reason.get(key, 0) + 1

    def tally_line(self) -> str:
        """One-line move tallies for schedule summaries."""
        rej = sorted(self.by_reason.items(), key=lambda kv: (-kv[1], kv[0]))
        detail = ", ".join(f"{k}={v}" for k, v in rej) or "none"
        return (f"tried: {self.attempts} attempts -> {self.moves} moves; "
                f"rejected: {detail}")


def move_op(graph: ProgramGraph, from_nid: int, to_nid: int, uid: int, *,
            machine: MachineConfig, regfile: RegisterFile,
            stats: PercolationStats | None = None,
            exit_live: frozenset[Reg] = frozenset(),
            allow_speculation: bool = True,
            split_shared: bool = True,
            delete_emptied: bool = True) -> MoveOutcome:
    """Attempt to move op ``uid`` from ``from_nid`` into ``to_nid``.

    When From has other predecessors and ``split_shared`` is set, From
    is split *after* all checks pass, so failed attempts never mutate
    the graph.
    """
    stats = stats if stats is not None else PercolationStats()
    stats.attempts += 1

    from_node = graph.nodes[from_nid]
    to_node = graph.nodes[to_nid]
    if uid not in from_node.ops:
        return _fail(stats, f"no-op: {uid} not a regular op of n{from_nid}")
    op = from_node.ops[uid]

    leaves = to_node.leaves_to(from_nid)
    if not leaves:
        return _fail(stats, f"no-edge: n{to_nid} !-> n{from_nid}")

    # Speculation policy: an op guarded by conditionals *inside* From
    # (active on a strict subset of From's paths) becomes control-
    # speculative when hoisted into To, where it commits whenever
    # control reaches From.  IBM VLIW semantics make this safe for
    # renamable register writes; the paper's GRiP "always allows
    # speculative scheduling", and the hook supports the ablation study.
    if not allow_speculation and from_node.paths[uid] != from_node.all_paths:
        return _fail(stats, "speculation-disabled: op guarded in From")

    report = analyse_move(graph, from_nid, to_nid, uid, exit_live)
    if not report.ok:
        stats.dependence_blocks += 1
        return _fail(stats, report.fatal or "blocked")

    # Build the candidate op with copy substitutions applied.  (Also
    # reused after node splitting: the copy's instance is field-
    # identical apart from uids, so the same substitutions apply.)
    def resolve(instance: Operation) -> Operation:
        for reg, source in report.substitutions.items():
            instance = instance.substitute_use(reg, source)
        return instance

    moved = resolve(op)

    # Unification: identical op already in To.  Only sound when no
    # rename is required: a write-live conflict means paths not covered
    # by this op must keep the *old* destination value, which a widened
    # twin would clobber.
    twin = to_node.find_identical(moved)
    # Unification is always sound when the twin already commits on every
    # leaf reaching From: removing the (redundant) op changes no
    # observable value.  When the twin's paths must widen, the rename
    # triggers (readers in From, write-live on op's other paths) would
    # make the widened commit observable, so unification is skipped and
    # the normal rename path runs.
    twin_covers = (twin is not None
                   and leaves <= to_node.paths.get(twin.uid, frozenset()))
    unify = (twin is not None and not moved.writes_memory
             and (twin_covers or not report.needs_rename))

    # Resource constraint (unification consumes no slot).
    if not unify and not machine.can_accept(to_node, moved):
        stats.resource_blocks += 1
        out = _fail(stats, f"resources: n{to_nid} is full")
        out.resource_blocked = True
        return out

    # Renaming feasibility (checked before any mutation).
    fresh = None
    if not unify and report.needs_rename:
        if moved.dest is None:
            return _fail(stats, "rename-impossible: op has no destination")
        try:
            fresh = regfile.fresh()
        except RegisterPressureError:
            return _fail(stats, "rename-impossible: no free register")

    # ------------------------------------------------------------------
    # All checks passed: mutate.  Split From first when it is shared, so
    # other predecessors keep the op (the paper's node splitting) and
    # failed attempts above never touched the graph.
    # ------------------------------------------------------------------
    split_nid = None
    if split_shared and (graph.predecessors(from_nid) - {to_nid}):
        from_nid, uid_map = graph.split_for_edge(to_nid, from_nid)
        uid = uid_map[uid]
        from_node = graph.nodes[from_nid]
        leaves = to_node.leaves_to(from_nid)
        split_nid = from_nid
        stats.splits += 1
        # The motion must carry the *copy's* op instance: the original
        # node keeps its op (same uid) for the other predecessors, so
        # moving the pre-split instance would plant a duplicate uid in
        # the graph.
        op = from_node.ops[uid]
        moved = resolve(op)

    if unify:
        _detach(graph, from_node, uid, delete_emptied, stats)
        graph.widen_op_paths(to_nid, twin.uid, leaves)
        stats.moves += 1
        stats.unifications += 1
        return MoveOutcome(True, unified=True, new_uid=twin.uid,
                           from_nid=from_nid, split_nid=split_nid,
                           deleted_from=from_nid not in graph.nodes)

    renamed = False
    if report.needs_rename:
        original_dest = moved.dest
        stay_paths = from_node.paths[uid]
        moved = moved.with_dest(fresh)
        compensation = Operation(
            OpKind.COPY, original_dest, (fresh,),
            name=f"{op.name}~" if op.name else "",
            iteration=op.iteration, pos=op.pos)
        # Add the compensation before removing the moved op: both carry
        # the same iteration tag, so the iterations-below patches each
        # stop at the first predecessor check instead of retracting a
        # membership the very next event restores.  (The node briefly
        # holds two writers of the destination; nothing observes
        # per-path writer uniqueness between events.)
        graph.add_op(from_nid, compensation, stay_paths)
        graph.remove_op(from_nid, uid)
        renamed = True
        stats.renames += 1
    else:
        graph.remove_op(from_nid, uid)

    graph.add_op(to_nid, moved, leaves)
    stats.moves += 1

    deleted = False
    if delete_emptied and not renamed:
        deleted = graph.delete_empty_node(from_nid)
        if deleted:
            stats.deleted_nodes += 1

    return MoveOutcome(True, renamed=renamed, new_uid=moved.uid,
                       from_nid=from_nid, split_nid=split_nid,
                       deleted_from=deleted)


def _detach(graph: ProgramGraph, from_node, uid: int, delete_emptied: bool,
            stats: PercolationStats) -> None:
    graph.remove_op(from_node.nid, uid)
    if delete_emptied:
        if graph.delete_empty_node(from_node.nid):
            stats.deleted_nodes += 1


def _fail(stats: PercolationStats, reason: str) -> MoveOutcome:
    stats.record_failure(reason)
    return MoveOutcome(False, reason=reason)


def split_if_shared(graph: ProgramGraph, from_nid: int, to_nid: int, uid: int,
                    stats: PercolationStats | None = None
                    ) -> tuple[int, int]:
    """Give ``to_nid`` a private copy of ``from_nid`` when shared.

    Returns the (possibly new) source node id and the op's uid inside
    it.  Callers invoke this *before* :func:`move_op` when they intend
    to preserve the original node for other predecessors (the paper's
    node-splitting behaviour of move-op).
    """
    preds = graph.predecessors(from_nid)
    others = preds - {to_nid}
    if not others:
        return from_nid, uid
    new_nid, uid_map = graph.split_for_edge(to_nid, from_nid)
    if stats is not None:
        stats.splits += 1
    return new_nid, uid_map[uid]
