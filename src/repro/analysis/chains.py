"""Dependence-chain metrics for the section 3.4 ranking heuristic.

The paper ranks operation A above operation B when

1. the longest data dependence chain *rooted at* A is longer than the
   one rooted at B, or
2. the chains tie but A has more dependents in the dependence graph.

Chains follow **true** dependences only (anti and output dependences
are removable by renaming and do not constrain how far an operation's
consumers stretch).  "Rooted at A" counts downward: A plus its chain of
consumers.
"""

from __future__ import annotations


from .dependence import DependenceDAG, DepKind


def chain_lengths(dag: DependenceDAG, *, include_carried: bool = False) -> dict[int, int]:
    """Longest true-dependence chain rooted at each op (in ops, >= 1).

    ``include_carried`` counts loop-carried true edges too; the default
    matches ranking over an already-unwound body where carried edges
    have become ordinary edges between iteration copies.
    """
    carried = None if include_carried else False
    memo: dict[int, int] = {}
    visiting: set[int] = set()

    def length(uid: int) -> int:
        if uid in memo:
            return memo[uid]
        if uid in visiting:  # dependence cycle via carried edges: cut it
            return 0
        visiting.add(uid)
        succs = dag.true_succs(uid, carried=carried)
        best = 0
        for s in succs:
            best = max(best, length(s))
        visiting.discard(uid)
        memo[uid] = 1 + best
        return memo[uid]

    return {uid: length(uid) for uid in dag.order}


def dependent_counts(dag: DependenceDAG, *, include_carried: bool = False) -> dict[int, int]:
    """Number of transitive true-dependents of each op."""
    carried = None if include_carried else False
    memo: dict[int, frozenset[int]] = {}
    visiting: set[int] = set()

    def closure(uid: int) -> frozenset[int]:
        if uid in memo:
            return memo[uid]
        if uid in visiting:
            return frozenset()
        visiting.add(uid)
        out: set[int] = set()
        for s in dag.true_succs(uid, carried=carried):
            out.add(s)
            out |= closure(s)
        visiting.discard(uid)
        memo[uid] = frozenset(out)
        return memo[uid]

    return {uid: len(closure(uid)) for uid in dag.order}


def critical_cycle_ratio(dag: DependenceDAG) -> float:
    """Maximum cycle mean of the loop dependence graph (cycles/iteration).

    The asymptotic initiation interval of any legal schedule of the loop
    is bounded below by ``max over cycles C of len(C) / distance(C)``
    (each op costs one cycle).  Used to sanity-check Perfect Pipelining
    results: the kernel cannot beat this bound.

    Computed by binary search over the bound with a Bellman-Ford style
    negative-cycle test (Lawler's method); exact to 1/total-distance
    granularity, which is exact for our integer distances.
    """
    uids = dag.order
    edges: list[tuple[int, int, int, int]] = []  # src, dst, latency, distance
    for e in dag.edges():
        if e.kind is not DepKind.TRUE:
            continue
        edges.append((e.src, e.dst, 1, e.distance if e.carried else 0))
    if not edges:
        return 0.0

    def has_cycle_at_least(r: float) -> bool:
        # Edge weight latency - r*distance; positive cycle => II > r.
        dist = {u: 0.0 for u in uids}
        for _ in range(len(uids)):
            changed = False
            for s, d, lat, dd in edges:
                w = lat - r * dd
                if dist[s] + w > dist[d] + 1e-12:
                    dist[d] = dist[s] + w
                    changed = True
            if not changed:
                return False
        return True  # still relaxing after |V| rounds => positive cycle

    lo, hi = 0.0, float(len(uids))
    for _ in range(48):
        mid = (lo + hi) / 2
        if has_cycle_at_least(mid):
            lo = mid
        else:
            hi = mid
    return hi
