"""Incremental analysis layer: event-maintained scheduling indexes.

The GRiP scheduler's hot loop is thousands of single-op / single-edge
mutations per kernel, and profiling shows the per-mutation cost is
dominated not by the move machinery but by rebuilding graph-derived
indexes afterwards (``rpo_index``, ``region_below``, gap prevention's
iterations-below sets, the template index).  This module hosts an
:class:`AnalysisManager` that owns those indexes and maintains them *in
place* from the graph's typed mutation-event journal
(:mod:`repro.ir.events`), falling back to a full rebuild only on events
it cannot patch:

========================  =========================================
event                      maintenance
========================  =========================================
OpAdded / OpRemoved /      template index patched per entry;
OpReplaced                 iterations-below patched by an exact
                           upward propagation; RPO and regions are
                           untouched (op motion never changes
                           control-flow structure).
NodeBypassed               RPO order and cached regions are spliced
                           (removing an empty fall-through node
                           preserves every other node's traversal
                           position); iterations-below drops the
                           node's entry.
NodeInserted /             template index patched; structural
NodeRemoved                indexes unaffected (such nodes are
                           unreachable at event time).
EdgeRetargeted /           structure-derived indexes marked dirty,
EntryChanged /             rebuilt lazily on next query
InstructionReplaced        (InstructionReplaced also rescans the
                           node's ops into the template index).
BulkMutation               everything dirty (coarse fallback for
                           un-migrated mutation paths).
========================  =========================================

Correctness contract: after every event, each index must equal what a
from-scratch rebuild would produce -- *including* list orderings, since
the scheduler's stable sorts make tie-breaking order observable in the
final schedules.  ``tests/property/test_incremental_analysis.py``
drives random mutation sequences and asserts exactly that, and
``tests/integration/test_schedule_equivalence.py`` pins schedule
neutrality end to end.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort

from ..ir import events as ev
from ..ir.graph import ProgramGraph, build_template_index


def manager_for(graph: ProgramGraph) -> "AnalysisManager":
    """The graph's attached :class:`AnalysisManager` (created on demand).

    The manager lives on the graph (``graph._analysis``) so its
    lifecycle matches the graph's exactly; clones start without one.
    """
    mgr = graph._analysis
    if mgr is None:
        mgr = AnalysisManager(graph)
    return mgr


# -- module-level conveniences (the consumer-facing API) ----------------

def rpo_index(graph: ProgramGraph) -> dict[int, int]:
    """Maintained node -> RPO position map (iterates in RPO order)."""
    return manager_for(graph).rpo_index()


def region_below(graph: ProgramGraph, n: int) -> list[int]:
    """Maintained scheduling region of ``n``, bottom-up (deepest first)."""
    return manager_for(graph).region_below(n)


def iterations_below(graph: ProgramGraph) -> dict[int, set[int]]:
    """Maintained per-node sets of iterations with an op strictly below."""
    return manager_for(graph).iterations_below()


def template_index(graph: ProgramGraph) -> dict[int, list[tuple[int, int]]]:
    """Maintained tid -> [(node id, uid)] map (canonical order)."""
    return manager_for(graph).template_index()


class AnalysisManager:
    """Owns and incrementally maintains the scheduling indexes of one graph.

    Subscribes to the graph's mutation-event journal on construction.
    Dirty indexes rebuild lazily on the next query, so bursts of
    unpatchable events cost one rebuild, not one per event.  Handlers
    patch clean state or set dirty flags; the one exception is that the
    iterations-below patches consult ``rpo_index()`` (the two are
    dirtied together, so a clean below-map guarantees the structure is
    clean too -- at most a pending bypass splice runs inside the
    handler, never a full rebuild).

    ``counters`` tallies rebuilds vs. in-place patches per index; the
    tests use it to assert the incremental paths actually fire.
    """

    def __init__(self, graph: ProgramGraph, *, verify: bool = False) -> None:
        if graph._analysis is not None:
            raise ValueError(
                "graph already has an attached AnalysisManager; use "
                "manager_for(graph) instead of constructing a second one "
                "(two subscribed managers would both pay per-event "
                "maintenance forever)")
        self.graph = graph
        #: paranoid mode: cross-check every query against a from-scratch
        #: computation.  Attach a verifying manager *before* scheduling
        #: to pin the incremental maintenance end to end through the
        #: real mutation stream (the equivalence tests do this); far too
        #: slow for production use.
        self.verify = verify
        self.counters: dict[str, int] = {
            "events": 0,
            "rpo_rebuilds": 0, "rpo_splices": 0,
            "region_builds": 0, "region_splices": 0,
            "below_rebuilds": 0, "below_patches": 0,
            "template_rebuilds": 0,
        }
        # RPO: order list + position map, None = dirty.  ``_rpo_stale``
        # counts bypasses not yet spliced out (lazy splice on query).
        self._rpo_order: list[int] | None = None
        self._rpo_pos: dict[int, int] | None = None
        self._rpo_stale = False
        # Regions: n -> (list, bypass_seq at cache time).  Valid for the
        # current structure epoch; bypassed nodes are filtered lazily.
        self._regions: dict[int, tuple[list[int], int]] = {}
        self._bypass_seq = 0
        # Iterations-below: node -> set of iterations strictly below.
        # Sets are never shared (unlike the old per-version rebuild),
        # so in-place patching cannot alias unrelated nodes.
        self._below: dict[int, set[int]] | None = None
        # Template index: tid -> sorted [(nid, uid)], plus a per-node
        # mirror (nid -> {uid: tid}) so node-level events can diff.
        self._tindex: dict[int, list[tuple[int, int]]] = {}
        self._node_ops: dict[int, dict[int, int]] = {}
        self._tindex_dirty = True
        graph._analysis = self
        # The graph-level fallback cache is unreachable from now on
        # (template_index() delegates here); drop any populated copy.
        graph._tindex = None
        graph._tindex_version = -1
        graph.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rpo_index(self) -> dict[int, int]:
        """node -> RPO position; dict iteration follows RPO order."""
        if self._rpo_pos is None:
            self.counters["rpo_rebuilds"] += 1
            self._rpo_order = self.graph.rpo()
            self._rpo_pos = {nid: i for i, nid in enumerate(self._rpo_order)}
            self._rpo_stale = False
        elif self._rpo_stale:
            # Splice bypassed nodes out: RPO-minus-node is exactly the
            # new RPO when the node was an empty fall-through.
            self.counters["rpo_splices"] += 1
            nodes = self.graph.nodes
            self._rpo_order = [x for x in self._rpo_order if x in nodes]
            self._rpo_pos = {nid: i for i, nid in enumerate(self._rpo_order)}
            self._rpo_stale = False
        if self.verify:
            fresh = self.graph.rpo()
            assert self._rpo_order == fresh, \
                f"incremental RPO diverged: {self._rpo_order} != {fresh}"
        return self._rpo_pos

    def region_below(self, n: int) -> list[int]:
        """Nodes of the scheduling region of ``n``, bottom-up (deepest first).

        The paper defines the region as the subgraph *dominated* by
        ``n``.  For the graphs percolation works on -- unwound loop
        chains plus the side stubs that branch motion spins off --
        every forward descendant of ``n`` is reached only through
        ``n``, so forward reachability coincides with dominance and is
        far cheaper to maintain under the heavy mutation rate of
        scheduling (``analysis.dominators`` remains available for exact
        queries and is cross-checked in the tests).  Back edges
        (RPO-decreasing) are ignored.  Callers must treat the returned
        list as immutable.
        """
        index = self.rpo_index()
        if n not in index:
            return []
        hit = self._regions.get(n)
        if hit is not None:
            lst, seq = hit
            if seq != self._bypass_seq:
                self.counters["region_splices"] += 1
                nodes = self.graph.nodes
                lst = [x for x in lst if x in nodes]
                self._regions[n] = (lst, self._bypass_seq)
            if self.verify:
                self._verify_region(n, lst)
            return lst
        self.counters["region_builds"] += 1
        graph = self.graph
        out: list[int] = []
        seen: set[int] = {n}
        stack = [n]
        while stack:
            cur = stack.pop()
            out.append(cur)
            cur_idx = index[cur]
            for s in graph.successors(cur):
                if s in seen or s not in index or index[s] <= cur_idx:
                    continue
                seen.add(s)
                stack.append(s)
        out.sort(key=lambda nid: -index[nid])
        self._regions[n] = (out, self._bypass_seq)
        if self.verify:
            self._verify_region(n, out)
        return out

    def _verify_region(self, n: int, got: list[int]) -> None:
        index = self.rpo_index()
        ref: list[int] = []
        seen: set[int] = {n}
        stack = [n]
        while stack:
            cur = stack.pop()
            ref.append(cur)
            for s in self.graph.successors(cur):
                if s in seen or s not in index or index[s] <= index[cur]:
                    continue
                seen.add(s)
                stack.append(s)
        ref.sort(key=lambda nid: -index[nid])
        assert got == ref, f"incremental region({n}) diverged: {got} != {ref}"

    def iterations_below(self) -> dict[int, set[int]]:
        """For every reachable node: iterations with an op strictly below.

        Rebuilt bottom-up over forward edges when structure-dirty;
        patched exactly on op motion (see ``_below_add``/``_below_remove``).
        Stored sets must be treated as immutable by callers.
        """
        if self._below is None:
            self.counters["below_rebuilds"] += 1
            self._below = self._build_below()
        elif self.verify:
            ref = self._build_below()
            assert self._below == ref, \
                f"incremental iterations_below diverged: {self._below} != {ref}"
        return self._below

    def _build_below(self) -> dict[int, set[int]]:
        graph = self.graph
        index = self.rpo_index()
        order = self._rpo_order
        own: dict[int, set[int]] = {}
        for nid in order:
            own[nid] = {op.iteration
                        for op in graph.nodes[nid].all_ops()
                        if op.iteration >= 0}
        below: dict[int, set[int]] = {}
        for nid in reversed(order):
            acc: set[int] = set()
            for s in graph.successors(nid):
                if s in index and index[s] > index[nid]:  # skip back edges
                    acc |= below[s]
                    acc |= own[s]
            below[nid] = acc
        return below

    def template_index(self) -> dict[int, list[tuple[int, int]]]:
        """tid -> [(nid, uid)] in canonical (nid, uid) order."""
        if self._tindex_dirty:
            self.counters["template_rebuilds"] += 1
            self._tindex, self._node_ops = build_template_index(
                self.graph.nodes)
            self._tindex_dirty = False
        elif self.verify:
            ref, _ = build_template_index(self.graph.nodes)
            assert self._tindex == ref, \
                f"incremental template index diverged: {self._tindex} != {ref}"
        return self._tindex

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _on_event(self, event: ev.GraphEvent) -> None:
        self.counters["events"] += 1
        if type(event) is ev.OpAdded:
            self._tindex_add(event.nid, event.op.uid, event.op.tid)
            self._below_add(event.nid, event.op.iteration)
        elif type(event) is ev.OpRemoved:
            self._tindex_remove(event.nid, event.op.uid, event.op.tid)
            self._below_remove(event.nid, event.op.iteration)
        elif type(event) is ev.OpReplaced:
            self._tindex_remove(event.nid, event.old.uid, event.old.tid)
            self._tindex_add(event.nid, event.new.uid, event.new.tid)
            if event.old.iteration != event.new.iteration:
                self._below_remove(event.nid, event.old.iteration)
                self._below_add(event.nid, event.new.iteration)
        elif type(event) is ev.PathsWidened:
            pass  # path sets feed none of the owned indexes
        elif type(event) is ev.NodeBypassed:
            self._node_bypassed(event.nid, event.succ)
        elif type(event) is ev.NodeInserted:
            self._node_inserted(event.nid)
        elif type(event) is ev.NodeRemoved:
            self._node_removed(event.nid)
        elif type(event) is ev.InstructionReplaced:
            self._rescan_node(event.nid)
            self._dirty_structure()
        else:  # EdgeRetargeted, EntryChanged, BulkMutation, unknown
            self._dirty_structure()
            # Pure edge/entry changes cannot move ops between nodes;
            # anything else (BulkMutation, future event types) must
            # also invalidate the template index.
            if not isinstance(event, (ev.EdgeRetargeted, ev.EntryChanged)):
                self._tindex_dirty = True

    def _dirty_structure(self) -> None:
        self._rpo_order = None
        self._rpo_pos = None
        self._rpo_stale = False
        self._regions.clear()
        self._below = None

    # ------------------------------------------------------------------
    # Node-level handlers
    # ------------------------------------------------------------------
    def _node_bypassed(self, nid: int, succ: int) -> None:
        pos = self._rpo_pos
        if pos is not None and nid in pos:
            # The splice shortcut is only sound when the bypassed edge
            # nid -> succ was a forward edge (or EXIT): then every path
            # through the node becomes a direct path to the same place
            # and no walk's membership changes.  When it was a *back*
            # edge, the retargeted pred -> succ edges can be forward --
            # new forward connectivity the regions and below-sets must
            # see -- so fall back to a rebuild.
            if succ in pos and pos[succ] < pos[nid]:
                self._dirty_structure()
                return
            # RPO minus the node is the new RPO; splice lazily on query.
            self._rpo_stale = True
            self._bypass_seq += 1
            self._regions.pop(nid, None)
        if self._below is not None:
            self._below.pop(nid, None)
        # The node was empty, so the template index holds no entries;
        # drop a stale mirror slot if one exists.
        self._node_ops.pop(nid, None)

    def _node_inserted(self, nid: int) -> None:
        # Fresh nodes are unreachable until a later edge event links
        # them, so structural indexes are untouched -- but adopted
        # clones arrive with content for the template index.
        if not self._tindex_dirty:
            node = self.graph.nodes[nid]
            for op in node.all_ops():
                self._tindex_add(nid, op.uid, op.tid)
        if self.graph._preds.get(nid):  # pragma: no cover - defensive
            self._dirty_structure()

    def _node_removed(self, nid: int) -> None:
        if not self._tindex_dirty:
            for uid, tid in self._node_ops.pop(nid, {}).items():
                self._tindex_del(tid, nid, uid)
        else:
            self._node_ops.pop(nid, None)
        # Removed nodes are unreachable; if one still sits in the
        # structural indexes, those were stale -- rebuild.
        if self._rpo_pos is not None and nid in self._rpo_pos:
            self._dirty_structure()  # pragma: no cover - defensive
        elif self._below is not None:
            self._below.pop(nid, None)

    def _rescan_node(self, nid: int) -> None:
        """Diff a node's ops against the mirror (tree surgery rewrote it)."""
        if self._tindex_dirty:
            return
        node = self.graph.nodes.get(nid)
        fresh = ({op.uid: op.tid for op in node.all_ops()}
                 if node is not None else {})
        old = self._node_ops.get(nid, {})
        for uid, tid in old.items():
            if uid not in fresh:
                self._tindex_del(tid, nid, uid)
        for uid, tid in fresh.items():
            if uid not in old:
                insort(self._tindex.setdefault(tid, []), (nid, uid))
        if fresh:
            self._node_ops[nid] = fresh
        else:
            self._node_ops.pop(nid, None)

    # ------------------------------------------------------------------
    # Template-index patches
    # ------------------------------------------------------------------
    def _tindex_add(self, nid: int, uid: int, tid: int) -> None:
        if self._tindex_dirty:
            return
        insort(self._tindex.setdefault(tid, []), (nid, uid))
        self._node_ops.setdefault(nid, {})[uid] = tid

    def _tindex_remove(self, nid: int, uid: int, tid: int) -> None:
        if self._tindex_dirty:
            return
        self._tindex_del(tid, nid, uid)
        mirror = self._node_ops.get(nid)
        if mirror is not None:
            mirror.pop(uid, None)
            if not mirror:
                del self._node_ops[nid]

    def _tindex_del(self, tid: int, nid: int, uid: int) -> None:
        """Drop one (nid, uid) entry from a sorted per-tid list."""
        entries = self._tindex.get(tid)
        if entries is None:
            return
        i = bisect_left(entries, (nid, uid))
        if i < len(entries) and entries[i] == (nid, uid):
            del entries[i]
        if not entries:
            del self._tindex[tid]

    # ------------------------------------------------------------------
    # Iterations-below patches (exact, not conservative: Gapless-move
    # results feed suspension decisions, so any slack would change
    # schedules between the incremental and from-scratch paths)
    # ------------------------------------------------------------------
    def _below_add(self, nid: int, iteration: int) -> None:
        """An ``iteration`` op appeared at ``nid``: push membership up.

        Every forward ancestor of ``nid`` gains the iteration; the walk
        stops where it is already present (if a node has it, so do all
        of its ancestors).
        """
        if self._below is None or iteration < 0:
            return
        pos = self.rpo_index()
        if nid not in pos:
            return  # unreachable; the next structural rebuild covers it
        self.counters["below_patches"] += 1
        graph = self.graph
        below = self._below
        work = [nid]
        while work:
            cur = work.pop()
            cur_pos = pos[cur]
            for p in graph.predecessors(cur):
                if p not in pos or pos[p] >= cur_pos:
                    continue  # back edge or unreachable pred
                s = below.get(p)
                if s is None or iteration in s:
                    continue
                s.add(iteration)
                work.append(p)

    def _below_remove(self, nid: int, iteration: int) -> None:
        """An ``iteration`` op left ``nid``: retract stale memberships.

        Ancestors are visited deepest-first (decreasing RPO position),
        so when a node is evaluated every affected forward successor
        already holds its final value; a node keeps the iteration iff
        some forward successor still has it at-or-below.
        """
        if self._below is None or iteration < 0:
            return
        pos = self.rpo_index()
        if nid not in pos:
            return
        self.counters["below_patches"] += 1
        graph = self.graph
        below = self._below
        heap: list[tuple[int, int]] = []
        seen: set[int] = set()

        def push_preds(x: int) -> None:
            x_pos = pos[x]
            for p in graph.predecessors(x):
                if p in pos and pos[p] < x_pos and p not in seen:
                    seen.add(p)
                    heapq.heappush(heap, (-pos[p], p))

        push_preds(nid)
        while heap:
            _, p = heapq.heappop(heap)
            s = below.get(p)
            if s is None or iteration not in s:
                continue
            p_pos = pos[p]
            keep = False
            for sc in graph.successors(p):
                if sc not in pos or pos[sc] <= p_pos:
                    continue
                if iteration in below.get(sc, ()) or any(
                        op.iteration == iteration
                        for op in graph.nodes[sc].all_ops()):
                    keep = True
                    break
            if keep:
                continue
            s.discard(iteration)
            push_preds(p)
