"""Demand-driven liveness queries.

The write-live conflict test inside ``move-op`` asks about one register
at one program point; recomputing whole-graph liveness after every code
motion would dominate scheduling time.  This module answers single
queries with a memoized DFS: *is register r read on some path from node
n before being killed?*

Kill semantics follow the VLIW model: an op's definition kills only on
the tree paths the op commits on, and every operation in a node reads
entry values (so any use in the node makes the register live at entry).
"""

from __future__ import annotations

from ..ir.cjtree import EXIT
from ..ir.graph import ProgramGraph
from ..ir.registers import Reg

# Memo: (graph id, version, reg name) -> {nid: bool}
_memo: dict[tuple[int, int, str], dict[int, bool]] = {}
_MEMO_LIMIT = 512


def reg_live_at_entry(graph: ProgramGraph, nid: int, reg: Reg,
                      exit_live: frozenset[Reg] = frozenset()) -> bool:
    """Is ``reg`` live at the entry of node ``nid``?"""
    key = (id(graph), graph.version, reg.name)
    memo = _memo.get(key)
    if memo is None:
        if len(_memo) > _MEMO_LIMIT:
            _memo.clear()
        memo = {}
        _memo[key] = memo

    on_stack: set[int] = set()

    def visit(cur: int) -> bool:
        if cur == EXIT:
            return reg in exit_live
        if cur not in graph.nodes:
            return False
        if cur in memo:
            return memo[cur]
        if cur in on_stack:
            # A use reachable only through this cycle would be found on
            # the enclosing frames; provisional False is the least
            # fixed point and must not be memoized.
            return False
        node = graph.nodes[cur]
        for op in node.all_ops():
            if reg in op.uses():
                memo[cur] = True
                return True
        on_stack.add(cur)
        live = False
        for leaf in node.leaves():
            killed = any(op.dest == reg for op in node.ops_on(leaf.leaf_id))
            if killed:
                continue
            if visit(leaf.target):
                live = True
                break
        on_stack.discard(cur)
        if not on_stack:
            memo[cur] = live  # safe: no provisional answers in scope
        elif live:
            memo[cur] = True  # True answers never depend on provisional False
        return live

    return visit(nid)


def reg_live_out_via(graph: ProgramGraph, nid: int, leaf_id: int, reg: Reg,
                     exit_live: frozenset[Reg] = frozenset()) -> bool:
    """Is ``reg`` live when leaving ``nid`` through leaf ``leaf_id``?"""
    target = graph.nodes[nid].target_of_leaf(leaf_id)
    if target == EXIT:
        return reg in exit_live
    return reg_live_at_entry(graph, target, reg, exit_live)
