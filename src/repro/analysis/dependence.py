"""Data-dependence testing and dependence DAG construction.

Dependences between conventional operations:

* **true (flow)**  -- the later op reads a register or memory cell the
  earlier one writes.  True dependences are the only ones Percolation
  Scheduling cannot remove; they bound all code motion.
* **anti**         -- the later op writes what the earlier one reads.
  VLIW same-instruction semantics ("operands are fetched before results
  are stored") plus renaming make these non-binding for motion, but they
  still order operations *across* instructions.
* **output**       -- both write the same register or cell.

The DAG builder works over a sequential operation list (the natural
order of an unwound loop body) and is the substrate for the section 3.4
ranking heuristic and for loop-carried-dependence detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterable, Sequence

from ..ir.operations import Operation
from .memory import memory_anti_dep, memory_output_dep, memory_true_dep


class DepKind(Enum):
    TRUE = auto()
    ANTI = auto()
    OUTPUT = auto()


def true_dep(earlier: Operation, later: Operation) -> bool:
    """Does ``later`` truly depend on ``earlier``?"""
    if earlier.defs() & later.uses():
        return True
    return memory_true_dep(earlier, later)


def anti_dep(earlier: Operation, later: Operation) -> bool:
    if earlier.uses() & later.defs():
        return True
    return memory_anti_dep(earlier, later)


def output_dep(earlier: Operation, later: Operation) -> bool:
    if earlier.defs() & later.defs():
        return True
    return memory_output_dep(earlier, later)


def any_dep(earlier: Operation, later: Operation) -> bool:
    return (true_dep(earlier, later) or anti_dep(earlier, later)
            or output_dep(earlier, later))


@dataclass
class DepEdge:
    """A dependence from ``src`` (earlier) to ``dst`` (later)."""

    src: int  # op uid
    dst: int
    kind: DepKind
    carried: bool = False  # loop-carried (crosses the back edge)
    distance: int = 0      # iteration distance for carried deps


class DependenceDAG:
    """Dependence graph over a sequence of operations.

    ``ops`` are taken in program order.  ``succs``/``preds`` map op uid
    to outgoing/incoming edges.  When built with ``loop=True`` the
    builder additionally tests each pair across the back edge and
    records distance-1 carried edges (sufficient for register
    recurrences; affine memory indices yield exact distances).
    """

    def __init__(self, ops: Sequence[Operation]) -> None:
        self.ops: dict[int, Operation] = {op.uid: op for op in ops}
        self.order: list[int] = [op.uid for op in ops]
        self.succs: dict[int, list[DepEdge]] = {u: [] for u in self.order}
        self.preds: dict[int, list[DepEdge]] = {u: [] for u in self.order}

    def add_edge(self, edge: DepEdge) -> None:
        self.succs[edge.src].append(edge)
        self.preds[edge.dst].append(edge)

    def edges(self) -> Iterable[DepEdge]:
        for lst in self.succs.values():
            yield from lst

    def true_succs(self, uid: int, *, carried: bool | None = False) -> list[int]:
        """Uids truly dependent on ``uid``.

        ``carried=False`` restricts to intra-iteration edges,
        ``carried=True`` to carried edges, ``None`` includes both.
        """
        return [e.dst for e in self.succs[uid]
                if e.kind is DepKind.TRUE
                and (carried is None or e.carried == carried)]

    def true_preds(self, uid: int, *, carried: bool | None = False) -> list[int]:
        return [e.src for e in self.preds[uid]
                if e.kind is DepKind.TRUE
                and (carried is None or e.carried == carried)]

    def carried_edges(self) -> list[DepEdge]:
        return [e for e in self.edges() if e.carried]

    def carried_templates(self) -> set[int]:
        """Templates of ops involved in a loop-carried true dependence."""
        out: set[int] = set()
        for e in self.carried_edges():
            if e.kind is DepKind.TRUE:
                out.add(self.ops[e.src].tid)
                out.add(self.ops[e.dst].tid)
        return out


def _pair_kinds(earlier: Operation, later: Operation) -> list[DepKind]:
    kinds: list[DepKind] = []
    if true_dep(earlier, later):
        kinds.append(DepKind.TRUE)
    if anti_dep(earlier, later):
        kinds.append(DepKind.ANTI)
    if output_dep(earlier, later):
        kinds.append(DepKind.OUTPUT)
    return kinds


def build_dag(ops: Sequence[Operation], *, loop: bool = False,
              transitive_prune: bool = True) -> DependenceDAG:
    """Build the dependence DAG of ``ops`` in program order.

    With ``loop=True``, pairs are additionally tested across the back
    edge: op ``b`` (earlier position) in iteration *i+1* against op
    ``a`` (any position) in iteration *i*.  A register true-dependence
    is carried when the *last* writer of a register in body order
    reaches a reader positioned at or before it.

    ``transitive_prune`` skips an intra-iteration register edge a->b
    when another writer of the same register sits between a and b
    (standard reaching-definition pruning); memory edges are kept
    conservative.
    """
    dag = DependenceDAG(ops)
    n = len(ops)
    # Intra-iteration edges.
    for j in range(n):
        later = ops[j]
        for i in range(j - 1, -1, -1):
            earlier = ops[i]
            for kind in _pair_kinds(earlier, later):
                if kind is DepKind.TRUE and transitive_prune and not (
                        earlier.writes_memory or later.reads_memory):
                    # Register flow: only the reaching writer matters.
                    killed = any(
                        (earlier.defs() & ops[k].defs()) and
                        (ops[k].defs() & later.uses())
                        for k in range(i + 1, j))
                    if killed:
                        continue
                dag.add_edge(DepEdge(earlier.uid, later.uid, kind))
    if not loop:
        return dag

    # Loop-carried edges: earlier = op a in iteration i, later = op b in
    # iteration i+1.  For registers, a reaches across the back edge only
    # if a is the last writer of the register in body order and no
    # writer precedes b in the next iteration.
    for a_idx, a in enumerate(ops):
        for b_idx, b in enumerate(ops):
            # register flow a -> b (carried)
            for reg in (a.defs() & b.uses()):
                last_writer = max((k for k, o in enumerate(ops) if reg in o.defs()),
                                  default=None)
                if last_writer != a_idx:
                    continue
                rewritten_before_b = any(reg in ops[k].defs() for k in range(b_idx))
                if rewritten_before_b:
                    continue
                dag.add_edge(DepEdge(a.uid, b.uid, DepKind.TRUE,
                                     carried=True, distance=1))
                break
            # memory flow a -> b (carried), exact for affine indices
            if a.writes_memory and b.reads_memory and a.mem and b.mem:
                if a.mem.array == b.mem.array:
                    if a.mem.affine is not None and b.mem.affine is not None:
                        # a@iter i writes affine_a + i ; b@iter i+d reads
                        # affine_b + i + d ; conflict at distance d>0.
                        d = a.mem.affine - b.mem.affine
                        if d > 0:
                            dag.add_edge(DepEdge(a.uid, b.uid, DepKind.TRUE,
                                                 carried=True, distance=d))
                    elif mem_unknown(a, b):
                        dag.add_edge(DepEdge(a.uid, b.uid, DepKind.TRUE,
                                             carried=True, distance=1))
            # carried anti/output edges (needed for correctness fences)
            if a.reads_memory and b.writes_memory and a.mem and b.mem \
                    and a.mem.array == b.mem.array:
                if a.mem.affine is None or b.mem.affine is None:
                    if mem_unknown(a, b):
                        dag.add_edge(DepEdge(a.uid, b.uid, DepKind.ANTI,
                                             carried=True, distance=1))
                else:
                    d = a.mem.affine - b.mem.affine
                    if d > 0:
                        dag.add_edge(DepEdge(a.uid, b.uid, DepKind.ANTI,
                                             carried=True, distance=d))
    return dag


def mem_unknown(a: Operation, b: Operation) -> bool:
    """Conservative same-array test for non-affine references."""
    assert a.mem is not None and b.mem is not None
    if a.mem.affine is not None and b.mem.affine is not None:
        return False
    return a.mem.array == b.mem.array
