"""Memory disambiguation.

Two memory references conflict when they may touch the same cell.  The
tester uses three tiers of precision, mirroring what the paper's GCC
front end provided to the UCI compiler:

1. **Distinct arrays never alias.**  The front end gives every source
   array its own symbol; Livermore kernels keep arrays disjoint.
2. **Affine indices compare exactly.**  When both references carry an
   iteration-normalized affine index (filled in by the unwinder),
   ``x[k+10]`` in iteration 0 and ``x[k]`` in iteration 10 are the same
   cell; offsets 10 and 11 are not.
3. **Fallback: same array conflicts.**  Indirect accesses (``x[ix[k]]``
   in LL13/LL14-style gathers) leave ``affine`` as ``None`` and are
   treated conservatively.
"""

from __future__ import annotations

from ..ir.operations import MemRef, Operation


def mem_conflict(a: MemRef, b: MemRef) -> bool:
    """May the two references touch the same memory cell?"""
    if a.array != b.array:
        return False
    if a.affine is not None and b.affine is not None:
        return a.affine == b.affine
    if a.index == b.index:
        # Same symbolic index expression: cells coincide iff offsets do.
        return a.offset == b.offset
    return True  # unknown indices into the same array: assume conflict


def memory_true_dep(earlier: Operation, later: Operation) -> bool:
    """Store -> load of a conflicting cell (read-after-write)."""
    return (earlier.writes_memory and later.reads_memory
            and mem_conflict(earlier.mem, later.mem))


def memory_anti_dep(earlier: Operation, later: Operation) -> bool:
    """Load -> store of a conflicting cell (write-after-read)."""
    return (earlier.reads_memory and later.writes_memory
            and mem_conflict(earlier.mem, later.mem))


def memory_output_dep(earlier: Operation, later: Operation) -> bool:
    """Store -> store to a conflicting cell (write-after-write)."""
    return (earlier.writes_memory and later.writes_memory
            and mem_conflict(earlier.mem, later.mem))
