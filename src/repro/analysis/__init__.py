"""Dataflow and dependence analyses over VLIW program graphs."""

from .chains import chain_lengths, critical_cycle_ratio, dependent_counts
from .dependence import (
    DepEdge,
    DepKind,
    DependenceDAG,
    any_dep,
    anti_dep,
    build_dag,
    output_dep,
    true_dep,
)
from .dominators import DominatorInfo, dominators
from .incremental import (
    AnalysisManager,
    iterations_below,
    manager_for,
    region_below,
    rpo_index,
    template_index,
)
from .liveness import LivenessInfo, liveness
from .memory import mem_conflict, memory_anti_dep, memory_output_dep, memory_true_dep

__all__ = [
    "AnalysisManager", "DepEdge", "DepKind", "DependenceDAG",
    "DominatorInfo", "LivenessInfo",
    "any_dep", "anti_dep", "build_dag", "chain_lengths",
    "critical_cycle_ratio", "dependent_counts", "dominators",
    "iterations_below", "liveness", "manager_for",
    "mem_conflict", "memory_anti_dep", "memory_output_dep",
    "memory_true_dep", "output_dep", "region_below", "rpo_index",
    "template_index", "true_dep",
]
