"""Live-variable analysis over VLIW program graphs.

Percolation Scheduling's write-live conflict test needs to know, for a
candidate move of ``Op`` out of node ``From``, whether ``Op``'s
destination register is *live at the entry to From* (section 2).  Dead
-copy elimination needs per-edge live-out sets.

VLIW execution semantics make the transfer function path-sensitive:

* every operation in a node reads its operands from the *entry* state,
  so all uses belong to the node's ``use`` set, and
* an operation's definition kills only along the tree paths on which it
  commits (IBM model).

So for node ``n`` with leaves ``L`` targeting ``succ(L)``::

    live_in(n) = uses(n)  U  union_L ( live_in(succ(L)) - defs_on(L) )

The EXIT pseudo-node's live-in is a configurable register set (defaults
to empty: results are observed through memory).
"""

from __future__ import annotations

from ..ir.cjtree import EXIT
from ..ir.graph import ProgramGraph
from ..ir.registers import Reg


class LivenessInfo:
    """Fixed-point live sets for one graph snapshot."""

    def __init__(self, graph: ProgramGraph, exit_live: frozenset[Reg] = frozenset()):
        self.graph = graph
        self.version = graph.version
        self.exit_live = exit_live
        self.live_in: dict[int, frozenset[Reg]] = {}
        self._compute()

    def _compute(self) -> None:
        g = self.graph
        nids = list(g.nodes)
        self.live_in = {nid: frozenset() for nid in nids}
        # Iterate to fixed point in reverse RPO for fast convergence.
        order = list(reversed(g.rpo()))
        extra = [nid for nid in nids if nid not in set(order)]
        order = order + extra
        changed = True
        while changed:
            changed = False
            for nid in order:
                new = self._transfer(nid)
                if new != self.live_in[nid]:
                    self.live_in[nid] = new
                    changed = True

    def _transfer(self, nid: int) -> frozenset[Reg]:
        node = self.graph.nodes[nid]
        uses: set[Reg] = set()
        for op in node.all_ops():
            uses |= op.uses()
        out: set[Reg] = set(uses)
        for leaf in node.leaves():
            succ_live = (self.exit_live if leaf.target == EXIT
                         else self.live_in.get(leaf.target, frozenset()))
            defs_on = {op.dest for op in node.ops_on(leaf.leaf_id)
                       if op.dest is not None}
            out |= (succ_live - defs_on)
        return frozenset(out)

    # ------------------------------------------------------------------
    def live_at_entry(self, nid: int) -> frozenset[Reg]:
        return self.live_in.get(nid, frozenset())

    def live_out_via(self, nid: int, leaf_id: int) -> frozenset[Reg]:
        """Registers live when leaving ``nid`` through ``leaf_id``."""
        target = self.graph.nodes[nid].target_of_leaf(leaf_id)
        if target == EXIT:
            return self.exit_live
        return self.live_in.get(target, frozenset())

    def live_out(self, nid: int) -> frozenset[Reg]:
        """Union of live-out over every leaving edge."""
        out: set[Reg] = set()
        for leaf in self.graph.nodes[nid].leaves():
            out |= self.live_out_via(nid, leaf.leaf_id)
        return frozenset(out)

    def dest_dead_after(self, nid: int, uid: int) -> bool:
        """True when op ``uid``'s destination is dead past its node.

        VLIW co-resident operations read entry values, never the op's
        result, so the result is dead iff it is not live out along any
        path the op commits on.  Used by dead-copy elimination.
        """
        node = self.graph.nodes[nid]
        op = node.get_op(uid)
        if op.dest is None:
            return False
        for leaf_id in node.paths_of(uid):
            if op.dest in self.live_out_via(nid, leaf_id):
                return False
        return True


_cache: dict[tuple[int, frozenset[Reg]], tuple[int, LivenessInfo]] = {}


def liveness(graph: ProgramGraph,
             exit_live: frozenset[Reg] = frozenset()) -> LivenessInfo:
    """Memoized liveness, invalidated by graph mutation."""
    key = (id(graph), exit_live)
    hit = _cache.get(key)
    if hit is not None and hit[0] == graph.version:
        return hit[1]
    info = LivenessInfo(graph, exit_live)
    _cache[key] = (graph.version, info)
    return info
