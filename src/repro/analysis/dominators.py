"""Dominator analysis.

GRiP and Unifiable-ops scheduling both operate on "the subgraph
dominated by n": Moveable-ops(n) initially contains all operations on
that subgraph, and migrate() compacts it.  We compute immediate
dominators with the Cooper-Harvey-Kennedy iterative algorithm over
reverse postorder, then answer dominated-subgraph queries.
"""

from __future__ import annotations

from ..ir.graph import ProgramGraph


class DominatorInfo:
    """Immediate-dominator tree plus dominated-set queries."""

    def __init__(self, graph: ProgramGraph) -> None:
        self.graph = graph
        self.version = graph.version
        self.order = graph.rpo()
        self._index = {nid: i for i, nid in enumerate(self.order)}
        self.idom: dict[int, int] = {}
        self._compute()

    def _compute(self) -> None:
        g = self.graph
        entry = g.entry
        if entry is None:
            return
        idom: dict[int, int] = {entry: entry}
        index = self._index
        preds = {nid: [p for p in g.predecessors(nid) if p in index]
                 for nid in self.order}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for nid in self.order:
                if nid == entry:
                    continue
                candidates = [p for p in preds[nid] if p in idom]
                if not candidates:
                    continue
                new = candidates[0]
                for p in candidates[1:]:
                    new = intersect(new, p)
                if idom.get(nid) != new:
                    idom[nid] = new
                    changed = True
        self.idom = idom

    def dominates(self, a: int, b: int) -> bool:
        """True when a dominates b (reflexive)."""
        entry = self.graph.entry
        cur = b
        while True:
            if cur == a:
                return True
            if cur == entry or cur not in self.idom:
                return a == cur
            nxt = self.idom[cur]
            if nxt == cur:
                return a == cur
            cur = nxt

    def dominated_set(self, n: int) -> frozenset[int]:
        """All nodes dominated by n (including n)."""
        out = {nid for nid in self.order if self.dominates(n, nid)}
        return frozenset(out)

    def strictly_dominated(self, n: int) -> frozenset[int]:
        return self.dominated_set(n) - {n}


_cache: dict[int, tuple[int, DominatorInfo]] = {}


def dominators(graph: ProgramGraph) -> DominatorInfo:
    """Memoized dominator info, invalidated by graph mutation."""
    key = id(graph)
    hit = _cache.get(key)
    if hit is not None and hit[0] == graph.version:
        return hit[1]
    info = DominatorInfo(graph)
    _cache[key] = (graph.version, info)
    return info
