"""Typed public facade: the one entrypoint everything shares.

The CLI, the schedule cache, the batch server, the bench sweep and
the fuzz lane all used to import scattered internals
(``pipeline_loop`` / ``pipeline_program`` / ``check_source``).  This
module is the single front door:

* :func:`compile` -- DSL source -> lowered descriptor
  (:class:`~repro.ir.loops.CountedLoop` or
  :class:`~repro.ir.loops.LoopProgram`);
* :func:`load_kernel` -- built-in kernel name or DSL file path ->
  descriptor (raises :class:`KernelSpecError`, which the CLI maps to
  exit code 2);
* :func:`schedule` -- descriptor + machine -> scheduled result,
  auto-dispatching on the descriptor type, optionally through a
  content-addressed :class:`~repro.cache.ScheduleCache`;
* :func:`emit` -- descriptor -> VLIW bundle program;
* :func:`run` -- scheduled graph -> differential VM check report;
* :func:`check` -- DSL source -> full fuzz-grade semantic check.

All scheduling knobs travel in one frozen :class:`ScheduleOptions`
value, which is also what the cache key fingerprints.  Imports are
deliberately lazy so ``import repro.api`` stays cheap and the cache /
serve / bench modules can depend on this module without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backend.check import BatchedReport, DifferentialReport
    from .backend.encode import BundleProgram
    from .cache import ScheduleCache
    from .ir.graph import ProgramGraph
    from .ir.loops import CountedLoop, LoopProgram
    from .machine.model import MachineConfig
    from .obs.tracer import Tracer
    from .pipelining import PipelineResult, ProgramPipelineResult
    from .scheduling.policy import SchedulePolicy
    from .scheduling.priority import Heuristic


class KernelSpecError(ValueError):
    """Kernel spec is neither a built-in name nor a readable DSL file."""


@dataclass(frozen=True)
class ScheduleOptions:
    """Every knob :func:`schedule` accepts, in one hashable value.

    ``optimize`` (the cross-segment pass pipeline) applies to
    ``LoopProgram`` descriptors only; ``verify_analysis`` attaches a
    verifying AnalysisManager (observe-only) on either path.

    ``policy`` carries every schedule-shaping knob as one
    fingerprinted :class:`~repro.scheduling.policy.SchedulePolicy`
    value (``None`` means the schedule-neutral
    :data:`~repro.scheduling.policy.DEFAULT_POLICY`); the cache key
    folds its fingerprint in, so distinct policies never collide on an
    entry.
    """

    unroll: int | None = None
    heuristic: "Heuristic | None" = None
    gap_prevention: bool = True
    allow_speculation: bool = True
    optimize: bool = True
    measure: bool = True
    verify: bool = True
    verify_analysis: bool = False
    seeds: tuple[int, ...] = (0,)
    policy: "SchedulePolicy | None" = None


#: the facade's default; importable so clients can ``replace()`` it
DEFAULT_OPTIONS = ScheduleOptions()


def compile(source: str, n: int, *, name: str = "kernel",
            optimize: bool = True) -> "CountedLoop | LoopProgram":
    """Lower DSL source for an ``n``-iteration run."""
    from .frontend import compile_dsl

    return compile_dsl(source, n, name=name, optimize=optimize)


def load_kernel(spec: str, unroll: int) -> "CountedLoop | LoopProgram":
    """Resolve a kernel spec: built-in name, else a DSL file path."""
    from pathlib import Path

    from .workloads import build_kernel, family_of, livermore

    if family_of(spec) is not None:
        return build_kernel(spec, unroll)
    try:
        src = Path(spec).read_text()
    except OSError:
        raise KernelSpecError(
            f"unknown kernel {spec!r}: not a built-in "
            f"({', '.join(livermore.kernel_names())}, synth family) and "
            f"not a readable DSL file") from None
    return compile(src, unroll, name=Path(spec).stem)


def schedule(program: "CountedLoop | LoopProgram",
             machine: "MachineConfig", *,
             options: ScheduleOptions | None = None,
             cache: "ScheduleCache | None" = None,
             tracer: "Tracer | None" = None
             ) -> "PipelineResult | ProgramPipelineResult":
    """Schedule a lowered descriptor, dispatching on its type.

    With ``cache`` the request is first looked up by content key; a
    hit replays the stored schedule (bit-identical to a cold run) and
    a miss computes then stores.  A warm hit emits *no* tracer events
    (there is no decision stream to replay) -- callers that need the
    stream itself, like ``repro explain`` or bench ``--profile``
    cells, must not pass a cache.
    """
    from .ir.loops import CountedLoop, LoopProgram
    from .pipelining import schedule_loop, schedule_program

    opts = options if options is not None else DEFAULT_OPTIONS
    if cache is not None:
        hit = cache.fetch(program, machine, opts)
        if hit is not None:
            return hit
    if isinstance(program, CountedLoop):
        result = schedule_loop(
            program, machine, unroll=opts.unroll, heuristic=opts.heuristic,
            gap_prevention=opts.gap_prevention,
            allow_speculation=opts.allow_speculation, measure=opts.measure,
            verify=opts.verify, verify_analysis=opts.verify_analysis,
            seeds=tuple(opts.seeds), tracer=tracer, policy=opts.policy)
    elif isinstance(program, LoopProgram):
        result = schedule_program(
            program, machine, unroll=opts.unroll, heuristic=opts.heuristic,
            gap_prevention=opts.gap_prevention,
            allow_speculation=opts.allow_speculation,
            optimize=opts.optimize, measure=opts.measure,
            verify=opts.verify, verify_analysis=opts.verify_analysis,
            seeds=tuple(opts.seeds), tracer=tracer, policy=opts.policy)
    else:
        raise TypeError(
            f"cannot schedule {type(program).__name__}; expected "
            "CountedLoop or LoopProgram")
    if cache is not None:
        cache.put(program, machine, opts, result)
    return result


def scheduled_graph(result) -> "ProgramGraph":
    """The scheduled graph of either result flavor."""
    unwound = getattr(result, "unwound", None)
    return unwound.graph if unwound is not None else result.graph


def emit(program: "CountedLoop | LoopProgram", machine: "MachineConfig", *,
         options: ScheduleOptions | None = None, seq: bool = False,
         cache: "ScheduleCache | None" = None) -> "BundleProgram":
    """Lower a descriptor to a VLIW bundle program.

    ``seq`` encodes the sequential (unscheduled) graph; otherwise the
    descriptor is scheduled first (``measure=False`` -- emission needs
    the graph, not the cycle counts).  Raises the backend's
    ``EncodeError`` / ``RegisterPressureError`` unchanged.
    """
    from dataclasses import replace

    from .backend import encode

    if seq:
        graph = program.graph
    else:
        opts = options if options is not None else DEFAULT_OPTIONS
        res = schedule(program, machine,
                       options=replace(opts, measure=False), cache=cache)
        graph = scheduled_graph(res)
    return encode(graph, machine)


def run(graph: "ProgramGraph", machine: "MachineConfig", *,
        lanes: int = 1, program: "BundleProgram | None" = None
        ) -> "DifferentialReport | BatchedReport":
    """Differentially execute a graph on the bundle VM.

    One lane runs the scalar checker; more lanes run the batched
    multi-state VM (the first seeds stay tree-walker-pinned).
    """
    from .backend import differential_check, differential_check_batched

    if lanes > 1:
        return differential_check_batched(graph, machine, lanes=lanes,
                                          program=program)
    return differential_check(graph, machine, program=program)


def check(source: str, unroll: int, machine: "MachineConfig", **kwargs):
    """Fuzz-grade semantic check of one DSL program.

    Schedules, validates graph invariants and resource budgets, and
    batch-checks the schedule against the sequential program;
    delegates to :func:`repro.bench.fuzz.check_source` (same keyword
    surface: ``verify``, ``tamper``, ``seeds``, ``lanes``, ``cache``,
    ``tracer``).
    """
    from .bench.fuzz import check_source

    return check_source(source, unroll, machine, **kwargs)
